//! The chaos executor: run one plan's baseline and faulted legs and
//! evaluate the invariant catalog.
//!
//! The catalog (each entry names the violation it reports):
//!
//! * `no-panic` — every leg runs behind `catch_unwind`; any panic is a
//!   violation (the workspace promise is typed errors end to end).
//! * `run-completes` — checkpoint/trace I/O faults are survivable by
//!   design (retry, then degrade), so a chaos leg returning an error is a
//!   violation. The expect-fail canary lands here: silently corrupted
//!   checkpoint bytes make the resume's checksum fail with a typed
//!   snapshot error, and the run cannot complete.
//! * `resume-bit-identity` — the faulted kill/resume run must produce
//!   results bit-identical to the uninterrupted, fault-free baseline
//!   (checkpointing and tracing are pure observers).
//! * `conservation` — completed + censored + aborted users never exceed
//!   arrivals.
//! * `monotone-clock` — record arrivals (DES) and handoff times (hybrid)
//!   are nondecreasing, and the final time is finite and nonnegative.

use crate::plan::{ChaosMode, ChaosPlan};
use btfluid_des::SimOutcome;
use btfluid_harness::{
    drive, CheckpointPlan, HarnessError, RetryPolicy, RunEnd, RunLimits, RunReport,
};
use btfluid_hybrid::{HybridConfig, HybridOutcome, HybridRunner};
use btfluid_telemetry::faults::{self, FaultScript};
use btfluid_telemetry::{
    diag, shared_recorder, FanoutProbe, Level, RecorderProbe, SharedRecorder, SinkProbe, TraceSink,
    DEFAULT_FLIGHT_CAPACITY,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One invariant violation: which catalog entry, and what was seen.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Catalog entry name (`no-panic`, `run-completes`, …).
    pub invariant: String,
    /// Human-readable evidence.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &str, detail: impl Into<String>) -> Self {
        Self {
            invariant: invariant.into(),
            detail: detail.into(),
        }
    }
}

/// The executor's verdict on one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The plan's index.
    pub index: u64,
    /// Violations found (empty = the plan was survived correctly).
    pub violations: Vec<Violation>,
    /// Flight-recorder dump (`flightrec v1` JSONL) of the chaos legs'
    /// last happenings — populated only on a non-clean verdict.
    pub flight: Option<String>,
}

impl Verdict {
    /// True when the plan was survived with no violations.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Disarms the injector (and detaches its flight hook) even if the
/// executor unwinds.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        faults::disarm();
        faults::uninstall_flight();
    }
}

/// Runs `plan` in `work_dir` (scratch files are keyed by plan index, so
/// concurrent *distinct* plans need distinct dirs — the injector is
/// process-global, so plans must run sequentially anyway).
pub fn run_plan(plan: &ChaosPlan, work_dir: &Path) -> Verdict {
    let mut violations = Vec::new();
    let flight = shared_recorder(DEFAULT_FLIGHT_CAPACITY);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match plan.mode {
        ChaosMode::Des => run_des(plan, work_dir, &flight),
        ChaosMode::Hybrid => run_hybrid(plan, work_dir, &flight),
    }));
    faults::disarm();
    faults::uninstall_flight();
    match outcome {
        Ok(mut v) => violations.append(&mut v),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            violations.push(Violation::new("no-panic", format!("panicked: {msg}")));
        }
    }
    let flight = {
        let ring = flight.lock().unwrap_or_else(|e| e.into_inner());
        (!violations.is_empty() && !ring.is_empty()).then(|| ring.dump_string(None))
    };
    Verdict {
        index: plan.index,
        violations,
        flight,
    }
}

fn ckpt_plan(path: PathBuf) -> CheckpointPlan {
    CheckpointPlan {
        path: Some(path),
        every_events: 128,
        retry: RetryPolicy::immediate(),
    }
}

fn run_des(plan: &ChaosPlan, work_dir: &Path, flight: &SharedRecorder) -> Vec<Violation> {
    let program = plan.program();
    let cfg = match program.des_config(plan.scheme, plan.seed) {
        Ok(mut cfg) => {
            cfg.checked = true; // fold the engine's own audits in
            cfg
        }
        Err(e) => return vec![Violation::new("run-completes", format!("config: {e}"))],
    };
    let hook_factory = || -> Box<dyn btfluid_des::ScenarioHook> { Box::new(plan.program().hook()) };

    // Baseline: uninterrupted, fault-free, no checkpointing.
    let baseline = match drive(
        cfg.clone(),
        Some(&hook_factory),
        None,
        false,
        &RunLimits::default(),
        None,
        None,
        None,
    ) {
        Ok(report) => report.outcome.expect("unlimited drive completes"),
        Err(e) => return vec![Violation::new("run-completes", format!("baseline: {e:?}"))],
    };

    // Chaos legs: armed script, checkpointing on, kill then resume.
    let ckpt = work_dir.join(format!("plan-{}.snap", plan.index));
    let _ = std::fs::remove_file(&ckpt);
    let trace_path = work_dir.join(format!("plan-{}.trace.jsonl", plan.index));
    let sink = plan.trace.then(|| {
        let _ = std::fs::remove_file(&trace_path);
        TraceSink::create(&trace_path).map(TraceSink::shared)
    });
    let sink = match sink {
        Some(Ok(s)) => Some(s),
        Some(Err(e)) => return vec![Violation::new("run-completes", format!("trace: {e}"))],
        None => None,
    };

    let _guard = Disarm;
    faults::arm(plan.script.clone());
    faults::install_flight(Arc::clone(flight));
    let cplan = ckpt_plan(ckpt.clone());
    let first_probe: Box<dyn btfluid_des::Probe> = {
        let mut probes: Vec<Box<dyn btfluid_des::Probe>> =
            vec![Box::new(RecorderProbe::new(Arc::clone(flight)))];
        if let Some(s) = sink.clone() {
            probes.push(Box::new(SinkProbe::new(s, 10.0)));
        }
        Box::new(FanoutProbe::new(probes))
    };
    let first: Result<RunReport, HarnessError> = drive(
        cfg.clone(),
        Some(&hook_factory),
        Some(&cplan),
        false,
        &RunLimits {
            max_events: plan.kill_at,
            ..Default::default()
        },
        None,
        None,
        Some(first_probe),
    );
    let chaos = match first {
        Ok(report) if report.end == RunEnd::Completed => report.outcome,
        Ok(_) => {
            // Killed at the budget; tear down and resume from whatever the
            // faulted checkpointing left behind (possibly nothing — then
            // the resume leg restarts from scratch, which must still land
            // on the identical result).
            match drive(
                cfg.clone(),
                Some(&hook_factory),
                Some(&cplan),
                true,
                &RunLimits::default(),
                None,
                None,
                Some(Box::new(RecorderProbe::new(Arc::clone(flight)))),
            ) {
                Ok(report) => report.outcome,
                Err(e) => {
                    return vec![Violation::new(
                        "run-completes",
                        format!("resume leg: {e:?}"),
                    )]
                }
            }
        }
        Err(e) => return vec![Violation::new("run-completes", format!("first leg: {e:?}"))],
    };
    faults::disarm();
    // A trace-site fault surfaces here as a typed, tolerated error: the
    // sink is an observer, so it must not affect the verdict.
    if let Some(sink) = sink {
        if let Err(e) = sink.lock().unwrap_or_else(|e| e.into_inner()).finish() {
            diag!(Level::Info, "chaos: trace sink failed (tolerated): {e}");
        }
    }
    let Some(chaos) = chaos else {
        return vec![Violation::new(
            "run-completes",
            "resume leg ended without completing",
        )];
    };
    check_des(&baseline, &chaos)
}

fn check_des(baseline: &SimOutcome, chaos: &SimOutcome) -> Vec<Violation> {
    let mut violations = Vec::new();
    if baseline.events != chaos.events
        || baseline.records != chaos.records
        || baseline.aborts != chaos.aborts
        || baseline.censored != chaos.censored
        || baseline.arrivals != chaos.arrivals
    {
        violations.push(Violation::new(
            "resume-bit-identity",
            format!(
                "baseline (events {}, records {}, aborts {}) != chaos \
                 (events {}, records {}, aborts {})",
                baseline.events,
                baseline.records.len(),
                baseline.aborts.len(),
                chaos.events,
                chaos.records.len(),
                chaos.aborts.len()
            ),
        ));
    }
    let accounted = chaos.records.len() + chaos.censored + chaos.aborts.len();
    if accounted > chaos.arrivals {
        violations.push(Violation::new(
            "conservation",
            format!("{accounted} users accounted > {} arrivals", chaos.arrivals),
        ));
    }
    // Records are pushed at completion, so departures are the engine's
    // clock: nondecreasing, each at or after its own arrival, all finite.
    let sorted = chaos
        .records
        .windows(2)
        .all(|w| w[0].departure <= w[1].departure);
    let causal = chaos
        .records
        .iter()
        .all(|r| r.arrival.is_finite() && r.departure.is_finite() && r.arrival <= r.departure);
    if !sorted || !causal {
        violations.push(Violation::new(
            "monotone-clock",
            "record departures not finite/nondecreasing/causal",
        ));
    }
    violations
}

fn run_hybrid(plan: &ChaosPlan, work_dir: &Path, flight: &SharedRecorder) -> Vec<Violation> {
    let peak = 256.0 * (1 << (plan.seed % 3)) as f64; // 256 / 512 / 1024
    let cfg = HybridConfig {
        program: btfluid_hybrid::amplified_flash_crowd(peak, 0.005),
        scheme: plan.scheme,
        seed: plan.seed,
        tol: 0.1,
        aggregate: false,
    };
    let baseline = match HybridRunner::run(cfg.clone()) {
        Ok(outcome) => outcome,
        Err(e) => return vec![Violation::new("run-completes", format!("baseline: {e:?}"))],
    };

    let ckpt = work_dir.join(format!("plan-{}.hsnap", plan.index));
    let _ = std::fs::remove_file(&ckpt);
    let _guard = Disarm;
    faults::arm(plan.script.clone());
    faults::install_flight(Arc::clone(flight));
    let chaos = (|| -> Result<HybridOutcome, String> {
        let mut runner = HybridRunner::new(cfg.clone()).map_err(|e| format!("new: {e:?}"))?;
        runner.attach_flight(Arc::clone(flight));
        let mut boundary = 0u64;
        let mut killed = false;
        loop {
            let more = runner
                .step_boundary()
                .map_err(|e| format!("boundary {boundary}: {e:?}"))?;
            boundary += 1;
            if !more {
                break;
            }
            if !killed && plan.kill_at == Some(boundary) {
                killed = true;
                // Checkpoint through the (faulted) atomic writer; on
                // persistent failure keep the live runner — degradation,
                // not death.
                let bytes = runner.snapshot();
                let mut wrote = false;
                for _ in 0..3 {
                    if btfluid_harness::atomic_write(&ckpt, &bytes).is_ok() {
                        wrote = true;
                        break;
                    }
                }
                if wrote {
                    drop(runner);
                    let on_disk =
                        std::fs::read(&ckpt).map_err(|e| format!("read checkpoint: {e}"))?;
                    runner = HybridRunner::resume(cfg.clone(), &on_disk)
                        .map_err(|e| format!("resume: {e:?}"))?;
                    runner.attach_flight(Arc::clone(flight));
                }
            }
        }
        Ok(runner.finish())
    })();
    faults::disarm();
    let chaos = match chaos {
        Ok(outcome) => outcome,
        Err(detail) => return vec![Violation::new("run-completes", detail)],
    };
    check_hybrid(&baseline, &chaos)
}

fn check_hybrid(baseline: &HybridOutcome, chaos: &HybridOutcome) -> Vec<Violation> {
    let mut violations = Vec::new();
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    if bits(&baseline.class_means) != bits(&chaos.class_means)
        || baseline.final_t.to_bits() != chaos.final_t.to_bits()
        || baseline.handoffs.len() != chaos.handoffs.len()
    {
        violations.push(Violation::new(
            "resume-bit-identity",
            format!(
                "baseline (means {:?}, final_t {}, {} handoffs) != chaos \
                 (means {:?}, final_t {}, {} handoffs)",
                baseline.class_means,
                baseline.final_t,
                baseline.handoffs.len(),
                chaos.class_means,
                chaos.final_t,
                chaos.handoffs.len()
            ),
        ));
    }
    let sorted = chaos.handoffs.windows(2).all(|w| w[0].t <= w[1].t);
    if !sorted || !chaos.final_t.is_finite() || chaos.final_t < 0.0 {
        violations.push(Violation::new(
            "monotone-clock",
            "handoff times not nondecreasing or final_t not finite",
        ));
    }
    violations
}

/// Arms `script`, runs `f`, and always disarms — the safe wrapper for
/// callers outside the executor (the CLI's replay path).
pub fn with_script<T>(script: &FaultScript, f: impl FnOnce() -> T) -> T {
    let _guard = Disarm;
    faults::arm(script.clone());
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan;

    fn work() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("btfs-chaos-exec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    // One test exercises everything that arms the process-global injector,
    // so nothing races (the crate's other tests never arm it).
    #[test]
    fn clean_plans_pass_and_the_canary_is_caught() {
        let dir = work();

        // A fault-free DES plan with kill/resume survives cleanly.
        let mut plans = plan::generate(11, 8);
        let des = plans
            .iter_mut()
            .find(|p| p.mode == ChaosMode::Des)
            .expect("generator emits DES plans");
        des.script.rules.clear();
        des.kill_at = Some(300);
        let verdict = run_plan(des, &dir);
        assert!(verdict.clean(), "violations: {:?}", verdict.violations);

        // Permanent checkpoint ENOSPC + kill: degradation means the resume
        // leg restarts from scratch and still matches the baseline.
        des.script = FaultScript {
            rules: vec![btfluid_telemetry::FaultRule {
                site: btfluid_telemetry::FaultSite::CheckpointWrite,
                kind: btfluid_telemetry::FaultKind::Enospc,
                from_op: 0,
                count: plan::PERMANENT,
            }],
        };
        let verdict = run_plan(des, &dir);
        assert!(verdict.clean(), "violations: {:?}", verdict.violations);

        // The canary (silent checkpoint corruption) must be caught as a
        // typed run-completes violation, never a panic.
        let verdict = run_plan(&plan::canary(11), &dir);
        assert!(!verdict.clean(), "canary must be caught");
        assert!(verdict.violations.iter().all(|v| v.invariant != "no-panic"));
        assert!(verdict
            .violations
            .iter()
            .any(|v| v.invariant == "run-completes"));
        // Same plan, same verdict: the executor is deterministic.
        assert_eq!(verdict, run_plan(&plan::canary(11), &dir));
    }
}
