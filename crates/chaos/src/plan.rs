//! Chaos plans: one randomized trial each, derived deterministically from
//! a SplitMix64 stream, plus the JSON codec the repro bundles use.
//!
//! A plan composes three fault axes the robustness stack must absorb
//! simultaneously:
//!
//! 1. **Scenario faults** — seed-outage / tracker-blackout windows on the
//!    workload itself (the churn the paper's swarms live under).
//! 2. **I/O faults** — a [`FaultScript`] firing ENOSPC/EIO/short-write/
//!    rename failures at exact operation indices on the harness write
//!    sites.
//! 3. **Kill/resume** — an event budget (DES) or a handoff-boundary index
//!    (hybrid, landing both mid-fluid and mid-discrete) where the run is
//!    stopped, checkpointed, torn down, and resumed.
//!
//! Every numeric knob is drawn from a coarse grid so the JSON round trip
//! is exact and the plan replays bit-identically.

use btfluid_des::SchemeKind;
use btfluid_harness::json::Json;
use btfluid_numkit::rng::{RngCore, SplitMix64};
use btfluid_scenario::ScenarioProgram;
use btfluid_telemetry::faults::{FaultKind, FaultRule, FaultScript, FaultSite};

/// Rule count that outlives any run: "this fault is permanent".
pub const PERMANENT: u64 = u64::MAX;

/// Which engine a plan exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Pure event-driven run under a stationary scenario hook.
    Des,
    /// Hybrid fluid/DES run under the amplified flash crowd.
    Hybrid,
}

impl ChaosMode {
    fn name(self) -> &'static str {
        match self {
            ChaosMode::Des => "des",
            ChaosMode::Hybrid => "hybrid",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "des" => Some(ChaosMode::Des),
            "hybrid" => Some(ChaosMode::Hybrid),
            _ => None,
        }
    }
}

/// One randomized trial: scenario × fault script × kill point.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Index within the generating sweep (stable across reruns).
    pub index: u64,
    /// Engine seed.
    pub seed: u64,
    /// Which engine the plan runs.
    pub mode: ChaosMode,
    /// Download scheme (the generator emits MTCD/MTSD — the two with
    /// scheduled fluid counterparts, so both modes accept them).
    pub scheme: SchemeKind,
    /// Optional seed-outage window on the scenario (DES only).
    pub seed_outage: Option<(f64, f64)>,
    /// Optional tracker-blackout window on the scenario (DES only).
    pub tracker_blackout: Option<(f64, f64)>,
    /// I/O fault schedule, armed for the chaos legs only.
    pub script: FaultScript,
    /// Kill point: DES = stop at this engine event count then resume;
    /// hybrid = checkpoint-and-resume at this handoff boundary index.
    pub kill_at: Option<u64>,
    /// Attach a JSONL trace sink (DES only) so trace-site faults bite.
    pub trace: bool,
}

impl ChaosPlan {
    /// Compiles the DES scenario this plan runs (mode `Des` only): a
    /// small stationary program with the plan's fault windows folded in.
    pub fn program(&self) -> ScenarioProgram {
        let lambda0 = 1.0 + 0.5 * (self.seed % 4) as f64;
        let mut program = ScenarioProgram::stationary("chaos", lambda0, 0.5, 2, 300.0, 50.0, 300.0);
        if let Some(w) = self.seed_outage {
            program.faults.seed_outages = vec![w];
        }
        if let Some(w) = self.tracker_blackout {
            program.faults.tracker_blackouts = vec![w];
        }
        program
    }

    /// JSON form (the `plan` member of `chaos.json`).
    pub fn to_json(&self) -> Json {
        let window = |w: (f64, f64)| Json::Arr(vec![Json::num_f64(w.0), Json::num_f64(w.1)]);
        let mut fields = vec![
            ("index".into(), Json::num_u64(self.index)),
            ("seed".into(), Json::num_u64(self.seed)),
            ("mode".into(), Json::Str(self.mode.name().into())),
            ("scheme".into(), Json::Str(scheme_name(self.scheme).into())),
        ];
        if let Some(w) = self.seed_outage {
            fields.push(("seed_outage".into(), window(w)));
        }
        if let Some(w) = self.tracker_blackout {
            fields.push(("tracker_blackout".into(), window(w)));
        }
        let rules = self
            .script
            .rules
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("site".into(), Json::Str(r.site.name().into())),
                    ("kind".into(), Json::Str(r.kind.name().into())),
                    ("from_op".into(), Json::num_u64(r.from_op)),
                    ("count".into(), Json::num_u64(r.count)),
                ])
            })
            .collect();
        fields.push(("rules".into(), Json::Arr(rules)));
        if let Some(k) = self.kill_at {
            fields.push(("kill_at".into(), Json::num_u64(k)));
        }
        fields.push(("trace".into(), Json::Bool(self.trace)));
        Json::Obj(fields)
    }

    /// Decodes a plan from its JSON form.
    ///
    /// # Errors
    /// A human-readable description of the first malformed member.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let window = |v: &Json| -> Option<(f64, f64)> {
            let arr = v.as_arr()?;
            Some((arr.first()?.as_f64()?, arr.get(1)?.as_f64()?))
        };
        let mode = v
            .get("mode")
            .and_then(Json::as_str)
            .and_then(ChaosMode::from_name)
            .ok_or("plan: bad mode")?;
        let scheme = v
            .get("scheme")
            .and_then(Json::as_str)
            .and_then(scheme_from_name)
            .ok_or("plan: bad scheme")?;
        let mut rules = Vec::new();
        for r in v
            .get("rules")
            .and_then(Json::as_arr)
            .ok_or("plan: missing rules")?
        {
            let site = r
                .get("site")
                .and_then(Json::as_str)
                .and_then(FaultSite::from_name)
                .ok_or("plan: bad rule site")?;
            let kind = r
                .get("kind")
                .and_then(Json::as_str)
                .and_then(FaultKind::from_name)
                .ok_or("plan: bad rule kind")?;
            rules.push(FaultRule {
                site,
                kind,
                from_op: r
                    .get("from_op")
                    .and_then(Json::as_u64)
                    .ok_or("plan: bad rule from_op")?,
                count: r
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or("plan: bad rule count")?,
            });
        }
        Ok(ChaosPlan {
            index: v
                .get("index")
                .and_then(Json::as_u64)
                .ok_or("plan: missing index")?,
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("plan: missing seed")?,
            mode,
            scheme,
            seed_outage: v.get("seed_outage").and_then(window),
            tracker_blackout: v.get("tracker_blackout").and_then(window),
            script: FaultScript { rules },
            kill_at: v.get("kill_at").and_then(Json::as_u64),
            trace: v.get("trace").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

fn scheme_name(s: SchemeKind) -> &'static str {
    match s {
        SchemeKind::Mtcd => "mtcd",
        SchemeKind::Mtsd => "mtsd",
        // The generator never emits the others; map them anyway so a
        // hand-edited bundle fails at decode, not silently.
        SchemeKind::Mfcd => "mfcd",
        SchemeKind::Cmfsd { .. } => "cmfsd",
    }
}

fn scheme_from_name(s: &str) -> Option<SchemeKind> {
    match s {
        "mtcd" => Some(SchemeKind::Mtcd),
        "mtsd" => Some(SchemeKind::Mtsd),
        _ => None,
    }
}

/// Generates `n` plans from `master_seed`. Same seed → same plans,
/// bit for bit.
pub fn generate(master_seed: u64, n: u64) -> Vec<ChaosPlan> {
    let mut master = SplitMix64::new(master_seed);
    (0..n)
        .map(|index| {
            let mut rng = SplitMix64::new(master.split());
            generate_one(index, &mut rng)
        })
        .collect()
}

fn generate_one(index: u64, rng: &mut SplitMix64) -> ChaosPlan {
    let pick = |rng: &mut SplitMix64, n: u64| rng.next_u64() % n;
    let mode = if pick(rng, 4) == 0 {
        ChaosMode::Hybrid
    } else {
        ChaosMode::Des
    };
    let scheme = if pick(rng, 2) == 0 {
        SchemeKind::Mtcd
    } else {
        SchemeKind::Mtsd
    };
    let seed = rng.next_u64();

    // Scenario fault windows on a coarse decimal grid (exact JSON round
    // trip): start in [60, 200), length in [20, 60).
    let grid_window = |rng: &mut SplitMix64| {
        let start = 60.0 + 20.0 * pick(rng, 8) as f64;
        let len = 20.0 + 10.0 * pick(rng, 4) as f64;
        (start, start + len)
    };
    let (seed_outage, tracker_blackout) = if mode == ChaosMode::Des {
        (
            (pick(rng, 2) == 0).then(|| grid_window(rng)),
            (pick(rng, 3) == 0).then(|| grid_window(rng)),
        )
    } else {
        (None, None)
    };

    let trace = mode == ChaosMode::Des && pick(rng, 4) == 0;
    let mut rules = Vec::new();
    for _ in 0..pick(rng, 4) {
        // Trace sites only when a sink will be attached; otherwise the
        // rule would be inert and shrinking would have dead weight.
        let sites: &[FaultSite] = if trace {
            &[
                FaultSite::CheckpointWrite,
                FaultSite::CheckpointRename,
                FaultSite::TraceWrite,
                FaultSite::TraceFinish,
            ]
        } else {
            &[FaultSite::CheckpointWrite, FaultSite::CheckpointRename]
        };
        let site = sites[pick(rng, sites.len() as u64) as usize];
        let kinds: &[FaultKind] = match site {
            FaultSite::CheckpointWrite | FaultSite::TraceWrite => {
                &[FaultKind::Enospc, FaultKind::Eio, FaultKind::ShortWrite]
            }
            _ => &[FaultKind::RenameFail, FaultKind::Eio],
        };
        let kind = kinds[pick(rng, kinds.len() as u64) as usize];
        let count = if pick(rng, 8) == 0 {
            PERMANENT
        } else {
            1 + pick(rng, 3)
        };
        rules.push(FaultRule {
            site,
            kind,
            from_op: pick(rng, 4),
            count,
        });
    }

    let kill_at = match mode {
        ChaosMode::Des => (pick(rng, 10) < 7).then(|| 100 + 100 * pick(rng, 15)),
        ChaosMode::Hybrid => (pick(rng, 10) < 7).then(|| 1 + pick(rng, 4)),
    };

    ChaosPlan {
        index,
        seed,
        mode,
        scheme,
        seed_outage,
        tracker_blackout,
        script: FaultScript { rules },
        kill_at,
        trace,
    }
}

/// The expect-fail canary: a plan whose checkpoint writes are *silently*
/// corrupted (lying-disk `CorruptWrite`, outside the survivable fault
/// model the random generator draws from) with a kill/resume on top. The
/// resume must detect the corruption via the snapshot checksum — a typed
/// error, so the run cannot complete, which the invariant catalog reports
/// as a `run-completes` violation. CI asserts this canary is caught,
/// shrunk, and exits 4.
pub fn canary(master_seed: u64) -> ChaosPlan {
    let mut rng = SplitMix64::new(master_seed ^ 0xbad0_cafe);
    ChaosPlan {
        index: 0,
        seed: rng.next_u64(),
        mode: ChaosMode::Des,
        scheme: SchemeKind::Mtcd,
        seed_outage: Some((60.0, 90.0)),
        tracker_blackout: None,
        script: FaultScript {
            rules: vec![FaultRule {
                site: FaultSite::CheckpointWrite,
                kind: FaultKind::CorruptWrite,
                from_op: 0,
                count: PERMANENT,
            }],
        },
        kill_at: Some(400),
        trace: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_json_round_trips() {
        let a = generate(42, 32);
        let b = generate(42, 32);
        assert_eq!(a, b, "same seed must generate identical plans");
        let c = generate(43, 32);
        assert_ne!(a, c, "different seeds must diverge");
        for plan in &a {
            let text = plan.to_json().to_string();
            let back = ChaosPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(*plan, back, "JSON round trip must be exact");
            if plan.mode == ChaosMode::Des {
                plan.program().validate().unwrap();
            }
        }
    }

    #[test]
    fn canary_corrupts_checkpoints_and_kills() {
        let plan = canary(7);
        assert_eq!(plan, canary(7));
        assert!(plan.kill_at.is_some());
        assert!(plan
            .script
            .rules
            .iter()
            .any(|r| r.kind == FaultKind::CorruptWrite));
    }
}
