//! # btfluid-chaos
//!
//! The adversarial counterpart to the cooperative `selfcheck` oracle: a
//! seeded generator of random *chaos plans* — scenario fault windows ×
//! I/O fault schedules × kill/resume points — executed against an
//! invariant catalog, with greedy shrinking of any violation down to a
//! minimal failing plan and a replayable on-disk repro bundle.
//!
//! The pipeline is deterministic end to end: plans are derived from a
//! SplitMix64 stream, I/O faults fire at exact per-site operation indices
//! through [`btfluid_telemetry::faults`], and kill points are event or
//! boundary counts — so the same master seed always produces the same
//! plans *and* the same verdicts, and a shrunk plan replays to the same
//! typed failure on any machine.
//!
//! * [`plan`] — [`ChaosPlan`] generation and its JSON codec.
//! * [`exec`] — the executor and invariant catalog ([`Violation`]).
//! * [`shrink`] — greedy minimization of failing plans.
//! * [`bundle`] — `chaos.json` repro bundles for `btfluid repro`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod exec;
pub mod plan;
pub mod shrink;

pub use bundle::ChaosBundle;
pub use exec::{run_plan, Verdict, Violation};
pub use plan::{canary, generate, ChaosMode, ChaosPlan};
pub use shrink::shrink;
