//! Chaos repro bundles: a directory holding `chaos.json` — the shrunk
//! failing plan, the violations it produced, and the shrink accounting —
//! replayable with `btfluid repro <dir>` (which distinguishes chaos
//! bundles from supervisor cell bundles by the file name).

use crate::exec::Violation;
use crate::plan::ChaosPlan;
use btfluid_harness::json::Json;
use std::path::Path;

/// Bundle format version; bumped on incompatible `chaos.json` changes.
pub const CHAOS_BUNDLE_VERSION: u64 = 1;

/// A shrunk failing plan plus the evidence, ready to replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosBundle {
    /// The master seed the failing plan was generated from.
    pub master_seed: u64,
    /// The (shrunk) failing plan.
    pub plan: ChaosPlan,
    /// Violations observed when the plan ran.
    pub violations: Vec<Violation>,
    /// Plan evaluations the shrinker spent.
    pub shrink_evals: u32,
    /// Flight-recorder dump (`flightrec v1` JSONL) from the violating
    /// run, written as a sibling `flightrec.jsonl` when present.
    pub flight: Option<String>,
}

impl ChaosBundle {
    /// Writes `chaos.json` into `dir` (created if needed) with the atomic
    /// temp-file-and-rename discipline.
    ///
    /// # Errors
    /// Underlying filesystem errors.
    pub fn write(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let doc = Json::Obj(vec![
            ("version".into(), Json::num_u64(CHAOS_BUNDLE_VERSION)),
            ("master_seed".into(), Json::num_u64(self.master_seed)),
            ("plan".into(), self.plan.to_json()),
            (
                "violations".into(),
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| {
                            Json::Obj(vec![
                                ("invariant".into(), Json::Str(v.invariant.clone())),
                                ("detail".into(), Json::Str(v.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "shrink_evals".into(),
                Json::num_u64(u64::from(self.shrink_evals)),
            ),
        ]);
        btfluid_harness::atomic_write(&dir.join("chaos.json"), format!("{doc}\n").as_bytes())?;
        let flight_path = dir.join("flightrec.jsonl");
        match &self.flight {
            Some(dump) => btfluid_harness::atomic_write(&flight_path, dump.as_bytes())?,
            None => {
                // Delete a stale dump from an earlier bundle of the same
                // cell, so the directory never mixes generations.
                if let Err(e) = std::fs::remove_file(&flight_path) {
                    if e.kind() != std::io::ErrorKind::NotFound {
                        return Err(e);
                    }
                }
            }
        }
        Ok(())
    }

    /// Reads a bundle directory back.
    ///
    /// # Errors
    /// A human-readable description of the I/O or decode failure.
    pub fn read(dir: &Path) -> Result<Self, String> {
        let path = dir.join("chaos.json");
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("chaos.json: {e}"))?;
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("chaos.json: missing version")?;
        if version != CHAOS_BUNDLE_VERSION {
            return Err(format!(
                "chaos.json: version {version} unsupported (want {CHAOS_BUNDLE_VERSION})"
            ));
        }
        let mut violations = Vec::new();
        for v in doc
            .get("violations")
            .and_then(Json::as_arr)
            .ok_or("chaos.json: missing violations")?
        {
            violations.push(Violation {
                invariant: v
                    .get("invariant")
                    .and_then(Json::as_str)
                    .ok_or("chaos.json: bad violation")?
                    .to_string(),
                detail: v
                    .get("detail")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            });
        }
        Ok(ChaosBundle {
            master_seed: doc
                .get("master_seed")
                .and_then(Json::as_u64)
                .ok_or("chaos.json: missing master_seed")?,
            plan: ChaosPlan::from_json(doc.get("plan").ok_or("chaos.json: missing plan")?)?,
            violations,
            shrink_evals: doc
                .get("shrink_evals")
                .and_then(Json::as_u64)
                .and_then(|x| u32::try_from(x).ok())
                .unwrap_or(0),
            flight: match std::fs::read_to_string(dir.join("flightrec.jsonl")) {
                Ok(dump) => Some(dump),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
                Err(e) => return Err(format!("flightrec.jsonl: {e}")),
            },
        })
    }

    /// Whether `dir` holds a chaos bundle (vs a supervisor cell bundle).
    pub fn is_chaos_dir(dir: &Path) -> bool {
        dir.join("chaos.json").is_file()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("btfs-chaos-bundle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn bundle_round_trips() {
        let bundle = ChaosBundle {
            master_seed: 99,
            plan: plan::canary(99),
            violations: vec![Violation {
                invariant: "run-completes".into(),
                detail: "resume leg: Engine(Snapshot(..))".into(),
            }],
            shrink_evals: 17,
            flight: Some(
                "{\"schema\":\"flightrec\",\"version\":1,\"capacity\":4,\"total\":1,\"dropped\":0}\n\
                 {\"k\":\"pop\",\"t\":1.5,\"ev\":1,\"a\":1,\"b\":0}\n"
                    .into(),
            ),
        };
        let dir = tmp("roundtrip");
        bundle.write(&dir).unwrap();
        assert!(ChaosBundle::is_chaos_dir(&dir));
        let back = ChaosBundle::read(&dir).unwrap();
        assert_eq!(bundle, back);
        // A rewrite without a dump clears the stale member.
        let bare = ChaosBundle {
            flight: None,
            ..bundle
        };
        bare.write(&dir).unwrap();
        assert!(!dir.join("flightrec.jsonl").exists());
        assert_eq!(ChaosBundle::read(&dir).unwrap().flight, None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_and_corrupt_bundles_are_typed() {
        let dir = tmp("nope");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(!ChaosBundle::is_chaos_dir(&dir));
        assert!(ChaosBundle::read(&dir).is_err());
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("chaos.json"), "{not json").unwrap();
        assert!(ChaosBundle::read(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
