//! Greedy plan shrinking: reduce a failing plan to a minimal one that
//! still fails, so the repro bundle a human opens carries one fault, not
//! a haystack.
//!
//! The candidate moves, tried round-robin until a fixpoint or the
//! evaluation budget runs out (each evaluation is a full plan re-run, so
//! the budget is the knob that bounds shrink cost):
//!
//! 1. drop an injection rule entirely;
//! 2. halve a rule's fault window (`count`), permanent faults first
//!    dropping to a single large-but-finite window;
//! 3. drop the scenario fault windows;
//! 4. drop the trace sink;
//! 5. drop the kill point.
//!
//! Moves are ordered most-aggressive-first, and a successful move
//! restarts the scan — the classic greedy delta-debugging loop.

use crate::plan::ChaosPlan;

/// Shrinks `plan` under `still_fails` (a full re-execution oracle),
/// spending at most `max_evals` evaluations. Returns the smallest failing
/// plan found and the evaluations spent.
///
/// `plan` itself is assumed failing and is not re-evaluated.
pub fn shrink<F>(plan: &ChaosPlan, mut still_fails: F, max_evals: u32) -> (ChaosPlan, u32)
where
    F: FnMut(&ChaosPlan) -> bool,
{
    let mut best = plan.clone();
    let mut evals = 0u32;
    'outer: loop {
        for candidate in candidates(&best) {
            if evals >= max_evals {
                break 'outer;
            }
            evals += 1;
            if still_fails(&candidate) {
                best = candidate;
                continue 'outer; // restart the scan from the smaller plan
            }
        }
        break; // full scan with no improvement: fixpoint
    }
    (best, evals)
}

fn candidates(plan: &ChaosPlan) -> Vec<ChaosPlan> {
    let mut out = Vec::new();
    for i in 0..plan.script.rules.len() {
        let mut cand = plan.clone();
        cand.script.rules.remove(i);
        out.push(cand);
    }
    for i in 0..plan.script.rules.len() {
        let count = plan.script.rules[i].count;
        let halved = if count == u64::MAX {
            1 << 20
        } else {
            count / 2
        };
        if halved >= 1 && halved < count {
            let mut cand = plan.clone();
            cand.script.rules[i].count = halved;
            out.push(cand);
        }
    }
    if plan.seed_outage.is_some() {
        let mut cand = plan.clone();
        cand.seed_outage = None;
        out.push(cand);
    }
    if plan.tracker_blackout.is_some() {
        let mut cand = plan.clone();
        cand.tracker_blackout = None;
        out.push(cand);
    }
    if plan.trace {
        let mut cand = plan.clone();
        cand.trace = false;
        out.push(cand);
    }
    if plan.kill_at.is_some() {
        let mut cand = plan.clone();
        cand.kill_at = None;
        out.push(cand);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{canary, PERMANENT};
    use btfluid_telemetry::{FaultKind, FaultRule, FaultSite};

    // A synthetic oracle: the plan "fails" iff it still injects
    // CorruptWrite on the checkpoint-write site AND keeps its kill point —
    // the canary's actual failure mechanism, evaluated without running.
    fn fails(plan: &ChaosPlan) -> bool {
        plan.kill_at.is_some()
            && plan
                .script
                .rules
                .iter()
                .any(|r| r.site == FaultSite::CheckpointWrite && r.kind == FaultKind::CorruptWrite)
    }

    #[test]
    fn shrinks_to_the_single_load_bearing_rule() {
        let mut plan = canary(3);
        // Bolt on dead weight the shrinker must strip.
        plan.script.rules.push(FaultRule {
            site: FaultSite::TraceWrite,
            kind: FaultKind::Eio,
            from_op: 0,
            count: PERMANENT,
        });
        plan.script.rules.push(FaultRule {
            site: FaultSite::CheckpointRename,
            kind: FaultKind::RenameFail,
            from_op: 2,
            count: 3,
        });
        plan.trace = true;
        assert!(fails(&plan));

        let (small, evals) = shrink(&plan, fails, 200);
        assert!(fails(&small), "shrunk plan must still fail");
        assert!(evals > 0 && evals <= 200);
        assert_eq!(small.script.rules.len(), 1, "dead rules stripped");
        assert_eq!(small.script.rules[0].kind, FaultKind::CorruptWrite);
        assert!(!small.trace, "trace stripped");
        assert!(small.seed_outage.is_none(), "scenario fault stripped");
        assert!(small.kill_at.is_some(), "load-bearing kill point kept");
        assert!(
            small.script.rules[0].count < PERMANENT,
            "permanent window reduced to a finite one"
        );
    }

    #[test]
    fn budget_zero_returns_the_original() {
        let plan = canary(4);
        let (same, evals) = shrink(&plan, |_| true, 0);
        assert_eq!(same, plan);
        assert_eq!(evals, 0);
    }

    #[test]
    fn shrink_is_deterministic() {
        let plan = {
            let mut p = canary(5);
            p.script.rules.push(FaultRule {
                site: FaultSite::ManifestAppend,
                kind: FaultKind::ShortWrite,
                from_op: 1,
                count: 2,
            });
            p
        };
        let a = shrink(&plan, fails, 100);
        let b = shrink(&plan, fails, 100);
        assert_eq!(a, b);
    }
}
