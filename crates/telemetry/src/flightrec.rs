//! The flight recorder: a fixed-capacity, allocation-free ring buffer of
//! recent engine happenings, dumped as a versioned JSONL artifact when a
//! run fails.
//!
//! The recorder sits behind the same [`Probe`] seam as the sampler, so it
//! inherits the crate's zero-perturbation contract: records are built
//! from values the engine already computed (clock, event count, counter
//! deltas) and the recorder has nowhere to write back. When no probe
//! wants flight records the engine pays one cached boolean test per
//! event; when one does, each record is a fixed-size `Copy` struct
//! written into a preallocated ring — no allocation on the hot path
//! either way.
//!
//! On failure (supervisor quarantine, chaos invariant violation, typed
//! engine error) the ring is serialized oldest-first as a `flightrec v1`
//! JSONL dump: one meta line carrying schema/version/capacity/totals
//! (and, when known, the failure time), then one compact line per
//! surviving record. The dump answers "what were the last N things the
//! engine did" without anyone having had to enable tracing in advance.

use crate::counters::Counters;
use crate::jsonw;
use crate::probe::Probe;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Schema tag on the dump's meta line.
pub const FLIGHTREC_SCHEMA: &str = "flightrec";
/// Current dump format version.
pub const FLIGHTREC_VERSION: u32 = 1;
/// Ring capacity used when the caller does not choose one.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// What kind of engine happening a [`FlightRecord`] describes.
///
/// The payload fields `a`/`b` of the record are kind-specific; the table
/// below is the schema contract (also documented in DESIGN.md §17).
///
/// | kind         | `a`                               | `b`                         |
/// |--------------|-----------------------------------|-----------------------------|
/// | `pop`        | event-kind code (engine dispatch) | 0                           |
/// | `rate`       | Δ per-peer rate recomputes        | Δ aggregate group updates   |
/// | `resample`   | Δ aggregate member draws          | 0                           |
/// | `handoff`    | 0 = DES→fluid, 1 = fluid→DES      | population at the membrane  |
/// | `checkpoint` | snapshot bytes                    | 0                           |
/// | `fault`      | fault-site code                   | matched-kind code + 1, or 0 |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// One event popped from the calendar and dispatched.
    EventPop,
    /// Rate-cache maintenance ran (per-peer or aggregate-group).
    RateRecompute,
    /// Aggregate mode drew concrete members for a class-level completion.
    AggResample,
    /// The hybrid driver crossed the fluid/DES membrane.
    Handoff,
    /// A checkpoint cycle committed a snapshot to disk.
    Checkpoint,
    /// The fault injector was consulted while armed.
    FaultConsult,
}

impl FlightKind {
    /// Stable wire name used in the JSONL dump.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::EventPop => "pop",
            FlightKind::RateRecompute => "rate",
            FlightKind::AggResample => "resample",
            FlightKind::Handoff => "handoff",
            FlightKind::Checkpoint => "checkpoint",
            FlightKind::FaultConsult => "fault",
        }
    }

    /// Inverse of [`FlightKind::name`]; `None` for unknown wire names
    /// (readers skip those, the additive-schema discipline).
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "pop" => FlightKind::EventPop,
            "rate" => FlightKind::RateRecompute,
            "resample" => FlightKind::AggResample,
            "handoff" => FlightKind::Handoff,
            "checkpoint" => FlightKind::Checkpoint,
            "fault" => FlightKind::FaultConsult,
            _ => return None,
        })
    }
}

/// One fixed-size flight-recorder entry.
///
/// `t` is the simulated clock at the record point (`-1.0` when no clock
/// is in scope, e.g. fault-injector consults from the I/O layer), and
/// `events` the engine's monotone event count. `a`/`b` are kind-specific
/// payloads — see [`FlightKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightRecord {
    /// Simulated time (`-1.0` = not applicable).
    pub t: f64,
    /// Engine event count at the record point (resume-stable).
    pub events: u64,
    /// What happened.
    pub kind: FlightKind,
    /// First kind-specific payload.
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
}

impl FlightRecord {
    /// Encodes the record as one compact JSONL line (no trailing
    /// newline). Floats use shortest-roundtrip formatting, so encoding is
    /// deterministic given bit-identical inputs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"k\":\"");
        out.push_str(self.kind.name());
        out.push_str("\",\"t\":");
        jsonw::push_f64(&mut out, self.t);
        let _ = write!(
            out,
            ",\"ev\":{},\"a\":{},\"b\":{}}}",
            self.events, self.a, self.b
        );
        out
    }
}

/// The ring buffer: holds exactly the last `capacity` records.
///
/// Construction preallocates the full ring; `record` never allocates.
#[derive(Debug)]
pub struct FlightRecorder {
    buf: Vec<FlightRecord>,
    capacity: usize,
    /// Next write position once the ring is full.
    head: usize,
    /// Records ever offered (`total - capacity` of them overwritten).
    total: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding the last `capacity` records
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            total: 0,
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records ever offered (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records currently held (`min(total, capacity)`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a record, overwriting the oldest once full.
    pub fn record(&mut self, rec: FlightRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total += 1;
    }

    /// The held records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FlightRecord> {
        let (wrapped, tail) = self.buf.split_at(self.head);
        tail.iter().chain(wrapped.iter())
    }

    /// Serializes the ring as a `flightrec v1` JSONL dump: a meta line,
    /// then one line per held record, oldest first. `failure_t` stamps
    /// the failure's simulated time into the meta line when the caller
    /// knows it, so readers can flag a dump whose newest record predates
    /// the failure it claims to explain.
    pub fn dump_string(&self, failure_t: Option<f64>) -> String {
        let mut out = String::with_capacity(64 + self.buf.len() * 64);
        let _ = write!(
            out,
            "{{\"schema\":\"{}\",\"version\":{},\"capacity\":{},\"total\":{},\"dropped\":{}",
            FLIGHTREC_SCHEMA,
            FLIGHTREC_VERSION,
            self.capacity,
            self.total,
            self.total.saturating_sub(self.buf.len() as u64),
        );
        if let Some(t) = failure_t {
            out.push_str(",\"failure_t\":");
            jsonw::push_f64(&mut out, t);
        }
        out.push_str("}\n");
        for rec in self.iter() {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

/// A recorder shared between a probe and the failure path that dumps it.
pub type SharedRecorder = Arc<Mutex<FlightRecorder>>;

/// Creates a [`SharedRecorder`] with the given ring capacity.
pub fn shared_recorder(capacity: usize) -> SharedRecorder {
    Arc::new(Mutex::new(FlightRecorder::new(capacity)))
}

/// A probe that feeds every flight record into a [`SharedRecorder`] and
/// observes nothing else. Sampling stays disabled (`sample_every` = 0),
/// so attaching it never makes the engine build a [`Sample`].
///
/// [`Sample`]: crate::probe::Sample
#[derive(Debug)]
pub struct RecorderProbe(SharedRecorder);

impl RecorderProbe {
    /// Wraps a shared recorder as a probe.
    pub fn new(recorder: SharedRecorder) -> Self {
        Self(recorder)
    }
}

impl Probe for RecorderProbe {
    fn wants_flight(&self) -> bool {
        true
    }

    fn on_flight(&mut self, rec: &FlightRecord) {
        self.0.lock().unwrap().record(*rec);
    }
}

/// A probe that fans every callback out to several child probes, for
/// call sites that need e.g. both a counter capture and a flight
/// recorder on the engine's single probe slot. The cadence is the
/// fastest child's (a child with a slower cadence simply sees extra
/// samples — observation only, so nothing perturbs).
pub struct FanoutProbe(Vec<Box<dyn Probe>>);

impl FanoutProbe {
    /// Combines `probes` into one.
    pub fn new(probes: Vec<Box<dyn Probe>>) -> Self {
        Self(probes)
    }
}

impl Probe for FanoutProbe {
    fn sample_every(&self) -> f64 {
        self.0
            .iter()
            .map(|p| p.sample_every())
            .filter(|&c| c > 0.0)
            .fold(0.0, |acc, c| if acc == 0.0 { c } else { acc.min(c) })
    }

    fn wants_flight(&self) -> bool {
        self.0.iter().any(|p| p.wants_flight())
    }

    fn on_sample(&mut self, sample: &crate::probe::Sample<'_>) {
        for p in &mut self.0 {
            p.on_sample(sample);
        }
    }

    fn on_span(&mut self, name: &str, micros: u64) {
        for p in &mut self.0 {
            p.on_span(name, micros);
        }
    }

    fn on_flight(&mut self, rec: &FlightRecord) {
        for p in &mut self.0 {
            p.on_flight(rec);
        }
    }

    fn on_finish(&mut self, t: f64, counters: &Counters) {
        for p in &mut self.0 {
            p.on_finish(t, counters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> FlightRecord {
        FlightRecord {
            t: i as f64 * 0.5,
            events: i,
            kind: FlightKind::EventPop,
            a: i % 7,
            b: 0,
        }
    }

    #[test]
    fn ring_keeps_last_capacity_records() {
        let mut r = FlightRecorder::new(4);
        for i in 0..10 {
            r.record(rec(i));
        }
        assert_eq!(r.total(), 10);
        assert_eq!(r.len(), 4);
        let held: Vec<u64> = r.iter().map(|x| x.events).collect();
        assert_eq!(held, vec![6, 7, 8, 9]);
    }

    #[test]
    fn partial_ring_is_in_order() {
        let mut r = FlightRecorder::new(8);
        for i in 0..3 {
            r.record(rec(i));
        }
        let held: Vec<u64> = r.iter().map(|x| x.events).collect();
        assert_eq!(held, vec![0, 1, 2]);
    }

    #[test]
    fn dump_has_meta_then_records() {
        let mut r = FlightRecorder::new(2);
        r.record(rec(1));
        r.record(rec(2));
        r.record(rec(3));
        let dump = r.dump_string(Some(7.25));
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"schema\":\"flightrec\""));
        assert!(lines[0].contains("\"version\":1"));
        assert!(lines[0].contains("\"total\":3"));
        assert!(lines[0].contains("\"dropped\":1"));
        assert!(lines[0].contains("\"failure_t\":7.25"));
        assert!(lines[1].contains("\"ev\":2"));
        assert!(lines[2].contains("\"ev\":3"));
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            FlightKind::EventPop,
            FlightKind::RateRecompute,
            FlightKind::AggResample,
            FlightKind::Handoff,
            FlightKind::Checkpoint,
            FlightKind::FaultConsult,
        ] {
            assert_eq!(FlightKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(FlightKind::parse("warp"), None);
    }

    #[test]
    fn recorder_probe_feeds_shared_ring() {
        let shared = shared_recorder(3);
        let mut probe = RecorderProbe::new(Arc::clone(&shared));
        assert!(probe.wants_flight());
        assert_eq!(probe.sample_every(), 0.0);
        for i in 0..5 {
            probe.on_flight(&rec(i));
        }
        let ring = shared.lock().unwrap();
        assert_eq!(ring.total(), 5);
        let held: Vec<u64> = ring.iter().map(|x| x.events).collect();
        assert_eq!(held, vec![2, 3, 4]);
    }

    #[test]
    fn fanout_forwards_to_all_children() {
        let a = shared_recorder(4);
        let b = shared_recorder(4);
        let mut fan = FanoutProbe::new(vec![
            Box::new(RecorderProbe::new(Arc::clone(&a))),
            Box::new(RecorderProbe::new(Arc::clone(&b))),
        ]);
        assert!(fan.wants_flight());
        fan.on_flight(&rec(9));
        assert_eq!(a.lock().unwrap().len(), 1);
        assert_eq!(b.lock().unwrap().len(), 1);
    }

    #[test]
    fn fanout_cadence_is_fastest_child() {
        struct C(f64);
        impl Probe for C {
            fn sample_every(&self) -> f64 {
                self.0
            }
        }
        let fan = FanoutProbe::new(vec![Box::new(C(0.0)), Box::new(C(10.0)), Box::new(C(2.5))]);
        assert_eq!(fan.sample_every(), 2.5);
        let silent = FanoutProbe::new(vec![Box::new(C(0.0))]);
        assert_eq!(silent.sample_every(), 0.0);
    }
}
