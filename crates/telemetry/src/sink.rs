//! The versioned JSONL trace sink.
//!
//! One trace file is a sequence of newline-delimited JSON objects:
//!
//! 1. a `meta` record stamped with the schema name and version (plus
//!    caller-supplied run parameters),
//! 2. any number of `sample` and `span` records,
//! 3. a final `end` record with the closing clock and counters.
//!
//! Writes follow the snapshot layer's atomic discipline: everything goes
//! to `<path>.tmp` and is renamed over the final path by
//! [`TraceSink::finish`], so a crash leaves either no trace or a
//! complete one — a lingering `.tmp` always means "this run did not
//! finish".

use crate::counters::Counters;
use crate::jsonw;
use crate::probe::{Probe, Sample};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Schema identifier stamped on every trace's meta record.
pub const TRACE_SCHEMA: &str = "btfluid-trace";
/// Current trace schema version.
pub const TRACE_VERSION: u32 = 1;

/// A typed value for one meta-record field.
#[derive(Debug, Clone)]
pub enum MetaField {
    /// A string field.
    Str(String),
    /// A float field (non-finite encodes as `null`).
    F64(f64),
    /// An unsigned integer field (seeds survive exactly).
    U64(u64),
    /// A boolean field.
    Bool(bool),
}

/// An append-only JSONL trace writer (see module docs for the record
/// grammar and atomicity guarantees).
#[derive(Debug)]
pub struct TraceSink {
    final_path: PathBuf,
    tmp_path: PathBuf,
    out: Option<BufWriter<File>>,
    error: Option<String>,
    lines: u64,
}

impl TraceSink {
    /// Opens `<path>.tmp` for writing; the final path appears only on
    /// [`TraceSink::finish`].
    ///
    /// # Errors
    /// Propagates the file creation failure.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        let tmp_path = PathBuf::from(os);
        let file = File::create(&tmp_path)?;
        Ok(Self {
            final_path: path.to_path_buf(),
            tmp_path,
            out: Some(BufWriter::new(file)),
            error: None,
            lines: 0,
        })
    }

    /// Wraps the sink for sharing between a probe and the caller.
    pub fn shared(self) -> SharedSink {
        Arc::new(Mutex::new(self))
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        let Some(out) = self.out.as_mut() else {
            self.error = Some("write after finish".into());
            return;
        };
        // The chaos injection seam: a scripted fault here behaves exactly
        // like the OS failing the buffered write — the error is deferred
        // and surfaces (typed) at finish(), the sink's normal discipline.
        let wrote =
            match crate::faults::write_plan(crate::faults::FaultSite::TraceWrite, line.len()) {
                crate::faults::WritePlan::Full | crate::faults::WritePlan::Corrupt => out
                    .write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n")),
                crate::faults::WritePlan::Short(n, e) => {
                    let _ = out.write_all(&line.as_bytes()[..n]);
                    Err(e)
                }
                crate::faults::WritePlan::Fail(e) => Err(e),
            };
        match wrote {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e.to_string()),
        }
    }

    /// Writes the schema-stamped meta record; call once, first.
    pub fn meta(&mut self, fields: &[(&str, MetaField)]) {
        let mut s = format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"version\":{TRACE_VERSION},\"kind\":\"meta\""
        );
        for (key, value) in fields {
            s.push(',');
            jsonw::push_str_lit(&mut s, key);
            s.push(':');
            match value {
                MetaField::Str(x) => jsonw::push_str_lit(&mut s, x),
                MetaField::F64(x) => jsonw::push_f64(&mut s, *x),
                MetaField::U64(x) => {
                    let _ = write!(s, "{x}");
                }
                MetaField::Bool(x) => {
                    let _ = write!(s, "{x}");
                }
            }
        }
        s.push('}');
        self.write_line(&s);
    }

    /// Writes one sample record.
    pub fn sample(&mut self, sample: &Sample<'_>) {
        let mut s = String::with_capacity(256);
        s.push_str("{\"kind\":\"sample\",\"t\":");
        jsonw::push_f64(&mut s, sample.t);
        let _ = write!(s, ",\"events\":{}", sample.events);
        s.push_str(",\"downloaders\":");
        jsonw::push_usize_arr(&mut s, sample.downloaders);
        s.push_str(",\"download_pairs\":");
        jsonw::push_usize_arr(&mut s, sample.download_pairs);
        s.push_str(",\"seed_pairs\":");
        jsonw::push_usize_arr(&mut s, sample.seed_pairs);
        s.push_str(",\"weight\":");
        jsonw::push_f64_arr(&mut s, sample.weight);
        s.push_str(",\"pool_real\":");
        jsonw::push_f64_arr(&mut s, sample.pool_real);
        s.push_str(",\"pool_virtual\":");
        jsonw::push_f64_arr(&mut s, sample.pool_virtual);
        s.push_str(",\"rho_mean\":");
        jsonw::push_f64(&mut s, sample.rho_mean);
        s.push_str(",\"delta_mean\":");
        jsonw::push_f64(&mut s, sample.delta_mean);
        let _ = write!(s, ",\"counters\":{}}}", sample.counters.to_json());
        self.write_line(&s);
    }

    /// Writes one span-timing record.
    pub fn span(&mut self, name: &str, micros: u64) {
        let mut s = String::with_capacity(64);
        s.push_str("{\"kind\":\"span\",\"name\":");
        jsonw::push_str_lit(&mut s, name);
        let _ = write!(s, ",\"micros\":{micros}}}");
        self.write_line(&s);
    }

    /// Writes a span-timing record anchored to a simulated-time instant
    /// (an additive `"t"` field on the span record; schema version
    /// unchanged — readers without the field ignore it).
    ///
    /// Hybrid fluid↔DES handoffs use this: *when* in model time a switch
    /// happened matters to later thrash analysis, not just how long the
    /// handoff took in wall time.
    pub fn span_at(&mut self, name: &str, micros: u64, t: f64) {
        let mut s = String::with_capacity(80);
        s.push_str("{\"kind\":\"span\",\"name\":");
        jsonw::push_str_lit(&mut s, name);
        let _ = write!(s, ",\"micros\":{micros},\"t\":");
        jsonw::push_f64(&mut s, t);
        s.push('}');
        self.write_line(&s);
    }

    /// Writes one self-profiler record (an additive `"profile"` record
    /// kind; schema version unchanged — readers without it skip unknown
    /// kinds, the same discipline as [`TraceSink::span_at`]'s `"t"`).
    pub fn profile(&mut self, table: &crate::profiler::ProfileTable) {
        let mut s = String::with_capacity(64 + table.phases.len() * 96);
        let _ = write!(
            s,
            "{{\"kind\":\"profile\",\"events\":{},\"pair_overhead_ns\":{},\"phases\":[",
            table.events, table.pair_overhead_ns
        );
        for (i, (name, stat)) in table.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{name}\",\"calls\":{},\"self_ns\":{},\"total_ns\":{}}}",
                stat.calls, stat.self_ns, stat.total_ns
            );
        }
        s.push_str("]}");
        self.write_line(&s);
    }

    /// Writes the final end record.
    pub fn end(&mut self, t: f64, counters: &Counters) {
        let mut s = String::with_capacity(128);
        s.push_str("{\"kind\":\"end\",\"t\":");
        jsonw::push_f64(&mut s, t);
        let _ = write!(s, ",\"counters\":{}}}", counters.to_json());
        self.write_line(&s);
    }

    /// Flushes, fsyncs, and renames the temp file over the final path.
    ///
    /// # Errors
    /// Surfaces the first deferred write error, or the flush/rename
    /// failure. On error the temp file is removed best-effort.
    pub fn finish(&mut self) -> io::Result<PathBuf> {
        let fail = |tmp: &Path, e: io::Error| {
            let _ = std::fs::remove_file(tmp);
            Err(e)
        };
        if let Some(msg) = self.error.take() {
            self.out = None;
            return fail(&self.tmp_path, io::Error::other(msg));
        }
        let Some(mut out) = self.out.take() else {
            return Ok(self.final_path.clone());
        };
        if let Err(e) = out.flush() {
            return fail(&self.tmp_path, e);
        }
        let file = match out.into_inner() {
            Ok(f) => f,
            Err(e) => return fail(&self.tmp_path, e.into_error()),
        };
        if let Err(e) = file.sync_all() {
            return fail(&self.tmp_path, e);
        }
        drop(file);
        if let Some(kind) = crate::faults::intercept(crate::faults::FaultSite::TraceFinish) {
            return fail(&self.tmp_path, kind.to_io_error());
        }
        if let Err(e) = std::fs::rename(&self.tmp_path, &self.final_path) {
            return fail(&self.tmp_path, e);
        }
        Ok(self.final_path.clone())
    }
}

/// A trace sink shared between a [`SinkProbe`] and the caller that will
/// [`TraceSink::finish`] it after the run.
pub type SharedSink = Arc<Mutex<TraceSink>>;

/// The probe that streams every observation into a shared [`TraceSink`].
#[derive(Debug)]
pub struct SinkProbe {
    sink: SharedSink,
    cadence: f64,
}

impl SinkProbe {
    /// Creates a probe sampling every `cadence` time units into `sink`.
    pub fn new(sink: SharedSink, cadence: f64) -> Self {
        Self { sink, cadence }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceSink> {
        self.sink.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Probe for SinkProbe {
    fn sample_every(&self) -> f64 {
        self.cadence
    }

    fn on_sample(&mut self, sample: &Sample<'_>) {
        self.lock().sample(sample);
    }

    fn on_span(&mut self, name: &str, micros: u64) {
        self.lock().span(name, micros);
    }

    fn on_finish(&mut self, t: f64, counters: &Counters) {
        self.lock().end(t, counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("btfs-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_bufs() -> ([usize; 2], [f64; 2]) {
        ([3, 1], [1.5, 0.0])
    }

    fn sample<'a>(bufs: &'a ([usize; 2], [f64; 2])) -> Sample<'a> {
        Sample {
            t: 10.0,
            events: 99,
            downloaders: &bufs.0,
            download_pairs: &bufs.0,
            seed_pairs: &bufs.0,
            weight: &bufs.1,
            pool_real: &bufs.1,
            pool_virtual: &bufs.1,
            rho_mean: 0.75,
            delta_mean: f64::NAN,
            counters: Counters::default(),
        }
    }

    #[test]
    fn full_trace_is_atomic_and_well_formed() {
        let path = tmp("full.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut sink = TraceSink::create(&path).unwrap();
        sink.meta(&[
            ("scheme", MetaField::Str("MTCD".into())),
            ("seed", MetaField::U64(u64::MAX)),
            ("sample_every", MetaField::F64(5.0)),
            ("exact_rates", MetaField::Bool(false)),
        ]);
        let bufs = sample_bufs();
        sink.sample(&sample(&bufs));
        sink.span("engine", 1234);
        sink.end(80.0, &Counters::default());
        assert!(!path.exists(), "final path must not exist before finish");
        assert_eq!(sink.lines(), 4);
        sink.finish().unwrap();
        assert!(path.exists());

        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"schema\":\"btfluid-trace\""));
        assert!(lines[0].contains("\"version\":1"));
        assert!(lines[0].contains(&format!("\"seed\":{}", u64::MAX)));
        assert!(lines[1].contains("\"kind\":\"sample\""));
        assert!(lines[1].contains("\"downloaders\":[3,1]"));
        assert!(lines[1].contains("\"delta_mean\":null"));
        assert!(lines[2].contains("\"kind\":\"span\""));
        assert!(lines[3].contains("\"kind\":\"end\""));
    }

    #[test]
    fn sink_probe_streams_through_shared_sink() {
        let path = tmp("probe.jsonl");
        let _ = std::fs::remove_file(&path);
        let shared = TraceSink::create(&path).unwrap().shared();
        let mut probe = SinkProbe::new(shared.clone(), 2.5);
        assert_eq!(probe.sample_every(), 2.5);
        let bufs = sample_bufs();
        probe.on_sample(&sample(&bufs));
        probe.on_finish(80.0, &Counters::default());
        shared
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .finish()
            .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        assert!(body.contains("\"kind\":\"end\""));
    }

    #[test]
    fn unfinished_trace_leaves_only_tmp() {
        let path = tmp("crash.jsonl");
        let _ = std::fs::remove_file(&path);
        let tmp_path = {
            let mut sink = TraceSink::create(&path).unwrap();
            sink.span("engine", 1);
            sink.tmp_path.clone()
            // dropped without finish(), mimicking a crash
        };
        assert!(!path.exists());
        assert!(tmp_path.exists(), "the torn .tmp is the crash marker");
        let _ = std::fs::remove_file(&tmp_path);
    }
}
