//! Minimal JSON *writing* helpers for the trace sink.
//!
//! The harness crate has a full JSON value/parser, but it sits *above*
//! this crate in the dependency graph, so the sink carries its own
//! string-level encoder. Numbers use Rust's shortest-roundtrip `{}`
//! formatting (an `f64` parses back to identical bits); non-finite
//! floats, which JSON cannot carry, encode as `null`.

use std::fmt::Write;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide tally of non-finite floats that were downgraded to JSON
/// `null` by any writer in the workspace (this module and the harness's
/// value-level encoder both report here). A non-zero delta across a run
/// means some result carried NaN/∞ — the self-check oracle and `inspect`
/// treat that as a data-quality signal rather than silently losing it.
static NON_FINITE_NULLS: AtomicU64 = AtomicU64::new(0);

/// Current value of the non-finite-to-`null` counter.
pub fn non_finite_null_count() -> u64 {
    NON_FINITE_NULLS.load(Ordering::Relaxed)
}

/// Records one non-finite float downgraded to `null`. Public so JSON
/// encoders in crates above this one (harness) can report into the same
/// tally.
pub fn note_non_finite_null() {
    NON_FINITE_NULLS.fetch_add(1, Ordering::Relaxed);
}

/// Appends a JSON string literal (quoted, escaped) to `out`.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` (shortest-roundtrip; non-finite becomes `null` and
/// bumps the process-wide [`non_finite_null_count`]).
pub fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        note_non_finite_null();
        out.push_str("null");
    }
}

/// Appends a JSON array of `f64`s.
pub fn push_f64_arr(out: &mut String, xs: &[f64]) {
    out.push('[');
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, x);
    }
    out.push(']');
}

/// Appends a JSON array of `usize`s.
pub fn push_usize_arr(out: &mut String, xs: &[usize]) {
    out.push('[');
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote() {
        let mut s = String::new();
        push_str_lit(&mut s, "a\"b\\c\nü\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nü\\u0001\"");
    }

    #[test]
    fn floats_roundtrip_or_null() {
        let mut s = String::new();
        push_f64(&mut s, 0.1 + 0.2);
        assert_eq!(
            s.parse::<f64>().unwrap().to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
        let mut n = String::new();
        push_f64(&mut n, f64::NAN);
        assert_eq!(n, "null");
    }

    #[test]
    fn arrays() {
        let mut s = String::new();
        push_f64_arr(&mut s, &[1.0, 2.5]);
        assert_eq!(s, "[1,2.5]");
        let mut u = String::new();
        push_usize_arr(&mut u, &[3, 0, 7]);
        assert_eq!(u, "[3,0,7]");
        let mut e = String::new();
        push_f64_arr(&mut e, &[]);
        assert_eq!(e, "[]");
    }
}
