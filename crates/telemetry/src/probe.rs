//! The engine-side observation interface.
//!
//! A [`Probe`] is attached to a simulation the way a scenario hook is:
//! explicitly, outside the config (so config digests and snapshots are
//! unaffected). The engine calls it at a fixed simulated-time cadence
//! with a borrowed [`Sample`] of its public aggregates, plus span timings
//! and a final counter flush. Probes must never influence the run — they
//! receive shared borrows of engine state and have nowhere to write back.

use crate::counters::Counters;
use crate::flightrec::FlightRecord;

/// One cadence-point observation of the engine, borrowed from live
/// engine state (no allocation on the hot path).
#[derive(Debug, Clone, Copy)]
pub struct Sample<'a> {
    /// Simulated time of the sample.
    pub t: f64,
    /// Events dispatched so far (monotone across a run, resume included).
    pub events: u64,
    /// Per-class count of users in a downloading phase (index 0 ↔ class 1).
    pub downloaders: &'a [usize],
    /// Per-class count of active (peer, file) downloads.
    pub download_pairs: &'a [usize],
    /// Per-class count of (peer, file) seeding pairs.
    pub seed_pairs: &'a [usize],
    /// Per-subtorrent downloader weight (the fluid model's demand).
    pub weight: &'a [f64],
    /// Per-subtorrent real-seed bandwidth pool.
    pub pool_real: &'a [f64],
    /// Per-subtorrent virtual-seed bandwidth pool.
    pub pool_virtual: &'a [f64],
    /// Mean individual ρ over peers currently present (1.0-dominated
    /// outside CMFSD).
    pub rho_mean: f64,
    /// Mean Adapt imbalance Δ observed at the most recent epoch (0.0
    /// before the first epoch or without Adapt).
    pub delta_mean: f64,
    /// Cumulative hot-loop counters at the sample point.
    pub counters: Counters,
}

/// An owned copy of a [`Sample`], for buffering probes and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedSample {
    /// Simulated time of the sample.
    pub t: f64,
    /// Events dispatched so far.
    pub events: u64,
    /// Per-class downloading users.
    pub downloaders: Vec<usize>,
    /// Per-class active (peer, file) downloads.
    pub download_pairs: Vec<usize>,
    /// Per-class (peer, file) seeding pairs.
    pub seed_pairs: Vec<usize>,
    /// Per-subtorrent downloader weight.
    pub weight: Vec<f64>,
    /// Per-subtorrent real-seed pool.
    pub pool_real: Vec<f64>,
    /// Per-subtorrent virtual-seed pool.
    pub pool_virtual: Vec<f64>,
    /// Mean individual ρ.
    pub rho_mean: f64,
    /// Mean Adapt Δ at the latest epoch.
    pub delta_mean: f64,
    /// Cumulative counters.
    pub counters: Counters,
}

impl Sample<'_> {
    /// Copies the borrowed sample into an owned one.
    pub fn to_owned_sample(&self) -> OwnedSample {
        OwnedSample {
            t: self.t,
            events: self.events,
            downloaders: self.downloaders.to_vec(),
            download_pairs: self.download_pairs.to_vec(),
            seed_pairs: self.seed_pairs.to_vec(),
            weight: self.weight.to_vec(),
            pool_real: self.pool_real.to_vec(),
            pool_virtual: self.pool_virtual.to_vec(),
            rho_mean: self.rho_mean,
            delta_mean: self.delta_mean,
            counters: self.counters,
        }
    }
}

/// An observer of one engine run.
///
/// All methods default to no-ops, so implementors override only what
/// they need. `Send` because the sweep supervisor moves probes across
/// worker threads.
pub trait Probe: Send {
    /// Desired sampling cadence in simulated time units; `0.0` disables
    /// the sampler entirely (the engine then never builds a [`Sample`]).
    fn sample_every(&self) -> f64 {
        0.0
    }

    /// Called at each cadence point (and once at `t = 0` on a fresh run).
    fn on_sample(&mut self, _sample: &Sample<'_>) {}

    /// Whether this probe wants [`FlightRecord`]s. The engine caches the
    /// answer at attach time (like `sample_every`), so a `false` here
    /// costs the hot loop one cached boolean test per event and nothing
    /// else.
    fn wants_flight(&self) -> bool {
        false
    }

    /// Called with each flight-recorder entry when [`wants_flight`]
    /// returned `true` at attach time.
    ///
    /// [`wants_flight`]: Probe::wants_flight
    fn on_flight(&mut self, _rec: &FlightRecord) {}

    /// Called with a named phase timing (e.g. `engine`, `checkpoint`).
    fn on_span(&mut self, _name: &str, _micros: u64) {}

    /// Called once when the run completes, with the final clock and
    /// counters.
    fn on_finish(&mut self, _t: f64, _counters: &Counters) {}
}

/// The do-nothing probe: attaching it must be indistinguishable (in
/// results, not wall-clock) from attaching nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// A buffering probe that keeps every sample and the final counters in
/// memory — the test harness's view of a run's telemetry.
#[derive(Debug, Default)]
pub struct MemoryProbe {
    cadence: f64,
    /// Samples in emission order.
    pub samples: Vec<OwnedSample>,
    /// Spans in emission order.
    pub spans: Vec<(String, u64)>,
    /// Final counters, once the run finished.
    pub finished: Option<Counters>,
}

impl MemoryProbe {
    /// Creates a buffering probe sampling every `cadence` time units.
    pub fn new(cadence: f64) -> Self {
        Self {
            cadence,
            samples: Vec::new(),
            spans: Vec::new(),
            finished: None,
        }
    }
}

impl Probe for MemoryProbe {
    fn sample_every(&self) -> f64 {
        self.cadence
    }

    fn on_sample(&mut self, sample: &Sample<'_>) {
        self.samples.push(sample.to_owned_sample());
    }

    fn on_span(&mut self, name: &str, micros: u64) {
        self.spans.push((name.to_string(), micros));
    }

    fn on_finish(&mut self, _t: f64, counters: &Counters) {
        self.finished = Some(*counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample<'a>(bufs: &'a ([usize; 2], [f64; 3])) -> Sample<'a> {
        Sample {
            t: 1.5,
            events: 42,
            downloaders: &bufs.0,
            download_pairs: &bufs.0,
            seed_pairs: &bufs.0,
            weight: &bufs.1,
            pool_real: &bufs.1,
            pool_virtual: &bufs.1,
            rho_mean: 0.5,
            delta_mean: -0.25,
            counters: Counters::default(),
        }
    }

    #[test]
    fn memory_probe_buffers_everything() {
        let bufs = ([3usize, 0], [1.0f64, 0.0, 2.0]);
        let mut p = MemoryProbe::new(5.0);
        assert_eq!(p.sample_every(), 5.0);
        p.on_sample(&sample(&bufs));
        p.on_span("engine", 17);
        p.on_finish(2.0, &Counters::default());
        assert_eq!(p.samples.len(), 1);
        assert_eq!(p.samples[0].t, 1.5);
        assert_eq!(p.samples[0].downloaders, vec![3, 0]);
        assert_eq!(p.spans, vec![("engine".to_string(), 17)]);
        assert_eq!(p.finished, Some(Counters::default()));
    }

    #[test]
    fn noop_probe_defaults() {
        let bufs = ([0usize, 0], [0.0f64, 0.0, 0.0]);
        let mut p = NoopProbe;
        assert_eq!(p.sample_every(), 0.0);
        p.on_sample(&sample(&bufs));
        p.on_span("x", 1);
        p.on_finish(0.0, &Counters::default());
    }
}
