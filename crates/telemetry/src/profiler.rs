//! The hierarchical self-profiler: scoped phase timers over the engine's
//! hot loop, with calibrated-overhead subtraction.
//!
//! A [`Profiler`] is owned by whoever runs the instrumented code (the
//! engine holds an `Option<Profiler>`; `None` costs one branch per
//! instrumented site). Phases nest: entering `MemberSample` while
//! `HeapOps` is open charges the inner elapsed time to the child and
//! subtracts it from the parent's *self* time, so the per-phase table
//! attributes every nanosecond exactly once. Each enter/leave pair also
//! subtracts a calibrated per-pair timer overhead (measured at
//! construction by timing empty pairs), so the reported self-costs
//! approximate the un-instrumented run rather than the instrumented one.
//!
//! Results aggregate into a [`ProfileTable`] of per-phase call counts,
//! wall time, and per-event cost, which the trace sink serializes as an
//! additive `profile` record and `btfluid profile` renders as a table.

use std::time::Instant;

/// The fixed phase taxonomy (DESIGN.md §17). Indexes are stable wire
/// codes; names are stable wire strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Calendar maintenance: pops, stale discards, lazy re-ranking.
    HeapOps,
    /// Rate-cache recomputation (per-peer or aggregate-group).
    RateMaint,
    /// Aggregate-mode concrete-member draws (nested inside heap ops).
    MemberSample,
    /// Event dispatch including scenario-hook invocations.
    HookDispatch,
    /// Snapshot serialization during checkpoint cycles.
    SnapshotEncode,
    /// Telemetry emission: sample build plus probe/sink dispatch.
    SinkWrite,
}

/// All phases, index order (== wire code order).
pub const PHASES: [Phase; 6] = [
    Phase::HeapOps,
    Phase::RateMaint,
    Phase::MemberSample,
    Phase::HookDispatch,
    Phase::SnapshotEncode,
    Phase::SinkWrite,
];

impl Phase {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::HeapOps => "heap_ops",
            Phase::RateMaint => "rate_maint",
            Phase::MemberSample => "member_sample",
            Phase::HookDispatch => "hook_dispatch",
            Phase::SnapshotEncode => "snapshot_encode",
            Phase::SinkWrite => "sink_write",
        }
    }

    /// Stable index into per-phase arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Aggregated timings for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Enter/leave pairs (or externally-timed additions).
    pub calls: u64,
    /// Nanoseconds attributed to this phase alone (children and
    /// calibrated timer overhead subtracted, saturating at zero).
    pub self_ns: u64,
    /// Nanoseconds including nested child phases.
    pub total_ns: u64,
}

/// The rendered result: per-phase stats plus run-level denominators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileTable {
    /// Stats in [`PHASES`] order.
    pub phases: Vec<(&'static str, PhaseStats)>,
    /// Engine events the run dispatched (per-event-cost denominator).
    pub events: u64,
    /// Calibrated per-pair timer overhead that was subtracted, in ns.
    pub pair_overhead_ns: u64,
}

impl ProfileTable {
    /// Self-time across all phases, ns.
    pub fn accounted_ns(&self) -> u64 {
        self.phases.iter().map(|(_, s)| s.self_ns).sum()
    }
}

/// The scoped phase timer. Not `Clone`: there is one per run.
#[derive(Debug)]
pub struct Profiler {
    stats: [PhaseStats; 6],
    /// Open scopes: (phase, start, ns charged to children so far).
    stack: Vec<(Phase, Instant, u64)>,
    pair_overhead_ns: u64,
}

impl Profiler {
    /// A profiler with no overhead compensation (tests, externally-timed
    /// use).
    pub fn new() -> Self {
        Self {
            stats: [PhaseStats::default(); 6],
            stack: Vec::with_capacity(8),
            pair_overhead_ns: 0,
        }
    }

    /// Calibrates the per-pair enter/leave overhead by timing empty
    /// pairs, then returns a profiler that subtracts it from every
    /// scope. The calibration costs well under a millisecond.
    pub fn calibrated() -> Self {
        let mut probe = Self::new();
        const PAIRS: u32 = 4096;
        let started = Instant::now();
        for _ in 0..PAIRS {
            probe.enter(Phase::HeapOps);
            probe.leave(Phase::HeapOps);
        }
        let per_pair = started.elapsed().as_nanos() as u64 / u64::from(PAIRS);
        let mut p = Self::new();
        p.pair_overhead_ns = per_pair;
        p
    }

    /// The calibrated per-pair overhead being subtracted, ns.
    pub fn pair_overhead_ns(&self) -> u64 {
        self.pair_overhead_ns
    }

    /// Opens a phase scope. Scopes must strictly nest.
    #[inline]
    pub fn enter(&mut self, phase: Phase) {
        self.stack.push((phase, Instant::now(), 0));
    }

    /// Closes the innermost scope, which must be `phase`.
    #[inline]
    pub fn leave(&mut self, phase: Phase) {
        let (opened, start, child_ns) = self
            .stack
            .pop()
            .expect("Profiler::leave without matching enter");
        debug_assert_eq!(opened, phase, "mismatched profiler scope");
        let raw = start.elapsed().as_nanos() as u64;
        let stat = &mut self.stats[phase.index()];
        stat.calls += 1;
        stat.total_ns += raw;
        stat.self_ns += raw.saturating_sub(child_ns + self.pair_overhead_ns);
        // Charge this scope (timer overhead included) to the parent's
        // child tally so the parent's self-time excludes it.
        if let Some(parent) = self.stack.last_mut() {
            parent.2 += raw;
        }
    }

    /// Adds externally-timed work to a phase (no nesting bookkeeping —
    /// for costs measured by another clock, e.g. the checkpoint driver's
    /// snapshot encode).
    pub fn add(&mut self, phase: Phase, ns: u64) {
        let stat = &mut self.stats[phase.index()];
        stat.calls += 1;
        stat.self_ns += ns;
        stat.total_ns += ns;
    }

    /// Stats for one phase.
    pub fn stats(&self, phase: Phase) -> PhaseStats {
        self.stats[phase.index()]
    }

    /// Renders the aggregate table; `events` is the run's event count
    /// (denominator for per-event costs).
    pub fn table(&self, events: u64) -> ProfileTable {
        ProfileTable {
            phases: PHASES.iter().map(|&p| (p.name(), self.stats(p))).collect(),
            events,
            pair_overhead_ns: self.pair_overhead_ns,
        }
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(ns: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nested_child_time_is_subtracted_from_parent_self() {
        let mut p = Profiler::new();
        p.enter(Phase::HeapOps);
        spin(200_000);
        p.enter(Phase::MemberSample);
        spin(400_000);
        p.leave(Phase::MemberSample);
        spin(100_000);
        p.leave(Phase::HeapOps);

        let heap = p.stats(Phase::HeapOps);
        let member = p.stats(Phase::MemberSample);
        assert_eq!(heap.calls, 1);
        assert_eq!(member.calls, 1);
        assert!(member.self_ns >= 400_000);
        assert!(heap.total_ns >= heap.self_ns);
        assert!(
            heap.self_ns < heap.total_ns,
            "child time must come out of parent self-time"
        );
        // Parent self ≈ 300µs, well below the ~700µs total.
        assert!(heap.self_ns < member.self_ns + 200_000);
    }

    #[test]
    fn add_accumulates_without_nesting() {
        let mut p = Profiler::new();
        p.add(Phase::SnapshotEncode, 1_000);
        p.add(Phase::SnapshotEncode, 2_000);
        let s = p.stats(Phase::SnapshotEncode);
        assert_eq!(s.calls, 2);
        assert_eq!(s.self_ns, 3_000);
        assert_eq!(s.total_ns, 3_000);
    }

    #[test]
    fn table_lists_every_phase_in_order() {
        let p = Profiler::new();
        let t = p.table(42);
        assert_eq!(t.events, 42);
        let names: Vec<&str> = t.phases.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "heap_ops",
                "rate_maint",
                "member_sample",
                "hook_dispatch",
                "snapshot_encode",
                "sink_write"
            ]
        );
    }

    #[test]
    fn calibration_is_sane() {
        let p = Profiler::calibrated();
        // An empty pair costs nanoseconds, not milliseconds.
        assert!(p.pair_overhead_ns() < 100_000);
    }

    #[test]
    #[should_panic(expected = "without matching enter")]
    fn unbalanced_leave_panics() {
        let mut p = Profiler::new();
        p.leave(Phase::HeapOps);
    }
}
