//! # btfluid-telemetry
//!
//! Observability substrate for the btfluid workspace: engine probes,
//! hot-loop counters, a versioned JSONL trace sink, and the `diag!`
//! leveled stderr diagnostics macro.
//!
//! The crate sits *below* `btfluid-des` in the dependency graph (the
//! engine calls into it), so it carries no simulator types — probes see
//! plain slices and scalars through [`Sample`]. Three invariants the rest
//! of the workspace relies on:
//!
//! * **Zero perturbation**: a probe only *observes*. Nothing here feeds
//!   back into the engine's RNG streams, event order, or float
//!   computations, so a run with telemetry attached is bit-identical to
//!   the same seed without it (enforced by proptests in `btfluid-des`).
//! * **Near-zero cost when disabled**: with no probe attached the engine
//!   pays only plain integer counter increments and one float compare per
//!   event — no allocation, no dynamic dispatch.
//! * **Result files stay clean**: `diag!` writes to stderr only; the
//!   trace sink writes to its own file with the snapshot layer's atomic
//!   temp-file-and-rename discipline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod diag;
pub mod faults;
pub mod flightrec;
pub mod jsonw;
pub mod probe;
pub mod profiler;
pub mod sink;

pub use counters::Counters;
pub use diag::{enabled, level, set_level, Level};
pub use faults::{FaultKind, FaultRule, FaultScript, FaultSite};
pub use flightrec::{
    shared_recorder, FanoutProbe, FlightKind, FlightRecord, FlightRecorder, RecorderProbe,
    SharedRecorder, DEFAULT_FLIGHT_CAPACITY, FLIGHTREC_SCHEMA, FLIGHTREC_VERSION,
};
pub use jsonw::{non_finite_null_count, note_non_finite_null};
pub use probe::{MemoryProbe, NoopProbe, OwnedSample, Probe, Sample};
pub use profiler::{Phase, PhaseStats, ProfileTable, Profiler, PHASES};
pub use sink::{MetaField, SharedSink, SinkProbe, TraceSink, TRACE_SCHEMA, TRACE_VERSION};

/// Default sampling cadence (simulated time units) for trace-producing
/// probes when the caller does not choose one.
pub const DEFAULT_SAMPLE_EVERY: f64 = 5.0;
