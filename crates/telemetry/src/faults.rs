//! Deterministic I/O fault injection — the seam the chaos harness drives.
//!
//! Every durable write path in the workspace (checkpoint temp-file-and-
//! rename, trace sink, sweep manifest, repro bundles) consults this module
//! before touching the filesystem. When no script is armed the check is a
//! single relaxed atomic load, so production runs pay nothing measurable.
//! When a [`FaultScript`] is armed, faults fire at exact per-site
//! operation counts: the same script against the same run injects the
//! same failures at the same instants, which is what makes chaos runs
//! replayable and shrinkable.
//!
//! The module also owns the process-wide degradation tally the crash-safe
//! driver bumps when checkpointing fails (and when it gives up and
//! disables checkpointing) — the same pattern as
//! [`crate::jsonw::non_finite_null_count`].

use crate::flightrec::{FlightKind, FlightRecord, SharedRecorder};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Instrumented write paths. Each site keeps its own operation counter
/// while a script is armed, so a schedule can say "fail the 3rd
/// checkpoint rename" without caring how many trace lines were written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Writing checkpoint bytes to the sibling `.tmp` file.
    CheckpointWrite,
    /// Renaming a checkpoint `.tmp` over its final path.
    CheckpointRename,
    /// Appending one line to a trace sink.
    TraceWrite,
    /// The trace sink's flush-fsync-rename commit.
    TraceFinish,
    /// Appending one fsynced line to the sweep manifest.
    ManifestAppend,
    /// Writing a repro-bundle file.
    BundleWrite,
}

/// Number of distinct [`FaultSite`] values (per-site counter array size).
pub const FAULT_SITES: usize = 6;

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::CheckpointWrite => 0,
            FaultSite::CheckpointRename => 1,
            FaultSite::TraceWrite => 2,
            FaultSite::TraceFinish => 3,
            FaultSite::ManifestAppend => 4,
            FaultSite::BundleWrite => 5,
        }
    }

    /// Stable name used in plan serialization and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::CheckpointWrite => "ckpt-write",
            FaultSite::CheckpointRename => "ckpt-rename",
            FaultSite::TraceWrite => "trace-write",
            FaultSite::TraceFinish => "trace-finish",
            FaultSite::ManifestAppend => "manifest-append",
            FaultSite::BundleWrite => "bundle-write",
        }
    }

    /// Inverse of [`FaultSite::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "ckpt-write" => FaultSite::CheckpointWrite,
            "ckpt-rename" => FaultSite::CheckpointRename,
            "trace-write" => FaultSite::TraceWrite,
            "trace-finish" => FaultSite::TraceFinish,
            "manifest-append" => FaultSite::ManifestAppend,
            "bundle-write" => FaultSite::BundleWrite,
            _ => return None,
        })
    }
}

/// What to inject when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `ENOSPC` — disk full. Persistent in real life, so the retry layer
    /// treats it the same as any other failure: bounded attempts, then
    /// degradation.
    Enospc,
    /// `EIO` — a transient device error; retries usually clear it.
    Eio,
    /// A short write: only a prefix of the bytes reaches the file before
    /// the error surfaces — the torn-write case atomic rename protects
    /// against.
    ShortWrite,
    /// The rename (commit point) itself fails; the `.tmp` stays behind.
    RenameFail,
    /// Silent corruption: the write *succeeds* but a byte is flipped —
    /// firmware lying about durability. Outside the survivable fault
    /// model (no error ever surfaces), which is exactly why the chaos
    /// expect-fail canary uses it: detection must happen at read time,
    /// via the snapshot checksums.
    CorruptWrite,
}

impl FaultKind {
    /// Stable name used in plan serialization and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Enospc => "enospc",
            FaultKind::Eio => "eio",
            FaultKind::ShortWrite => "short-write",
            FaultKind::RenameFail => "rename-fail",
            FaultKind::CorruptWrite => "corrupt-write",
        }
    }

    /// Inverse of [`FaultKind::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "enospc" => FaultKind::Enospc,
            "eio" => FaultKind::Eio,
            "short-write" => FaultKind::ShortWrite,
            "rename-fail" => FaultKind::RenameFail,
            "corrupt-write" => FaultKind::CorruptWrite,
            _ => return None,
        })
    }

    /// The injected error, rendered like the real OS failure.
    pub fn to_io_error(self) -> io::Error {
        match self {
            // Raw errno so `.to_string()` reads like the genuine article
            // ("No space left on device") with an `injected` marker the
            // chaos report can grep for.
            FaultKind::Enospc => io::Error::other("injected ENOSPC: no space left on device"),
            FaultKind::Eio => io::Error::other("injected EIO: input/output error"),
            FaultKind::ShortWrite => io::Error::other("injected short write (torn)"),
            FaultKind::RenameFail => io::Error::other("injected rename failure"),
            FaultKind::CorruptWrite => io::Error::other("injected corruption (never surfaces)"),
        }
    }
}

/// One injection rule: fire `count` times at site operations
/// `[from_op, from_op + count)` (operations are 0-indexed per site).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Which write path to sabotage.
    pub site: FaultSite,
    /// What failure to inject.
    pub kind: FaultKind,
    /// First per-site operation index the rule applies to.
    pub from_op: u64,
    /// How many consecutive operations it applies to (0 disables it).
    pub count: u64,
}

impl FaultRule {
    fn matches(&self, site: FaultSite, op: u64) -> bool {
        self.site == site && self.count > 0 && op >= self.from_op && op - self.from_op < self.count
    }
}

/// A full deterministic fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultScript {
    /// Rules checked in order; the first match wins.
    pub rules: Vec<FaultRule>,
}

struct Armed {
    script: FaultScript,
    ops: [u64; FAULT_SITES],
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static INJECTED: AtomicU64 = AtomicU64::new(0);
static CKPT_FAILURES: AtomicU64 = AtomicU64::new(0);
static CKPT_DEGRADED: AtomicU64 = AtomicU64::new(0);

fn state() -> &'static Mutex<Option<Armed>> {
    static STATE: Mutex<Option<Armed>> = Mutex::new(None);
    &STATE
}

fn flight() -> &'static Mutex<Option<SharedRecorder>> {
    static FLIGHT: Mutex<Option<SharedRecorder>> = Mutex::new(None);
    &FLIGHT
}

/// Routes a [`FlightKind::FaultConsult`] record into `rec` for every
/// injector consult while a script is armed. The hook lives entirely on
/// the armed path (inside the script mutex), so disarmed runs still pay
/// only the one relaxed load.
///
/// Record payload: `a` = site index, `b` = matched-kind code + 1 (0 when
/// the consult passed through clean); `t` is `-1.0` because no simulated
/// clock is in scope at the I/O layer.
pub fn install_flight(rec: SharedRecorder) {
    let mut guard = flight().lock().unwrap_or_else(|e| e.into_inner());
    *guard = Some(rec);
}

/// Removes the flight-record hook installed by [`install_flight`].
pub fn uninstall_flight() {
    let mut guard = flight().lock().unwrap_or_else(|e| e.into_inner());
    *guard = None;
}

fn kind_code(kind: FaultKind) -> u64 {
    match kind {
        FaultKind::Enospc => 0,
        FaultKind::Eio => 1,
        FaultKind::ShortWrite => 2,
        FaultKind::RenameFail => 3,
        FaultKind::CorruptWrite => 4,
    }
}

/// Arms `script` process-wide, resetting all per-site operation counters.
/// Replaces any previously armed script.
pub fn arm(script: FaultScript) {
    let mut guard = state().lock().unwrap_or_else(|e| e.into_inner());
    *guard = Some(Armed {
        script,
        ops: [0; FAULT_SITES],
    });
    ENABLED.store(true, Ordering::Release);
}

/// Disarms fault injection; all write paths go back to passthrough.
pub fn disarm() {
    ENABLED.store(false, Ordering::Release);
    let mut guard = state().lock().unwrap_or_else(|e| e.into_inner());
    *guard = None;
}

/// Whether a script is currently armed (one relaxed load — the fast path
/// every instrumented write starts with).
pub fn armed() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Consults the armed script for `site`, advancing its operation counter.
/// `None` (always, when disarmed) means "perform the real operation".
pub fn intercept(site: FaultSite) -> Option<FaultKind> {
    if !armed() {
        return None;
    }
    let mut guard = state().lock().unwrap_or_else(|e| e.into_inner());
    let armed = guard.as_mut()?;
    let op = armed.ops[site.index()];
    armed.ops[site.index()] += 1;
    let kind = armed
        .script
        .rules
        .iter()
        .find(|r| r.matches(site, op))
        .map(|r| r.kind);
    if kind.is_some() {
        INJECTED.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(rec) = flight().lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
        rec.lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(FlightRecord {
                t: -1.0,
                events: 0,
                kind: FlightKind::FaultConsult,
                a: site.index() as u64,
                b: kind.map_or(0, |k| kind_code(k) + 1),
            });
    }
    kind
}

/// Process-wide count of injected faults (monotone; survives disarm).
pub fn injected_count() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Records one failed checkpoint write cycle (all retries exhausted).
pub fn note_checkpoint_failure() {
    CKPT_FAILURES.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide count of failed checkpoint write cycles.
pub fn checkpoint_failure_count() -> u64 {
    CKPT_FAILURES.load(Ordering::Relaxed)
}

/// Records the driver disabling checkpointing after consecutive failures.
pub fn note_checkpoint_degraded() {
    CKPT_DEGRADED.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide count of runs that degraded to checkpoint-free operation.
pub fn checkpoint_degraded_count() -> u64 {
    CKPT_DEGRADED.load(Ordering::Relaxed)
}

/// The outcome an instrumented buffered write should apply.
#[derive(Debug)]
pub enum WritePlan {
    /// No fault: write everything.
    Full,
    /// Torn write: persist only this many bytes, then fail with the error.
    Short(usize, io::Error),
    /// Fail without writing anything.
    Fail(io::Error),
    /// Write everything, but flip one byte first (silent corruption).
    Corrupt,
}

/// Maps an intercept at `site` for a buffer of `len` bytes onto the
/// concrete action the write path must take.
pub fn write_plan(site: FaultSite, len: usize) -> WritePlan {
    match intercept(site) {
        None => WritePlan::Full,
        Some(FaultKind::ShortWrite) => {
            WritePlan::Short(len / 2, FaultKind::ShortWrite.to_io_error())
        }
        Some(FaultKind::CorruptWrite) => WritePlan::Corrupt,
        Some(kind) => WritePlan::Fail(kind.to_io_error()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole lifecycle: the armed state is process
    // -global, so concurrent tests poking it would race each other.
    #[test]
    fn scripts_fire_at_exact_ops_and_disarm_restores_passthrough() {
        disarm();
        assert!(!armed());
        assert_eq!(intercept(FaultSite::CheckpointWrite), None);

        arm(FaultScript {
            rules: vec![
                FaultRule {
                    site: FaultSite::CheckpointWrite,
                    kind: FaultKind::Enospc,
                    from_op: 1,
                    count: 2,
                },
                FaultRule {
                    site: FaultSite::TraceFinish,
                    kind: FaultKind::RenameFail,
                    from_op: 0,
                    count: 1,
                },
            ],
        });
        let before = injected_count();
        // Op 0 clean, ops 1-2 fail, op 3 clean again.
        assert_eq!(intercept(FaultSite::CheckpointWrite), None);
        assert_eq!(
            intercept(FaultSite::CheckpointWrite),
            Some(FaultKind::Enospc)
        );
        assert_eq!(
            intercept(FaultSite::CheckpointWrite),
            Some(FaultKind::Enospc)
        );
        assert_eq!(intercept(FaultSite::CheckpointWrite), None);
        // Sites count independently.
        assert_eq!(
            intercept(FaultSite::TraceFinish),
            Some(FaultKind::RenameFail)
        );
        assert_eq!(intercept(FaultSite::TraceFinish), None);
        assert_eq!(injected_count(), before + 3);

        // Re-arming resets the op counters.
        arm(FaultScript {
            rules: vec![FaultRule {
                site: FaultSite::ManifestAppend,
                kind: FaultKind::ShortWrite,
                from_op: 0,
                count: 1,
            }],
        });
        match write_plan(FaultSite::ManifestAppend, 10) {
            WritePlan::Short(5, _) => {}
            other => panic!("expected Short(5, _), got {other:?}"),
        }
        assert!(matches!(
            write_plan(FaultSite::ManifestAppend, 10),
            WritePlan::Full
        ));

        disarm();
        assert_eq!(intercept(FaultSite::ManifestAppend), None);
    }

    #[test]
    fn names_round_trip() {
        for site in [
            FaultSite::CheckpointWrite,
            FaultSite::CheckpointRename,
            FaultSite::TraceWrite,
            FaultSite::TraceFinish,
            FaultSite::ManifestAppend,
            FaultSite::BundleWrite,
        ] {
            assert_eq!(FaultSite::from_name(site.name()), Some(site));
        }
        for kind in [
            FaultKind::Enospc,
            FaultKind::Eio,
            FaultKind::ShortWrite,
            FaultKind::RenameFail,
            FaultKind::CorruptWrite,
        ] {
            assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(FaultSite::from_name("nope"), None);
        assert_eq!(FaultKind::from_name("nope"), None);
    }
}
