//! Leveled stderr diagnostics: one global threshold, one macro.
//!
//! Replaces the scattered bare `eprintln!` diagnostics across the
//! workspace so the CLI's `--verbose`/`--quiet` flags govern every
//! message from one place. Output goes to stderr only — result files
//! (CSV, JSONL, snapshots) are never polluted.

use std::sync::atomic::{AtomicU8, Ordering};

/// Diagnostic severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Failures the user must see (always shown, even under `--quiet`).
    Error = 0,
    /// Degraded-but-continuing conditions (retries, fallbacks).
    Warn = 1,
    /// Progress and one-line summaries (the default threshold).
    Info = 2,
    /// High-volume engine traces (`--verbose`).
    Debug = 3,
}

/// Global threshold; messages at a level numerically above it are
/// suppressed. Default: [`Level::Info`].
static THRESHOLD: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the global threshold (e.g. from `--verbose`/`--quiet`).
pub fn set_level(level: Level) {
    THRESHOLD.store(level as u8, Ordering::Relaxed);
}

/// The current threshold.
pub fn level() -> Level {
    match THRESHOLD.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Whether a message at `at` would currently be emitted.
pub fn enabled(at: Level) -> bool {
    at as u8 <= THRESHOLD.load(Ordering::Relaxed)
}

/// Leveled `eprintln!`: emits to stderr when the global threshold admits
/// the level.
///
/// ```
/// use btfluid_telemetry::{diag, Level};
/// diag!(Level::Info, "cell {} done in {:.1}s", "mtcd-s7", 1.25);
/// ```
#[macro_export]
macro_rules! diag {
    ($level:expr, $($arg:tt)*) => {
        if $crate::enabled($level) {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Threshold state is global, so exercise the transitions in one test
    /// (the harness may run tests concurrently).
    #[test]
    fn threshold_gates_levels() {
        set_level(Level::Info);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));

        set_level(Level::Error);
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Warn));
        assert_eq!(level(), Level::Error);

        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        assert_eq!(level(), Level::Debug);

        set_level(Level::Info);
        assert_eq!(level(), Level::Info);
    }

    #[test]
    fn macro_compiles_at_every_level() {
        // Emission goes to stderr; here we only assert the macro expands
        // and respects the guard without panicking.
        set_level(Level::Error);
        diag!(Level::Debug, "suppressed {}", 1);
        diag!(Level::Error, "shown {}", 2);
        set_level(Level::Info);
    }
}
