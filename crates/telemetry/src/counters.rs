//! Hot-loop counters the engine maintains unconditionally.
//!
//! All fields are plain `u64`s so the per-event cost is a handful of
//! integer increments — cheap enough (the engine spends tens of
//! microseconds per event) to keep even when no probe is attached, which
//! in turn keeps snapshots identical whether or not telemetry is enabled.

/// Cumulative engine counters since the start of the run (they survive
/// snapshot/restore, so a resumed run continues the same series).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Events popped from the queue and dispatched.
    pub events_popped: u64,
    /// Stale entries discarded by lazy invalidation before dispatch.
    pub stale_discards: u64,
    /// Peak event-queue length observed.
    pub heap_peak: u64,
    /// Per-download rate recomputations performed by the rate cache
    /// (each is one `recompute_rate` evaluation).
    pub rate_recomputes: u64,
    /// Rate-cache refreshes satisfied without touching any aggregate
    /// (nothing dirty — the incremental fast path).
    pub rate_clean_hits: u64,
    /// Snapshots written by a checkpointing driver.
    pub snapshots_taken: u64,
    /// Total bytes of those snapshots.
    pub snapshot_bytes: u64,
    /// Total wall-clock microseconds spent writing them.
    pub snapshot_micros: u64,
    /// Group-rate recomputations performed by the aggregate cache
    /// (aggregate scheduling mode; zero under per-peer scheduling).
    pub agg_rate_updates: u64,
    /// Aggregate completion events dispatched (one member sampled each).
    pub agg_samples: u64,
}

impl Counters {
    /// Renders the counters as a JSON object (raw text, no trailing
    /// newline), the exact shape the trace schema embeds.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"events_popped\":{},\"stale_discards\":{},\"heap_peak\":{},\
             \"rate_recomputes\":{},\"rate_clean_hits\":{},\"snapshots_taken\":{},\
             \"snapshot_bytes\":{},\"snapshot_micros\":{},\
             \"agg_rate_updates\":{},\"agg_samples\":{}}}",
            self.events_popped,
            self.stale_discards,
            self.heap_peak,
            self.rate_recomputes,
            self.rate_clean_hits,
            self.snapshots_taken,
            self.snapshot_bytes,
            self.snapshot_micros,
            self.agg_rate_updates,
            self.agg_samples,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let c = Counters {
            events_popped: 3,
            snapshot_bytes: u64::MAX,
            ..Counters::default()
        };
        let s = c.to_json();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"events_popped\":3"));
        assert!(s.contains(&format!("\"snapshot_bytes\":{}", u64::MAX)));
        assert!(s.contains("\"agg_rate_updates\":0"));
        assert!(s.contains("\"agg_samples\":0"));
        assert!(!s.contains(' '), "compact encoding only: {s}");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Counters::default(), Counters::default());
        assert!(Counters::default().to_json().contains("\"heap_peak\":0"));
    }
}
