//! Scenario determinism and DES-vs-fluid transient agreement.
//!
//! * Same seed + same program ⇒ bit-identical user-record and abort
//!   streams, in both the incremental and the forced-recompute
//!   (`exact_rates`) engine modes, for every scheme.
//! * The flash-crowd transient: the DES's time-averaged downloading users
//!   agree with the schedule-driven MTCD fluid model within the same
//!   relative tolerance the stationary validation harness uses.

use btfluid_des::SchemeKind;
use btfluid_scenario::{des_avg_downloaders, fluid_avg_downloaders, registry, runner, RateMode};

const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Mtsd,
    SchemeKind::Mtcd,
    SchemeKind::Mfcd,
    SchemeKind::Cmfsd { rho: 0.5 },
];

/// DES-vs-fluid tolerance, matching `bench/validate.rs`.
const REL_TOL: f64 = 0.12;

fn assert_identical(program_name: &str) {
    let program = registry::by_name(program_name)
        .expect("registry name")
        .time_scaled(0.25);
    for scheme in SCHEMES {
        let a = runner::run_one(&program, scheme, None, "a", 42, RateMode::Incremental)
            .expect("incremental run");
        let b =
            runner::run_one(&program, scheme, None, "b", 42, RateMode::Exact).expect("exact run");
        let c = runner::run_one(&program, scheme, None, "c", 42, RateMode::Incremental)
            .expect("repeat run");
        for (label, other) in [("exact_rates", &b), ("repeat", &c)] {
            assert_eq!(
                a.outcome.arrivals,
                other.outcome.arrivals,
                "{program_name}/{}: arrival count differs vs {label}",
                scheme.name()
            );
            assert_eq!(
                a.outcome.records,
                other.outcome.records,
                "{program_name}/{}: user records differ vs {label}",
                scheme.name()
            );
            assert_eq!(
                a.outcome.aborts,
                other.outcome.aborts,
                "{program_name}/{}: abort records differ vs {label}",
                scheme.name()
            );
            assert_eq!(
                a.outcome.events,
                other.outcome.events,
                "{program_name}/{}: event count differs vs {label}",
                scheme.name()
            );
        }
        // A different seed must actually change the realization.
        let d = runner::run_one(&program, scheme, None, "d", 43, RateMode::Incremental)
            .expect("reseeded run");
        assert_ne!(
            a.outcome.records,
            d.outcome.records,
            "{program_name}/{}: seed 43 reproduced seed 42 exactly",
            scheme.name()
        );
    }
}

#[test]
fn flash_crowd_is_deterministic_across_modes() {
    assert_identical("flash_crowd");
}

#[test]
fn seed_outage_is_deterministic_across_modes() {
    assert_identical("seed_outage");
}

#[test]
fn abort_storm_is_deterministic_across_modes() {
    // Aborts draw from the scenario stream and mutate the slab; the
    // exact/incremental equivalence must survive them too.
    assert_identical("abort_storm");
}

#[test]
fn flash_crowd_des_matches_fluid_transient() {
    let mut program = registry::flash_crowd();
    // The fluid model has no publisher; under MTSD/MTCD an origin seed
    // pins a full μ per subtorrent, which is a ~20% service boost at this
    // swarm scale. Zero it on both sides for an apples-to-apples check.
    program.origin_seeds = 0;
    let run = runner::run_one(
        &program,
        SchemeKind::Mtcd,
        None,
        "MTCD",
        1,
        RateMode::Incremental,
    )
    .expect("DES run");
    let des = des_avg_downloaders(&run.outcome);
    let fluid = fluid_avg_downloaders(&program, 0.5).expect("fluid transient");
    let rel = (des - fluid).abs() / fluid.max(1e-9);
    assert!(
        rel < REL_TOL,
        "flash-crowd transient: DES {des:.2} vs fluid {fluid:.2} downloading users (rel {rel:.3})"
    );
}
