//! Property tests for schedules and the thinning sampler.
//!
//! * Every generated schedule validates, stays within its declared bounds,
//!   and never goes negative.
//! * The analytic integral agrees with midpoint-rule quadrature.
//! * The Lewis–Shedler thinning sampler's event count over a window falls
//!   inside a wide Poisson confidence band around `∫λ(t)dt`.

use btfluid_numkit::dist::ThinnedPoisson;
use btfluid_numkit::rng::Xoshiro256StarStar;
use btfluid_scenario::Schedule;
use proptest::prelude::*;

/// Window all generated time parameters live in (keeps quadrature cheap).
const T_MAX: f64 = 100.0;

fn value() -> impl Strategy<Value = f64> {
    0.0f64..5.0
}

fn window() -> impl Strategy<Value = (f64, f64)> {
    (0.0f64..T_MAX, 0.1f64..T_MAX).prop_map(|(t0, len)| (t0, t0 + len))
}

fn schedule() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        value().prop_map(Schedule::Constant),
        (value(), prop::collection::vec(value(), 1..5)).prop_map(|(initial, vals)| {
            // Strictly increasing step times derived from the index.
            let steps = vals
                .into_iter()
                .enumerate()
                .map(|(i, v)| ((i as f64 + 1.0) * (T_MAX / 6.0), v))
                .collect();
            Schedule::Piecewise { initial, steps }
        }),
        (value(), value(), window()).prop_map(|(from, to, (t0, t1))| Schedule::Ramp {
            from,
            to,
            t0,
            t1
        }),
        (value(), 0.0f64..1.0, 1.0f64..T_MAX, 0.0f64..T_MAX).prop_map(
            |(mean, frac, period, phase)| Schedule::Periodic {
                mean,
                amplitude: mean * frac,
                period,
                phase,
            }
        ),
        (value(), value(), window()).prop_map(|(base, peak, (t0, t1))| Schedule::Spike {
            base,
            peak,
            t0,
            t1
        }),
    ]
}

/// Midpoint-rule quadrature; exact up to the discontinuity cells.
fn quadrature(s: &Schedule, a: f64, b: f64, n: usize) -> f64 {
    let dx = (b - a) / n as f64;
    (0..n)
        .map(|i| s.value(a + (i as f64 + 0.5) * dx) * dx)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedules_validate_and_respect_bounds(s in schedule(), ts in prop::collection::vec(0.0f64..2.0 * T_MAX, 1..32)) {
        s.validate().expect("generated schedules are valid");
        let hi = s.upper_bound();
        let lo = s.lower_bound();
        prop_assert!(hi.is_finite() && lo >= 0.0);
        for t in ts {
            let v = s.value(t);
            prop_assert!(v >= 0.0, "value({t}) = {v} < 0");
            prop_assert!(v <= hi + 1e-12, "value({t}) = {v} above bound {hi}");
            prop_assert!(v >= lo - 1e-12, "value({t}) = {v} below floor {lo}");
        }
    }

    #[test]
    fn integral_matches_quadrature(s in schedule(), w in window()) {
        let (a, b) = w;
        let analytic = s.integral(a, b);
        let numeric = quadrature(&s, a, b, 40_000);
        // Midpoint error: O(dx²) on smooth spans plus one cell per jump.
        let dx = (b - a) / 40_000.0;
        let tol = 4.0 * s.upper_bound() * dx + 1e-6 * analytic.abs().max(1.0);
        prop_assert!(
            (analytic - numeric).abs() <= tol,
            "∫ analytic {analytic} vs quadrature {numeric} (tol {tol})"
        );
        prop_assert!(analytic >= -1e-12, "integral of a non-negative schedule is negative");
    }

    #[test]
    fn time_scaling_preserves_mass(s in schedule(), factor in 0.1f64..4.0) {
        // ∫₀^{cT} s(t/c) dt = c · ∫₀^T s(t) dt.
        let scaled = s.time_scaled(factor);
        let a = s.integral(0.0, 2.0 * T_MAX);
        let b = scaled.integral(0.0, 2.0 * T_MAX * factor);
        prop_assert!(
            (b - factor * a).abs() <= 1e-9 * a.abs().max(1.0),
            "scaled mass {b} vs expected {}", factor * a
        );
    }

    #[test]
    fn thinning_sampler_tracks_the_integral(s in schedule(), seed in any::<u64>()) {
        // Count events on [0, T]: a Poisson(m) draw with m = ∫λ. A 6σ band
        // plus slack makes a false failure astronomically unlikely.
        let horizon = 2.0 * T_MAX;
        let m = s.integral(0.0, horizon);
        let bound = s.upper_bound().max(1e-9);
        let proc = ThinnedPoisson::new(move |t| s.value(t), bound).expect("sampler");
        let mut rng = Xoshiro256StarStar::stream(seed, 0);
        let mut t = 0.0;
        let mut count: u64 = 0;
        while let Some(next) = proc.next_before(t, horizon, &mut rng) {
            prop_assert!(next > t && next < horizon);
            t = next;
            count += 1;
        }
        let slack = 6.0 * m.sqrt() + 12.0;
        prop_assert!(
            (count as f64 - m).abs() <= slack,
            "{count} events vs ∫λ = {m} (slack {slack})"
        );
    }
}
