//! Checkpoint/resume under a scenario hook: cutting a hooked run at an
//! arbitrary event index, round-tripping the snapshot through the on-disk
//! byte format, and re-attaching a freshly compiled [`ProgramHook`] must
//! reproduce the uninterrupted run bit for bit. A hook compiled from a
//! *different* program must be refused.

use btfluid_des::snapshot::{Snapshot, SnapshotError};
use btfluid_des::{DesError, SchemeKind, SimOutcome, Simulation};
use btfluid_scenario::registry;

const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Mtsd,
    SchemeKind::Mtcd,
    SchemeKind::Mfcd,
    SchemeKind::Cmfsd { rho: 0.5 },
];

fn assert_same_streams(a: &SimOutcome, b: &SimOutcome, label: &str) {
    assert_eq!(a.events, b.events, "{label}: event count differs");
    assert_eq!(a.arrivals, b.arrivals, "{label}: arrival count differs");
    assert_eq!(a.records, b.records, "{label}: user records differ");
    assert_eq!(a.aborts, b.aborts, "{label}: abort records differ");
}

/// Cuts a hooked run after `cut` events and resumes it from the serialized
/// snapshot with a freshly compiled hook.
fn interrupted(program_name: &str, scheme: SchemeKind, seed: u64, cut: usize) -> SimOutcome {
    let program = registry::by_name(program_name).unwrap().time_scaled(0.25);
    let cfg = program.des_config(scheme, seed).unwrap();
    let mut sim = Simulation::with_hook(cfg.clone(), Box::new(program.hook())).unwrap();
    let mut alive = true;
    for _ in 0..cut {
        if !sim.step().unwrap() {
            alive = false;
            break;
        }
    }
    let snap = Snapshot::from_bytes(&sim.snapshot().to_bytes()).expect("codec roundtrip");
    drop(sim);
    let mut resumed =
        Simulation::restore_with_hook(cfg, &snap, Box::new(program.hook())).expect("restore");
    if alive {
        while resumed.step().unwrap() {}
    }
    resumed.finish()
}

fn straight(program_name: &str, scheme: SchemeKind, seed: u64) -> SimOutcome {
    let program = registry::by_name(program_name).unwrap().time_scaled(0.25);
    let cfg = program.des_config(scheme, seed).unwrap();
    Simulation::with_hook(cfg, Box::new(program.hook()))
        .unwrap()
        .run()
}

#[test]
fn flash_crowd_resumes_bit_identical_on_every_scheme() {
    for scheme in SCHEMES {
        let a = straight("flash_crowd", scheme, 42);
        for cut in [0, 137, 2000] {
            let b = interrupted("flash_crowd", scheme, 42, cut);
            assert_same_streams(&a, &b, &format!("flash_crowd/{}/cut={cut}", scheme.name()));
        }
    }
}

#[test]
fn abort_storm_resume_survives_scenario_stream() {
    // Aborts draw from the scenario RNG stream and mutate the slab; the
    // snapshot must carry that stream and the pending-abort schedule too.
    let a = straight("abort_storm", SchemeKind::Mtcd, 11);
    assert!(!a.aborts.is_empty(), "storm injected no aborts");
    let b = interrupted("abort_storm", SchemeKind::Mtcd, 11, 500);
    assert_same_streams(&a, &b, "abort_storm/MTCD");
}

#[test]
fn seed_outage_resume_crosses_fault_windows() {
    // seed_outage toggles the origin-seed count through hook boundaries;
    // resuming mid-run must re-derive the outage state from the hook.
    let a = straight("seed_outage", SchemeKind::Mfcd, 7);
    let b = interrupted("seed_outage", SchemeKind::Mfcd, 7, 900);
    assert_same_streams(&a, &b, "seed_outage/MFCD");
}

#[test]
fn wrong_program_hook_is_refused() {
    let program = registry::by_name("flash_crowd").unwrap().time_scaled(0.25);
    let cfg = program.des_config(SchemeKind::Mtcd, 5).unwrap();
    let mut sim = Simulation::with_hook(cfg.clone(), Box::new(program.hook())).unwrap();
    for _ in 0..100 {
        assert!(sim.step().unwrap());
    }
    let snap = sim.snapshot();
    let other = registry::by_name("diurnal").unwrap().time_scaled(0.25);
    match Simulation::restore_with_hook(cfg, &snap, Box::new(other.hook())).map(|_| ()) {
        Err(DesError::Snapshot(SnapshotError::HookMismatch)) => {}
        other => panic!("expected HookMismatch, got {other:?}"),
    }
}

#[test]
fn hookless_restore_of_hooked_snapshot_is_refused() {
    let program = registry::by_name("flash_crowd").unwrap().time_scaled(0.25);
    let cfg = program.des_config(SchemeKind::Mtsd, 5).unwrap();
    let mut sim = Simulation::with_hook(cfg.clone(), Box::new(program.hook())).unwrap();
    for _ in 0..100 {
        assert!(sim.step().unwrap());
    }
    let snap = sim.snapshot();
    match Simulation::restore(cfg, &snap).map(|_| ()) {
        Err(DesError::Snapshot(SnapshotError::HookMismatch)) => {}
        other => panic!("expected HookMismatch, got {other:?}"),
    }
}
