//! Trace replay determinism (DESIGN.md §18): a recorded trace fed
//! through [`TraceHook`] must drive the DES identically — across the
//! incremental/exact rate modes (bit-identical), across reruns in every
//! mode including aggregate, and across a SIGKILL→resume cut at an
//! arbitrary event (the snapshot carries the replay cursor).

use btfluid_des::snapshot::{Snapshot, SnapshotError};
use btfluid_des::{DesError, SchemeKind, SimOutcome, Simulation};
use btfluid_numkit::rng::Xoshiro256StarStar;
use btfluid_scenario::{trace_program, RateMode, TraceHook};
use btfluid_workload::{ArrivalTrace, CorrelationModel};

fn trace(seed: u64, horizon: f64) -> ArrivalTrace {
    let m = CorrelationModel::new(10, 0.4, 0.25).unwrap();
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    ArrivalTrace::generate(&m, horizon, &mut rng).unwrap()
}

fn replay(trace: &ArrivalTrace, scheme: SchemeKind, seed: u64, mode: RateMode) -> SimOutcome {
    let program = trace_program(trace, 8, 100.0).unwrap();
    let mut cfg = program.des_config(scheme, seed).unwrap();
    mode.apply(&mut cfg);
    Simulation::with_hook(cfg, Box::new(TraceHook::new(trace).unwrap()))
        .unwrap()
        .run()
}

fn assert_same_streams(a: &SimOutcome, b: &SimOutcome, label: &str) {
    assert_eq!(a.events, b.events, "{label}: event count differs");
    assert_eq!(a.arrivals, b.arrivals, "{label}: arrival count differs");
    assert_eq!(a.records, b.records, "{label}: user records differ");
    assert_eq!(a.aborts, b.aborts, "{label}: abort records differ");
}

#[test]
fn replay_consumes_every_in_horizon_arrival() {
    let t = trace(1, 600.0);
    let out = replay(&t, SchemeKind::Mtcd, 7, RateMode::Incremental);
    assert_eq!(
        out.arrivals,
        t.len(),
        "replay must admit exactly the recorded arrivals"
    );
}

#[test]
fn incremental_and_exact_replay_are_bit_identical() {
    let t = trace(2, 600.0);
    for scheme in [
        SchemeKind::Mtsd,
        SchemeKind::Mtcd,
        SchemeKind::Mfcd,
        SchemeKind::Cmfsd { rho: 0.5 },
    ] {
        let a = replay(&t, scheme, 42, RateMode::Incremental);
        let b = replay(&t, scheme, 42, RateMode::Exact);
        assert_same_streams(&a, &b, &format!("incr-vs-exact/{}", scheme.name()));
    }
}

#[test]
fn every_mode_is_deterministic_across_reruns() {
    let t = trace(3, 600.0);
    for mode in [RateMode::Incremental, RateMode::Exact, RateMode::Aggregate] {
        let a = replay(&t, SchemeKind::Mtcd, 9, mode);
        let b = replay(&t, SchemeKind::Mtcd, 9, mode);
        assert_same_streams(&a, &b, &format!("rerun/{mode:?}"));
        assert!(a.arrivals > 0, "{mode:?}: replay admitted nobody");
    }
}

#[test]
fn different_seeds_same_arrival_stream() {
    // Replay pins the arrival stream to the trace: the service RNG still
    // varies with the seed, but the admitted arrivals cannot.
    let t = trace(4, 600.0);
    let a = replay(&t, SchemeKind::Mtcd, 1, RateMode::Incremental);
    let b = replay(&t, SchemeKind::Mtcd, 2, RateMode::Incremental);
    assert_eq!(a.arrivals, b.arrivals);
}

#[test]
fn mid_replay_snapshot_resumes_bit_identical() {
    // SIGKILL→resume mid-replay: the cursor rides in the snapshot, so the
    // resumed run replays the exact tail of the trace.
    let t = trace(5, 600.0);
    let program = trace_program(&t, 8, 100.0).unwrap();
    for mode in [RateMode::Incremental, RateMode::Exact, RateMode::Aggregate] {
        let mut cfg = program.des_config(SchemeKind::Mtcd, 21).unwrap();
        mode.apply(&mut cfg);
        let straight = Simulation::with_hook(cfg.clone(), Box::new(TraceHook::new(&t).unwrap()))
            .unwrap()
            .run();
        for cut in [0usize, 137, 2500] {
            let mut sim =
                Simulation::with_hook(cfg.clone(), Box::new(TraceHook::new(&t).unwrap())).unwrap();
            let mut alive = true;
            for _ in 0..cut {
                if !sim.step().unwrap() {
                    alive = false;
                    break;
                }
            }
            let snap = Snapshot::from_bytes(&sim.snapshot().to_bytes()).expect("codec roundtrip");
            drop(sim);
            let mut resumed = Simulation::restore_with_hook(
                cfg.clone(),
                &snap,
                Box::new(TraceHook::new(&t).unwrap()),
            )
            .expect("restore");
            if alive {
                while resumed.step().unwrap() {}
            }
            let out = resumed.finish();
            assert_same_streams(&straight, &out, &format!("{mode:?}/cut={cut}"));
        }
    }
}

#[test]
fn restore_refuses_a_different_trace() {
    let t = trace(6, 600.0);
    let program = trace_program(&t, 8, 100.0).unwrap();
    let cfg = program.des_config(SchemeKind::Mtcd, 3).unwrap();
    let mut sim =
        Simulation::with_hook(cfg.clone(), Box::new(TraceHook::new(&t).unwrap())).unwrap();
    for _ in 0..200 {
        assert!(sim.step().unwrap());
    }
    let snap = sim.snapshot();
    let other = trace(7, 600.0);
    match Simulation::restore_with_hook(cfg, &snap, Box::new(TraceHook::new(&other).unwrap()))
        .map(|_| ())
    {
        Err(DesError::Snapshot(SnapshotError::HookMismatch)) => {}
        other => panic!("expected HookMismatch, got {other:?}"),
    }
}
