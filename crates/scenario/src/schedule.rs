//! Piecewise / ramp / periodic / spike functions of time.
//!
//! A [`Schedule`] is the scenario subsystem's representation of every
//! time-varying quantity: the visitor rate `λ₀(t)`, the correlation
//! `p(t)`, the per-downloader abort rate `θ(t)`. It is deliberately a
//! closed enum rather than a boxed closure: schedules must be
//! [validated](Schedule::validate) (non-negative everywhere), must expose
//! a finite [upper bound](Schedule::upper_bound) for thinning, and must
//! [integrate analytically](Schedule::integral) so tests can compare a
//! sampler's empirical counts against the exact `∫λ(t)dt`.

use btfluid_numkit::NumError;

/// The full circle in radians, for the periodic schedule.
const TAU: f64 = 2.0 * std::f64::consts::PI;

/// A deterministic, non-negative function of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// `v(t) = value` for all `t`.
    Constant(f64),
    /// Right-continuous step function: `initial` before the first step,
    /// then each `(time, value)` takes effect at its time. Step times must
    /// be strictly increasing.
    Piecewise {
        /// Value before the first step.
        initial: f64,
        /// `(time, new value)` transitions, strictly increasing in time.
        steps: Vec<(f64, f64)>,
    },
    /// Linear ramp from `from` (at or before `t0`) to `to` (at or after
    /// `t1`), constant outside `[t0, t1]`.
    Ramp {
        /// Value up to `t0`.
        from: f64,
        /// Value from `t1` on.
        to: f64,
        /// Ramp start.
        t0: f64,
        /// Ramp end (must exceed `t0`).
        t1: f64,
    },
    /// Sinusoidal diurnal cycle
    /// `v(t) = mean + amplitude · sin(2π (t − phase)/period)`.
    /// Non-negativity requires `amplitude ≤ mean`.
    Periodic {
        /// Mean level.
        mean: f64,
        /// Oscillation amplitude (`≤ mean`).
        amplitude: f64,
        /// Cycle length (must be positive).
        period: f64,
        /// Time of the ascending zero crossing.
        phase: f64,
    },
    /// Flash crowd: `peak` on `[t0, t1)`, `base` elsewhere.
    Spike {
        /// Level outside the spike window.
        base: f64,
        /// Level inside the spike window.
        peak: f64,
        /// Window start.
        t0: f64,
        /// Window end (must exceed `t0`).
        t1: f64,
    },
}

impl Schedule {
    /// Evaluates the schedule at `t`.
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Schedule::Constant(v) => *v,
            Schedule::Piecewise { initial, steps } => {
                let mut v = *initial;
                for &(at, val) in steps {
                    if t >= at {
                        v = val;
                    } else {
                        break;
                    }
                }
                v
            }
            Schedule::Ramp { from, to, t0, t1 } => {
                if t <= *t0 {
                    *from
                } else if t >= *t1 {
                    *to
                } else {
                    from + (to - from) * (t - t0) / (t1 - t0)
                }
            }
            Schedule::Periodic {
                mean,
                amplitude,
                period,
                phase,
            } => mean + amplitude * (TAU * (t - phase) / period).sin(),
            Schedule::Spike { base, peak, t0, t1 } => {
                if (*t0..*t1).contains(&t) {
                    *peak
                } else {
                    *base
                }
            }
        }
    }

    /// A finite constant `≥ v(t)` for all `t` — the thinning majorizer.
    pub fn upper_bound(&self) -> f64 {
        match self {
            Schedule::Constant(v) => *v,
            Schedule::Piecewise { initial, steps } => {
                steps.iter().map(|&(_, v)| v).fold(*initial, f64::max)
            }
            Schedule::Ramp { from, to, .. } => from.max(*to),
            Schedule::Periodic {
                mean, amplitude, ..
            } => mean + amplitude,
            Schedule::Spike { base, peak, .. } => base.max(*peak),
        }
    }

    /// A constant `≤ v(t)` for all `t` (used by validation).
    pub fn lower_bound(&self) -> f64 {
        match self {
            Schedule::Constant(v) => *v,
            Schedule::Piecewise { initial, steps } => {
                steps.iter().map(|&(_, v)| v).fold(*initial, f64::min)
            }
            Schedule::Ramp { from, to, .. } => from.min(*to),
            Schedule::Periodic {
                mean, amplitude, ..
            } => mean - amplitude,
            Schedule::Spike { base, peak, .. } => base.min(*peak),
        }
    }

    /// Checks the shape parameters and that `v(t) ≥ 0` everywhere.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] for non-finite values, inverted
    /// or empty windows, non-increasing step times, a non-positive period,
    /// or any reachable negative value.
    pub fn validate(&self) -> Result<(), NumError> {
        let fail = |detail: String| {
            Err(NumError::InvalidInput {
                what: "Schedule::validate",
                detail,
            })
        };
        match self {
            Schedule::Constant(v) => {
                if !v.is_finite() {
                    return fail(format!("constant value {v} is not finite"));
                }
            }
            Schedule::Piecewise { initial, steps } => {
                if !initial.is_finite() {
                    return fail(format!("initial value {initial} is not finite"));
                }
                let mut prev = f64::NEG_INFINITY;
                for &(at, v) in steps {
                    if !at.is_finite() || !v.is_finite() {
                        return fail(format!("step ({at}, {v}) is not finite"));
                    }
                    if at <= prev {
                        return fail(format!(
                            "step times must strictly increase, got {at} after {prev}"
                        ));
                    }
                    prev = at;
                }
            }
            Schedule::Ramp { from, to, t0, t1 } => {
                if ![*from, *to, *t0, *t1].iter().all(|x| x.is_finite()) {
                    return fail("ramp has a non-finite parameter".into());
                }
                if t1 <= t0 {
                    return fail(format!("ramp window [{t0}, {t1}] is empty or inverted"));
                }
            }
            Schedule::Periodic {
                mean,
                amplitude,
                period,
                phase,
            } => {
                if ![*mean, *amplitude, *period, *phase]
                    .iter()
                    .all(|x| x.is_finite())
                {
                    return fail("periodic has a non-finite parameter".into());
                }
                if !(*period > 0.0) {
                    return fail(format!("period must be > 0, got {period}"));
                }
                if *amplitude < 0.0 {
                    return fail(format!("amplitude must be ≥ 0, got {amplitude}"));
                }
            }
            Schedule::Spike { base, peak, t0, t1 } => {
                if ![*base, *peak, *t0, *t1].iter().all(|x| x.is_finite()) {
                    return fail("spike has a non-finite parameter".into());
                }
                if t1 <= t0 {
                    return fail(format!("spike window [{t0}, {t1}] is empty or inverted"));
                }
            }
        }
        if self.lower_bound() < 0.0 {
            return fail(format!(
                "schedule reaches {} < 0; rates and probabilities must stay non-negative",
                self.lower_bound()
            ));
        }
        Ok(())
    }

    /// The exact integral `∫ₐᵇ v(t) dt` (`a ≤ b`).
    pub fn integral(&self, a: f64, b: f64) -> f64 {
        debug_assert!(a <= b);
        match self {
            Schedule::Constant(v) => v * (b - a),
            Schedule::Piecewise { initial: _, steps } => {
                let mut total = 0.0;
                let mut seg_start = a;
                let mut seg_value = self.value(a);
                for &(at, v) in steps {
                    if at <= a {
                        continue;
                    }
                    if at >= b {
                        break;
                    }
                    total += seg_value * (at - seg_start);
                    seg_start = at;
                    seg_value = v;
                }
                total + seg_value * (b - seg_start)
            }
            Schedule::Ramp { .. } => {
                // Piecewise linear: trapezoid over each linear span.
                let Schedule::Ramp { t0, t1, .. } = self else {
                    unreachable!()
                };
                let mut total = 0.0;
                let cuts = [a, t0.clamp(a, b), t1.clamp(a, b), b];
                for w in cuts.windows(2) {
                    let (lo, hi) = (w[0], w[1]);
                    if hi > lo {
                        total += 0.5 * (self.value(lo) + self.value(hi)) * (hi - lo);
                    }
                }
                total
            }
            Schedule::Periodic {
                mean,
                amplitude,
                period,
                phase,
            } => {
                let arg = |t: f64| TAU * (t - phase) / period;
                mean * (b - a) + amplitude * period / TAU * (arg(a).cos() - arg(b).cos())
            }
            Schedule::Spike { base, peak, t0, t1 } => {
                let overlap = (b.min(*t1) - a.max(*t0)).max(0.0);
                base * (b - a) + (peak - base) * overlap
            }
        }
    }

    /// Times at which the schedule's value jumps or kinks, in increasing
    /// order (empty for `Constant` and `Periodic`). Scenario phases and
    /// plots anchor to these.
    pub fn boundaries(&self) -> Vec<f64> {
        match self {
            Schedule::Constant(_) | Schedule::Periodic { .. } => Vec::new(),
            Schedule::Piecewise { steps, .. } => steps.iter().map(|&(at, _)| at).collect(),
            Schedule::Ramp { t0, t1, .. } | Schedule::Spike { t0, t1, .. } => vec![*t0, *t1],
        }
    }

    /// Rescales every time parameter by `factor` (values are untouched) —
    /// how smoke-scale scenario variants are derived.
    pub fn time_scaled(&self, factor: f64) -> Self {
        match self {
            Schedule::Constant(v) => Schedule::Constant(*v),
            Schedule::Piecewise { initial, steps } => Schedule::Piecewise {
                initial: *initial,
                steps: steps.iter().map(|&(at, v)| (at * factor, v)).collect(),
            },
            Schedule::Ramp { from, to, t0, t1 } => Schedule::Ramp {
                from: *from,
                to: *to,
                t0: t0 * factor,
                t1: t1 * factor,
            },
            Schedule::Periodic {
                mean,
                amplitude,
                period,
                phase,
            } => Schedule::Periodic {
                mean: *mean,
                amplitude: *amplitude,
                period: period * factor,
                phase: phase * factor,
            },
            Schedule::Spike { base, peak, t0, t1 } => Schedule::Spike {
                base: *base,
                peak: *peak,
                t0: t0 * factor,
                t1: t1 * factor,
            },
        }
    }

    /// Scales all *values* by `factor`, leaving the time axis alone:
    /// `s.rate_scaled(c).value(t) = c · s.value(t)`. The dual of
    /// [`Schedule::time_scaled`] — together they turn any scenario into an
    /// amplified and/or compressed variant (the hybrid benchmarks drive
    /// flash_crowd at λ₀ up to 2048 this way).
    pub fn rate_scaled(&self, factor: f64) -> Self {
        match self {
            Schedule::Constant(v) => Schedule::Constant(v * factor),
            Schedule::Piecewise { initial, steps } => Schedule::Piecewise {
                initial: initial * factor,
                steps: steps.iter().map(|&(at, v)| (at, v * factor)).collect(),
            },
            Schedule::Ramp { from, to, t0, t1 } => Schedule::Ramp {
                from: from * factor,
                to: to * factor,
                t0: *t0,
                t1: *t1,
            },
            Schedule::Periodic {
                mean,
                amplitude,
                period,
                phase,
            } => Schedule::Periodic {
                mean: mean * factor,
                amplitude: amplitude * factor,
                period: *period,
                phase: *phase,
            },
            Schedule::Spike { base, peak, t0, t1 } => Schedule::Spike {
                base: base * factor,
                peak: peak * factor,
                t0: *t0,
                t1: *t1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_everything() {
        let s = Schedule::Constant(2.5);
        assert_eq!(s.value(-10.0), 2.5);
        assert_eq!(s.value(1e9), 2.5);
        assert_eq!(s.upper_bound(), 2.5);
        assert_eq!(s.lower_bound(), 2.5);
        assert!((s.integral(3.0, 7.0) - 10.0).abs() < 1e-12);
        assert!(s.boundaries().is_empty());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn piecewise_steps_and_integral() {
        let s = Schedule::Piecewise {
            initial: 1.0,
            steps: vec![(10.0, 3.0), (20.0, 0.5)],
        };
        assert!(s.validate().is_ok());
        assert_eq!(s.value(5.0), 1.0);
        assert_eq!(s.value(10.0), 3.0);
        assert_eq!(s.value(19.9), 3.0);
        assert_eq!(s.value(25.0), 0.5);
        assert_eq!(s.upper_bound(), 3.0);
        // ∫₀³⁰ = 10·1 + 10·3 + 10·0.5 = 45.
        assert!((s.integral(0.0, 30.0) - 45.0).abs() < 1e-12);
        // Partial window crossing one step: ∫₅¹⁵ = 5·1 + 5·3 = 20.
        assert!((s.integral(5.0, 15.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn piecewise_rejects_unordered_steps() {
        let s = Schedule::Piecewise {
            initial: 1.0,
            steps: vec![(10.0, 3.0), (10.0, 0.5)],
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn ramp_shape_and_integral() {
        let s = Schedule::Ramp {
            from: 1.0,
            to: 3.0,
            t0: 10.0,
            t1: 20.0,
        };
        assert!(s.validate().is_ok());
        assert_eq!(s.value(0.0), 1.0);
        assert_eq!(s.value(15.0), 2.0);
        assert_eq!(s.value(30.0), 3.0);
        // ∫₀³⁰ = 10·1 + 10·2 (trapezoid) + 10·3 = 60.
        assert!((s.integral(0.0, 30.0) - 60.0).abs() < 1e-12);
        assert_eq!(s.boundaries(), vec![10.0, 20.0]);
    }

    #[test]
    fn periodic_bounds_and_full_cycle_integral() {
        let s = Schedule::Periodic {
            mean: 2.0,
            amplitude: 1.5,
            period: 100.0,
            phase: 0.0,
        };
        assert!(s.validate().is_ok());
        assert!((s.upper_bound() - 3.5).abs() < 1e-12);
        assert!((s.lower_bound() - 0.5).abs() < 1e-12);
        // A whole cycle integrates to mean·period.
        assert!((s.integral(0.0, 100.0) - 200.0).abs() < 1e-9);
        // Quarter cycle [0, 25): mean·25 + amp·period/2π.
        let expect = 2.0 * 25.0 + 1.5 * 100.0 / TAU;
        assert!((s.integral(0.0, 25.0) - expect).abs() < 1e-9);
    }

    #[test]
    fn periodic_negative_dip_rejected() {
        let s = Schedule::Periodic {
            mean: 1.0,
            amplitude: 1.5,
            period: 100.0,
            phase: 0.0,
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn spike_window_and_integral() {
        let s = Schedule::Spike {
            base: 0.25,
            peak: 1.0,
            t0: 100.0,
            t1: 200.0,
        };
        assert!(s.validate().is_ok());
        assert_eq!(s.value(99.9), 0.25);
        assert_eq!(s.value(100.0), 1.0);
        assert_eq!(s.value(199.9), 1.0);
        assert_eq!(s.value(200.0), 0.25);
        // ∫₀³⁰⁰ = 0.25·300 + 0.75·100 = 150.
        assert!((s.integral(0.0, 300.0) - 150.0).abs() < 1e-12);
        // No overlap.
        assert!((s.integral(300.0, 400.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn negative_values_rejected_everywhere() {
        assert!(Schedule::Constant(-0.1).validate().is_err());
        assert!(Schedule::Ramp {
            from: 1.0,
            to: -0.5,
            t0: 0.0,
            t1: 1.0
        }
        .validate()
        .is_err());
        assert!(Schedule::Spike {
            base: 0.0,
            peak: -1.0,
            t0: 0.0,
            t1: 1.0
        }
        .validate()
        .is_err());
        assert!(Schedule::Piecewise {
            initial: 0.5,
            steps: vec![(5.0, -0.5)]
        }
        .validate()
        .is_err());
    }

    #[test]
    fn non_finite_rejected() {
        assert!(Schedule::Constant(f64::NAN).validate().is_err());
        assert!(Schedule::Spike {
            base: 0.0,
            peak: f64::INFINITY,
            t0: 0.0,
            t1: 1.0
        }
        .validate()
        .is_err());
        assert!(Schedule::Periodic {
            mean: 1.0,
            amplitude: 0.5,
            period: 0.0,
            phase: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn time_scaling_squeezes_the_axis() {
        let s = Schedule::Spike {
            base: 0.25,
            peak: 1.0,
            t0: 100.0,
            t1: 200.0,
        };
        let q = s.time_scaled(0.25);
        assert_eq!(q.value(24.9), 0.25);
        assert_eq!(q.value(25.0), 1.0);
        assert_eq!(q.value(50.0), 0.25);
        // Values preserved, integral scales with the axis.
        assert!((q.integral(0.0, 75.0) - s.integral(0.0, 300.0) * 0.25).abs() < 1e-9);
    }

    #[test]
    fn rate_scaling_multiplies_values_pointwise() {
        let shapes = [
            Schedule::Constant(0.25),
            Schedule::Piecewise {
                initial: 0.2,
                steps: vec![(100.0, 0.6)],
            },
            Schedule::Ramp {
                from: 0.1,
                to: 0.9,
                t0: 50.0,
                t1: 150.0,
            },
            Schedule::Periodic {
                mean: 0.5,
                amplitude: 0.25,
                period: 200.0,
                phase: 10.0,
            },
            Schedule::Spike {
                base: 0.25,
                peak: 1.0,
                t0: 100.0,
                t1: 200.0,
            },
        ];
        for s in &shapes {
            let scaled = s.rate_scaled(8.0);
            for &t in &[0.0, 75.0, 120.0, 250.0] {
                assert!(
                    (scaled.value(t) - 8.0 * s.value(t)).abs() < 1e-12,
                    "{s:?} at t = {t}"
                );
            }
            assert!((scaled.upper_bound() - 8.0 * s.upper_bound()).abs() < 1e-12);
            scaled.validate().unwrap();
        }
    }
}
