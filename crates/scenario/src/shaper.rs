//! Measurement-shaped trace synthesis.
//!
//! The paper's workload is stationary Poisson with one correlation knob
//! `p`. Measurements of live BitTorrent populations (Mazurczyk &
//! Kopiczko, "Understanding BitTorrent through real measurements",
//! arXiv:1110.6265) show three systematic departures from that picture:
//! arrival intensity follows a pronounced diurnal cycle, per-user session
//! activity is heavy-tailed (a few users account for a large share of the
//! demand), and the population is skewed toward seeders — only a fraction
//! of observed joins are *new leechers* pulling content.
//!
//! [`TraceShaper`] composes the existing [`Schedule`] machinery with
//! those three effects and emits [`ArrivalTrace`]s through the same
//! codec and validation path as the synthetic generator:
//!
//! * **Diurnal intensity** — visitors arrive by Lewis–Shedler thinning
//!   against `λ₀(t)` (any [`Schedule`], typically [`Schedule::Periodic`]).
//! * **Heavy-tailed sessions** — each visitor draws a Pareto(1, α)
//!   session-intensity multiplier `S` (inverse-CDF `u^{-1/α}`), and its
//!   per-file request probability becomes `clamp(p(t) · S / E[S], 0, 1)`.
//!   `E[S] = α/(α−1)` for `α > 1`, so the modulation weight has unit
//!   mean: typical sessions are barely perturbed while a heavy tail of
//!   users requests many files at once (the clamp at 1 truncates the
//!   most extreme sessions, so realized mean demand dips slightly below
//!   the unmodulated value). `α = 0` disables the effect (every session
//!   weight is 1).
//! * **Seeder/leecher skew** — an independent Bernoulli keeps each
//!   arrival with probability `leecher_fraction`; the rest model joins
//!   that re-seed existing content and inject no download demand.
//!
//! With neutral knobs (constant schedules, `α = 0`,
//! `leecher_fraction = 1`) the shaper reduces exactly to the stationary
//! generator's law, which is what the `trace-fit-closure` oracle check
//! exploits: [`crate::replay`]'s fit of a shaped trace can be re-shaped
//! and re-fit, and the moments must close.

use crate::schedule::Schedule;
use btfluid_numkit::dist::ThinnedPoisson;
use btfluid_numkit::rng::RngCore;
use btfluid_numkit::NumError;
use btfluid_workload::trace::Arrival;
use btfluid_workload::{ArrivalTrace, CorrelationModel, RequestSampler};

/// Measurement-calibrated trace synthesizer (module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceShaper {
    /// Visitor intensity `λ₀(t)`.
    pub lambda0: Schedule,
    /// Per-file request probability `p(t)` before session modulation.
    pub correlation: Schedule,
    /// Number of files `K`.
    pub k: u32,
    /// Trace horizon (half-open window `[0, horizon)`).
    pub horizon: f64,
    /// Pareto tail index α of the session-intensity multiplier; `0`
    /// disables the effect, otherwise must exceed 1 (finite mean).
    pub session_alpha: f64,
    /// Fraction of joins that are new leechers, in `(0, 1]`.
    pub leecher_fraction: f64,
}

impl TraceShaper {
    /// A neutral shaper: constant schedules, no session tail, every join
    /// a leecher. Synthesizes the exact law of
    /// [`ArrivalTrace::generate`] for the same `(λ₀, p, K)`.
    pub fn flat(lambda0: f64, p: f64, k: u32, horizon: f64) -> Self {
        Self {
            lambda0: Schedule::Constant(lambda0),
            correlation: Schedule::Constant(p),
            k,
            horizon,
            session_alpha: 0.0,
            leecher_fraction: 1.0,
        }
    }

    /// The measurement-calibrated preset: diurnal λ₀(t) with a ±60%
    /// swing, Pareto(α = 1.5) session tails, and a 70% leecher share —
    /// the qualitative shape reported by arXiv:1110.6265, scaled to the
    /// workspace's reference intensity (`λ₀ = 0.25`, `p = 0.4`, one
    /// diurnal cycle per 1600 time units, matching the `diurnal`
    /// scenario).
    pub fn measured(k: u32, horizon: f64) -> Self {
        Self {
            lambda0: Schedule::Periodic {
                mean: 0.25,
                amplitude: 0.15,
                period: 1600.0,
                phase: 0.0,
            },
            correlation: Schedule::Constant(0.4),
            k,
            horizon,
            session_alpha: 1.5,
            leecher_fraction: 0.7,
        }
    }

    /// Validates schedules, geometry, and knob domains.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] for invalid schedules, a `p(t)`
    /// leaving `[0, 1]`, a zero-everywhere `λ₀`, a non-positive horizon,
    /// `k = 0`, `session_alpha` in `(0, 1]` (infinite-mean tail) or
    /// non-finite, or a `leecher_fraction` outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), NumError> {
        let fail = |detail: String| {
            Err(NumError::InvalidInput {
                what: "TraceShaper::validate",
                detail,
            })
        };
        self.lambda0.validate()?;
        self.correlation.validate()?;
        if self.k == 0 {
            return fail("k must be >= 1".into());
        }
        if !(self.lambda0.upper_bound() > 0.0) {
            return fail("λ₀(t) is zero everywhere; nobody would ever arrive".into());
        }
        if self.correlation.upper_bound() > 1.0 {
            return fail(format!(
                "correlation reaches {} > 1; p(t) must stay a probability",
                self.correlation.upper_bound()
            ));
        }
        if !(self.horizon > 0.0) || !self.horizon.is_finite() {
            return fail(format!(
                "horizon must be finite and > 0, got {}",
                self.horizon
            ));
        }
        if !self.session_alpha.is_finite() || self.session_alpha < 0.0 {
            return fail(format!(
                "session_alpha must be finite and >= 0, got {}",
                self.session_alpha
            ));
        }
        if self.session_alpha > 0.0 && self.session_alpha <= 1.0 {
            return fail(format!(
                "session_alpha = {} has an infinite-mean Pareto tail; use α > 1 (or 0 to disable)",
                self.session_alpha
            ));
        }
        if !(self.leecher_fraction > 0.0) || self.leecher_fraction > 1.0 {
            return fail(format!(
                "leecher_fraction must lie in (0, 1], got {}",
                self.leecher_fraction
            ));
        }
        Ok(())
    }

    /// Synthesizes a trace over `[0, horizon)` (module docs), emitting
    /// through the same validating constructor as every other trace
    /// source.
    ///
    /// # Errors
    /// Propagates [`Self::validate`] failures.
    pub fn synthesize<R: RngCore + ?Sized>(&self, rng: &mut R) -> Result<ArrivalTrace, NumError> {
        self.validate()?;
        let bound = self.lambda0.upper_bound();
        let process = ThinnedPoisson::new(|t| self.lambda0.value(t), bound)?;
        // The sampler only carries K here; per-arrival probabilities are
        // passed explicitly, so the reference p is arbitrary.
        let sampler = RequestSampler::new(CorrelationModel::new(self.k, 0.5, bound)?);
        let mean_session = if self.session_alpha > 1.0 {
            self.session_alpha / (self.session_alpha - 1.0)
        } else {
            1.0
        };
        let mut arrivals = Vec::new();
        let mut t = 0.0;
        while let Some(s) = process.next_before(t, self.horizon, rng) {
            t = s;
            if self.leecher_fraction < 1.0 && rng.next_f64() >= self.leecher_fraction {
                continue; // a seeder join: no download demand
            }
            let mut p = self.correlation.value(s);
            if self.session_alpha > 0.0 {
                let session = rng.next_f64_open().powf(-1.0 / self.session_alpha);
                p = (p * session / mean_session).clamp(0.0, 1.0);
            }
            let files = sampler.sample_visitor_with_p(rng, p);
            if !files.is_empty() {
                arrivals.push(Arrival { time: s, files });
            }
        }
        ArrivalTrace::from_parts(arrivals, self.horizon, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_numkit::rng::Xoshiro256StarStar;
    use btfluid_workload::fit_model;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let mut s = TraceShaper::flat(0.25, 0.4, 10, 1000.0);
        assert!(s.validate().is_ok());
        s.session_alpha = 0.8; // infinite mean
        assert!(s.validate().is_err());
        s.session_alpha = 0.0;
        s.leecher_fraction = 0.0;
        assert!(s.validate().is_err());
        s.leecher_fraction = 1.5;
        assert!(s.validate().is_err());
        s.leecher_fraction = 1.0;
        s.k = 0;
        assert!(s.validate().is_err());
        s.k = 10;
        s.horizon = -1.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn neutral_shaper_matches_generator_law() {
        // Flat knobs reduce to the stationary generator: the fitted
        // parameters of a long shaped trace recover (λ₀, p).
        let shaper = TraceShaper::flat(0.25, 0.4, 10, 30_000.0);
        let t = shaper.synthesize(&mut rng(1)).unwrap();
        let fit = fit_model(&t).unwrap();
        assert!((fit.p() - 0.4).abs() < 0.02, "p̂ = {}", fit.p());
        assert!(
            (fit.lambda0() - 0.25).abs() < 0.02,
            "λ̂₀ = {}",
            fit.lambda0()
        );
    }

    #[test]
    fn leecher_fraction_thins_the_rate() {
        let full = TraceShaper::flat(0.5, 0.5, 8, 20_000.0);
        let mut half = full.clone();
        half.leecher_fraction = 0.5;
        let r_full = full.synthesize(&mut rng(2)).unwrap().empirical_rate();
        let r_half = half.synthesize(&mut rng(2)).unwrap().empirical_rate();
        let ratio = r_half / r_full;
        assert!((ratio - 0.5).abs() < 0.05, "thinning ratio {ratio}");
    }

    #[test]
    fn session_tail_fattens_classes_without_inflating_demand() {
        let base = TraceShaper::flat(0.5, 0.3, 10, 40_000.0);
        let mut tailed = base.clone();
        tailed.session_alpha = 1.5;
        let t0 = base.synthesize(&mut rng(3)).unwrap();
        let t1 = tailed.synthesize(&mut rng(4)).unwrap();
        // The modulation weight has unit mean but the clamp at p = 1
        // truncates extreme sessions: realized demand stays the same
        // order, never inflated.
        let d0 = t0.total_files() as f64 / t0.horizon();
        let d1 = t1.total_files() as f64 / t1.horizon();
        assert!(d1 <= d0 * 1.05 && d1 > d0 * 0.5, "demand {d1} vs {d0}");
        // The tail pushes mass into high classes: class-K (all-files)
        // arrivals become far more common than under the flat law.
        let frac_top = |t: &ArrivalTrace| {
            t.arrivals().iter().filter(|a| a.class() == 10).count() as f64 / t.len() as f64
        };
        assert!(
            frac_top(&t1) > 2.0 * frac_top(&t0).max(1e-4),
            "top-class fraction {} vs {}",
            frac_top(&t1),
            frac_top(&t0)
        );
    }

    #[test]
    fn measured_preset_validates_and_synthesizes() {
        let shaper = TraceShaper::measured(10, 4000.0);
        shaper.validate().unwrap();
        let t = shaper.synthesize(&mut rng(5)).unwrap();
        assert!(!t.is_empty());
        assert_eq!(t.k(), 10);
        // The codec accepts its own output.
        assert_eq!(ArrivalTrace::from_csv(&t.to_csv()).unwrap(), t);
    }

    #[test]
    fn deterministic_given_seed() {
        let shaper = TraceShaper::measured(6, 2000.0);
        let a = shaper.synthesize(&mut rng(9)).unwrap();
        let b = shaper.synthesize(&mut rng(9)).unwrap();
        assert_eq!(a, b);
    }
}
