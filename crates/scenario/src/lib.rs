//! # btfluid-scenario
//!
//! Non-stationary workloads, churn, and fault injection for the btfluid
//! DES and fluid paths.
//!
//! The stationary pipeline (fluid closed forms, `btfluid-des`, the bench
//! harnesses) answers "what does the system do in equilibrium?". This
//! crate answers "what happens when the workload *moves*": flash crowds,
//! diurnal cycles, seed crashes, tracker blackouts, abort storms, and
//! slow drifts of the request correlation.
//!
//! ## Architecture
//!
//! * [`Schedule`] — piecewise / ramp / periodic / spike functions of time,
//!   with analytic integrals and finite upper bounds (the thinning
//!   majorizers).
//! * [`FaultPlan`] — deterministic fault description: per-downloader abort
//!   rate `θ(t)`, origin-seed crash windows, tracker blackout windows.
//! * [`ScenarioProgram`] — a complete experiment: workload schedules +
//!   faults + fluid parameters + run geometry + reporting phases. Compiles
//!   to a [`ProgramHook`] (the engine-facing
//!   [`btfluid_des::ScenarioHook`]) and a per-scheme
//!   [`btfluid_des::DesConfig`].
//! * [`registry`] — the five named scenarios behind
//!   `btfluid scenario <name>`: `flash_crowd`, `diurnal`, `seed_outage`,
//!   `abort_storm`, `correlation_drift`.
//! * [`runner`] — runs a program against the four schemes plus
//!   CMFSD+Adapt and buckets results into per-phase timelines.
//! * [`fluid`] — the MTCD ODE driven by the same schedules
//!   ([`ScheduledMtcd`]), for DES-vs-fluid comparison beyond steady state.
//!
//! Determinism: a scenario run is a pure function of `(program, scheme,
//! seed)`. Scenario randomness draws from its own RNG stream, so attaching
//! a hook never perturbs the arrival/service draws of the underlying
//! stationary engine, and the engine's `exact_rates` bit-equivalence
//! guarantee extends to scenario runs.

#![forbid(unsafe_code)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod fault;
pub mod fluid;
pub mod program;
pub mod registry;
pub mod replay;
pub mod runner;
pub mod schedule;
pub mod shaper;

pub use fault::FaultPlan;
pub use fluid::{des_avg_downloaders, fluid_avg_downloaders, ScheduledMtcd, ScheduledMtsd};
pub use program::{ProgramHook, ScenarioPhase, ScenarioProgram};
pub use registry::{by_name, SCENARIO_NAMES};
pub use replay::{trace_program, TraceHook};
pub use runner::{run_all, run_one, scheme_lineup, PhaseStats, RateMode, ScenarioRun};
pub use schedule::Schedule;
pub use shaper::TraceShaper;

/// Convenience error alias.
pub type ScenarioError = btfluid_numkit::NumError;
