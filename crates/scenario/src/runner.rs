//! Running a scenario program against the DES schemes and bucketing the
//! outcome into per-phase timelines.

use crate::program::ScenarioProgram;
use btfluid_core::adapt::AdaptConfig;
use btfluid_des::{AdaptSetup, ClassStats, Probe, SchemeKind, SimOutcome, Simulation, UserRecord};
use btfluid_numkit::NumError;

/// Per-phase aggregation of one scenario run: users are bucketed by
/// arrival time, aborts by the time the abort fired.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase name from the program.
    pub name: String,
    /// Phase start (inclusive).
    pub start: f64,
    /// Phase end (exclusive).
    pub end: f64,
    /// Per-class statistics over users who *arrived* inside the phase and
    /// completed (index 0 ↔ class 1).
    pub classes: Vec<ClassStats>,
    /// Aborts that fired inside the phase.
    pub aborted: usize,
}

impl PhaseStats {
    /// Users counted across all classes.
    pub fn completed(&self) -> u64 {
        self.classes.iter().map(ClassStats::count).sum()
    }

    /// Mean online time per file over the phase's completed users, or
    /// `None` when nobody completed.
    pub fn online_per_file(&self) -> Option<f64> {
        let mut online = 0.0;
        let mut files = 0.0;
        for (idx, c) in self.classes.iter().enumerate() {
            online += c.online.mean() * c.count() as f64;
            files += (idx + 1) as f64 * c.count() as f64;
        }
        (files > 0.0).then(|| online / files)
    }
}

/// One scheme's run of a scenario program.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Display label (`MTCD`, `CMFSD+Adapt`, …).
    pub label: String,
    /// The scheme simulated.
    pub scheme: SchemeKind,
    /// The full simulation outcome (trajectory included).
    pub outcome: SimOutcome,
    /// Per-phase timeline in program order.
    pub phases: Vec<PhaseStats>,
}

/// Buckets an outcome into the program's reporting phases — the same
/// aggregation [`run_one`] applies, exposed for callers that drive the
/// engine themselves (e.g. the crash-safe checkpoint driver).
pub fn phase_stats(program: &ScenarioProgram, outcome: &SimOutcome) -> Vec<PhaseStats> {
    bucket_phases(program, outcome)
}

fn bucket_phases(program: &ScenarioProgram, outcome: &SimOutcome) -> Vec<PhaseStats> {
    program
        .phases
        .iter()
        .map(|ph| {
            let mut classes = vec![ClassStats::default(); program.k as usize];
            for r in &outcome.records {
                if (ph.start..ph.end).contains(&r.arrival) {
                    push_record(&mut classes[r.class - 1], r);
                }
            }
            let aborted = outcome
                .aborts
                .iter()
                .filter(|a| (ph.start..ph.end).contains(&a.time))
                .count();
            PhaseStats {
                name: ph.name.clone(),
                start: ph.start,
                end: ph.end,
                classes,
                aborted,
            }
        })
        .collect()
}

fn push_record(stats: &mut ClassStats, r: &UserRecord) {
    stats.download.push(r.download_span);
    stats.online.push(r.online_fluid);
    stats.rho.push(r.final_rho);
}

/// Which rate-scheduling engine a scenario run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RateMode {
    /// Incremental dirty-tracking refresh — the production default.
    #[default]
    Incremental,
    /// Forced full recompute on every event: O(peers) per event,
    /// bit-identical to [`RateMode::Incremental`] (the verification
    /// baseline).
    Exact,
    /// Class-aggregated completion scheduling: one exponential completion
    /// event per (file, class, band) group, flat per-event cost.
    /// Distribution-equivalent to the per-peer modes, not bit-identical;
    /// incompatible with Adapt (which needs per-peer progress accounting).
    Aggregate,
}

impl RateMode {
    /// Applies the mode to an engine configuration.
    pub fn apply(self, cfg: &mut btfluid_des::DesConfig) {
        cfg.exact_rates = self == RateMode::Exact;
        cfg.aggregate = self == RateMode::Aggregate;
    }
}

/// Runs one scheme (optionally with Adapt) against the program.
///
/// # Errors
/// Propagates configuration validation errors.
pub fn run_one(
    program: &ScenarioProgram,
    scheme: SchemeKind,
    adapt: Option<AdaptSetup>,
    label: &str,
    seed: u64,
    mode: RateMode,
) -> Result<ScenarioRun, NumError> {
    run_one_probed(program, scheme, adapt, label, seed, mode, None)
}

/// [`run_one`] with a telemetry probe attached to the engine. Probes only
/// observe, so the outcome is bit-identical to the probe-free run.
///
/// # Errors
/// Propagates configuration validation errors.
#[allow(clippy::too_many_arguments)]
pub fn run_one_probed(
    program: &ScenarioProgram,
    scheme: SchemeKind,
    adapt: Option<AdaptSetup>,
    label: &str,
    seed: u64,
    mode: RateMode,
    probe: Option<Box<dyn Probe>>,
) -> Result<ScenarioRun, NumError> {
    program.validate()?;
    let mut cfg = program.des_config(scheme, seed)?;
    cfg.adapt = adapt;
    mode.apply(&mut cfg);
    cfg.validate()?;
    let mut sim = Simulation::with_hook(cfg, Box::new(program.hook()))?;
    if let Some(probe) = probe {
        sim.attach_probe(probe);
    }
    let outcome = sim.run();
    let phases = bucket_phases(program, &outcome);
    Ok(ScenarioRun {
        label: label.into(),
        scheme,
        outcome,
        phases,
    })
}

/// The scheme line-up every scenario is run against: the paper's four
/// schemes plus CMFSD with the Adapt layer attached.
pub fn scheme_lineup(program: &ScenarioProgram) -> Vec<(SchemeKind, Option<AdaptSetup>, String)> {
    let cmfsd = SchemeKind::Cmfsd { rho: 0.5 };
    let adapt = AdaptSetup {
        controller: AdaptConfig::default_for_mu(program.params.mu()),
        epoch: 20.0,
        cheater_fraction: 0.0,
    };
    vec![
        (SchemeKind::Mtsd, None, "MTSD".into()),
        (SchemeKind::Mtcd, None, "MTCD".into()),
        (SchemeKind::Mfcd, None, "MFCD".into()),
        (cmfsd, None, cmfsd.name()),
        (cmfsd, Some(adapt), "CMFSD+Adapt".into()),
    ]
}

/// Runs the full scheme line-up against the program with a shared seed.
///
/// # Errors
/// Propagates configuration validation errors from any run.
pub fn run_all(
    program: &ScenarioProgram,
    seed: u64,
    mode: RateMode,
) -> Result<Vec<ScenarioRun>, NumError> {
    run_all_probed(program, seed, mode, &mut |_| None)
}

/// [`run_all`] with a per-scheme telemetry probe: `make_probe` is called
/// with each run's label and may return a probe for it (e.g. one
/// [`btfluid_des::SinkProbe`] per scheme sharing a trace sink).
///
/// In [`RateMode::Aggregate`] the CMFSD+Adapt cell is omitted: Adapt
/// steers individual ρ from per-peer progress, which the aggregate engine
/// does not track (its config is rejected by validation). The shorter
/// line-up is visible in the returned runs rather than silently downgraded
/// to a different mode.
///
/// # Errors
/// Propagates configuration validation errors from any run.
pub fn run_all_probed(
    program: &ScenarioProgram,
    seed: u64,
    mode: RateMode,
    make_probe: &mut dyn FnMut(&str) -> Option<Box<dyn Probe>>,
) -> Result<Vec<ScenarioRun>, NumError> {
    scheme_lineup(program)
        .into_iter()
        .filter(|(_, adapt, _)| !(mode == RateMode::Aggregate && adapt.is_some()))
        .map(|(scheme, adapt, label)| {
            let probe = make_probe(&label);
            run_one_probed(program, scheme, adapt, &label, seed, mode, probe)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    /// A tiny flash crowd (quarter scale) runs end to end on every scheme
    /// and produces per-phase stats.
    #[test]
    fn smoke_flash_crowd_all_schemes() {
        let program = registry::flash_crowd().time_scaled(0.25);
        let runs = run_all(&program, 7, RateMode::Incremental).expect("runs");
        assert_eq!(runs.len(), 5);
        for run in &runs {
            assert_eq!(run.phases.len(), 3, "{}", run.label);
            assert!(run.outcome.arrivals > 0, "{}: no arrivals", run.label);
            let completed: u64 = run.phases.iter().map(PhaseStats::completed).sum();
            assert!(completed > 0, "{}: nobody completed", run.label);
            // The surge phase must see more arrivals per unit time than the
            // pre phase: count raw records bucketed by arrival.
            let per_rate = |ph: &PhaseStats| {
                run.outcome
                    .records
                    .iter()
                    .filter(|r| (ph.start..ph.end).contains(&r.arrival))
                    .count() as f64
                    / (ph.end - ph.start)
            };
            let pre = per_rate(&run.phases[0]);
            let surge = per_rate(&run.phases[1]);
            assert!(
                surge > pre,
                "{}: surge rate {surge} not above pre rate {pre}",
                run.label
            );
        }
    }

    /// Abort storm actually aborts peers, and all aborts land in the storm
    /// phase or later (the abort schedule is zero before it).
    #[test]
    fn abort_storm_produces_aborts() {
        let program = registry::abort_storm().time_scaled(0.25);
        let run = run_one(
            &program,
            SchemeKind::Mtcd,
            None,
            "MTCD",
            11,
            RateMode::Incremental,
        )
        .expect("run");
        assert!(
            !run.outcome.aborts.is_empty(),
            "storm injected no aborts at all"
        );
        let storm_start = program.faults.abort.boundaries()[0];
        for a in &run.outcome.aborts {
            assert!(a.time >= storm_start, "abort at {} before storm", a.time);
        }
    }

    /// Telemetry probes never perturb hooked runs: with a sampling probe
    /// attached the outcome is bit-identical to the bare run, in both
    /// `exact_rates` modes (the des-level proptest covers hookless runs).
    #[test]
    fn probe_never_perturbs_hooked_runs() {
        use btfluid_des::{Counters, MemoryProbe, Sample};
        use std::sync::{Arc, Mutex};

        struct Fwd(Arc<Mutex<MemoryProbe>>);
        impl Probe for Fwd {
            fn sample_every(&self) -> f64 {
                self.0.lock().unwrap().sample_every()
            }
            fn on_sample(&mut self, s: &Sample<'_>) {
                self.0.lock().unwrap().on_sample(s);
            }
            fn on_finish(&mut self, t: f64, c: &Counters) {
                self.0.lock().unwrap().on_finish(t, c);
            }
        }

        let program = registry::flash_crowd().time_scaled(0.25);
        for mode in [RateMode::Incremental, RateMode::Exact] {
            let bare = run_one(&program, SchemeKind::Mtcd, None, "MTCD", 9, mode).expect("bare");
            let shared = Arc::new(Mutex::new(MemoryProbe::new(5.0)));
            let probed = run_one_probed(
                &program,
                SchemeKind::Mtcd,
                None,
                "MTCD",
                9,
                mode,
                Some(Box::new(Fwd(Arc::clone(&shared)))),
            )
            .expect("probed");
            assert_eq!(bare.outcome.events, probed.outcome.events);
            assert_eq!(bare.outcome.arrivals, probed.outcome.arrivals);
            assert_eq!(bare.outcome.records.len(), probed.outcome.records.len());
            for (a, b) in bare.outcome.records.iter().zip(&probed.outcome.records) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.departure.to_bits(), b.departure.to_bits());
                assert_eq!(a.download_span.to_bits(), b.download_span.to_bits());
                assert_eq!(a.online_fluid.to_bits(), b.online_fluid.to_bits());
            }
            assert_eq!(bare.outcome.aborts.len(), probed.outcome.aborts.len());
            assert_eq!(
                bare.outcome.population.window.to_bits(),
                probed.outcome.population.window.to_bits()
            );
            let mem = shared.lock().unwrap();
            assert!(!mem.samples.is_empty(), "sampler never fired ({mode:?})");
            assert!(mem.finished.is_some(), "on_finish not called");
        }
    }

    /// Phase online-per-file helper is consistent with the outcome.
    #[test]
    fn phase_metric_sanity() {
        let program = registry::diurnal().time_scaled(0.25);
        let run = run_one(
            &program,
            SchemeKind::Mtsd,
            None,
            "MTSD",
            3,
            RateMode::Incremental,
        )
        .expect("run");
        for ph in &run.phases {
            if ph.completed() > 0 {
                let v = ph.online_per_file().expect("metric");
                assert!(v.is_finite() && v > 0.0);
            }
        }
    }
}
