//! Scenario programs: a complete non-stationary experiment description.
//!
//! A [`ScenarioProgram`] bundles the time-varying workload (visitor rate
//! `λ₀(t)` and correlation `p(t)`), a [`FaultPlan`], the fluid parameters,
//! and the run geometry (horizon, warm-up, drain, phase boundaries). It
//! compiles down to the two artefacts the rest of the workspace consumes:
//! a [`ProgramHook`] for the DES engine and a [`DesConfig`] per scheme.

use crate::fault::{in_window, next_edge, FaultPlan};
use crate::schedule::Schedule;
use btfluid_core::FluidParams;
use btfluid_des::{DesConfig, OrderPolicy, ScenarioHook, SchemeKind};
use btfluid_numkit::NumError;
use btfluid_workload::CorrelationModel;

/// A named sub-interval of a scenario, used to bucket statistics
/// (pre-surge / surge / recovery, and so on).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPhase {
    /// Human-readable phase name.
    pub name: String,
    /// Phase start (inclusive).
    pub start: f64,
    /// Phase end (exclusive).
    pub end: f64,
}

impl ScenarioPhase {
    /// Convenience constructor.
    pub fn new(name: &str, start: f64, end: f64) -> Self {
        Self {
            name: name.into(),
            start,
            end,
        }
    }
}

/// A complete non-stationary experiment: workload schedules, faults, fluid
/// parameters, and run geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioProgram {
    /// Registry name (`flash_crowd`, …).
    pub name: String,
    /// One-line description for `btfluid scenario list`.
    pub description: String,
    /// Visitor arrival rate `λ₀(t)`.
    pub lambda0: Schedule,
    /// Request correlation `p(t)`; values are probabilities in `[0, 1]`.
    pub correlation: Schedule,
    /// Churn and fault injection.
    pub faults: FaultPlan,
    /// Fluid parameters `μ, η, γ`.
    pub params: FluidParams,
    /// Number of files `K`.
    pub k: u32,
    /// Arrival horizon.
    pub horizon: f64,
    /// Warm-up cut for stationary-window statistics.
    pub warmup: f64,
    /// Drain time beyond the horizon.
    pub drain: f64,
    /// Baseline number of origin (publisher) seeds; outage windows drop the
    /// count to zero.
    pub origin_seeds: usize,
    /// Population-trajectory recording interval.
    pub record_every: f64,
    /// Reporting phases (may be empty; need not cover the horizon).
    pub phases: Vec<ScenarioPhase>,
}

impl ScenarioProgram {
    /// A stationary (constant-schedule, fault-free) program — the bridge
    /// between the non-stationary machinery and the paper's steady-state
    /// models. Used by the self-check oracle to compare the transient ODE,
    /// the closed forms, and the DES on identical inputs. `origin_seeds`
    /// is 0 because the fluid model has no publisher term.
    pub fn stationary(
        name: &str,
        lambda0: f64,
        p: f64,
        k: u32,
        horizon: f64,
        warmup: f64,
        drain: f64,
    ) -> Self {
        Self {
            name: name.into(),
            description: format!("stationary λ₀={lambda0}, p={p}, K={k}"),
            lambda0: Schedule::Constant(lambda0),
            correlation: Schedule::Constant(p),
            faults: FaultPlan::default(),
            params: FluidParams::paper(),
            k,
            horizon,
            warmup,
            drain,
            origin_seeds: 0,
            record_every: 50.0,
            phases: Vec::new(),
        }
    }

    /// Validates schedules, faults, geometry, and phases.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] for invalid schedules or windows,
    /// a `λ₀` that is zero everywhere, a correlation leaving `[0, 1]`,
    /// inconsistent horizon/warm-up/drain, or an empty/inverted phase.
    pub fn validate(&self) -> Result<(), NumError> {
        let fail = |detail: String| {
            Err(NumError::InvalidInput {
                what: "ScenarioProgram::validate",
                detail,
            })
        };
        self.lambda0.validate()?;
        self.correlation.validate()?;
        self.faults.validate()?;
        if self.k == 0 {
            return fail("k must be >= 1".into());
        }
        if !(self.lambda0.upper_bound() > 0.0) {
            return fail("λ₀(t) is zero everywhere; nobody would ever arrive".into());
        }
        if self.correlation.upper_bound() > 1.0 {
            return fail(format!(
                "correlation reaches {} > 1; p(t) must stay a probability",
                self.correlation.upper_bound()
            ));
        }
        if !(self.horizon > 0.0) || !self.horizon.is_finite() {
            return fail(format!(
                "horizon must be finite and > 0, got {}",
                self.horizon
            ));
        }
        if !(self.warmup >= 0.0) || self.warmup >= self.horizon {
            return fail(format!(
                "warmup must lie in [0, horizon), got {} with horizon {}",
                self.warmup, self.horizon
            ));
        }
        if !(self.drain >= 0.0) || !self.drain.is_finite() {
            return fail(format!("drain must be finite and >= 0, got {}", self.drain));
        }
        if !(self.record_every > 0.0) || !self.record_every.is_finite() {
            return fail(format!(
                "record_every must be finite and > 0, got {}",
                self.record_every
            ));
        }
        for ph in &self.phases {
            if !(ph.start < ph.end) || ph.start < 0.0 {
                return fail(format!(
                    "phase '{}' window [{}, {}) is empty, inverted, or negative",
                    ph.name, ph.start, ph.end
                ));
            }
        }
        Ok(())
    }

    /// Compiles the program into the engine-facing hook.
    pub fn hook(&self) -> ProgramHook {
        ProgramHook {
            lambda0: self.lambda0.clone(),
            correlation: self.correlation.clone(),
            faults: self.faults.clone(),
            origin_base: self.origin_seeds,
        }
    }

    /// Builds the DES configuration for one scheme.
    ///
    /// The embedded [`CorrelationModel`] carries *reference* values (`λ₀`
    /// upper bound, `p(0)` clamped away from zero): a hooked engine samples
    /// arrivals and request sets from the hook's schedules, not from the
    /// model, so these only anchor validation and `K`.
    ///
    /// # Errors
    /// Propagates model and configuration validation errors.
    pub fn des_config(&self, scheme: SchemeKind, seed: u64) -> Result<DesConfig, NumError> {
        let p_ref = self.correlation.value(0.0).clamp(0.01, 1.0);
        let cfg = DesConfig {
            params: self.params,
            model: CorrelationModel::new(self.k, p_ref, self.lambda0.upper_bound())?,
            scheme,
            horizon: self.horizon,
            warmup: self.warmup,
            drain: self.drain,
            seed,
            adapt: None,
            origin_seeds: self.origin_seeds,
            warm_start: false,
            order_policy: OrderPolicy::default(),
            record_every: Some(self.record_every),
            exact_rates: false,
            aggregate: false,
            checked: false,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Rescales every time parameter by `factor` — the `--smoke` variant
    /// runs the same shapes on a compressed axis.
    pub fn time_scaled(&self, factor: f64) -> Self {
        Self {
            name: self.name.clone(),
            description: self.description.clone(),
            lambda0: self.lambda0.time_scaled(factor),
            correlation: self.correlation.time_scaled(factor),
            faults: self.faults.time_scaled(factor),
            params: self.params,
            k: self.k,
            horizon: self.horizon * factor,
            warmup: self.warmup * factor,
            drain: self.drain * factor,
            origin_seeds: self.origin_seeds,
            record_every: self.record_every * factor,
            phases: self
                .phases
                .iter()
                .map(|ph| ScenarioPhase::new(&ph.name, ph.start * factor, ph.end * factor))
                .collect(),
        }
    }
}

/// The [`ScenarioHook`] implementation compiled from a
/// [`ScenarioProgram`] — a pure function of time, as the engine requires.
#[derive(Debug, Clone)]
pub struct ProgramHook {
    lambda0: Schedule,
    correlation: Schedule,
    faults: FaultPlan,
    origin_base: usize,
}

impl ScenarioHook for ProgramHook {
    fn arrival_rate(&self, t: f64) -> f64 {
        self.lambda0.value(t)
    }

    fn arrival_rate_bound(&self) -> f64 {
        self.lambda0.upper_bound()
    }

    fn correlation(&self, t: f64) -> f64 {
        self.correlation.value(t)
    }

    fn abort_rate(&self, t: f64) -> f64 {
        self.faults.abort.value(t)
    }

    fn abort_rate_bound(&self) -> f64 {
        self.faults.abort.upper_bound()
    }

    fn origin_seeds(&self, t: f64) -> usize {
        if in_window(&self.faults.seed_outages, t) {
            0
        } else {
            self.origin_base
        }
    }

    fn tracker_up(&self, t: f64) -> bool {
        !in_window(&self.faults.tracker_blackouts, t)
    }

    fn next_boundary(&self, t: f64) -> Option<f64> {
        match (
            next_edge(&self.faults.seed_outages, t),
            next_edge(&self.faults.tracker_blackouts, t),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn hook_state(&self) -> Vec<u8> {
        // The hook is a pure function of `t`; its full parameterization is
        // its state. The `Debug` rendering covers every field, so equal
        // bytes ⇒ the re-attached hook replays the same scenario.
        format!("{self:?}").into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_program() -> ScenarioProgram {
        ScenarioProgram {
            name: "test".into(),
            description: "test program".into(),
            lambda0: Schedule::Constant(0.25),
            correlation: Schedule::Constant(0.4),
            faults: FaultPlan::default(),
            params: FluidParams::paper(),
            k: 10,
            horizon: 4000.0,
            warmup: 800.0,
            drain: 4000.0,
            origin_seeds: 1,
            record_every: 50.0,
            phases: vec![ScenarioPhase::new("all", 0.0, 4000.0)],
        }
    }

    #[test]
    fn base_program_validates() {
        assert!(base_program().validate().is_ok());
    }

    #[test]
    fn validation_rejections() {
        let mut p = base_program();
        p.lambda0 = Schedule::Constant(0.0);
        assert!(p.validate().is_err());

        let mut p = base_program();
        p.correlation = Schedule::Ramp {
            from: 0.5,
            to: 1.5,
            t0: 0.0,
            t1: 100.0,
        };
        assert!(p.validate().is_err());

        let mut p = base_program();
        p.warmup = p.horizon;
        assert!(p.validate().is_err());

        let mut p = base_program();
        p.record_every = 0.0;
        assert!(p.validate().is_err());

        let mut p = base_program();
        p.phases = vec![ScenarioPhase::new("bad", 100.0, 100.0)];
        assert!(p.validate().is_err());

        let mut p = base_program();
        p.k = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn hook_reflects_faults() {
        let mut p = base_program();
        p.faults.seed_outages = vec![(1000.0, 2000.0)];
        p.faults.tracker_blackouts = vec![(500.0, 600.0)];
        let h = p.hook();
        assert_eq!(h.origin_seeds(0.0), 1);
        assert_eq!(h.origin_seeds(1500.0), 0);
        assert_eq!(h.origin_seeds(2000.0), 1);
        assert!(h.tracker_up(0.0));
        assert!(!h.tracker_up(550.0));
        assert_eq!(h.tracker_release(550.0), 600.0);
        assert_eq!(h.next_boundary(0.0), Some(500.0));
        assert_eq!(h.next_boundary(600.0), Some(1000.0));
        assert_eq!(h.next_boundary(2000.0), None);
    }

    #[test]
    fn des_config_builds_for_every_scheme() {
        let p = base_program();
        for scheme in [
            SchemeKind::Mtsd,
            SchemeKind::Mtcd,
            SchemeKind::Mfcd,
            SchemeKind::Cmfsd { rho: 0.5 },
        ] {
            let cfg = p.des_config(scheme, 42).unwrap();
            assert_eq!(cfg.seed, 42);
            assert_eq!(cfg.record_every, Some(50.0));
            assert_eq!(cfg.origin_seeds, 1);
        }
    }

    #[test]
    fn time_scaling_compresses_geometry() {
        let p = base_program().time_scaled(0.25);
        assert_eq!(p.horizon, 1000.0);
        assert_eq!(p.warmup, 200.0);
        assert_eq!(p.drain, 1000.0);
        assert_eq!(p.record_every, 12.5);
        assert_eq!(p.phases[0].end, 1000.0);
        assert!(p.validate().is_ok());
    }
}
