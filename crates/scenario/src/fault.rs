//! Fault plans: peer churn, seed crashes, tracker blackouts.
//!
//! A [`FaultPlan`] is the deterministic description of everything that can
//! go *wrong* during a scenario. The randomness lives in the engine (abort
//! candidates draw from the dedicated scenario RNG stream); the plan itself
//! is a pure function of time, which is what keeps scenario runs
//! reproducible and bit-identical across the engine's two rate modes.

use crate::schedule::Schedule;
use btfluid_numkit::NumError;

/// Deterministic fault description attached to a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Per-downloader abort rate `θ(t)`: each downloading peer leaves
    /// without finishing at this instantaneous Poisson rate. `Constant(0)`
    /// disables churn.
    pub abort: Schedule,
    /// Origin-seed crash windows `[start, end)`: all publisher seeds are
    /// down inside each window and recover at its end. Windows must be
    /// sorted and non-overlapping.
    pub seed_outages: Vec<(f64, f64)>,
    /// Tracker blackout windows `[start, end)`: visitors arriving inside a
    /// window enter the swarm at its end instead (a post-blackout rush).
    /// Sorted and non-overlapping.
    pub tracker_blackouts: Vec<(f64, f64)>,
}

impl Default for FaultPlan {
    /// No churn, no outages, no blackouts.
    fn default() -> Self {
        Self {
            abort: Schedule::Constant(0.0),
            seed_outages: Vec::new(),
            tracker_blackouts: Vec::new(),
        }
    }
}

fn validate_windows(what: &'static str, windows: &[(f64, f64)]) -> Result<(), NumError> {
    let mut prev_end = f64::NEG_INFINITY;
    for &(start, end) in windows {
        if !start.is_finite() || !end.is_finite() {
            return Err(NumError::InvalidInput {
                what: "FaultPlan::validate",
                detail: format!("{what} window ({start}, {end}) is not finite"),
            });
        }
        if end <= start {
            return Err(NumError::InvalidInput {
                what: "FaultPlan::validate",
                detail: format!("{what} window [{start}, {end}) is empty or inverted"),
            });
        }
        if start < prev_end {
            return Err(NumError::InvalidInput {
                what: "FaultPlan::validate",
                detail: format!(
                    "{what} windows must be sorted and non-overlapping; \
                     [{start}, {end}) starts before {prev_end}"
                ),
            });
        }
        prev_end = end;
    }
    Ok(())
}

/// Whether `t` falls inside any `[start, end)` window of a sorted list.
pub(crate) fn in_window(windows: &[(f64, f64)], t: f64) -> bool {
    windows.iter().any(|&(s, e)| (s..e).contains(&t))
}

/// The earliest window edge strictly after `t`, if any.
pub(crate) fn next_edge(windows: &[(f64, f64)], t: f64) -> Option<f64> {
    windows
        .iter()
        .flat_map(|&(s, e)| [s, e])
        .filter(|&b| b > t)
        .fold(None, |best, b| match best {
            Some(x) if x <= b => Some(x),
            _ => Some(b),
        })
}

impl FaultPlan {
    /// Validates the abort schedule and both window lists.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] for an invalid abort schedule or
    /// unsorted/overlapping/empty windows.
    pub fn validate(&self) -> Result<(), NumError> {
        self.abort.validate()?;
        validate_windows("seed outage", &self.seed_outages)?;
        validate_windows("tracker blackout", &self.tracker_blackouts)
    }

    /// True when the plan injects nothing at all.
    pub fn is_quiet(&self) -> bool {
        self.abort.upper_bound() == 0.0
            && self.seed_outages.is_empty()
            && self.tracker_blackouts.is_empty()
    }

    /// Rescales every time parameter by `factor` (smoke-scale variants).
    pub fn time_scaled(&self, factor: f64) -> Self {
        let scale = |ws: &[(f64, f64)]| {
            ws.iter()
                .map(|&(s, e)| (s * factor, e * factor))
                .collect::<Vec<_>>()
        };
        Self {
            abort: self.abort.time_scaled(factor),
            seed_outages: scale(&self.seed_outages),
            tracker_blackouts: scale(&self.tracker_blackouts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.validate().is_ok());
        assert!(plan.is_quiet());
    }

    #[test]
    fn window_validation() {
        let mut plan = FaultPlan {
            seed_outages: vec![(10.0, 20.0), (30.0, 40.0)],
            ..FaultPlan::default()
        };
        assert!(plan.validate().is_ok());
        assert!(!plan.is_quiet());

        plan.seed_outages = vec![(10.0, 10.0)];
        assert!(plan.validate().is_err());

        plan.seed_outages = vec![(10.0, 20.0), (15.0, 25.0)];
        assert!(plan.validate().is_err());

        plan.seed_outages = vec![(f64::NAN, 20.0)];
        assert!(plan.validate().is_err());
    }

    #[test]
    fn abort_schedule_checked() {
        let plan = FaultPlan {
            abort: Schedule::Constant(-1.0),
            ..FaultPlan::default()
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn window_helpers() {
        let ws = [(10.0, 20.0), (30.0, 40.0)];
        assert!(!in_window(&ws, 5.0));
        assert!(in_window(&ws, 10.0));
        assert!(in_window(&ws, 19.9));
        assert!(!in_window(&ws, 20.0));
        assert!(in_window(&ws, 35.0));

        assert_eq!(next_edge(&ws, 5.0), Some(10.0));
        assert_eq!(next_edge(&ws, 10.0), Some(20.0));
        assert_eq!(next_edge(&ws, 25.0), Some(30.0));
        assert_eq!(next_edge(&ws, 40.0), None);
        assert_eq!(next_edge(&[], 0.0), None);
    }

    #[test]
    fn time_scaling() {
        let plan = FaultPlan {
            abort: Schedule::Spike {
                base: 0.0,
                peak: 0.01,
                t0: 100.0,
                t1: 200.0,
            },
            seed_outages: vec![(400.0, 600.0)],
            tracker_blackouts: vec![(40.0, 60.0)],
        };
        let q = plan.time_scaled(0.5);
        assert_eq!(q.seed_outages, vec![(200.0, 300.0)]);
        assert_eq!(q.tracker_blackouts, vec![(20.0, 30.0)]);
        assert_eq!(q.abort.value(75.0), 0.01);
        assert!(q.validate().is_ok());
    }
}
