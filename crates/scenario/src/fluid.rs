//! Time-varying fluid model: the MTCD ODE driven by the same schedules
//! the DES hook consumes, for transient DES-vs-fluid comparison beyond
//! steady state.
//!
//! [`ScheduledMtcd`] is [`btfluid_core::mtcd::Mtcd`] with the constant
//! per-torrent entry rates replaced by
//! `λⱼⁱ(t) = λ₀(t) · C(K−1, i−1) p(t)^{i−1} (1−p(t))^{K−i} · p(t)`
//! — the correlation model's per-torrent rates evaluated along the
//! program's schedules. By symmetry one torrent's trajectory suffices;
//! system-wide download pairs are `K · Σᵢ xⱼⁱ`.

use crate::program::ScenarioProgram;
use crate::schedule::Schedule;
use btfluid_core::FluidParams;
use btfluid_numkit::ode::{integrate_observed, ObserveEvery, OdeSystem, Rk4};
use btfluid_numkit::series::TimeSeries;
use btfluid_numkit::special::binomial_pmf;
use btfluid_numkit::NumError;

/// The MTCD fluid model of one symmetric torrent with schedule-driven
/// entry rates. State layout `[x₁..x_K, y₁..y_K]`.
#[derive(Debug, Clone)]
pub struct ScheduledMtcd {
    params: FluidParams,
    k: usize,
    lambda0: Schedule,
    correlation: Schedule,
}

impl ScheduledMtcd {
    /// Builds the system from a validated program's parameters and
    /// schedules.
    ///
    /// # Errors
    /// Propagates [`ScenarioProgram::validate`] failures.
    pub fn from_program(program: &ScenarioProgram) -> Result<Self, NumError> {
        program.validate()?;
        Ok(Self {
            params: program.params,
            k: program.k as usize,
            lambda0: program.lambda0.clone(),
            correlation: program.correlation.clone(),
        })
    }

    /// Number of classes `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Per-torrent entry rate `λⱼⁱ(t)` for class `i` (1-based).
    pub fn lambda_at(&self, t: f64, i: usize) -> f64 {
        let p = self.correlation.value(t).clamp(0.0, 1.0);
        if p == 0.0 {
            return 0.0;
        }
        let others = binomial_pmf(self.k as u32 - 1, i as u32 - 1, p).unwrap_or(0.0);
        self.lambda0.value(t) * others * p
    }
}

impl OdeSystem for ScheduledMtcd {
    fn dim(&self) -> usize {
        2 * self.k
    }

    fn rhs(&self, t: f64, state: &[f64], d: &mut [f64]) {
        let k = self.k;
        let (mu, eta, gamma) = (self.params.mu(), self.params.eta(), self.params.gamma());
        let (xs, ys) = state.split_at(k);

        // Seed service pool Σₗ (μ/l)·yₗ and downloader share weights xᵢ/i,
        // exactly as in the stationary MTCD rhs.
        let mut seed_pool = 0.0;
        let mut weight_total = 0.0;
        for i in 0..k {
            let class = (i + 1) as f64;
            seed_pool += mu / class * ys[i].max(0.0);
            weight_total += xs[i].max(0.0) / class;
        }

        for i in 0..k {
            let class = (i + 1) as f64;
            let x = xs[i].max(0.0);
            let tft = eta * mu / class * x;
            let from_seeds = if weight_total > 0.0 {
                (x / class) / weight_total * seed_pool
            } else {
                0.0
            };
            let served = tft + from_seeds;
            d[i] = self.lambda_at(t, i + 1) - served;
            d[k + i] = served - gamma * ys[i].max(0.0);
        }
    }
}

/// Integrates the scheduled MTCD model from an empty torrent over
/// `[0, horizon]`, sampling every `program.record_every`. Channels are
/// named `x1..xK, y1..yK`.
///
/// # Errors
/// Propagates program validation and integration errors.
pub fn transient(program: &ScenarioProgram, h: f64) -> Result<TimeSeries, NumError> {
    let sys = ScheduledMtcd::from_program(program)?;
    let k = sys.k();
    let names = (1..=k)
        .map(|i| format!("x{i}"))
        .chain((1..=k).map(|i| format!("y{i}")))
        .collect();
    let x0 = vec![0.0; sys.dim()];
    integrate_observed(
        &Rk4,
        &sys,
        0.0,
        &x0,
        program.horizon,
        h,
        ObserveEvery::Time(program.record_every),
        Some(names),
    )
}

/// Time-averaged system-wide **downloading users** predicted by the fluid
/// model over the program's stationary window `[warmup, horizon]`:
/// `Σᵢ K·x̄ⱼⁱ/i` (a class-`i` user appears in `i` of the `K` symmetric
/// torrents, so per-torrent populations over-count users by `i/K`).
///
/// This is the population whose Little's-law dual — the user's full
/// download span — is what the stationary X3 validation showed the DES
/// reproduces; per-(peer,file) pairs finish staggered in the DES and sit
/// systematically below the fluid `xⱼⁱ`.
///
/// # Errors
/// Propagates [`transient`] errors.
pub fn fluid_avg_downloaders(program: &ScenarioProgram, h: f64) -> Result<f64, NumError> {
    let series = transient(program, h)?;
    let k = program.k as usize;
    let times = series.times();
    let mut total = 0.0;
    let mut count = 0usize;
    for (idx, &t) in times.iter().enumerate() {
        if t < program.warmup || t > program.horizon {
            continue;
        }
        for i in 0..k {
            total += k as f64 * series.channel(i)[idx].max(0.0) / (i + 1) as f64;
        }
        count += 1;
    }
    if count == 0 {
        return Err(NumError::InvalidInput {
            what: "fluid_avg_downloaders",
            detail: "no samples fell inside the stationary window".into(),
        });
    }
    Ok(total / count as f64)
}

/// The DES counterpart: time-averaged number of users in a downloading
/// phase, summed over classes, from a run's population statistics.
pub fn des_avg_downloaders(outcome: &btfluid_des::SimOutcome) -> f64 {
    (1..=outcome.k())
        .map(|i| outcome.population.avg_downloader_peers(i))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn stationary_schedule_matches_closed_form() {
        // With constant schedules the scheduled system must settle at the
        // stationary Mtcd closed form.
        let mut program = registry::flash_crowd();
        program.lambda0 = Schedule::Constant(0.25);
        let sys = ScheduledMtcd::from_program(&program).unwrap();

        let model = btfluid_workload::CorrelationModel::new(10, 0.4, 0.25).unwrap();
        let mtcd =
            btfluid_core::mtcd::Mtcd::new(program.params, model.per_torrent_rates()).unwrap();
        let steady = mtcd.steady_state().unwrap();

        // Entry rates must agree exactly with the correlation model.
        for (i, &l) in model.per_torrent_rates().iter().enumerate() {
            assert!(
                (sys.lambda_at(1234.5, i + 1) - l).abs() < 1e-12,
                "λ[{i}] mismatch"
            );
        }

        // Long integration converges to the closed-form fixed point.
        let series = transient(&program, 0.5).unwrap();
        let last = series.times().len() - 1;
        for i in 0..10 {
            let x = series.channel(i)[last];
            let want = steady.downloaders[i];
            assert!(
                (x - want).abs() < 0.05 * want.max(0.5),
                "x[{i}] = {x}, closed form {want}"
            );
        }
    }

    #[test]
    fn flash_crowd_surge_raises_fluid_population() {
        let program = registry::flash_crowd();
        let series = transient(&program, 0.5).unwrap();
        let total_at = |t_target: f64| {
            let idx = series
                .times()
                .iter()
                .position(|&t| t >= t_target)
                .expect("time in range");
            (0..10).map(|i| series.channel(i)[idx]).sum::<f64>()
        };
        let before = total_at(1550.0);
        let peak = total_at(2200.0);
        assert!(
            peak > 2.0 * before,
            "surge should visibly grow the swarm: before {before}, peak {peak}"
        );
    }

    #[test]
    fn zero_correlation_clamps_to_zero_rate() {
        let mut program = registry::flash_crowd();
        program.correlation = Schedule::Piecewise {
            initial: 0.4,
            steps: vec![(2000.0, 0.0)],
        };
        let sys = ScheduledMtcd::from_program(&program).unwrap();
        assert!(sys.lambda_at(1000.0, 1) > 0.0);
        assert_eq!(sys.lambda_at(3000.0, 1), 0.0);
    }
}
