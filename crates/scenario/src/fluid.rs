//! Time-varying fluid model: the MTCD ODE driven by the same schedules
//! the DES hook consumes, for transient DES-vs-fluid comparison beyond
//! steady state.
//!
//! [`ScheduledMtcd`] is [`btfluid_core::mtcd::Mtcd`] with the constant
//! per-torrent entry rates replaced by
//! `λⱼⁱ(t) = λ₀(t) · C(K−1, i−1) p(t)^{i−1} (1−p(t))^{K−i} · p(t)`
//! — the correlation model's per-torrent rates evaluated along the
//! program's schedules. By symmetry one torrent's trajectory suffices;
//! system-wide download pairs are `K · Σᵢ xⱼⁱ`.

use crate::program::ScenarioProgram;
use crate::schedule::Schedule;
use btfluid_core::FluidParams;
use btfluid_numkit::ode::{integrate_observed, ObserveEvery, OdeSystem, Rk4};
use btfluid_numkit::series::TimeSeries;
use btfluid_numkit::special::binomial_pmf;
use btfluid_numkit::NumError;

/// The MTCD fluid model of one symmetric torrent with schedule-driven
/// entry rates. State layout `[x₁..x_K, y₁..y_K]`.
#[derive(Debug, Clone)]
pub struct ScheduledMtcd {
    params: FluidParams,
    k: usize,
    lambda0: Schedule,
    correlation: Schedule,
}

impl ScheduledMtcd {
    /// Builds the system from a validated program's parameters and
    /// schedules.
    ///
    /// # Errors
    /// Propagates [`ScenarioProgram::validate`] failures.
    pub fn from_program(program: &ScenarioProgram) -> Result<Self, NumError> {
        program.validate()?;
        Ok(Self {
            params: program.params,
            k: program.k as usize,
            lambda0: program.lambda0.clone(),
            correlation: program.correlation.clone(),
        })
    }

    /// Number of classes `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Per-torrent entry rate `λⱼⁱ(t)` for class `i` (1-based).
    pub fn lambda_at(&self, t: f64, i: usize) -> f64 {
        let p = self.correlation.value(t).clamp(0.0, 1.0);
        if p == 0.0 {
            return 0.0;
        }
        let others = binomial_pmf(self.k as u32 - 1, i as u32 - 1, p).unwrap_or(0.0);
        self.lambda0.value(t) * others * p
    }
}

impl OdeSystem for ScheduledMtcd {
    fn dim(&self) -> usize {
        2 * self.k
    }

    fn rhs(&self, t: f64, state: &[f64], d: &mut [f64]) {
        let k = self.k;
        let (mu, eta, gamma) = (self.params.mu(), self.params.eta(), self.params.gamma());
        let (xs, ys) = state.split_at(k);

        // Seed service pool Σₗ (μ/l)·yₗ and downloader share weights xᵢ/i,
        // exactly as in the stationary MTCD rhs.
        let mut seed_pool = 0.0;
        let mut weight_total = 0.0;
        for i in 0..k {
            let class = (i + 1) as f64;
            seed_pool += mu / class * ys[i].max(0.0);
            weight_total += xs[i].max(0.0) / class;
        }

        for i in 0..k {
            let class = (i + 1) as f64;
            let x = xs[i].max(0.0);
            let tft = eta * mu / class * x;
            let from_seeds = if weight_total > 0.0 {
                (x / class) / weight_total * seed_pool
            } else {
                0.0
            };
            let served = tft + from_seeds;
            d[i] = self.lambda_at(t, i + 1) - served;
            d[k + i] = served - gamma * ys[i].max(0.0);
        }
    }
}

/// The staged MTSD fluid model of the whole system with schedule-driven
/// class entry rates.
///
/// A class-`i` MTSD user downloads its `i` files one at a time, seeding
/// each finished file for `Exp(γ)` before moving on. The fluid state
/// tracks, for every class `i = 1..=K` and stage `j = 1..=i`,
/// `x_{i,j}` (users downloading their `j`-th file) and `s_{i,j}` (users
/// seeding their `j`-th file) — `K(K+1)` components total, laid out
/// `[x-block | s-block]` with class `i` occupying `i` consecutive stages
/// at offset `i(i−1)/2` inside each block.
///
/// Every downloader works in a single-file Qiu–Srikant torrent, so its
/// completion rate is `μη + μ·(seeds/downloaders)` in *its* torrent;
/// under the symmetric workload the seed/downloader ratio is the same in
/// every torrent and the aggregate closure
/// `r(t) = μη + μ·S_tot/X_tot` (0 seed term when `X_tot = 0`) is exact.
/// At the fixed point `r = γμη/(γ−μ)` — the closed form
/// [`btfluid_core::mtsd::Mtsd::steady_service_rate`].
///
/// Flows: `ẋ_{i,1} = λᵢ(t) − r·x_{i,1}`, `ṡ_{i,j} = r·x_{i,j} − γ·s_{i,j}`,
/// `ẋ_{i,j+1} = γ·s_{i,j} − r·x_{i,j+1}`; class-`K` seeds in stage `K`
/// drain out of the system (the user departs). Unlike [`ScheduledMtcd`]
/// this system is per *class*, not per torrent:
/// `λᵢ(t) = λ₀(t)·C(K,i)pⁱ(1−p)^{K−i}` and downloading users of class `i`
/// are simply `Σⱼ x_{i,j}`.
#[derive(Debug, Clone)]
pub struct ScheduledMtsd {
    params: FluidParams,
    k: usize,
    lambda0: Schedule,
    correlation: Schedule,
}

impl ScheduledMtsd {
    /// Builds the system from a validated program's parameters and
    /// schedules.
    ///
    /// # Errors
    /// Propagates [`ScenarioProgram::validate`] failures.
    pub fn from_program(program: &ScenarioProgram) -> Result<Self, NumError> {
        program.validate()?;
        Ok(Self {
            params: program.params,
            k: program.k as usize,
            lambda0: program.lambda0.clone(),
            correlation: program.correlation.clone(),
        })
    }

    /// Number of classes `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// System-wide class entry rate `λᵢ(t) = λ₀(t)·C(K,i)pⁱ(1−p)^{K−i}`
    /// for class `i` (1-based).
    pub fn class_rate_at(&self, t: f64, i: usize) -> f64 {
        let p = self.correlation.value(t).clamp(0.0, 1.0);
        if p == 0.0 {
            return 0.0;
        }
        self.lambda0.value(t) * binomial_pmf(self.k as u32, i as u32, p).unwrap_or(0.0)
    }

    /// Index of `x_{i,j}` (class `i`, stage `j`, both 1-based) in the
    /// state vector. The matching seed stage `s_{i,j}` lives at
    /// `stage_index + dim()/2`.
    pub fn stage_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(1 <= j && j <= i && i <= self.k);
        i * (i - 1) / 2 + (j - 1)
    }

    /// Per-class downloading users `Σⱼ x_{i,j}` (index `class − 1`),
    /// clamped at zero against transient undershoot.
    pub fn class_downloaders(&self, state: &[f64], out: &mut [f64]) {
        let xs = &state[..self.dim() / 2];
        for i in 1..=self.k {
            out[i - 1] = (0..i)
                .map(|j| xs[self.stage_index(i, j + 1)].max(0.0))
                .sum();
        }
    }
}

impl OdeSystem for ScheduledMtsd {
    fn dim(&self) -> usize {
        self.k * (self.k + 1)
    }

    fn rhs(&self, t: f64, state: &[f64], d: &mut [f64]) {
        let half = self.dim() / 2;
        let (mu, eta, gamma) = (self.params.mu(), self.params.eta(), self.params.gamma());
        let (xs, ss) = state.split_at(half);

        let x_tot: f64 = xs.iter().map(|x| x.max(0.0)).sum();
        let s_tot: f64 = ss.iter().map(|s| s.max(0.0)).sum();
        let r = if x_tot > 0.0 {
            mu * eta + mu * s_tot / x_tot
        } else {
            mu * eta
        };

        for i in 1..=self.k {
            for j in 1..=i {
                let idx = self.stage_index(i, j);
                let inflow = if j == 1 {
                    self.class_rate_at(t, i)
                } else {
                    gamma * ss[idx - 1].max(0.0)
                };
                let served = r * xs[idx].max(0.0);
                d[idx] = inflow - served;
                d[half + idx] = served - gamma * ss[idx].max(0.0);
            }
        }
    }
}

/// Integrates the scheduled MTCD model from an empty torrent over
/// `[0, horizon]`, sampling every `program.record_every`. Channels are
/// named `x1..xK, y1..yK`.
///
/// # Errors
/// Propagates program validation and integration errors.
pub fn transient(program: &ScenarioProgram, h: f64) -> Result<TimeSeries, NumError> {
    let sys = ScheduledMtcd::from_program(program)?;
    let k = sys.k();
    let names = (1..=k)
        .map(|i| format!("x{i}"))
        .chain((1..=k).map(|i| format!("y{i}")))
        .collect();
    let x0 = vec![0.0; sys.dim()];
    integrate_observed(
        &Rk4,
        &sys,
        0.0,
        &x0,
        program.horizon,
        h,
        ObserveEvery::Time(program.record_every),
        Some(names),
    )
}

/// Time-averaged system-wide **downloading users** predicted by the fluid
/// model over the program's stationary window `[warmup, horizon]`:
/// `Σᵢ K·x̄ⱼⁱ/i` (a class-`i` user appears in `i` of the `K` symmetric
/// torrents, so per-torrent populations over-count users by `i/K`).
///
/// This is the population whose Little's-law dual — the user's full
/// download span — is what the stationary X3 validation showed the DES
/// reproduces; per-(peer,file) pairs finish staggered in the DES and sit
/// systematically below the fluid `xⱼⁱ`.
///
/// # Errors
/// Propagates [`transient`] errors.
pub fn fluid_avg_downloaders(program: &ScenarioProgram, h: f64) -> Result<f64, NumError> {
    let series = transient(program, h)?;
    let k = program.k as usize;
    let times = series.times();
    let mut total = 0.0;
    let mut count = 0usize;
    for (idx, &t) in times.iter().enumerate() {
        if t < program.warmup || t > program.horizon {
            continue;
        }
        for i in 0..k {
            total += k as f64 * series.channel(i)[idx].max(0.0) / (i + 1) as f64;
        }
        count += 1;
    }
    if count == 0 {
        return Err(NumError::InvalidInput {
            what: "fluid_avg_downloaders",
            detail: "no samples fell inside the stationary window".into(),
        });
    }
    Ok(total / count as f64)
}

/// The DES counterpart: time-averaged number of users in a downloading
/// phase, summed over classes, from a run's population statistics.
pub fn des_avg_downloaders(outcome: &btfluid_des::SimOutcome) -> f64 {
    (1..=outcome.k())
        .map(|i| outcome.population.avg_downloader_peers(i))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn stationary_schedule_matches_closed_form() {
        // With constant schedules the scheduled system must settle at the
        // stationary Mtcd closed form.
        let mut program = registry::flash_crowd();
        program.lambda0 = Schedule::Constant(0.25);
        let sys = ScheduledMtcd::from_program(&program).unwrap();

        let model = btfluid_workload::CorrelationModel::new(10, 0.4, 0.25).unwrap();
        let mtcd =
            btfluid_core::mtcd::Mtcd::new(program.params, model.per_torrent_rates()).unwrap();
        let steady = mtcd.steady_state().unwrap();

        // Entry rates must agree exactly with the correlation model.
        for (i, &l) in model.per_torrent_rates().iter().enumerate() {
            assert!(
                (sys.lambda_at(1234.5, i + 1) - l).abs() < 1e-12,
                "λ[{i}] mismatch"
            );
        }

        // Long integration converges to the closed-form fixed point.
        let series = transient(&program, 0.5).unwrap();
        let last = series.times().len() - 1;
        for i in 0..10 {
            let x = series.channel(i)[last];
            let want = steady.downloaders[i];
            assert!(
                (x - want).abs() < 0.05 * want.max(0.5),
                "x[{i}] = {x}, closed form {want}"
            );
        }
    }

    #[test]
    fn flash_crowd_surge_raises_fluid_population() {
        let program = registry::flash_crowd();
        let series = transient(&program, 0.5).unwrap();
        let total_at = |t_target: f64| {
            let idx = series
                .times()
                .iter()
                .position(|&t| t >= t_target)
                .expect("time in range");
            (0..10).map(|i| series.channel(i)[idx]).sum::<f64>()
        };
        let before = total_at(1550.0);
        let peak = total_at(2200.0);
        assert!(
            peak > 2.0 * before,
            "surge should visibly grow the swarm: before {before}, peak {peak}"
        );
    }

    #[test]
    fn mtsd_stationary_stages_match_closed_form() {
        // Constant workload: every stage must settle at x_{i,j} = λᵢ·T,
        // s_{i,j} = λᵢ/γ with T = 1/steady_service_rate = 60.
        let mut program = registry::flash_crowd();
        program.lambda0 = Schedule::Constant(0.25);
        let sys = ScheduledMtsd::from_program(&program).unwrap();
        let rate = btfluid_core::mtsd::Mtsd::new(program.params)
            .steady_service_rate()
            .unwrap();
        let t_dl = 1.0 / rate;
        let gamma = program.params.gamma();

        let x0 = vec![0.0; sys.dim()];
        let series = integrate_observed(
            &Rk4,
            &sys,
            0.0,
            &x0,
            20_000.0,
            0.5,
            ObserveEvery::Time(1000.0),
            None,
        )
        .unwrap();
        let last = series.times().len() - 1;
        let half = sys.dim() / 2;
        for i in 1..=10usize {
            let li = sys.class_rate_at(0.0, i);
            for j in 1..=i {
                let x = series.channel(sys.stage_index(i, j))[last];
                let s = series.channel(half + sys.stage_index(i, j))[last];
                assert!(
                    (x - li * t_dl).abs() < 0.02 * (li * t_dl).max(0.05),
                    "x[{i},{j}] = {x}, want {}",
                    li * t_dl
                );
                assert!(
                    (s - li / gamma).abs() < 0.02 * (li / gamma).max(0.05),
                    "s[{i},{j}] = {s}, want {}",
                    li / gamma
                );
            }
        }
        // Total downloading users Σᵢ i·λᵢ·T = λ₀·K·p·T.
        let mut dl = vec![0.0; 10];
        let state: Vec<f64> = (0..sys.dim()).map(|c| series.channel(c)[last]).collect();
        sys.class_downloaders(&state, &mut dl);
        let total: f64 = dl.iter().sum();
        let want = 0.25 * 10.0 * 0.4 * t_dl;
        assert!(
            (total - want).abs() < 0.02 * want,
            "total downloaders {total}, want {want}"
        );
    }

    #[test]
    fn mtsd_class_rates_sum_to_entrant_rate() {
        let program = registry::flash_crowd();
        let sys = ScheduledMtsd::from_program(&program).unwrap();
        let total: f64 = (1..=10).map(|i| sys.class_rate_at(1000.0, i)).sum();
        // Σᵢ λᵢ = λ₀(1 − (1−p)^K).
        let want = program.lambda0.value(1000.0) * (1.0 - 0.6f64.powi(10));
        assert!((total - want).abs() < 1e-12, "Σλᵢ = {total}, want {want}");
    }

    #[test]
    fn zero_correlation_clamps_to_zero_rate() {
        let mut program = registry::flash_crowd();
        program.correlation = Schedule::Piecewise {
            initial: 0.4,
            steps: vec![(2000.0, 0.0)],
        };
        let sys = ScheduledMtcd::from_program(&program).unwrap();
        assert!(sys.lambda_at(1000.0, 1) > 0.0);
        assert_eq!(sys.lambda_at(3000.0, 1), 0.0);
    }
}
