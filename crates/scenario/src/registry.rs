//! The named scenario registry behind `btfluid scenario <name>`.
//!
//! Five canonical non-stationary experiments, all built on the paper's
//! parameters (`μ = 0.02, η = 0.5, γ = 0.05`, `K = 10`) and the geometry of
//! [`DesConfig::paper_small`](btfluid_des::DesConfig::paper_small)
//! (horizon 4000, warm-up 800, drain 4000) so results are directly
//! comparable with the stationary validation suite.

use crate::fault::FaultPlan;
use crate::program::{ScenarioPhase, ScenarioProgram};
use crate::schedule::Schedule;
use btfluid_core::FluidParams;

/// Names of all registered scenarios, in registry order.
pub const SCENARIO_NAMES: [&str; 5] = [
    "flash_crowd",
    "diurnal",
    "seed_outage",
    "abort_storm",
    "correlation_drift",
];

fn base(name: &str, description: &str) -> ScenarioProgram {
    ScenarioProgram {
        name: name.into(),
        description: description.into(),
        lambda0: Schedule::Constant(0.25),
        correlation: Schedule::Constant(0.4),
        faults: FaultPlan::default(),
        params: FluidParams::paper(),
        k: 10,
        horizon: 4000.0,
        warmup: 800.0,
        drain: 4000.0,
        origin_seeds: 1,
        record_every: 50.0,
        phases: Vec::new(),
    }
}

/// Flash crowd: the visitor rate quadruples on `[1600, 2200)`.
pub fn flash_crowd() -> ScenarioProgram {
    let mut p = base(
        "flash_crowd",
        "visitor rate spikes 0.25 -> 1.0 on [1600, 2200)",
    );
    p.lambda0 = Schedule::Spike {
        base: 0.25,
        peak: 1.0,
        t0: 1600.0,
        t1: 2200.0,
    };
    p.phases = vec![
        ScenarioPhase::new("pre", 800.0, 1600.0),
        ScenarioPhase::new("surge", 1600.0, 2200.0),
        ScenarioPhase::new("post", 2200.0, 4000.0),
    ];
    p
}

/// Diurnal cycle: sinusoidal visitor rate, 2.5 cycles over the horizon.
pub fn diurnal() -> ScenarioProgram {
    let mut p = base(
        "diurnal",
        "sinusoidal visitor rate 0.25 ± 0.15, period 1600",
    );
    p.lambda0 = Schedule::Periodic {
        mean: 0.25,
        amplitude: 0.15,
        period: 1600.0,
        phase: 0.0,
    };
    p.phases = vec![
        ScenarioPhase::new("cycle-1", 800.0, 2400.0),
        ScenarioPhase::new("cycle-2", 2400.0, 4000.0),
    ];
    p
}

/// Seed outage: both publishers crash on `[1600, 2600)` and recover.
pub fn seed_outage() -> ScenarioProgram {
    let mut p = base(
        "seed_outage",
        "origin seeds crash on [1600, 2600), recover afterwards",
    );
    p.correlation = Schedule::Constant(0.3);
    p.origin_seeds = 2;
    p.faults.seed_outages = vec![(1600.0, 2600.0)];
    p.phases = vec![
        ScenarioPhase::new("healthy", 800.0, 1600.0),
        ScenarioPhase::new("outage", 1600.0, 2600.0),
        ScenarioPhase::new("recovery", 2600.0, 4000.0),
    ];
    p
}

/// Abort storm: impatience churn switches on during `[1600, 2400)`.
///
/// The peak per-downloader abort rate `θ = 0.004` is ~1/5 of a typical
/// per-file service rate, so a visible fraction of the swarm walks away
/// mid-download without emptying it.
pub fn abort_storm() -> ScenarioProgram {
    let mut p = base(
        "abort_storm",
        "per-downloader abort rate spikes to 0.004 on [1600, 2400)",
    );
    p.faults.abort = Schedule::Spike {
        base: 0.0,
        peak: 0.004,
        t0: 1600.0,
        t1: 2400.0,
    };
    p.phases = vec![
        ScenarioPhase::new("calm", 800.0, 1600.0),
        ScenarioPhase::new("storm", 1600.0, 2400.0),
        ScenarioPhase::new("after", 2400.0, 4000.0),
    ];
    p
}

/// Correlation drift: `p(t)` ramps 0.2 → 0.8 over `[1200, 2800)` — the
/// population slowly shifts from single-file visitors to whole-catalogue
/// downloaders.
pub fn correlation_drift() -> ScenarioProgram {
    let mut p = base(
        "correlation_drift",
        "request correlation ramps 0.2 -> 0.8 over [1200, 2800)",
    );
    p.correlation = Schedule::Ramp {
        from: 0.2,
        to: 0.8,
        t0: 1200.0,
        t1: 2800.0,
    };
    p.phases = vec![
        ScenarioPhase::new("low-p", 800.0, 1200.0),
        ScenarioPhase::new("drift", 1200.0, 2800.0),
        ScenarioPhase::new("high-p", 2800.0, 4000.0),
    ];
    p
}

/// Looks a scenario up by registry name.
pub fn by_name(name: &str) -> Option<ScenarioProgram> {
    match name {
        "flash_crowd" => Some(flash_crowd()),
        "diurnal" => Some(diurnal()),
        "seed_outage" => Some(seed_outage()),
        "abort_storm" => Some(abort_storm()),
        "correlation_drift" => Some(correlation_drift()),
        _ => None,
    }
}

/// All registered scenarios, in registry order.
pub fn all() -> Vec<ScenarioProgram> {
    SCENARIO_NAMES
        .iter()
        .map(|n| by_name(n).expect("registry name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_validates() {
        for p in all() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn names_round_trip() {
        for name in SCENARIO_NAMES {
            let p = by_name(name).expect("lookup");
            assert_eq!(p.name, name);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn smoke_variants_validate() {
        for p in all() {
            let q = p.time_scaled(0.25);
            q.validate().unwrap_or_else(|e| panic!("{}: {e}", q.name));
        }
    }

    #[test]
    fn scenario_shapes() {
        let fc = flash_crowd();
        assert_eq!(fc.lambda0.value(1500.0), 0.25);
        assert_eq!(fc.lambda0.value(1700.0), 1.0);

        let so = seed_outage();
        let h = so.hook();
        use btfluid_des::ScenarioHook as _;
        assert_eq!(h.origin_seeds(1000.0), 2);
        assert_eq!(h.origin_seeds(2000.0), 0);
        assert_eq!(h.origin_seeds(3000.0), 2);

        let storm = abort_storm();
        assert_eq!(storm.faults.abort.value(1000.0), 0.0);
        assert_eq!(storm.faults.abort.value(2000.0), 0.004);

        let drift = correlation_drift();
        assert!((drift.correlation.value(2000.0) - 0.5).abs() < 1e-12);
    }
}
