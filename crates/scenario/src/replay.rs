//! Trace replay: feeding a recorded [`ArrivalTrace`] into the DES and
//! into the scheduled fluid model, from the same file.
//!
//! Two adapters share one trace:
//!
//! * [`TraceHook`] implements [`ScenarioHook`] in *replay* mode
//!   ([`ScenarioHook::replays`]): the engine consumes the recorded
//!   arrivals by index instead of thinning a stochastic process, so the
//!   arrival stream is exactly the trace — in all three rate modes
//!   (incremental, exact, aggregate), since none of them touches the
//!   arrival path. The hook's state bytes encode the full trace, so
//!   snapshots fingerprint it and a resumed run refuses a different
//!   trace.
//! * [`trace_program`] bins the trace's empirical entering rate λ(t)
//!   into a [`Schedule::Piecewise`] and pairs it with the fitted
//!   correlation `p̂` ([`fit_model`]), yielding a [`ScenarioProgram`]
//!   whose [`crate::fluid::ScheduledMtcd`] ODE is driven by the *same*
//!   workload — the trace-driven DES-vs-fluid comparison used by the
//!   `trace-fit-closure` oracle check.

use crate::program::ScenarioProgram;
use crate::schedule::Schedule;
use btfluid_des::ScenarioHook;
use btfluid_numkit::NumError;
use btfluid_workload::requests::FileId;
use btfluid_workload::{fit_model, ArrivalTrace, TRACE_VERSION};

/// [`ScenarioHook`] that replays a recorded trace verbatim (module docs).
#[derive(Debug, Clone)]
pub struct TraceHook {
    times: Vec<f64>,
    files: Vec<Vec<FileId>>,
    horizon: f64,
    k: u32,
    /// Empirical entering rate, reported as the (constant) arrival rate
    /// for attachment validation and observability.
    rate: f64,
    /// Mean per-file selection probability, reported by
    /// [`ScenarioHook::correlation`] for observability only — replay
    /// never samples request sets.
    correlation: f64,
    origin_seeds: usize,
}

impl TraceHook {
    /// Wraps a trace for replay.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] for an empty trace: the engine
    /// requires a finite positive arrival-rate bound, and an empty trace
    /// has no rate information.
    pub fn new(trace: &ArrivalTrace) -> Result<Self, NumError> {
        if trace.is_empty() {
            return Err(NumError::InvalidInput {
                what: "TraceHook::new",
                detail: "cannot replay an empty trace (no arrivals, no rate)".into(),
            });
        }
        let n = trace.len() as f64;
        Ok(Self {
            times: trace.arrivals().iter().map(|a| a.time).collect(),
            files: trace.arrivals().iter().map(|a| a.files.clone()).collect(),
            horizon: trace.horizon(),
            k: trace.k(),
            rate: trace.empirical_rate(),
            correlation: (trace.total_files() as f64 / (n * trace.k() as f64)).clamp(0.0, 1.0),
            origin_seeds: 0,
        })
    }

    /// Sets the origin-seed count the hook reports (default 0, matching
    /// the fluid model's publisher-free convention).
    pub fn with_origin_seeds(mut self, origin_seeds: usize) -> Self {
        self.origin_seeds = origin_seeds;
        self
    }

    /// Number of recorded arrivals.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the trace is empty (never true for a constructed hook).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

impl ScenarioHook for TraceHook {
    fn arrival_rate(&self, _t: f64) -> f64 {
        self.rate
    }

    fn arrival_rate_bound(&self) -> f64 {
        self.rate
    }

    fn correlation(&self, _t: f64) -> f64 {
        self.correlation
    }

    fn abort_rate(&self, _t: f64) -> f64 {
        0.0
    }

    fn abort_rate_bound(&self) -> f64 {
        0.0
    }

    fn origin_seeds(&self, _t: f64) -> usize {
        self.origin_seeds
    }

    fn tracker_up(&self, _t: f64) -> bool {
        true
    }

    fn next_boundary(&self, _t: f64) -> Option<f64> {
        None
    }

    fn replays(&self) -> bool {
        true
    }

    fn replay_arrival(&self, idx: u64) -> Option<(f64, Vec<FileId>)> {
        let i = usize::try_from(idx).ok()?;
        Some((*self.times.get(i)?, self.files.get(i)?.clone()))
    }

    /// Stable byte encoding of the full trace (plus the origin-seed
    /// knob), so the snapshot fingerprint pins the replayed workload: a
    /// restore against a different trace is refused.
    fn hook_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.times.len() * 16);
        out.extend_from_slice(b"TRHK");
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.horizon.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.origin_seeds as u64).to_le_bytes());
        out.extend_from_slice(&(self.times.len() as u64).to_le_bytes());
        for (t, files) in self.times.iter().zip(&self.files) {
            out.extend_from_slice(&t.to_bits().to_le_bytes());
            out.extend_from_slice(&(files.len() as u32).to_le_bytes());
            for &f in files {
                out.extend_from_slice(&f.to_le_bytes());
            }
        }
        out
    }
}

/// Compiles a trace into a [`ScenarioProgram`] whose workload schedules
/// are the trace's own empirical moments: λ₀(t) is the entering rate
/// binned into `bins` equal slices of the horizon (converted back to a
/// *visitor* rate through the fitted entering fraction), and the
/// correlation is the fitted `p̂` (falling back to the mean per-file
/// selection frequency when `p` is unidentifiable, e.g. an all-class-1
/// trace). Driving [`crate::fluid::ScheduledMtcd`] with this program
/// replays the same workload through the fluid path that [`TraceHook`]
/// replays through the DES.
///
/// # Errors
/// Returns [`NumError::InvalidInput`] for an empty trace, `bins = 0`, or
/// a `warmup` outside `[0, horizon)`; propagates program validation
/// failures.
pub fn trace_program(
    trace: &ArrivalTrace,
    bins: usize,
    warmup: f64,
) -> Result<ScenarioProgram, NumError> {
    const WHAT: &str = "trace_program";
    if trace.is_empty() {
        return Err(NumError::InvalidInput {
            what: WHAT,
            detail: "cannot compile an empty trace (no rate information)".into(),
        });
    }
    if bins == 0 {
        return Err(NumError::InvalidInput {
            what: WHAT,
            detail: "bins must be >= 1".into(),
        });
    }
    let k = trace.k();
    let horizon = trace.horizon();
    // Fitted correlation, with the mean-selection-frequency fallback for
    // traces where p is unidentifiable (all arrivals class 1).
    let p_hat = match fit_model(trace) {
        Ok(m) => m.p(),
        Err(_) => (trace.total_files() as f64 / (trace.len() as f64 * k as f64))
            .clamp(1.0 / (10.0 * k as f64), 1.0),
    };
    // Entering fraction 1 − (1−p̂)^K, in log space for small p̂.
    let frac = -f64::exp_m1(k as f64 * f64::ln_1p(-p_hat));
    // Bin the empirical entering rate over [0, horizon).
    let width = horizon / bins as f64;
    let mut counts = vec![0usize; bins];
    for a in trace.arrivals() {
        let b = ((a.time / width) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let lambda_bin: Vec<f64> = counts.iter().map(|&c| c as f64 / width / frac).collect();
    let lambda0 = if bins == 1 {
        Schedule::Constant(lambda_bin[0])
    } else {
        Schedule::Piecewise {
            initial: lambda_bin[0],
            steps: lambda_bin
                .iter()
                .enumerate()
                .skip(1)
                .map(|(j, &v)| (j as f64 * width, v))
                .collect(),
        }
    };
    let mut program = ScenarioProgram::stationary(
        "trace-replay",
        1.0, // placeholder, overwritten below
        p_hat.clamp(0.0, 1.0),
        k,
        horizon,
        warmup,
        horizon, // generous drain, as the scenario registry uses
    );
    program.description = format!(
        "trace replay: {} arrivals over [0, {horizon}), fitted p̂ = {p_hat:.4}",
        trace.len()
    );
    program.lambda0 = lambda0;
    program.record_every = (horizon / 80.0).max(1e-6);
    program.validate()?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_numkit::rng::Xoshiro256StarStar;
    use btfluid_workload::CorrelationModel;

    fn trace(seed: u64, horizon: f64) -> ArrivalTrace {
        let m = CorrelationModel::new(10, 0.4, 0.25).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        ArrivalTrace::generate(&m, horizon, &mut rng).unwrap()
    }

    #[test]
    fn hook_replays_the_trace_in_order() {
        let t = trace(1, 500.0);
        let hook = TraceHook::new(&t).unwrap();
        assert_eq!(hook.len(), t.len());
        for (i, a) in t.arrivals().iter().enumerate() {
            let (time, files) = hook.replay_arrival(i as u64).unwrap();
            assert_eq!(time, a.time);
            assert_eq!(files, a.files);
        }
        assert!(hook.replay_arrival(t.len() as u64).is_none());
        assert!(hook.replays());
        assert!(hook.tracker_up(0.0));
        assert!(hook.arrival_rate_bound() > 0.0);
    }

    #[test]
    fn empty_trace_is_rejected() {
        let empty = ArrivalTrace::from_parts(vec![], 10.0, 5).unwrap();
        assert!(TraceHook::new(&empty).is_err());
        assert!(trace_program(&empty, 4, 1.0).is_err());
    }

    #[test]
    fn hook_state_fingerprints_the_trace() {
        let a = TraceHook::new(&trace(1, 500.0)).unwrap();
        let b = TraceHook::new(&trace(2, 500.0)).unwrap();
        assert_eq!(
            a.hook_state(),
            TraceHook::new(&trace(1, 500.0)).unwrap().hook_state()
        );
        assert_ne!(a.hook_state(), b.hook_state());
        assert_ne!(a.hook_state(), a.clone().with_origin_seeds(3).hook_state());
    }

    #[test]
    fn trace_program_matches_empirical_moments() {
        let t = trace(3, 20_000.0);
        let program = trace_program(&t, 8, 800.0).unwrap();
        program.validate().unwrap();
        assert_eq!(program.k, 10);
        assert_eq!(program.horizon, t.horizon());
        // The mean entering rate implied by the program equals the
        // trace's empirical rate (the binning is exact in aggregate).
        let p_hat = program.correlation.value(0.0);
        let frac = -f64::exp_m1(10.0 * f64::ln_1p(-p_hat));
        let mean_entering = program.lambda0.integral(0.0, t.horizon()) / t.horizon() * frac;
        assert!(
            (mean_entering - t.empirical_rate()).abs() < 1e-9,
            "entering {mean_entering} vs empirical {}",
            t.empirical_rate()
        );
    }

    #[test]
    fn trace_program_handles_single_bin_and_bad_geometry() {
        let t = trace(4, 1000.0);
        assert!(trace_program(&t, 1, 0.0).is_ok());
        assert!(trace_program(&t, 0, 0.0).is_err());
        assert!(trace_program(&t, 4, 2000.0).is_err()); // warmup >= horizon
    }
}
