//! # btfluid-oracle — the differential self-check oracle
//!
//! Three independent implementations of the paper's models live in this
//! workspace: the closed-form steady states (`btfluid-core`), the transient
//! fluid ODE (`btfluid-scenario`) and the discrete-event simulator
//! (`btfluid-des`, itself in two rate-refresh modes). None of them is a
//! trusted reference — but the *paper* supplies exact relationships they
//! must all satisfy, and wherever two implementations answer the same
//! question they must agree. This crate packages those relationships as a
//! registry of runnable checks:
//!
//! - **Invariants** ([`invariants`]): metamorphic identities of the
//!   analytic layers — binomial class-rate mass, MTCD ≡ MFCD, MTSD's
//!   `p`-invariance, CMFSD's ρ- and K-limits, monotonicity in ρ.
//! - **Differential** ([`differential`]): exact-vs-incremental DES
//!   bit-equivalence, aggregate-mode determinism and distribution
//!   equivalence (class means vs the per-peer path and the ODE),
//!   checked-mode audits, DES vs the fluid ODE and the closed forms, and
//!   a supervised multi-cell sweep.
//! - **Structural** ([`structural`]): decoder fuzz — mutated snapshots
//!   must yield typed errors, traces with non-finite samples must stay
//!   valid JSONL.
//!
//! The registry also contains a **mutation canary**
//! ([`differential::mutation_canary`]): it corrupts a live engine's rate
//! cache on purpose and *fails unless the audit notices*. `btfluid
//! selfcheck --expect-fail` inverts that check's polarity at the CLI to
//! prove end to end that a detected violation reaches the right exit code.
//!
//! Checks come in two tiers: [`Tier::Quick`] runs on every invocation
//! (sub-second each), [`Tier::Full`] adds the simulation-heavy
//! comparisons behind `--full`.

pub mod differential;
pub mod invariants;
pub mod report;
pub mod structural;

pub use report::{Check, CheckOutcome, OracleConfig, OracleReport, Tier};

use btfluid_telemetry::{diag, Level};
use std::time::Instant;

/// The built-in check registry, in execution order (cheap analytics first,
/// simulations last).
pub fn registry() -> Vec<Check> {
    vec![
        Check {
            name: "binomial-class-mass",
            paper_ref: "Sec. 4.1 (class rates λᵢ)",
            tier: Tier::Quick,
            run: invariants::binomial_class_mass,
        },
        Check {
            name: "per-torrent-mass",
            paper_ref: "Sec. 4.1 (per-torrent rates λⱼⁱ)",
            tier: Tier::Quick,
            run: invariants::per_torrent_mass_and_entrant_mean,
        },
        Check {
            name: "mtcd-equiv-mfcd",
            paper_ref: "Sec. 3.4 (fluid equivalence)",
            tier: Tier::Quick,
            run: invariants::mtcd_equals_mfcd,
        },
        Check {
            name: "mtsd-p-invariance",
            paper_ref: "Eqs. 3–4 (online/file = 80)",
            tier: Tier::Quick,
            run: invariants::mtsd_p_invariance,
        },
        Check {
            name: "cmfsd-rho-one-mfcd",
            paper_ref: "Eq. 5, ρ → 1 limit",
            tier: Tier::Quick,
            run: invariants::cmfsd_rho_one_equals_mfcd,
        },
        Check {
            name: "cmfsd-k1-mtsd",
            paper_ref: "Eq. 5, K = 1 limit",
            tier: Tier::Quick,
            run: invariants::cmfsd_k1_equals_mtsd,
        },
        Check {
            name: "cmfsd-monotone-rho",
            paper_ref: "Sec. 4.3 (virtual seeding helps)",
            tier: Tier::Quick,
            run: invariants::cmfsd_monotone_in_rho,
        },
        Check {
            name: "trace-jsonl-round-trip",
            paper_ref: "telemetry contract (no NaN in JSONL)",
            tier: Tier::Quick,
            run: structural::trace_jsonl_round_trip,
        },
        Check {
            name: "snapshot-fuzz",
            paper_ref: "snapshot contract (typed errors, no panic)",
            tier: Tier::Quick,
            run: structural::snapshot_fuzz,
        },
        Check {
            name: "hybrid-snapshot-fuzz",
            paper_ref: "hybrid snapshot v4 contract (typed errors, no panic)",
            tier: Tier::Quick,
            run: structural::hybrid_snapshot_fuzz,
        },
        Check {
            name: "trace-codec-fuzz",
            paper_ref: "trace codec contract (typed errors, no panic)",
            tier: Tier::Quick,
            run: structural::trace_codec_fuzz,
        },
        Check {
            name: "flightrec-round-trip",
            paper_ref: "flightrec v1 contract (last-capacity window, parseable)",
            tier: Tier::Quick,
            run: structural::flightrec_round_trip,
        },
        Check {
            name: "des-exact-vs-incremental",
            paper_ref: "engine contract (bit-identical modes)",
            tier: Tier::Quick,
            run: differential::exact_vs_incremental,
        },
        Check {
            name: "des-checked-audit",
            paper_ref: "engine contract (invariant audit clean)",
            tier: Tier::Quick,
            run: differential::checked_run_is_clean,
        },
        Check {
            name: "mutation-canary",
            paper_ref: "oracle contract (detector detects)",
            tier: Tier::Quick,
            run: differential::mutation_canary,
        },
        Check {
            name: "des-aggregate-determinism",
            paper_ref: "engine contract (aggregate mode reproducible)",
            tier: Tier::Quick,
            run: differential::aggregate_determinism,
        },
        Check {
            name: "des-aggregate-vs-incremental",
            paper_ref: "Sec. 3 (class-level Markov means)",
            tier: Tier::Full,
            run: differential::aggregate_vs_incremental_means,
        },
        Check {
            name: "des-aggregate-insensitivity",
            paper_ref: "Sec. 3.4 (PS insensitivity of download populations)",
            tier: Tier::Full,
            run: differential::aggregate_insensitivity,
        },
        Check {
            name: "des-vs-fluid-transient",
            paper_ref: "Sec. 4 (DES tracks the ODE)",
            tier: Tier::Full,
            run: differential::des_vs_fluid_transient,
        },
        Check {
            name: "des-vs-closed-form-mtsd",
            paper_ref: "Eqs. 3–4 (DES hits 80)",
            tier: Tier::Full,
            run: differential::des_vs_closed_form_mtsd,
        },
        Check {
            name: "supervised-scheme-cells",
            paper_ref: "harness contract (4 schemes, parallel cells)",
            tier: Tier::Full,
            run: differential::supervised_scheme_cells,
        },
        Check {
            name: "hybrid-vs-des",
            paper_ref: "fluid-limit convergence (hybrid tracks pure DES)",
            tier: Tier::Full,
            run: differential::hybrid_vs_des,
        },
        Check {
            name: "trace-fit-closure",
            paper_ref: "Sec. 3 moments (fit → synthesize → refit closes)",
            tier: Tier::Full,
            run: differential::trace_fit_closure,
        },
    ]
}

/// Runs every registered check enabled by `cfg` and collects the report.
pub fn run_all(cfg: &OracleConfig) -> OracleReport {
    let started = Instant::now();
    let mut outcomes = Vec::new();
    for check in &registry() {
        if check.tier == Tier::Full && !cfg.full {
            continue;
        }
        diag!(Level::Debug, "oracle: running {}", check.name);
        let outcome = report::execute(check, cfg);
        diag!(
            if outcome.passed {
                Level::Debug
            } else {
                Level::Warn
            },
            "oracle: {} {} in {} ms — {}",
            check.name,
            if outcome.passed { "passed" } else { "FAILED" },
            outcome.wall_ms,
            outcome.detail
        );
        outcomes.push(outcome);
    }
    OracleReport {
        outcomes,
        wall_ms: started.elapsed().as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_kebab() {
        let checks = registry();
        let mut names: Vec<&str> = checks.iter().map(|c| c.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate check names");
        for name in names {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "non-kebab check name {name:?}"
            );
        }
    }

    #[test]
    fn quick_tier_passes() {
        let report = run_all(&OracleConfig::default());
        assert!(
            report.all_passed(),
            "quick-tier failures: {:?}\n{:#?}",
            report.failures(),
            report
                .outcomes
                .iter()
                .filter(|o| !o.passed)
                .map(|o| (&o.name, &o.detail))
                .collect::<Vec<_>>()
        );
        // Quick tier excludes the Full checks.
        assert!(report.outcomes.len() < registry().len());
    }

    #[test]
    fn full_flag_enables_everything() {
        let cfg = OracleConfig {
            full: true,
            ..OracleConfig::default()
        };
        // Only count the plan here — the full runs execute in the (slower)
        // integration suite and the CLI.
        let enabled = registry()
            .iter()
            .filter(|c| c.tier == Tier::Quick || cfg.full)
            .count();
        assert_eq!(enabled, registry().len());
    }

    #[test]
    fn seed_changes_detail_but_not_verdict() {
        let a = run_all(&OracleConfig {
            seed: 1,
            full: false,
        });
        let b = run_all(&OracleConfig {
            seed: 2,
            full: false,
        });
        assert!(a.all_passed() && b.all_passed());
        assert_eq!(a.outcomes.len(), b.outcomes.len());
    }
}
