//! Differential checks: the same physical question answered by independent
//! implementations must agree.
//!
//! Three layers answer "how does a multi-file swarm behave": the closed
//! forms (`btfluid-core`), the transient ODE (`btfluid-scenario::fluid`)
//! and the DES (`btfluid-des`, itself in two rate-refresh modes). Any
//! silent numerical bug in one of them shows up as a disagreement here
//! without anyone having to know the right answer in advance.

use crate::report::OracleConfig;
use btfluid_des::{DesConfig, DesError, InvariantKind, SchemeKind, SimOutcome, Simulation};
use btfluid_harness::{run_shards, run_sweep, Budget, CellSpec, ShardSpec, SupervisorConfig};
use btfluid_scenario::{
    des_avg_downloaders, fluid_avg_downloaders, runner, RateMode, ScenarioProgram,
};
use std::time::Duration;

/// DES-vs-fluid tolerance: finite-size effects at `λ₀ = 0.25` leave the
/// simulated population within ~12% of the ODE mean (the same bound the
/// scenario crate's own transient test uses).
const DES_FLUID_REL_TOL: f64 = 0.12;

/// A shortened `paper_small` so quick-tier runs stay sub-second while the
/// swarm still reaches a few dozen concurrent peers.
fn short(scheme: SchemeKind, p: f64, seed: u64) -> Result<DesConfig, String> {
    let mut cfg = DesConfig::paper_small(scheme, p, seed).map_err(|e| e.to_string())?;
    cfg.horizon = 800.0;
    cfg.warmup = 200.0;
    cfg.drain = 800.0;
    Ok(cfg)
}

fn run(cfg: DesConfig) -> Result<SimOutcome, String> {
    Simulation::new(cfg)
        .map_err(|e| e.to_string())?
        .try_run()
        .map_err(|e| e.to_string())
}

/// The incremental rate cache against the forced full-recompute mode:
/// both must produce bit-identical user records — any divergence means the
/// dirty-tracking refresh missed an update.
pub fn exact_vs_incremental(cfg: &OracleConfig) -> Result<String, String> {
    let schemes = [
        (SchemeKind::Mtsd, 0.5),
        (SchemeKind::Cmfsd { rho: 0.3 }, 0.6),
    ];
    let mut records = 0usize;
    for (i, &(scheme, p)) in schemes.iter().enumerate() {
        let mut exact = short(scheme, p, cfg.seed.wrapping_add(i as u64))?;
        exact.exact_rates = true;
        let mut incr = exact.clone();
        incr.exact_rates = false;
        let a = run(exact)?;
        let b = run(incr)?;
        if a.events != b.events || a.arrivals != b.arrivals || a.records.len() != b.records.len() {
            return Err(format!(
                "{}: shape diverged (events {} vs {}, arrivals {} vs {}, records {} vs {})",
                scheme.name(),
                a.events,
                b.events,
                a.arrivals,
                b.arrivals,
                a.records.len(),
                b.records.len()
            ));
        }
        for (ra, rb) in a.records.iter().zip(&b.records) {
            if ra.online_fluid.to_bits() != rb.online_fluid.to_bits()
                || ra.download_span.to_bits() != rb.download_span.to_bits()
                || ra.departure.to_bits() != rb.departure.to_bits()
            {
                return Err(format!(
                    "{}: user {} records differ bitwise (online {} vs {})",
                    scheme.name(),
                    ra.id,
                    ra.online_fluid,
                    rb.online_fluid
                ));
            }
        }
        records += a.records.len();
    }
    Ok(format!(
        "2 schemes × 2 rate modes: {records} user records bit-identical"
    ))
}

/// A full `checked`-mode run: the per-event audit (rate finiteness, queue
/// consistency, cache-vs-recompute agreement) must stay silent end to end.
pub fn checked_run_is_clean(cfg: &OracleConfig) -> Result<String, String> {
    let mut des = short(
        SchemeKind::Cmfsd { rho: 0.5 },
        0.5,
        cfg.seed.wrapping_add(7),
    )?;
    des.checked = true;
    let outcome = run(des)?;
    Ok(format!(
        "checked CMFSD run clean over {} events, {} users",
        outcome.events,
        outcome.records.len()
    ))
}

/// The detector's own canary: seed a deliberate rate-cache corruption into
/// a live engine and confirm the audit *reports* it as
/// [`InvariantKind::RateCacheDrift`]. A passing oracle with a blind
/// detector would be worthless — this check fails if the corruption goes
/// unnoticed.
pub fn mutation_canary(cfg: &OracleConfig) -> Result<String, String> {
    let des = short(SchemeKind::Mtsd, 0.5, cfg.seed.wrapping_add(13))?;
    let mut sim = Simulation::new(des).map_err(|e| e.to_string())?;
    // Advance far enough that peers exist, then corrupt one cached rate.
    let mut steps = 0u32;
    while steps < 400 && sim.step().map_err(|e| e.to_string())? {
        steps += 1;
        if steps >= 50 && sim.corrupt_rate_cache_for_test() {
            return match sim.audit() {
                Err(DesError::Invariant {
                    kind: InvariantKind::RateCacheDrift,
                    t,
                    ..
                }) => Ok(format!(
                    "seeded corruption detected as rate-cache drift at t = {t:.1}"
                )),
                Err(other) => Err(format!("seeded corruption misclassified: {other}")),
                Ok(()) => Err("seeded rate-cache corruption went UNDETECTED by the audit".into()),
            };
        }
    }
    Err(format!(
        "no live peer to corrupt within {steps} events — canary could not run"
    ))
}

/// Aggregate scheduling is a different *sampling* of the same stochastic
/// model, so it cannot be compared record-by-record — but with the same
/// seed it must reproduce itself exactly. Two aggregate runs of one config
/// must be bit-identical, and the mode's counters must show it actually
/// engaged (group samples observed, zero per-peer recomputes).
pub fn aggregate_determinism(cfg: &OracleConfig) -> Result<String, String> {
    let mut des = short(
        SchemeKind::Cmfsd { rho: 0.5 },
        0.5,
        cfg.seed.wrapping_add(17),
    )?;
    des.aggregate = true;
    let shards = run_shards(vec![
        ShardSpec {
            id: "a".into(),
            cfg: des.clone(),
        },
        ShardSpec {
            id: "b".into(),
            cfg: des,
        },
    ])
    .map_err(|e| e.to_string())?;
    let (a, b) = (&shards[0], &shards[1]);
    if a.events != b.events
        || a.users != b.users
        || a.avg_online_per_file.to_bits() != b.avg_online_per_file.to_bits()
    {
        return Err(format!(
            "same-seed aggregate runs diverged: events {} vs {}, users {} vs {}, online/file {} vs {}",
            a.events, b.events, a.users, b.users, a.avg_online_per_file, b.avg_online_per_file
        ));
    }
    if a.counters.agg_samples == 0 {
        return Err("aggregate run drew no group samples — mode did not engage".into());
    }
    if a.counters.rate_recomputes != 0 {
        return Err(format!(
            "aggregate run performed {} per-peer rate recomputes — per-peer path leaked in",
            a.counters.rate_recomputes
        ));
    }
    Ok(format!(
        "2 same-seed aggregate runs bit-identical ({} events, {} users, {} group samples)",
        a.events, a.users, a.counters.agg_samples
    ))
}

/// Distribution equivalence of the two scheduling modes: aggregate
/// replaces each peer's deterministic unit of residual work with an
/// exponential of the same mean, so per-user records differ but the
/// class-level *means* must agree. Pools several seeds per mode (sharded
/// across the thread pool) and compares the mean online time per file.
pub fn aggregate_vs_incremental_means(cfg: &OracleConfig) -> Result<String, String> {
    const SEEDS: u64 = 4;
    let schemes = [
        ("MTSD", SchemeKind::Mtsd, 0.5),
        ("CMFSD", SchemeKind::Cmfsd { rho: 0.5 }, 0.6),
    ];
    let mut details = Vec::new();
    for (name, scheme, p) in schemes {
        let mut specs = Vec::new();
        for s in 0..SEEDS {
            for aggregate in [false, true] {
                let mut des = short(scheme, p, cfg.seed.wrapping_add(31 + s))?;
                des.horizon = 1500.0;
                des.drain = 1500.0;
                des.aggregate = aggregate;
                specs.push(ShardSpec {
                    id: format!("{name}-{s}-{}", if aggregate { "agg" } else { "incr" }),
                    cfg: des,
                });
            }
        }
        let shards = run_shards(specs).map_err(|e| e.to_string())?;
        // Pool user-weighted means per mode.
        let pool = |suffix: &str| -> (f64, usize) {
            let mut online = 0.0;
            let mut users = 0usize;
            for sh in shards.iter().filter(|sh| sh.id.ends_with(suffix)) {
                if sh.avg_online_per_file.is_finite() {
                    online += sh.avg_online_per_file * sh.users as f64;
                    users += sh.users;
                }
            }
            (online / users.max(1) as f64, users)
        };
        let (incr, n_incr) = pool("incr");
        let (agg, n_agg) = pool("agg");
        if n_incr == 0 || n_agg == 0 {
            return Err(format!("{name}: a mode produced no completed users"));
        }
        let rel = (agg - incr).abs() / incr.max(1e-9);
        if rel >= DES_FLUID_REL_TOL {
            return Err(format!(
                "{name}: aggregate online/file {agg:.2} vs incremental {incr:.2} \
                 (rel {rel:.3} ≥ {DES_FLUID_REL_TOL}, {n_agg}/{n_incr} users)"
            ));
        }
        details.push(format!("{name} {agg:.1}≈{incr:.1} (rel {rel:.3})"));
    }
    Ok(format!(
        "2 schemes × {SEEDS} seeds × 2 modes agree on mean online/file: {}",
        details.join(", ")
    ))
}

/// Processor-sharing insensitivity at fluid scale: the aggregate engine
/// replaces each download's deterministic unit of work with an exponential
/// of the same mean, and in a bandwidth-sharing network the time-averaged
/// *download* populations are insensitive to that substitution. Runs the
/// same stationary program MTCD in both scheduling modes (sharded in
/// parallel) and compares the total active (peer,file) download pairs.
///
/// Peer-level counts are deliberately *not* compared for concurrent
/// schemes: a peer departs at the max of its staggered completions, which
/// the exponential model inflates (see DESIGN.md §14) — the per-download
/// populations are the measure both modes must agree on.
pub fn aggregate_insensitivity(cfg: &OracleConfig) -> Result<String, String> {
    let program = ScenarioProgram::stationary("oracle-agg", 0.25, 0.4, 10, 4000.0, 800.0, 4000.0);
    let per = program
        .des_config(SchemeKind::Mtcd, cfg.seed)
        .map_err(|e| e.to_string())?;
    let mut agg = per.clone();
    agg.aggregate = true;
    let shards = run_shards(vec![
        ShardSpec {
            id: "per-peer".into(),
            cfg: per,
        },
        ShardSpec {
            id: "aggregate".into(),
            cfg: agg,
        },
    ])
    .map_err(|e| e.to_string())?;
    let pairs =
        |sh: &btfluid_harness::ShardOutcome| -> f64 { sh.class_download_pairs.iter().sum() };
    let (p, a) = (pairs(&shards[0]), pairs(&shards[1]));
    if shards[1].counters.agg_samples == 0 {
        return Err("aggregate cell drew no group samples — mode did not engage".into());
    }
    let rel = (a - p).abs() / p.max(1e-9);
    if rel < DES_FLUID_REL_TOL {
        Ok(format!(
            "MTCD download pairs: aggregate {a:.1} vs per-peer {p:.1} (rel {rel:.4} < {DES_FLUID_REL_TOL})"
        ))
    } else {
        Err(format!(
            "MTCD download pairs: aggregate {a:.1} vs per-peer {p:.1} (rel {rel:.4} ≥ {DES_FLUID_REL_TOL})"
        ))
    }
}

/// DES against the transient fluid ODE on a stationary program: the
/// time-averaged downloading population must agree within
/// [`DES_FLUID_REL_TOL`].
pub fn des_vs_fluid_transient(cfg: &OracleConfig) -> Result<String, String> {
    let program = ScenarioProgram::stationary("oracle-fluid", 0.25, 0.4, 10, 4000.0, 800.0, 4000.0);
    let run = runner::run_one(
        &program,
        SchemeKind::Mtcd,
        None,
        "MTCD",
        cfg.seed,
        RateMode::Incremental,
    )
    .map_err(|e| e.to_string())?;
    let des = des_avg_downloaders(&run.outcome);
    let fluid = fluid_avg_downloaders(&program, 0.5).map_err(|e| e.to_string())?;
    let rel = (des - fluid).abs() / fluid.max(1e-9);
    if rel < DES_FLUID_REL_TOL {
        Ok(format!(
            "DES {des:.2} vs ODE {fluid:.2} downloading users (rel {rel:.3} < {DES_FLUID_REL_TOL})"
        ))
    } else {
        Err(format!(
            "DES {des:.2} vs ODE {fluid:.2} downloading users (rel {rel:.3} ≥ {DES_FLUID_REL_TOL})"
        ))
    }
}

/// All four schemes as parallel cells under the crash-safe harness
/// supervisor: every cell must complete (none quarantined), produce users,
/// and report a finite per-file online time. Exercises the supervisor's
/// manifest/bundle machinery on a throwaway directory as a side effect.
pub fn supervised_scheme_cells(cfg: &OracleConfig) -> Result<String, String> {
    let dir = std::env::temp_dir().join(format!(
        "btfluid_oracle_sweep_{}_{}",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("temp dir: {e}"))?;

    let schemes = [
        ("mtsd", SchemeKind::Mtsd),
        ("mtcd", SchemeKind::Mtcd),
        ("mfcd", SchemeKind::Mfcd),
        ("cmfsd", SchemeKind::Cmfsd { rho: 0.3 }),
    ];
    let mut cells = Vec::new();
    for (i, (name, scheme)) in schemes.iter().enumerate() {
        cells.push(CellSpec {
            id: format!("oracle-{name}"),
            cfg: short(*scheme, 0.5, cfg.seed.wrapping_add(i as u64))?,
            scenario: None,
            inject_panic_at: None,
        });
    }
    let sup = SupervisorConfig {
        manifest: dir.join("manifest.jsonl"),
        bundle_dir: dir.join("bundles"),
        budget: Budget {
            max_events: None,
            max_wall: Some(Duration::from_secs(120)),
        },
        max_retries: 0,
        backoff: Duration::from_millis(10),
        workers: 4,
        resume: false,
        checkpoint_every: 5000,
    };
    let report = run_sweep(&sup, cells).map_err(|e| e.to_string())?;
    let result = (|| {
        if !report.all_done() {
            let failed: Vec<&str> = report.failed.iter().map(|f| f.id.as_str()).collect();
            return Err(format!("cells quarantined: {failed:?}"));
        }
        let mut events = 0u64;
        for cell in &report.completed {
            if cell.completed == 0 {
                return Err(format!("{}: no users completed", cell.id));
            }
            match cell.avg_online_per_file {
                Some(v) if v.is_finite() && v > 0.0 => {}
                other => return Err(format!("{}: bad online/file {other:?}", cell.id)),
            }
            events += cell.events;
        }
        Ok(format!(
            "4 scheme cells supervised to completion ({events} events total)"
        ))
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// DES against the closed-form steady state: MTSD's per-file online time
/// is exactly 80 in the fluid limit; the finite simulation must land
/// within the same finite-size band the fluid comparison allows.
pub fn des_vs_closed_form_mtsd(cfg: &OracleConfig) -> Result<String, String> {
    let des = DesConfig::paper_small(SchemeKind::Mtsd, 0.5, cfg.seed.wrapping_add(29))
        .map_err(|e| e.to_string())?;
    let outcome = run(des)?;
    let avg = outcome.avg_online_per_file().map_err(|e| e.to_string())?;
    let rel = (avg - 80.0).abs() / 80.0;
    if rel < DES_FLUID_REL_TOL {
        Ok(format!(
            "DES MTSD online/file {avg:.2} vs closed-form 80 (rel {rel:.3}, {} users)",
            outcome.records.len()
        ))
    } else {
        Err(format!(
            "DES MTSD online/file {avg:.2} vs closed-form 80 (rel {rel:.3} ≥ {DES_FLUID_REL_TOL})"
        ))
    }
}

/// Hybrid engine against pure aggregate DES on the acceptance-criteria
/// workload: flash_crowd amplified to λ₀ = 2048 on a compressed axis, for
/// both schemes with scheduled fluid models. Per-class downloading-user
/// means must agree within the hybrid run's own declared tolerance
/// wherever the class population reaches the CLT regime the tolerance
/// model assumes (mean ≥ 1/tol², the same bound that sets the switching
/// threshold — below it a single DES realization legitimately fluctuates
/// by more than `tol`), and so must the totals.
pub fn hybrid_vs_des(cfg: &OracleConfig) -> Result<String, String> {
    use btfluid_hybrid::{HybridConfig, HybridRunner};

    const TOL: f64 = 0.1;
    const MIN_MEAN: f64 = 1.0 / (TOL * TOL);
    let program = btfluid_hybrid::amplified_flash_crowd(2048.0, 0.005);
    let mut evidence = Vec::new();
    for scheme in [SchemeKind::Mtcd, SchemeKind::Mtsd] {
        let hybrid = HybridRunner::run(HybridConfig {
            program: program.clone(),
            scheme,
            seed: cfg.seed.wrapping_add(37),
            tol: TOL,
            aggregate: true,
        })
        .map_err(|e| e.to_string())?;

        let mut des_cfg = program
            .des_config(scheme, cfg.seed.wrapping_add(37))
            .map_err(|e| e.to_string())?;
        des_cfg.aggregate = true;
        des_cfg.drain = 0.0;
        des_cfg.record_every = None;
        des_cfg.validate().map_err(|e| e.to_string())?;
        let sim =
            Simulation::with_hook(des_cfg, Box::new(program.hook())).map_err(|e| e.to_string())?;
        let outcome = sim.try_run().map_err(|e| e.to_string())?;

        let mut compared = 0usize;
        let mut worst = 0.0f64;
        for class in 1..=outcome.k() {
            let des_mean = outcome.population.avg_downloader_peers(class);
            let hy_mean = hybrid.class_means[class - 1];
            if des_mean < MIN_MEAN {
                continue;
            }
            compared += 1;
            let rel = (hy_mean - des_mean).abs() / des_mean;
            worst = worst.max(rel);
            if rel > TOL {
                return Err(format!(
                    "{} class {class}: hybrid {hy_mean:.2} vs DES {des_mean:.2} \
                     downloading users (rel {rel:.3} > tol {TOL})",
                    scheme.name()
                ));
            }
        }
        if compared < 3 {
            return Err(format!(
                "{}: only {compared} classes populated enough to compare",
                scheme.name()
            ));
        }
        let des_total: f64 = (1..=outcome.k())
            .map(|i| outcome.population.avg_downloader_peers(i))
            .sum();
        let hy_total = hybrid.total_mean();
        let rel_total = (hy_total - des_total).abs() / des_total.max(1e-9);
        if rel_total > TOL {
            return Err(format!(
                "{} total: hybrid {hy_total:.1} vs DES {des_total:.1} (rel {rel_total:.3} > {TOL})",
                scheme.name()
            ));
        }
        evidence.push(format!(
            "{}: total {hy_total:.0} vs {des_total:.0} (rel {rel_total:.3}), \
             {compared} classes worst rel {worst:.3}, {} handoffs, \
             {} DES events vs {} pure",
            scheme.name(),
            hybrid.handoffs.len(),
            hybrid.des_events,
            outcome.events,
        ));
    }
    Ok(format!("tol {TOL}: {}", evidence.join("; ")))
}

/// Fit closure over the trace pipeline (DESIGN.md §18): generate a long
/// stationary trace at known `(λ₀, p)`, recover both by moment matching
/// (within 5%), synthesize a fresh trace from the *fitted* model through
/// the shaper, and refit (again within 5% of the first fit). Then replay
/// a shorter trace into the MTCD DES and check the downloading-user
/// population against the schedule-adapted fluid ODE driven by the same
/// trace (within the usual finite-size tolerance).
pub fn trace_fit_closure(cfg: &OracleConfig) -> Result<String, String> {
    use btfluid_numkit::rng::Xoshiro256StarStar;
    use btfluid_scenario::{trace_program, TraceHook, TraceShaper};
    use btfluid_workload::{fit_model, ArrivalTrace, CorrelationModel};

    const REL_TOL: f64 = 0.05;
    let (lambda0, p, k) = (0.25, 0.4, 10u32);
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);

    // Stage 1: fit a long generated trace.
    let model = CorrelationModel::new(k, p, lambda0).map_err(|e| e.to_string())?;
    let mut rng = Xoshiro256StarStar::stream(cfg.seed, 43);
    // 60k time units ≈ 15k arrivals: rate noise ~0.8%, far inside the 5%
    // gate, so a pass/fail flip needs a real estimator bug, not an
    // unlucky draw.
    let long = ArrivalTrace::generate(&model, 60_000.0, &mut rng).map_err(|e| e.to_string())?;
    let fit = fit_model(&long).map_err(|e| e.to_string())?;
    if rel(fit.p(), p) > REL_TOL || rel(fit.lambda0(), lambda0) > REL_TOL {
        return Err(format!(
            "fit missed the generating law: p̂ = {:.4} (true {p}), λ̂₀ = {:.4} (true {lambda0})",
            fit.p(),
            fit.lambda0()
        ));
    }

    // Stage 2: synthesize from the fitted model and refit — the closure.
    let shaper = TraceShaper::flat(fit.lambda0(), fit.p(), k, 60_000.0);
    let synth = shaper.synthesize(&mut rng).map_err(|e| e.to_string())?;
    let refit = fit_model(&synth).map_err(|e| e.to_string())?;
    if rel(refit.p(), fit.p()) > REL_TOL || rel(refit.lambda0(), fit.lambda0()) > REL_TOL {
        return Err(format!(
            "refit drifted: p̂ {:.4} → {:.4}, λ̂₀ {:.4} → {:.4}",
            fit.p(),
            refit.p(),
            fit.lambda0(),
            refit.lambda0()
        ));
    }

    // Stage 3: replay a shorter trace into the DES and compare the
    // downloading-user population with the trace-driven fluid schedule.
    let mut rng = Xoshiro256StarStar::stream(cfg.seed, 44);
    let short = ArrivalTrace::generate(&model, 3000.0, &mut rng).map_err(|e| e.to_string())?;
    let program = trace_program(&short, 8, 750.0).map_err(|e| e.to_string())?;
    let des_cfg = program
        .des_config(SchemeKind::Mtcd, cfg.seed)
        .map_err(|e| e.to_string())?;
    let hook = TraceHook::new(&short).map_err(|e| e.to_string())?;
    let outcome = Simulation::with_hook(des_cfg, Box::new(hook))
        .map_err(|e| e.to_string())?
        .run();
    if outcome.arrivals != short.len() {
        return Err(format!(
            "replay admitted {} of {} recorded arrivals",
            outcome.arrivals,
            short.len()
        ));
    }
    let des = des_avg_downloaders(&outcome);
    let fluid = fluid_avg_downloaders(&program, 0.5).map_err(|e| e.to_string())?;
    let err = (des - fluid).abs() / fluid.max(1e-9);
    if err > DES_FLUID_REL_TOL {
        return Err(format!(
            "trace-driven DES {des:.2} downloading users vs scheduled fluid {fluid:.2} \
             (rel {err:.3} > {DES_FLUID_REL_TOL})"
        ));
    }
    Ok(format!(
        "fit p̂ = {:.4}, λ̂₀ = {:.4}; refit p̂ = {:.4}, λ̂₀ = {:.4} (tol {REL_TOL}); \
         replay DES {des:.2} vs fluid {fluid:.2} downloading users (rel {err:.3})",
        fit.p(),
        fit.lambda0(),
        refit.p(),
        refit.lambda0()
    ))
}
