//! Paper-derived metamorphic invariants over the *analytic* layers: the
//! binomial workload identities of Section 4.1 and the closed-form scheme
//! relationships of Section 3.
//!
//! Each check evaluates the identity over a parameter grid and reports the
//! worst deviation, so a pass carries quantitative evidence rather than a
//! bare boolean.

use crate::report::OracleConfig;
use btfluid_core::{evaluate_scheme, FluidParams, Scheme};
use btfluid_workload::CorrelationModel;

const P_GRID: &[f64] = &[1e-9, 0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0];
const K_GRID: &[u32] = &[1, 2, 5, 10, 25];

fn worst(label: &str, worst_err: f64, tol: f64) -> Result<String, String> {
    if worst_err.is_finite() && worst_err <= tol {
        Ok(format!("{label}: worst |err| {worst_err:.3e} ≤ {tol:.0e}"))
    } else {
        Err(format!("{label}: worst |err| {worst_err:.3e} > {tol:.0e}"))
    }
}

/// Σᵢ λᵢ = λ₀(1−(1−p)^K) — the class rates are a binomial pmf restricted
/// to classes 1..K, so their mass is exactly the entering fraction
/// (Section 4.1). Also pins Σᵢ i·λᵢ = λ₀·K·p (first moment).
pub fn binomial_class_mass(_cfg: &OracleConfig) -> Result<String, String> {
    let mut worst_err: f64 = 0.0;
    for &k in K_GRID {
        for &p in P_GRID {
            let m = CorrelationModel::new(k, p, 2.0).map_err(|e| e.to_string())?;
            let mass: f64 = (1..=k).map(|i| m.class_rate(i)).sum();
            let scale = m.entering_rate().max(f64::MIN_POSITIVE);
            worst_err = worst_err.max((mass - m.entering_rate()).abs() / scale);
            let first: f64 = (1..=k).map(|i| i as f64 * m.class_rate(i)).sum();
            worst_err = worst_err
                .max((first - m.file_request_rate()).abs() / m.file_request_rate().max(1e-300));
        }
    }
    worst("Σλᵢ = λ₀(1−(1−p)^K) and Σi·λᵢ = λ₀Kp", worst_err, 1e-9)
}

/// Per-torrent mass: Σᵢ λⱼⁱ = λ₀·p (each of the `K` torrents sees exactly
/// the rate of users whose request set contains its file), plus the
/// conditional-mean identity `E[files | entered] = Σi·λᵢ / Σλᵢ` and its
/// bounds `max(1, Kp) ≤ E ≤ K` down to the `p → 0` limit.
pub fn per_torrent_mass_and_entrant_mean(_cfg: &OracleConfig) -> Result<String, String> {
    let mut worst_err: f64 = 0.0;
    for &k in K_GRID {
        for &p in P_GRID {
            let m = CorrelationModel::new(k, p, 2.0).map_err(|e| e.to_string())?;
            let mass: f64 = (1..=k).map(|i| m.per_torrent_rate(i)).sum();
            worst_err =
                worst_err.max((mass - m.per_torrent_total_rate()).abs() / (2.0 * p).max(1e-12));
            let mean = m.mean_files_per_entrant();
            if !mean.is_finite() {
                return Err(format!("K={k}, p={p}: entrant mean = {mean}"));
            }
            if mean + 1e-9 < m.mean_files_per_visitor().max(1.0) || mean > k as f64 + 1e-9 {
                return Err(format!(
                    "K={k}, p={p}: entrant mean {mean} outside [max(1, Kp), K]"
                ));
            }
            let num: f64 = (1..=k).map(|i| i as f64 * m.class_rate(i)).sum();
            let den: f64 = (1..=k).map(|i| m.class_rate(i)).sum();
            if den > 0.0 {
                worst_err = worst_err.max((mean - num / den).abs() / (num / den));
            }
        }
        // The p = 0 limit itself: defined, and exactly 1.
        let m = CorrelationModel::new(k, 0.0, 2.0).map_err(|e| e.to_string())?;
        if m.mean_files_per_entrant() != 1.0 {
            return Err(format!(
                "K={k}, p=0: entrant mean {} ≠ 1 (limit)",
                m.mean_files_per_entrant()
            ));
        }
    }
    worst("Σλⱼⁱ = λ₀p and entrant-mean identity", worst_err, 1e-9)
}

/// MTCD ≡ MFCD: the paper's Section 3.4 argument that one torrent with
/// `K` subtorrents is fluid-equivalent to `K` independent torrents under
/// concurrent downloading. Checked on every reported metric.
pub fn mtcd_equals_mfcd(_cfg: &OracleConfig) -> Result<String, String> {
    let mut worst_err: f64 = 0.0;
    for &p in &P_GRID[1..] {
        let m = CorrelationModel::new(10, p, 2.0).map_err(|e| e.to_string())?;
        let a =
            evaluate_scheme(FluidParams::paper(), &m, Scheme::Mtcd).map_err(|e| e.to_string())?;
        let b =
            evaluate_scheme(FluidParams::paper(), &m, Scheme::Mfcd).map_err(|e| e.to_string())?;
        worst_err = worst_err
            .max((a.avg_online_per_file - b.avg_online_per_file).abs())
            .max((a.avg_download_per_file - b.avg_download_per_file).abs())
            .max((a.download_fairness - b.download_fairness).abs());
    }
    worst("MTCD ≡ MFCD (Eqs. 1–2 vs Sec. 3.4)", worst_err, 1e-9)
}

/// MTSD `p`-invariance: per-file online time is `(γ−μ)/(γμη) + 1/γ`
/// (Eqs. 3–4) — independent of the correlation `p`, and exactly 80 time
/// units at the paper's μ=0.02, η=0.5, γ=0.05.
pub fn mtsd_p_invariance(_cfg: &OracleConfig) -> Result<String, String> {
    let params = FluidParams::paper();
    let expect = (params.gamma() - params.mu()) / (params.gamma() * params.mu() * params.eta())
        + 1.0 / params.gamma();
    let mut worst_err: f64 = 0.0;
    for &p in &P_GRID[1..] {
        let m = CorrelationModel::new(10, p, 2.0).map_err(|e| e.to_string())?;
        let r = evaluate_scheme(params, &m, Scheme::Mtsd).map_err(|e| e.to_string())?;
        worst_err = worst_err.max((r.avg_online_per_file - expect).abs());
    }
    if (expect - 80.0).abs() > 1e-12 {
        return Err(format!("paper-parameter constant drifted: {expect} ≠ 80"));
    }
    worst("MTSD online/file = 80, ∀p", worst_err, 1e-9)
}

/// CMFSD ρ-limit: at ρ = 1 every peer plays pure tit-for-tat (no virtual
/// seeding), and the average per-file times collapse onto MFCD's.
pub fn cmfsd_rho_one_equals_mfcd(_cfg: &OracleConfig) -> Result<String, String> {
    let mut worst_err: f64 = 0.0;
    for &p in &[0.1, 0.5, 0.9] {
        let m = CorrelationModel::new(10, p, 2.0).map_err(|e| e.to_string())?;
        let cm = evaluate_scheme(FluidParams::paper(), &m, Scheme::Cmfsd { rho: 1.0 })
            .map_err(|e| e.to_string())?;
        let mf =
            evaluate_scheme(FluidParams::paper(), &m, Scheme::Mfcd).map_err(|e| e.to_string())?;
        worst_err = worst_err
            .max((cm.avg_online_per_file - mf.avg_online_per_file).abs() / mf.avg_online_per_file);
    }
    worst("CMFSD(ρ=1) ≡ MFCD averages (Eq. 5 limit)", worst_err, 1e-5)
}

/// CMFSD's other limit: at `K = 1` the subtorrent structure vanishes and
/// CMFSD degenerates — for *every* ρ — to the single-torrent model, i.e.
/// MTSD's per-file time (80 at paper parameters).
pub fn cmfsd_k1_equals_mtsd(_cfg: &OracleConfig) -> Result<String, String> {
    let mut worst_err: f64 = 0.0;
    for &rho in &[0.0, 0.3, 0.7, 1.0] {
        let m = CorrelationModel::new(1, 0.6, 2.0).map_err(|e| e.to_string())?;
        let cm = evaluate_scheme(FluidParams::paper(), &m, Scheme::Cmfsd { rho })
            .map_err(|e| e.to_string())?;
        let mt =
            evaluate_scheme(FluidParams::paper(), &m, Scheme::Mtsd).map_err(|e| e.to_string())?;
        worst_err = worst_err
            .max((cm.avg_online_per_file - mt.avg_online_per_file).abs() / mt.avg_online_per_file);
    }
    worst("CMFSD(K=1, ∀ρ) ≡ MTSD per-file time", worst_err, 1e-6)
}

/// Section 4.3's headline: at high correlation, lowering ρ (more virtual
/// seeding) improves the population-average online time monotonically.
pub fn cmfsd_monotone_in_rho(_cfg: &OracleConfig) -> Result<String, String> {
    let m = CorrelationModel::new(10, 0.9, 2.0).map_err(|e| e.to_string())?;
    let mut prev: Option<(f64, f64)> = None;
    for &rho in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let r = evaluate_scheme(FluidParams::paper(), &m, Scheme::Cmfsd { rho })
            .map_err(|e| e.to_string())?;
        if let Some((prho, pavg)) = prev {
            if r.avg_online_per_file < pavg - 1e-9 {
                return Err(format!(
                    "online/file not monotone: ρ={prho} → {pavg:.4}, ρ={rho} → {:.4}",
                    r.avg_online_per_file
                ));
            }
        }
        prev = Some((rho, r.avg_online_per_file));
    }
    Ok("online/file non-decreasing in ρ at p = 0.9".into())
}
