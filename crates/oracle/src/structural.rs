//! Structural fuzz targets: serialized artifacts (snapshots, JSONL traces)
//! fed back through their decoders after deterministic mutation. The
//! contract is *typed errors, never panics, never silent acceptance of
//! corrupt bytes*.

use crate::report::OracleConfig;
use btfluid_des::{DesConfig, SchemeKind, Simulation};
use btfluid_harness::json::Json;
use btfluid_numkit::rng::{RngCore, Xoshiro256StarStar};
use btfluid_telemetry::{
    Counters, FlightKind, FlightRecord, FlightRecorder, MetaField, Sample, TraceSink,
    FLIGHTREC_SCHEMA, FLIGHTREC_VERSION,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Builds a realistic snapshot by stepping a live engine a few hundred
/// events.
fn live_snapshot_bytes(seed: u64) -> Result<Vec<u8>, String> {
    let mut cfg = DesConfig::paper_small(SchemeKind::Cmfsd { rho: 0.5 }, 0.5, seed)
        .map_err(|e| e.to_string())?;
    cfg.horizon = 600.0;
    cfg.warmup = 100.0;
    cfg.drain = 600.0;
    let mut sim = Simulation::new(cfg).map_err(|e| e.to_string())?;
    for _ in 0..300 {
        if !sim.step().map_err(|e| e.to_string())? {
            break;
        }
    }
    Ok(sim.snapshot().to_bytes())
}

/// Snapshot decoder under fire: random bit flips and truncations of a
/// genuine snapshot must every time produce a typed [`SnapshotError`] —
/// no panic (the FNV checksum trails the content, so any mutation is
/// detectable), and no mutated file may decode as valid.
///
/// [`SnapshotError`]: btfluid_des::SnapshotError
pub fn snapshot_fuzz(cfg: &OracleConfig) -> Result<String, String> {
    let bytes = live_snapshot_bytes(cfg.seed.wrapping_add(3))?;
    // Sanity: the pristine bytes must decode.
    btfluid_des::Snapshot::from_bytes(&bytes)
        .map_err(|e| format!("pristine snapshot failed to decode: {e}"))?;

    let mut rng = Xoshiro256StarStar::stream(cfg.seed, 1);
    let trials = if cfg.full { 512 } else { 96 };
    let mut rejected = 0usize;
    for trial in 0..trials {
        let mut mutated = bytes.clone();
        let what = if trial % 3 == 2 {
            // Truncate to a strictly shorter prefix (possibly empty).
            let cut = (rng.next_u64() % bytes.len() as u64) as usize;
            mutated.truncate(cut);
            format!("truncation to {cut} bytes")
        } else {
            // Flip one random bit anywhere, checksum included.
            let byte = (rng.next_u64() % bytes.len() as u64) as usize;
            let bit = rng.next_u64() % 8;
            mutated[byte] ^= 1u8 << bit;
            format!("bit flip at byte {byte}, bit {bit}")
        };
        let verdict = catch_unwind(AssertUnwindSafe(|| {
            btfluid_des::Snapshot::from_bytes(&mutated)
        }));
        match verdict {
            Err(_) => return Err(format!("decoder PANICKED on {what}")),
            Ok(Ok(_)) => return Err(format!("decoder ACCEPTED corrupt bytes ({what})")),
            Ok(Err(_)) => rejected += 1,
        }
    }
    Ok(format!(
        "{rejected}/{trials} mutations of a {}-byte snapshot rejected with typed errors",
        bytes.len()
    ))
}

/// Trace JSONL round-trip: a sink fed non-finite samples must emit a file
/// in which *every* line parses as JSON, the non-finite fields surface as
/// `null`, and the process-wide downgrade counter advances.
pub fn trace_jsonl_round_trip(cfg: &OracleConfig) -> Result<String, String> {
    let dir = std::env::temp_dir().join(format!(
        "btfluid_oracle_trace_{}_{}",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("temp dir: {e}"))?;
    let result = (|| {
        let before = btfluid_telemetry::non_finite_null_count();
        let mut sink = TraceSink::create(&dir.join("oracle.jsonl")).map_err(|e| e.to_string())?;
        sink.meta(&[
            ("scheme", MetaField::Str("CMFSD".into())),
            ("rho", MetaField::F64(0.5)),
        ]);
        for i in 0..8u64 {
            let poison = if i % 2 == 0 { f64::NAN } else { f64::INFINITY };
            sink.sample(&Sample {
                t: i as f64 * 10.0,
                events: i * 100,
                downloaders: &[3, 1],
                download_pairs: &[3, 1],
                seed_pairs: &[1, 0],
                weight: &[1.0, poison],
                pool_real: &[0.25, 0.25],
                pool_virtual: &[0.0, 0.0],
                rho_mean: poison,
                delta_mean: 0.1,
                counters: Counters::default(),
            });
        }
        sink.end(80.0, &Counters::default());
        let path = sink.finish().map_err(|e| e.to_string())?;
        let text = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
        let mut lines = 0usize;
        let mut null_fields = 0usize;
        for line in text.lines() {
            let doc = Json::parse(line).map_err(|e| format!("invalid JSON line: {e}\n{line}"))?;
            if doc.get("kind").and_then(Json::as_str) == Some("sample")
                && doc.get("rho_mean") == Some(&Json::Null)
            {
                null_fields += 1;
            }
            lines += 1;
        }
        if null_fields != 8 {
            return Err(format!(
                "expected 8 null rho_mean fields, found {null_fields}"
            ));
        }
        let after = btfluid_telemetry::non_finite_null_count();
        if after < before + 16 {
            return Err(format!(
                "downgrade counter advanced by {} — expected ≥ 16",
                after - before
            ));
        }
        Ok(format!(
            "{lines} JSONL lines all parse; 16 non-finite fields downgraded to null and counted"
        ))
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Flight-recorder dump contract: for seeded random record streams and
/// ring capacities, `dump_string` must emit a meta line whose accounting
/// fields reconcile (`total = retained + dropped`), every record line
/// must parse as JSON with a known kind, and the retained records must be
/// **exactly the last `min(capacity, total)`** of the stream, in order.
pub fn flightrec_round_trip(cfg: &OracleConfig) -> Result<String, String> {
    let mut rng = Xoshiro256StarStar::stream(cfg.seed, 9);
    let trials = if cfg.full { 64 } else { 16 };
    let kinds = [
        FlightKind::EventPop,
        FlightKind::RateRecompute,
        FlightKind::AggResample,
        FlightKind::Handoff,
        FlightKind::Checkpoint,
        FlightKind::FaultConsult,
    ];
    let mut lines_checked = 0usize;
    for trial in 0..trials {
        let capacity = 1 + (rng.next_u64() % 40) as usize;
        let n = (rng.next_u64() % 120) as usize;
        let mut rec = FlightRecorder::new(capacity);
        let mut stream = Vec::with_capacity(n);
        for i in 0..n {
            let r = FlightRecord {
                t: i as f64 * 0.5,
                events: i as u64,
                kind: kinds[(rng.next_u64() % kinds.len() as u64) as usize],
                a: rng.next_u64() % 100,
                b: rng.next_u64() % 100,
            };
            rec.record(r);
            stream.push(r);
        }
        let failure_t = (trial % 2 == 0).then_some(n as f64);
        let dump = rec.dump_string(failure_t);
        let mut lines = dump.lines();
        let meta = Json::parse(lines.next().ok_or("empty dump")?)
            .map_err(|e| format!("meta line: {e}"))?;
        if meta.get("schema").and_then(Json::as_str) != Some(FLIGHTREC_SCHEMA)
            || meta.get("version").and_then(Json::as_u64) != Some(u64::from(FLIGHTREC_VERSION))
        {
            return Err(format!("bad schema/version in meta: {dump}"));
        }
        let total = meta.get("total").and_then(Json::as_u64).ok_or("no total")?;
        let dropped = meta
            .get("dropped")
            .and_then(Json::as_u64)
            .ok_or("no dropped")?;
        if meta.get("failure_t").is_some() != failure_t.is_some() {
            return Err("failure_t presence mismatch".into());
        }
        let records: Vec<&str> = lines.collect();
        if total != n as u64 || total != records.len() as u64 + dropped {
            return Err(format!(
                "accounting mismatch: total {total}, retained {}, dropped {dropped} (n = {n})",
                records.len()
            ));
        }
        let expect = &stream[n - n.min(capacity)..];
        if records.len() != expect.len() {
            return Err(format!(
                "retained {} records, expected the last {}",
                records.len(),
                expect.len()
            ));
        }
        for (line, want) in records.iter().zip(expect) {
            let doc = Json::parse(line).map_err(|e| format!("record line: {e}\n{line}"))?;
            let k = doc.get("k").and_then(Json::as_str).ok_or("record sans k")?;
            if FlightKind::parse(k) != Some(want.kind)
                || doc.get("ev").and_then(Json::as_u64) != Some(want.events)
                || doc.get("a").and_then(Json::as_u64) != Some(want.a)
                || doc.get("b").and_then(Json::as_u64) != Some(want.b)
            {
                return Err(format!("record mismatch: {line} vs {want:?}"));
            }
            lines_checked += 1;
        }
    }
    Ok(format!(
        "{trials} seeded ring configurations round-trip; {lines_checked} record \
         lines parsed and matched the last-capacity window exactly"
    ))
}

/// Builds a genuine hybrid snapshot (format v4) by stepping a runner
/// across a couple of regime boundaries of the fast flash-crowd config.
fn live_hybrid_snapshot_bytes(
    seed: u64,
) -> Result<(btfluid_hybrid::HybridConfig, Vec<u8>), String> {
    let cfg = btfluid_hybrid::HybridConfig {
        program: btfluid_hybrid::amplified_flash_crowd(512.0, 0.005),
        scheme: SchemeKind::Mtcd,
        seed,
        tol: 0.1,
        aggregate: false,
    };
    let mut runner =
        btfluid_hybrid::HybridRunner::new(cfg.clone()).map_err(|e| format!("hybrid new: {e}"))?;
    for _ in 0..2 {
        if !runner
            .step_boundary()
            .map_err(|e| format!("hybrid step: {e}"))?
        {
            break;
        }
    }
    Ok((cfg, runner.snapshot()))
}

/// Hybrid snapshot v4 decoder under fire: *every* single-byte corruption
/// of a valid file (one flipped bit per byte position, plus seeded
/// truncations) must come back as a typed [`HybridError::Snapshot`] —
/// never a panic, never an accepted resume, never a different error
/// class. The v4 format ends in an FNV-1a checksum over the content, so
/// any one-byte change is detectable.
///
/// [`HybridError::Snapshot`]: btfluid_hybrid::HybridError
pub fn hybrid_snapshot_fuzz(cfg: &OracleConfig) -> Result<String, String> {
    use btfluid_hybrid::{HybridError, HybridRunner};

    let (hcfg, bytes) = live_hybrid_snapshot_bytes(cfg.seed.wrapping_add(11))?;
    // Sanity: the pristine bytes must resume.
    HybridRunner::resume(hcfg.clone(), &bytes)
        .map_err(|e| format!("pristine hybrid snapshot failed to resume: {e}"))?;

    let mut rng = Xoshiro256StarStar::stream(cfg.seed, 4);
    // Visit every byte position when the file is small (or in --full);
    // otherwise stride so ~1024 positions are covered — still spanning
    // header, payload, and trailing checksum.
    let stride = if cfg.full || bytes.len() <= 1024 {
        1
    } else {
        bytes.len().div_ceil(1024)
    };
    let mut rejected = 0usize;
    let mut byte = 0usize;
    while byte < bytes.len() {
        let bit = rng.next_u64() % 8;
        let mut mutated = bytes.clone();
        mutated[byte] ^= 1u8 << bit;
        let verdict = catch_unwind(AssertUnwindSafe(|| {
            HybridRunner::resume(hcfg.clone(), &mutated).map(|_| ())
        }));
        match verdict {
            Err(_) => return Err(format!("resume PANICKED on bit flip at byte {byte}")),
            Ok(Ok(())) => {
                return Err(format!(
                    "resume ACCEPTED corrupt bytes (bit flip at byte {byte}, bit {bit})"
                ))
            }
            Ok(Err(HybridError::Snapshot(_))) => rejected += 1,
            Ok(Err(other)) => {
                return Err(format!(
                    "bit flip at byte {byte} produced a non-snapshot error class: {other}"
                ))
            }
        }
        byte += stride;
    }
    // Truncations: strictly shorter prefixes, including the empty file.
    let cuts = if cfg.full { 64 } else { 24 };
    for _ in 0..cuts {
        let cut = (rng.next_u64() % bytes.len() as u64) as usize;
        let mutated = &bytes[..cut];
        let verdict = catch_unwind(AssertUnwindSafe(|| {
            HybridRunner::resume(hcfg.clone(), mutated).map(|_| ())
        }));
        match verdict {
            Err(_) => return Err(format!("resume PANICKED on truncation to {cut} bytes")),
            Ok(Ok(())) => return Err(format!("resume ACCEPTED a truncated file ({cut} bytes)")),
            Ok(Err(HybridError::Snapshot(_))) => rejected += 1,
            Ok(Err(other)) => {
                return Err(format!(
                    "truncation to {cut} bytes produced a non-snapshot error class: {other}"
                ))
            }
        }
    }
    Ok(format!(
        "{rejected} mutations of a {}-byte v4 hybrid snapshot rejected as HybridError::Snapshot (stride {stride})",
        bytes.len()
    ))
}

/// Trace codec under fire: random bit flips and truncations of genuine
/// `btfluid-trace-arrivals v1` CSV and JSONL encodings must never panic
/// the importers — every outcome is either a typed [`NumError`] rejection
/// or an accepted trace that itself round-trips bit-exactly (a text codec
/// carries no checksum, so some single-character mutations remain valid
/// traces; the contract is *no panic, no torn state*, not
/// reject-everything).
///
/// [`NumError`]: btfluid_numkit::NumError
pub fn trace_codec_fuzz(cfg: &OracleConfig) -> Result<String, String> {
    let model = btfluid_workload::CorrelationModel::new(6, 0.5, 0.5).map_err(|e| e.to_string())?;
    let mut gen_rng = Xoshiro256StarStar::stream(cfg.seed, 41);
    let trace = btfluid_workload::ArrivalTrace::generate(&model, 200.0, &mut gen_rng)
        .map_err(|e| e.to_string())?;
    let corpora: [(&str, Vec<u8>); 2] = [
        ("csv", trace.to_csv().into_bytes()),
        ("jsonl", trace.to_jsonl().into_bytes()),
    ];
    let decode = |codec: &str, bytes: &[u8]| {
        let text = String::from_utf8_lossy(bytes).into_owned();
        if codec == "csv" {
            btfluid_workload::ArrivalTrace::from_csv(&text)
        } else {
            btfluid_workload::ArrivalTrace::from_jsonl(&text)
        }
    };

    let mut rng = Xoshiro256StarStar::stream(cfg.seed, 42);
    let trials_per_codec = if cfg.full { 400 } else { 120 };
    let mut rejected = 0usize;
    let mut accepted = 0usize;
    for (codec, bytes) in &corpora {
        // Sanity: the pristine encoding must decode to the original.
        match decode(codec, bytes) {
            Ok(t) if t == trace => {}
            Ok(_) => return Err(format!("pristine {codec} decoded to a different trace")),
            Err(e) => return Err(format!("pristine {codec} failed to decode: {e}")),
        }
        for trial in 0..trials_per_codec {
            let mut mutated = bytes.clone();
            let what = if trial % 3 == 2 {
                let cut = (rng.next_u64() % bytes.len() as u64) as usize;
                mutated.truncate(cut);
                format!("{codec} truncation to {cut} bytes")
            } else {
                let byte = (rng.next_u64() % bytes.len() as u64) as usize;
                let bit = rng.next_u64() % 8;
                mutated[byte] ^= 1u8 << bit;
                format!("{codec} bit flip at byte {byte}, bit {bit}")
            };
            let verdict = catch_unwind(AssertUnwindSafe(|| decode(codec, &mutated)));
            match verdict {
                Err(_) => return Err(format!("importer PANICKED on {what}")),
                Ok(Err(_)) => rejected += 1,
                Ok(Ok(t)) => {
                    // A mutation that still parses must yield a coherent
                    // trace: its own re-encoding round-trips bit-exactly.
                    let again = if *codec == "csv" {
                        btfluid_workload::ArrivalTrace::from_csv(&t.to_csv())
                    } else {
                        btfluid_workload::ArrivalTrace::from_jsonl(&t.to_jsonl())
                    };
                    if again.as_ref() != Ok(&t) {
                        return Err(format!(
                            "accepted mutation broke the round-trip invariant ({what})"
                        ));
                    }
                    accepted += 1;
                }
            }
        }
    }
    Ok(format!(
        "{rejected} mutations rejected with typed errors, {accepted} still-valid \
         mutations round-tripped, 0 panics over {} trials",
        2 * trials_per_codec
    ))
}
