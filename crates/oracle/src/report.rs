//! Check descriptors and run reports.

use std::time::Instant;

/// When a check runs: every `selfcheck` invocation, or only with `--full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Cheap enough for every invocation (sub-second).
    Quick,
    /// Simulation-heavy; runs only under `--full`.
    Full,
}

/// Oracle run parameters.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Base seed for every stochastic component (DES runs, byte fuzz).
    pub seed: u64,
    /// Include [`Tier::Full`] checks.
    pub full: bool,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            full: false,
        }
    }
}

/// One registered invariant or differential check.
pub struct Check {
    /// Stable kebab-case identifier.
    pub name: &'static str,
    /// Which paper equation/section (or engineering contract) this pins.
    pub paper_ref: &'static str,
    /// Cost tier.
    pub tier: Tier,
    /// The check body: `Ok(detail)` on pass, `Err(what diverged)` on fail.
    pub run: fn(&OracleConfig) -> Result<String, String>,
}

/// Outcome of one executed check.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The check's identifier.
    pub name: &'static str,
    /// Paper/contract reference.
    pub paper_ref: &'static str,
    /// Whether the check passed.
    pub passed: bool,
    /// Pass evidence or failure description.
    pub detail: String,
    /// Wall time the check took.
    pub wall_ms: u64,
}

/// The full oracle run.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Per-check outcomes, registry order.
    pub outcomes: Vec<CheckOutcome>,
    /// Total wall time.
    pub wall_ms: u64,
}

impl OracleReport {
    /// Whether every executed check passed.
    pub fn all_passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.passed)
    }

    /// Names of failed checks.
    pub fn failures(&self) -> Vec<&'static str> {
        self.outcomes
            .iter()
            .filter(|o| !o.passed)
            .map(|o| o.name)
            .collect()
    }
}

/// Executes one check with timing.
pub(crate) fn execute(check: &Check, cfg: &OracleConfig) -> CheckOutcome {
    let started = Instant::now();
    let result = (check.run)(cfg);
    let wall_ms = started.elapsed().as_millis() as u64;
    let (passed, detail) = match result {
        Ok(detail) => (true, detail),
        Err(detail) => (false, detail),
    };
    CheckOutcome {
        name: check.name,
        paper_ref: check.paper_ref,
        passed,
        detail,
        wall_ms,
    }
}
