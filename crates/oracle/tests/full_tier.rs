//! The `--full` oracle tier end to end: simulation-heavy differential
//! checks included. This is the same set `btfluid selfcheck --full` runs.

use btfluid_oracle::{registry, run_all, OracleConfig};

#[test]
fn full_tier_passes() {
    let report = run_all(&OracleConfig {
        seed: 42,
        full: true,
    });
    assert_eq!(
        report.outcomes.len(),
        registry().len(),
        "full tier must execute every registered check"
    );
    assert!(
        report.all_passed(),
        "full-tier failures: {:?}\n{:#?}",
        report.failures(),
        report
            .outcomes
            .iter()
            .filter(|o| !o.passed)
            .map(|o| (&o.name, &o.detail))
            .collect::<Vec<_>>()
    );
    // Wall-times are recorded per check (the CLI prints them).
    assert!(report.outcomes.iter().all(|o| o.wall_ms < 600_000));
}
