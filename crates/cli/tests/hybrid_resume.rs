//! Crash recovery for the hybrid driver, against the real `btfluid`
//! binary: a hybrid run SIGKILLed mid-flight and resumed from its v4
//! checkpoint must emit per-class means byte-identical to an
//! uninterrupted run (the CLI prints them with shortest-roundtrip
//! formatting, so byte equality is bit equality).

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_btfluid");

fn hybrid_args(out: &Path) -> Vec<String> {
    [
        "scenario",
        "flash_crowd",
        "--hybrid",
        "--scheme",
        "mtsd",
        "--aggregate",
        "--seed",
        "9",
        "--csv",
        "--out",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([out.to_str().unwrap().to_string()])
    .collect()
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sigkill_then_resume_is_bit_identical() {
    let dir = fresh_dir("btfluid_hybrid_kill_resume_test");
    let straight = dir.join("straight.csv");
    let resumed = dir.join("resumed.csv");
    let checkpoint = dir.join("cp.hsnap");

    // Reference: one uninterrupted run.
    let status = Command::new(BIN)
        .args(hybrid_args(&straight))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn reference run");
    assert!(status.success(), "reference run failed: {status}");

    // Victim: same run checkpointing at every decision boundary, killed
    // (SIGKILL — no cleanup handler runs) once a checkpoint lands.
    let mut victim_args = hybrid_args(&resumed);
    victim_args.extend(
        [
            "--checkpoint",
            checkpoint.to_str().unwrap(),
            "--checkpoint-every",
            "1",
        ]
        .map(String::from),
    );
    let mut child = Command::new(BIN)
        .args(&victim_args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim run");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut killed = false;
    loop {
        if checkpoint.is_file() {
            child.kill().expect("kill victim");
            child.wait().expect("reap victim");
            killed = true;
            break;
        }
        if let Some(status) = child.try_wait().expect("poll victim") {
            // Finished before the first checkpoint was observed — the
            // race went the fast way; determinism is still compared.
            assert!(status.success(), "victim failed on its own: {status}");
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint within 30s");
        std::thread::sleep(Duration::from_millis(1));
    }

    if killed {
        assert!(
            !resumed.is_file(),
            "victim was killed yet already wrote its means"
        );
        let mut resume_args = victim_args.clone();
        resume_args.push("--resume".into());
        let status = Command::new(BIN)
            .args(&resume_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("spawn resume run");
        assert!(status.success(), "resume run failed: {status}");
        assert!(
            !checkpoint.is_file(),
            "completed run must remove its checkpoint"
        );
    }

    let straight_bytes = std::fs::read(&straight).expect("read reference means");
    let resumed_bytes = std::fs::read(&resumed).expect("read resumed means");
    assert!(
        straight_bytes == resumed_bytes,
        "resumed hybrid means diverged from the uninterrupted run \
         (killed mid-run: {killed})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt hybrid checkpoint must die with the documented snapshot
/// exit code (5), not a generic failure.
#[test]
fn corrupt_hybrid_checkpoint_exits_with_snapshot_code() {
    let dir = fresh_dir("btfluid_hybrid_corrupt_cp_test");
    let checkpoint = dir.join("cp.hsnap");
    std::fs::write(&checkpoint, b"BTFSgarbage").unwrap();
    let out = dir.join("means.csv");
    let mut args = hybrid_args(&out);
    args.extend(
        [
            "--checkpoint",
            checkpoint.to_str().unwrap(),
            "--checkpoint-every",
            "1",
        ]
        .map(String::from),
    );
    args.push("--resume".into());
    let out = Command::new(BIN)
        .args(&args)
        .stdout(Stdio::null())
        .output()
        .expect("spawn run");
    assert_eq!(
        out.status.code(),
        Some(5),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
