//! Integration tests against the real `btfluid` binary: the selfcheck
//! oracle's exit-code contract, and the hard-error behaviour of the arg
//! parser (unknown flags, unparseable numerics).

use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_btfluid");

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn btfluid");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn selfcheck_quick_tier_is_green() {
    let (code, stdout, stderr) = run(&["selfcheck", "--seed", "7"]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(
        stdout.contains("checks passed"),
        "missing summary line:\n{stdout}"
    );
    assert!(
        stdout.contains("mutation-canary") && stdout.contains("cli-arg-round-trip"),
        "expected checks missing from table:\n{stdout}"
    );
    assert!(
        !stdout.contains("FAIL"),
        "table reports failures:\n{stdout}"
    );
}

#[test]
fn selfcheck_expect_fail_exits_with_invariant_code() {
    // The canary corrupts a live rate cache; detection must surface as the
    // invariant-violation exit code (4), proving the whole path from the
    // engine audit to the process exit status.
    let (code, _stdout, stderr) = run(&["selfcheck", "--expect-fail"]);
    assert_eq!(code, 4, "stderr:\n{stderr}");
    assert!(
        stderr.contains("rate-cache drift"),
        "detection detail missing:\n{stderr}"
    );
}

#[test]
fn unknown_flag_is_a_hard_usage_error() {
    let (code, _stdout, stderr) = run(&["fig2", "--frobnicate"]);
    assert_eq!(code, 1, "stderr:\n{stderr}");
    assert!(stderr.contains("frobnicate"), "stderr:\n{stderr}");
}

#[test]
fn unparseable_numeric_is_a_hard_usage_error() {
    let (code, _stdout, stderr) = run(&["sim", "--scheme", "mtsd", "--p", "abc"]);
    assert_eq!(code, 1, "stderr:\n{stderr}");
    assert!(stderr.contains("abc"), "stderr:\n{stderr}");

    let (code, _stdout, stderr) = run(&["validate", "--seed", "12x"]);
    assert_eq!(code, 1, "stderr:\n{stderr}");
    assert!(stderr.contains("12x"), "stderr:\n{stderr}");
}
