//! Crash-recovery integration test against the real `btfluid` binary:
//! a run SIGKILLed mid-flight and resumed from its checkpoint must emit a
//! record stream byte-identical to an uninterrupted run.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_btfluid");

fn scenario_args(records: &Path) -> Vec<String> {
    [
        "scenario",
        "flash_crowd",
        "--scheme",
        "mtcd",
        "--seed",
        "9",
        "--csv",
        "--records",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([records.to_str().unwrap().to_string()])
    .collect()
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sigkill_then_resume_is_bit_identical() {
    let dir = fresh_dir("btfluid_kill_resume_test");
    let straight = dir.join("straight.csv");
    let resumed = dir.join("resumed.csv");
    let checkpoint = dir.join("cp.snap");

    // Reference: one uninterrupted run.
    let status = Command::new(BIN)
        .args(scenario_args(&straight))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn reference run");
    assert!(status.success(), "reference run failed: {status}");

    // Victim: same run with checkpointing, killed (SIGKILL — no cleanup
    // handler gets to run) as soon as the first checkpoint lands on disk.
    let mut victim_args = scenario_args(&resumed);
    victim_args.extend(
        [
            "--checkpoint",
            checkpoint.to_str().unwrap(),
            "--checkpoint-every",
            "200",
        ]
        .map(String::from),
    );
    let mut child = Command::new(BIN)
        .args(&victim_args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim run");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut killed = false;
    loop {
        if checkpoint.is_file() {
            // `Child::kill` is SIGKILL on Unix.
            child.kill().expect("kill victim");
            child.wait().expect("reap victim");
            killed = true;
            break;
        }
        if let Some(status) = child.try_wait().expect("poll victim") {
            // Finished before the first checkpoint was observed: the race
            // went the fast way. The determinism comparison below still
            // stands; the resume path is covered by the harness tests.
            assert!(status.success(), "victim failed on its own: {status}");
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint within 30s");
        std::thread::sleep(Duration::from_millis(1));
    }

    if killed {
        assert!(
            !resumed.is_file(),
            "victim was killed yet already wrote its records"
        );
        let mut resume_args = victim_args.clone();
        resume_args.push("--resume".into());
        let status = Command::new(BIN)
            .args(&resume_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("spawn resume run");
        assert!(status.success(), "resume run failed: {status}");
        assert!(
            !checkpoint.is_file(),
            "completed run must remove its checkpoint"
        );
    }

    let straight_bytes = std::fs::read(&straight).expect("read reference records");
    let resumed_bytes = std::fs::read(&resumed).expect("read resumed records");
    assert!(
        straight_bytes == resumed_bytes,
        "resumed record stream diverged from the uninterrupted run \
         (killed mid-run: {killed})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Exit codes are part of the CLI contract: a corrupt checkpoint must die
/// with the documented snapshot code, not a generic failure.
#[test]
fn corrupt_checkpoint_exits_with_snapshot_code() {
    let dir = fresh_dir("btfluid_corrupt_cp_test");
    let checkpoint = dir.join("cp.snap");
    std::fs::write(&checkpoint, b"BTFSgarbage").unwrap();
    let records = dir.join("records.csv");
    let mut args = scenario_args(&records);
    args.extend(
        [
            "--checkpoint",
            checkpoint.to_str().unwrap(),
            "--checkpoint-every",
            "200",
        ]
        .map(String::from),
    );
    args.push("--resume".into());
    let out = Command::new(BIN)
        .args(&args)
        .stdout(Stdio::null())
        .output()
        .expect("spawn run");
    assert_eq!(
        out.status.code(),
        Some(5),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
