//! Flight-recorder crash-recovery contract against the real `btfluid`
//! binary: the dump a resumed run writes must carry the same record tail
//! as an uninterrupted twin. The ring only keeps the last `capacity`
//! records, and engine replay after resume is bit-identical, so once the
//! post-resume leg has produced at least `capacity` records the two rings
//! hold byte-identical windows — only the meta line (totals and drop
//! counts, which are per-process) may differ.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_btfluid");
const CAP: &str = "128";

fn scenario_args(records: &Path, flightrec: &Path) -> Vec<String> {
    [
        "scenario",
        "flash_crowd",
        "--scheme",
        "mtcd",
        "--seed",
        "11",
        "--csv",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([
        "--records".to_string(),
        records.to_str().unwrap().to_string(),
        "--flightrec".to_string(),
        flightrec.to_str().unwrap().to_string(),
        "--flightrec-cap".to_string(),
        CAP.to_string(),
    ])
    .collect()
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Splits a flightrec dump into its meta line and record lines.
fn split_dump(path: &Path) -> (String, Vec<String>) {
    let body = std::fs::read_to_string(path).expect("read flightrec dump");
    let mut lines = body.lines().map(str::to_string);
    let meta = lines.next().expect("dump has a meta line");
    (meta, lines.collect())
}

#[test]
fn resumed_run_dumps_the_same_flight_tail() {
    let dir = fresh_dir("btfluid_flightrec_tail_test");
    let straight = dir.join("straight.csv");
    let straight_fr = dir.join("straight.flightrec.jsonl");
    let resumed = dir.join("resumed.csv");
    let resumed_fr = dir.join("resumed.flightrec.jsonl");
    let checkpoint = dir.join("cp.snap");
    let ref_checkpoint = dir.join("cp_ref.snap");

    // Reference: one uninterrupted run with the recorder attached. It
    // checkpoints on the same cadence (to its own file) so that the two
    // record streams contain identical `checkpoint` entries — the cadence
    // is event-count based, so it lines up across the resume boundary.
    let mut ref_args = scenario_args(&straight, &straight_fr);
    ref_args.extend(
        [
            "--checkpoint",
            ref_checkpoint.to_str().unwrap(),
            "--checkpoint-every",
            "200",
        ]
        .map(String::from),
    );
    let status = Command::new(BIN)
        .args(&ref_args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn reference run");
    assert!(status.success(), "reference run failed: {status}");

    // Victim: same run with checkpointing, SIGKILLed as soon as the first
    // checkpoint lands (no dump gets written — the dump happens at exit).
    let mut victim_args = scenario_args(&resumed, &resumed_fr);
    victim_args.extend(
        [
            "--checkpoint",
            checkpoint.to_str().unwrap(),
            "--checkpoint-every",
            "200",
        ]
        .map(String::from),
    );
    let mut child = Command::new(BIN)
        .args(&victim_args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim run");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut killed = false;
    loop {
        if checkpoint.is_file() {
            child.kill().expect("kill victim");
            child.wait().expect("reap victim");
            killed = true;
            break;
        }
        if let Some(status) = child.try_wait().expect("poll victim") {
            assert!(status.success(), "victim failed on its own: {status}");
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint within 30s");
        std::thread::sleep(Duration::from_millis(1));
    }

    if killed {
        assert!(
            !resumed_fr.is_file(),
            "victim was killed yet already wrote its flight dump"
        );
        let mut resume_args = victim_args.clone();
        resume_args.push("--resume".into());
        let status = Command::new(BIN)
            .args(&resume_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("spawn resume run");
        assert!(status.success(), "resume run failed: {status}");
    }

    let (straight_meta, straight_records) = split_dump(&straight_fr);
    let (resumed_meta, resumed_records) = split_dump(&resumed_fr);
    for meta in [&straight_meta, &resumed_meta] {
        assert!(
            meta.contains("\"schema\":\"flightrec\"") && meta.contains("\"version\":1"),
            "meta line is not a flightrec v1 header: {meta}"
        );
    }
    // The post-resume leg of flash_crowd produces far more than `CAP`
    // records, so both rings ended full of the same final window.
    let cap: usize = CAP.parse().unwrap();
    assert_eq!(
        straight_records.len(),
        cap,
        "reference ring did not fill its capacity"
    );
    assert!(
        straight_records == resumed_records,
        "flight-recorder tails diverged (killed mid-run: {killed})\n\
         reference tail head: {:?}\nresumed tail head: {:?}",
        straight_records.first(),
        resumed_records.first()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
