//! Subcommand dispatch and execution.

use crate::args::Options;
use crate::errors::{CliError, EXIT_CLOBBER, EXIT_SWEEP_FAILED};
use btfluid_bench::{
    ablation, adapt_exp, fig2, fig3, fig4a, fig4bc, skew, transient, validate, Table,
};
use btfluid_core::adapt::AdaptConfig;
use btfluid_core::multiclass::{BandwidthClass, MultiClassFluid};
use btfluid_core::FluidParams;
use btfluid_des::{
    estimate_eta, run_single_torrent, ChunkLevelConfig, DesConfig, OrderPolicy, SchemeKind,
    SimOutcome, Simulation, SingleTorrentConfig, Snapshot,
};
use btfluid_harness as harness;
use btfluid_scenario::{registry, runner};
use btfluid_workload::CorrelationModel;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

const USAGE: &str = "\
btfluid — multiple-file BitTorrent downloading, reproduced (ICPP 2006)

USAGE: btfluid <command> [options]

COMMANDS
  fig2        Figure 2: MTCD vs MTSD avg online time per file vs correlation
                [--points N] [--k K]
  fig3        Figure 3: per-class times at p = 0.1 and p = 1.0  [--k K] [--p LIST]
  fig4a       Figure 4(a): CMFSD avg online time per file over the (p, ρ) grid
  fig4b       Figure 4(b): per-class CMFSD vs MFCD at p = 0.9
  fig4c       Figure 4(c): per-class CMFSD vs MFCD at p = 0.1
  validate    X3: fluid model vs peer-level simulator
                [--p P] [--reps N] [--horizon H] [--warmup W] [--seed S]
  adapt       X4: Adapt under cheaters  [--cheaters LIST] [--p P] [--reps N]
                [--epoch E] [--horizon H] [--seed S]
  transient   X5: flash-crowd settling  [--p P] [--crowd N]
  ablation    X6: parameter elasticities per scheme  [--p P]
  skew        X8: Zipf popularity skew, MTCD vs MTSD  [--k K]
  multiclass  X7: heterogeneous bandwidth classes, fluid vs simulation
                [--classes MU:C:LAMBDA,...] [--seed S]
  eta         X9: measure the sharing efficiency η at chunk level [--seed S]
  sim         one raw simulation  --scheme mtsd|mtcd|mfcd|cmfsd[:RHO]
                [--p P] [--horizon H] [--warmup W] [--seed S]
                [--origin-seeds N]
  scenario    non-stationary scenario runs (flash crowds, churn, faults)
                btfluid scenario list
                btfluid scenario <name> [--scheme SCHEME] [--seed S]
                  [--smoke | --scale F] [--exact] [--fluid] [--checked]
                crash-safe (single-scheme only):
                  [--checkpoint FILE] [--checkpoint-every N] [--resume]
                  [--records FILE]
  sweep       supervised replicate sweep with failure quarantine
                --manifest FILE [--bundles DIR] [--schemes LIST] [--reps N]
                [--seed S] [--p P] [--k K] [--horizon H] [--resume]
                [--retries N] [--workers N] [--event-budget N]
                [--wall-budget-ms MS] [--checkpoint-every N] [--checked]
                [--exact] [--inject-panic CELL@EVENT]
  repro       replay a quarantined cell from its repro bundle
                btfluid repro <bundle-dir>
  all         every fluid-model figure in sequence

GLOBAL OPTIONS
  --csv            print CSV instead of an aligned table
  --out FILE       also write the (CSV) output to FILE
  --force          overwrite existing --out/--records files
  --help           this message

SEEDS
  Every DES-running command is deterministic under --seed; reruns with the
  same seed are bit-identical. Defaults: validate 2006, adapt 43, sim 1,
  eta 11, multiclass 7, scenario 2006, sweep 2006. Fluid-only commands
  (fig*, transient, ablation, skew) take no seed.

CRASH SAFETY
  --checkpoint FILE writes an atomic engine snapshot every
  --checkpoint-every events (default 5000); with --resume a run killed at
  any instant picks up from the checkpoint and finishes **bit-identical**
  to an uninterrupted run. A finished run deletes its checkpoint. The
  sweep command journals finished cells to --manifest (JSONL, append-only)
  and --resume skips them; a cell that panics or blows its budget is
  quarantined into a repro bundle under --bundles, replayable with
  'btfluid repro'. --checked enables per-event engine invariant audits.

EXIT CODES
  0 success          1 usage or I/O     2 invalid configuration
  3 solver diverged  4 invariant violated (--checked)
  5 snapshot/checkpoint rejected        6 sweep had failures / repro
  7 refused to overwrite (use --force)    reproduced the recorded failure
";

/// Runs the command line; `Ok(())` on success.
pub fn dispatch(argv: &[String]) -> Result<(), CliError> {
    let Some(cmd) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    if cmd == "--help" || cmd == "help" || cmd == "-h" {
        print!("{USAGE}");
        return Ok(());
    }
    // `scenario` and `repro` take a positional argument before the options.
    if cmd == "scenario" {
        return cmd_scenario(&argv[1..]);
    }
    if cmd == "repro" {
        return cmd_repro(&argv[1..]);
    }
    let opts = Options::parse(&argv[1..])?;
    match cmd.as_str() {
        "fig2" => cmd_fig2(&opts),
        "fig3" => cmd_fig3(&opts),
        "fig4a" => cmd_fig4a(&opts),
        "fig4b" => cmd_fig4bc(&opts, 0.9),
        "fig4c" => cmd_fig4bc(&opts, 0.1),
        "validate" => cmd_validate(&opts),
        "adapt" => cmd_adapt(&opts),
        "transient" => cmd_transient(&opts),
        "ablation" => cmd_ablation(&opts),
        "multiclass" => cmd_multiclass(&opts),
        "skew" => cmd_skew(&opts),
        "eta" => cmd_eta(&opts),
        "sim" => cmd_sim(&opts),
        "sweep" => cmd_sweep(&opts),
        "all" => cmd_all(&opts),
        other => Err(format!("unknown command '{other}' (try --help)").into()),
    }
}

thread_local! {
    /// Paths this invocation already wrote: commands that emit several
    /// tables to one `--out` file may keep rewriting it, only the *first*
    /// write of a pre-existing file needs `--force`.
    static WRITTEN: std::cell::RefCell<std::collections::BTreeSet<String>> =
        const { std::cell::RefCell::new(std::collections::BTreeSet::new()) };
}

/// Refuses to overwrite `path` unless `--force` was given.
fn check_clobber(path: &str, opts: &Options) -> Result<(), CliError> {
    let first = WRITTEN.with(|w| w.borrow_mut().insert(path.to_string()));
    if first && Path::new(path).exists() && !opts.has("force") {
        return Err(CliError::clobber(path));
    }
    Ok(())
}

/// Prints a table (or its CSV form) and optionally writes the CSV to disk.
fn emit(table: &Table, opts: &Options) -> Result<(), CliError> {
    if opts.has("csv") {
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.render());
    }
    if let Some(path) = opts.get("out") {
        check_clobber(path, opts)?;
        fs::write(path, table.to_csv())?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_fig2(opts: &Options) -> Result<(), CliError> {
    let cfg = fig2::Fig2Config {
        points: opts.get_usize("points", 50)?,
        k: opts.get_usize("k", 10)? as u32,
        params: FluidParams::paper(),
    };
    let r = fig2::run(&cfg)?;
    emit(&r.table(), opts)
}

fn cmd_fig3(opts: &Options) -> Result<(), CliError> {
    let cfg = fig3::Fig3Config {
        k: opts.get_usize("k", 10)? as u32,
        correlations: opts.get_f64_list("p", &[0.1, 1.0])?,
        params: FluidParams::paper(),
    };
    let r = fig3::run(&cfg)?;
    for t in r.tables() {
        emit(&t, opts)?;
    }
    Ok(())
}

fn cmd_fig4a(opts: &Options) -> Result<(), CliError> {
    let r = fig4a::run(&fig4a::Fig4aConfig::default())?;
    emit(&r.table(), opts)
}

fn cmd_fig4bc(opts: &Options, p: f64) -> Result<(), CliError> {
    let cfg = fig4bc::Fig4bcConfig {
        correlations: vec![p],
        ..Default::default()
    };
    let r = fig4bc::run(&cfg)?;
    for t in r.tables() {
        emit(&t, opts)?;
    }
    Ok(())
}

fn cmd_validate(opts: &Options) -> Result<(), CliError> {
    let p = opts.get_f64("p", 0.5)?;
    let cfg = validate::ValidateConfig {
        model: CorrelationModel::new(10, p, 0.25)?,
        replications: opts.get_usize("reps", 4)?,
        horizon: opts.get_f64("horizon", 4000.0)?,
        warmup: opts.get_f64("warmup", 1000.0)?,
        seed: opts.get_u64("seed", 2006)?,
        ..Default::default()
    };
    let r = validate::run(&cfg)?;
    emit(&r.table(), opts)?;
    eprintln!(
        "worst relative online-time error: {:.1}%",
        100.0 * r.worst_online_error()
    );
    Ok(())
}

fn cmd_adapt(opts: &Options) -> Result<(), CliError> {
    let p = opts.get_f64("p", 0.9)?;
    let cfg = adapt_exp::AdaptExpConfig {
        model: CorrelationModel::new(10, p, 0.25)?,
        cheater_fractions: opts.get_f64_list("cheaters", &[0.0, 0.25, 0.5, 0.75])?,
        replications: opts.get_usize("reps", 3)?,
        epoch: opts.get_f64("epoch", 20.0)?,
        horizon: opts.get_f64("horizon", 4000.0)?,
        warmup: opts.get_f64("warmup", 1000.0)?,
        seed: opts.get_u64("seed", 43)?,
        controller: AdaptConfig::default_for_mu(0.02),
        params: FluidParams::paper(),
    };
    let r = adapt_exp::run(&cfg)?;
    emit(&r.table(), opts)
}

fn cmd_transient(opts: &Options) -> Result<(), CliError> {
    let cfg = transient::TransientConfig {
        p: opts.get_f64("p", 0.5)?,
        flash_crowd: opts.get_f64("crowd", 200.0)?,
        ..Default::default()
    };
    let r = transient::run(&cfg)?;
    emit(&r.table(), opts)?;
    if opts.has("csv") {
        print!("{}", r.mtcd.to_csv());
    }
    Ok(())
}

fn cmd_ablation(opts: &Options) -> Result<(), CliError> {
    let p = opts.get_f64("p", 0.7)?;
    let cfg = ablation::AblationConfig {
        model: CorrelationModel::new(10, p, 1.0)?,
        ..Default::default()
    };
    let r = ablation::run(&cfg)?;
    emit(&r.table(), opts)
}

fn cmd_eta(opts: &Options) -> Result<(), CliError> {
    let seed = opts.get_u64("seed", 11)?;
    let mut t = Table::new(
        "X9 — chunk-level η: downloader upload utilization and seed byte share",
        vec!["chunks", "1/γ", "utilization", "seed/dl bytes", "completed"],
    );
    for &chunks in &[4usize, 16, 64, 256] {
        for &gamma in &[0.05, 0.2] {
            let e = estimate_eta(&ChunkLevelConfig {
                chunks,
                gamma,
                horizon: 2000.0,
                warmup: 500.0,
                seed,
                ..Default::default()
            })?;
            t.push_row(vec![
                format!("{chunks}"),
                format!("{:.0}", 1.0 / gamma),
                format!("{:.3}", e.utilization),
                format!("{:.2}", e.seed_byte_ratio()),
                format!("{}", e.completed),
            ]);
        }
    }
    emit(&t, opts)
}

fn cmd_skew(opts: &Options) -> Result<(), CliError> {
    let cfg = skew::SkewConfig {
        k: opts.get_usize("k", 10)? as u32,
        ..Default::default()
    };
    let r = skew::run(&cfg)?;
    emit(&r.table(), opts)
}

fn parse_classes(spec: &str) -> Result<Vec<BandwidthClass>, CliError> {
    let mut classes = Vec::new();
    for (i, tok) in spec.split(',').enumerate() {
        let parts: Vec<&str> = tok.trim().split(':').collect();
        if parts.len() != 3 {
            return Err(format!("class {i}: expected MU:C:LAMBDA, got '{tok}'").into());
        }
        classes.push(BandwidthClass {
            mu: parts[0]
                .parse()
                .map_err(|_| format!("class {i}: bad μ '{}'", parts[0]))?,
            c: parts[1]
                .parse()
                .map_err(|_| format!("class {i}: bad c '{}'", parts[1]))?,
            lambda: parts[2]
                .parse()
                .map_err(|_| format!("class {i}: bad λ '{}'", parts[2]))?,
        });
    }
    Ok(classes)
}

fn cmd_multiclass(opts: &Options) -> Result<(), CliError> {
    let classes = match opts.get("classes") {
        Some(spec) => parse_classes(spec)?,
        None => vec![
            BandwidthClass {
                mu: 0.005,
                c: 0.05,
                lambda: 0.2,
            },
            BandwidthClass {
                mu: 0.02,
                c: 0.2,
                lambda: 0.3,
            },
            BandwidthClass {
                mu: 0.08,
                c: 0.8,
                lambda: 0.1,
            },
        ],
    };
    let fluid = MultiClassFluid::new(classes.clone(), 0.5, 0.05)?;
    let ss = fluid.steady_state()?;
    let sim = run_single_torrent(&SingleTorrentConfig {
        classes: classes.clone(),
        eta: 0.5,
        gamma: 0.05,
        horizon: 8000.0,
        warmup: 2500.0,
        drain: 4000.0,
        seed: opts.get_u64("seed", 7)?,
    })?;
    let mut t = Table::new(
        "X7 — heterogeneous bandwidth classes (Section 2), fluid vs simulation",
        vec!["class", "μ", "c", "λ", "fluid T_dl", "sim T_dl", "users"],
    );
    for (i, cl) in classes.iter().enumerate() {
        t.push_row(vec![
            format!("{}", i + 1),
            format!("{}", cl.mu),
            format!("{}", cl.c),
            format!("{}", cl.lambda),
            format!("{:.2}", ss.download_times[i]),
            format!("{:.2}", sim.classes[i].download.mean()),
            format!("{}", sim.classes[i].download.count()),
        ]);
    }
    emit(&t, opts)?;
    if sim.censored > 0 {
        eprintln!("warning: {} censored users", sim.censored);
    }
    Ok(())
}

fn parse_scheme(s: &str) -> Result<SchemeKind, CliError> {
    match s {
        "mtsd" => Ok(SchemeKind::Mtsd),
        "mtcd" => Ok(SchemeKind::Mtcd),
        "mfcd" => Ok(SchemeKind::Mfcd),
        _ => {
            if let Some(rho) = s.strip_prefix("cmfsd") {
                let rho = rho.strip_prefix(':').unwrap_or("0.0");
                let rho: f64 = rho
                    .parse()
                    .map_err(|_| format!("bad CMFSD ρ in '{s}' (use cmfsd:0.3)"))?;
                Ok(SchemeKind::Cmfsd { rho })
            } else {
                Err(format!("unknown scheme '{s}' (mtsd|mtcd|mfcd|cmfsd[:RHO])").into())
            }
        }
    }
}

fn cmd_sim(opts: &Options) -> Result<(), CliError> {
    let scheme = parse_scheme(opts.get("scheme").unwrap_or("mtsd"))?;
    let p = opts.get_f64("p", 0.5)?;
    let horizon = opts.get_f64("horizon", 4000.0)?;
    let cfg = DesConfig {
        params: FluidParams::paper(),
        model: CorrelationModel::new(10, p, 0.25)?,
        scheme,
        horizon,
        warmup: opts.get_f64("warmup", horizon / 4.0)?,
        drain: horizon,
        seed: opts.get_u64("seed", 1)?,
        adapt: None,
        origin_seeds: opts.get_usize("origin-seeds", 1)?,
        warm_start: false,
        order_policy: OrderPolicy::default(),
        record_every: None,
        exact_rates: opts.has("exact"),
        checked: opts.has("checked"),
    };
    let outcome = Simulation::new(cfg)?.try_run()?;
    let mut t = Table::new(
        format!("simulation — {} (p = {p})", scheme.name()),
        vec!["class", "users", "download/file", "online/file"],
    );
    for (i, stats) in outcome.classes.iter().enumerate() {
        if stats.count() == 0 {
            continue;
        }
        let class = (i + 1) as f64;
        t.push_row(vec![
            format!("{}", i + 1),
            format!("{}", stats.count()),
            format!("{:.2}", stats.download.mean() / class),
            format!("{:.2}", stats.online.mean() / class),
        ]);
    }
    emit(&t, opts)?;
    eprintln!(
        "arrivals: {}, counted: {}, censored: {}, avg online/file: {:.2}",
        outcome.arrivals,
        outcome.records.len(),
        outcome.censored,
        outcome.avg_online_per_file()?
    );
    Ok(())
}

/// `btfluid scenario list` | `btfluid scenario <name> [options]`.
///
/// The scenario name is positional, so it is peeled off before the
/// option parser (which rejects positionals) sees the rest.
fn cmd_scenario(rest: &[String]) -> Result<(), CliError> {
    let Some(name) = rest.first() else {
        return Err(format!(
            "scenario: missing name (try 'btfluid scenario list'); registry: {}",
            registry::SCENARIO_NAMES.join(", ")
        )
        .into());
    };
    let opts = Options::parse(&rest[1..])?;
    if name == "list" {
        return scenario_list(&opts);
    }
    let Some(mut program) = registry::by_name(name) else {
        return Err(format!(
            "scenario: unknown name '{name}'; registry: {}",
            registry::SCENARIO_NAMES.join(", ")
        )
        .into());
    };

    let scale = if opts.has("smoke") {
        0.25
    } else {
        opts.get_f64("scale", 1.0)?
    };
    if !scale.is_finite() || scale <= 0.0 {
        return Err("scenario: --scale must be positive".into());
    }
    if (scale - 1.0).abs() > 1e-12 {
        program = program.time_scaled(scale);
    }
    let seed = opts.get_u64("seed", 2006)?;
    let exact = opts.has("exact");
    let crash_safe = opts.get("checkpoint").is_some()
        || opts.get("records").is_some()
        || opts.has("resume")
        || opts.has("checked");

    let runs = match opts.get("scheme") {
        Some(spec) => {
            let scheme = parse_scheme(spec)?;
            if crash_safe {
                vec![run_scenario_resumable(
                    &program, scheme, seed, exact, &opts,
                )?]
            } else {
                vec![runner::run_one(
                    &program,
                    scheme,
                    None,
                    &scheme.name(),
                    seed,
                    exact,
                )?]
            }
        }
        None if crash_safe => {
            return Err(
                "scenario: --checkpoint/--records/--resume/--checked need --scheme \
                 (one engine run, one checkpoint)"
                    .into(),
            )
        }
        None => runner::run_all(&program, seed, exact)?,
    };

    if let Some(path) = opts.get("records") {
        write_records(path, &runs[0].outcome, &opts)?;
    }

    eprintln!(
        "scenario {name}: {} (seed {seed}, scale {scale})",
        program.description
    );
    for run in &runs {
        emit(&scenario_table(name, run), &opts)?;
        eprintln!(
            "{}: arrivals {}, completed {}, aborted {}, censored {}",
            run.label,
            run.outcome.arrivals,
            run.outcome.records.len(),
            run.outcome.aborts.len(),
            run.outcome.censored
        );
    }

    if opts.has("fluid") {
        scenario_fluid_comparison(name, &program, seed)?;
    }
    Ok(())
}

fn scenario_list(opts: &Options) -> Result<(), CliError> {
    let mut t = Table::new(
        "scenario registry — btfluid scenario <name>",
        vec!["name", "description", "phases"],
    );
    for p in registry::all() {
        let phases: Vec<String> = p.phases.iter().map(|ph| ph.name.clone()).collect();
        t.push_row(vec![
            p.name.clone(),
            p.description.clone(),
            phases.join("/"),
        ]);
    }
    emit(&t, opts)
}

/// Per-phase timeline of one scheme's scenario run.
fn scenario_table(name: &str, run: &runner::ScenarioRun) -> Table {
    let mut t = Table::new(
        format!("scenario {name} — {}", run.label),
        vec![
            "phase",
            "window",
            "completed",
            "aborted",
            "dl/file",
            "online/file",
        ],
    );
    for ph in &run.phases {
        let mut dl = 0.0;
        let mut files = 0.0;
        for (idx, c) in ph.classes.iter().enumerate() {
            dl += c.download.mean() * c.count() as f64;
            files += (idx + 1) as f64 * c.count() as f64;
        }
        let per_file = |v: f64| {
            if files > 0.0 {
                format!("{:.2}", v / files)
            } else {
                "-".into()
            }
        };
        t.push_row(vec![
            ph.name.clone(),
            format!("[{:.0}, {:.0})", ph.start, ph.end),
            format!("{}", ph.completed()),
            format!("{}", ph.aborted),
            per_file(dl),
            ph.online_per_file()
                .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
        ]);
    }
    t
}

/// DES-vs-fluid transient check: the schedule-driven MTCD ODE against an
/// MTCD DES run of the same program. Origin seeds are zeroed on both
/// sides — the fluid model has no publisher, and under MTCD a pinned
/// origin seed adds a full μ per subtorrent.
fn scenario_fluid_comparison(
    name: &str,
    program: &btfluid_scenario::ScenarioProgram,
    seed: u64,
) -> Result<(), CliError> {
    let mut program = program.clone();
    program.origin_seeds = 0;
    let run = runner::run_one(&program, SchemeKind::Mtcd, None, "MTCD", seed, false)?;
    let des = btfluid_scenario::des_avg_downloaders(&run.outcome);
    let fluid = btfluid_scenario::fluid_avg_downloaders(&program, 0.5)?;
    let rel = (des - fluid).abs() / fluid.max(1e-9);
    eprintln!(
        "fluid check ({name}, MTCD, origin seeds off): DES {des:.2} downloading users, \
         fluid {fluid:.2}, relative error {:.1}%",
        100.0 * rel
    );
    Ok(())
}

/// A single-scheme scenario run through the crash-safe driver: honors
/// `--checkpoint`, `--checkpoint-every`, `--resume`, and `--checked`.
fn run_scenario_resumable(
    program: &btfluid_scenario::ScenarioProgram,
    scheme: SchemeKind,
    seed: u64,
    exact: bool,
    opts: &Options,
) -> Result<runner::ScenarioRun, CliError> {
    let mut cfg = program.des_config(scheme, seed)?;
    cfg.exact_rates = exact;
    cfg.checked = opts.has("checked");
    cfg.validate()?;
    let plan = harness::CheckpointPlan {
        path: opts.get("checkpoint").map(PathBuf::from),
        every_events: opts.get_u64("checkpoint-every", 5000)?,
    };
    let hook_factory = || -> Box<dyn btfluid_des::ScenarioHook> { Box::new(program.hook()) };
    let report = harness::drive(
        cfg,
        Some(&hook_factory),
        Some(&plan),
        opts.has("resume"),
        &harness::RunLimits::default(),
        None,
        None,
    )?;
    if report.resumed {
        eprintln!(
            "resumed from checkpoint; finished at {} events ({} checkpoint(s) this run)",
            report.events, report.checkpoints
        );
    }
    let Some(outcome) = report.outcome else {
        return Err("internal: unlimited run returned without an outcome".into());
    };
    let phases = runner::phase_stats(program, &outcome);
    Ok(runner::ScenarioRun {
        label: scheme.name(),
        scheme,
        outcome,
        phases,
    })
}

/// Writes the per-user record stream as CSV. Floats use Rust's
/// shortest-roundtrip formatting, so two byte-identical files mean two
/// bit-identical record streams — the resume tests compare exactly this.
fn write_records(path: &str, outcome: &SimOutcome, opts: &Options) -> Result<(), CliError> {
    check_clobber(path, opts)?;
    let mut body =
        String::from("id,class,arrival,departure,download_span,online_fluid,final_rho,cheater\n");
    for r in &outcome.records {
        body.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.id,
            r.class,
            r.arrival,
            r.departure,
            r.download_span,
            r.online_fluid,
            r.final_rho,
            r.cheater
        ));
    }
    fs::write(path, body)?;
    eprintln!("wrote {path} ({} records)", outcome.records.len());
    Ok(())
}

/// `--inject-panic CELL[@EVENT]` (default event 50).
fn parse_inject(spec: Option<&str>) -> Result<Option<(String, u64)>, CliError> {
    let Some(spec) = spec else { return Ok(None) };
    match spec.rsplit_once('@') {
        Some((cell, ev)) => {
            let ev = ev.parse().map_err(|_| {
                format!("--inject-panic: '{ev}' is not an event count (use CELL@EVENT)")
            })?;
            Ok(Some((cell.to_string(), ev)))
        }
        None => Ok(Some((spec.to_string(), 50))),
    }
}

/// `btfluid sweep` — supervised replicate sweep with failure quarantine.
fn cmd_sweep(opts: &Options) -> Result<(), CliError> {
    let Some(manifest) = opts.get("manifest") else {
        return Err("sweep: --manifest FILE is required (the append-only journal)".into());
    };
    let manifest_path = PathBuf::from(manifest);
    let resume = opts.has("resume");
    if !resume && fs::metadata(&manifest_path).is_ok_and(|m| m.len() > 0) {
        return Err(CliError::new(
            EXIT_CLOBBER,
            format!(
                "{manifest} already journals a sweep; pass --resume to continue it \
                 or choose a fresh manifest path"
            ),
        ));
    }
    let bundles = opts
        .get("bundles")
        .map(PathBuf::from)
        .unwrap_or_else(|| manifest_path.with_extension("bundles"));

    let scheme_specs: Vec<String> = match opts.get("schemes") {
        Some(s) => s.split(',').map(|t| t.trim().to_string()).collect(),
        None => ["mtsd", "mtcd", "mfcd", "cmfsd:0.5"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let reps = opts.get_usize("reps", 2)?;
    if reps == 0 {
        return Err("sweep: --reps must be at least 1".into());
    }
    let base_seed = opts.get_u64("seed", 2006)?;
    let p = opts.get_f64("p", 0.5)?;
    let k = opts.get_usize("k", 10)? as u32;
    let horizon = opts.get_f64("horizon", 600.0)?;
    let warmup = opts.get_f64("warmup", horizon / 4.0)?;
    let inject = parse_inject(opts.get("inject-panic"))?;

    let mut cells = Vec::new();
    for spec in &scheme_specs {
        let scheme = parse_scheme(spec)?;
        for rep in 0..reps {
            let seed = base_seed.wrapping_add(rep as u64);
            let id = format!("{spec}-s{seed}");
            let cfg = DesConfig {
                params: FluidParams::paper(),
                model: CorrelationModel::new(k, p, 0.25)?,
                scheme,
                horizon,
                warmup,
                drain: horizon,
                seed,
                adapt: None,
                origin_seeds: 1,
                warm_start: false,
                order_policy: OrderPolicy::default(),
                record_every: None,
                exact_rates: opts.has("exact"),
                checked: opts.has("checked"),
            };
            cfg.validate()?;
            let inject_panic_at = inject
                .as_ref()
                .and_then(|(cell, ev)| (cell == &id).then_some(*ev));
            cells.push(harness::CellSpec {
                id,
                cfg,
                scenario: None,
                inject_panic_at,
            });
        }
    }
    let total = cells.len();

    let max_events = match opts.get("event-budget") {
        None => None,
        Some(_) => Some(opts.get_u64("event-budget", 0)?),
    };
    let max_wall = match opts.get("wall-budget-ms") {
        None => None,
        Some(_) => Some(Duration::from_millis(opts.get_u64("wall-budget-ms", 0)?)),
    };
    let sup = harness::SupervisorConfig {
        manifest: manifest_path,
        bundle_dir: bundles,
        budget: harness::Budget {
            max_events,
            max_wall,
        },
        max_retries: opts.get_usize("retries", 1)? as u32,
        backoff: Duration::from_millis(100),
        workers: opts.get_usize("workers", 1)?,
        resume,
        checkpoint_every: opts.get_u64("checkpoint-every", 5000)?,
    };
    let report = harness::run_sweep(&sup, cells)?;

    let mut t = Table::new(
        "sweep results (this invocation)",
        vec![
            "cell",
            "events",
            "arrivals",
            "completed",
            "censored",
            "aborted",
            "online/file",
        ],
    );
    for r in &report.completed {
        t.push_row(vec![
            r.id.clone(),
            format!("{}", r.events),
            format!("{}", r.arrivals),
            format!("{}", r.completed),
            format!("{}", r.censored),
            format!("{}", r.aborted),
            r.avg_online_per_file
                .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
        ]);
    }
    emit(&t, opts)?;
    if !report.skipped.is_empty() {
        eprintln!(
            "skipped {} cell(s) the manifest already records done",
            report.skipped.len()
        );
    }
    for f in &report.failed {
        eprintln!(
            "quarantined {} after {} attempt(s): {} — replay with \
             'btfluid repro {}'",
            f.id,
            f.attempts,
            f.reason,
            f.bundle.display()
        );
    }
    if report.failed.is_empty() {
        eprintln!(
            "sweep complete: {} ran, {} skipped, {total} total",
            report.completed.len(),
            report.skipped.len()
        );
        Ok(())
    } else {
        Err(CliError::new(
            EXIT_SWEEP_FAILED,
            format!(
                "sweep: {} of {total} cell(s) quarantined (all others completed)",
                report.failed.len()
            ),
        ))
    }
}

/// Renders a caught panic payload.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// `btfluid repro <bundle-dir>` — replay a quarantined cell.
fn cmd_repro(rest: &[String]) -> Result<(), CliError> {
    let Some(dir) = rest.first() else {
        return Err("repro: missing bundle directory (written under a sweep's --bundles)".into());
    };
    let _opts = Options::parse(&rest[1..])?;
    let bundle = harness::ReproBundle::read(Path::new(dir))?;
    eprintln!(
        "repro {}: recorded failure: {}",
        bundle.cell_id, bundle.reason
    );
    let hook = bundle
        .scenario
        .as_ref()
        .map(harness::ScenarioRef::build_hook)
        .transpose()?;
    let mut sim = match &bundle.checkpoint {
        Some(bytes) => {
            let snap = Snapshot::from_bytes(bytes)?;
            eprintln!(
                "restoring checkpoint at t = {:.3} ({} events)",
                snap.sim_time(),
                snap.events()
            );
            match hook {
                Some(h) => Simulation::restore_with_hook(bundle.cfg.clone(), &snap, h)?,
                None => Simulation::restore(bundle.cfg.clone(), &snap)?,
            }
        }
        None => match hook {
            Some(h) => Simulation::with_hook(bundle.cfg.clone(), h)?,
            None => Simulation::new(bundle.cfg.clone())?,
        },
    };
    let inject = bundle.inject_panic_at;
    let replay = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        move || -> Result<SimOutcome, btfluid_des::DesError> {
            loop {
                if inject.is_some_and(|n| sim.events() >= n) {
                    panic!(
                        "injected panic at event {} (t = {:.3})",
                        sim.events(),
                        sim.sim_time()
                    );
                }
                if !sim.step()? {
                    break;
                }
            }
            Ok(sim.finish())
        },
    ));
    match replay {
        Err(payload) => Err(CliError::new(
            EXIT_SWEEP_FAILED,
            format!(
                "repro {}: failure reproduced: {}",
                bundle.cell_id,
                panic_text(payload)
            ),
        )),
        Ok(Err(e)) => {
            eprintln!("repro {}: typed engine failure reproduced", bundle.cell_id);
            Err(e.into())
        }
        Ok(Ok(outcome)) => {
            eprintln!(
                "repro {}: ran to completion without reproducing the failure \
                 (events {}, arrivals {}, completed {})",
                bundle.cell_id,
                outcome.events,
                outcome.arrivals,
                outcome.records.len()
            );
            Ok(())
        }
    }
}

fn cmd_all(opts: &Options) -> Result<(), CliError> {
    cmd_fig2(opts)?;
    cmd_fig3(opts)?;
    cmd_fig4a(opts)?;
    cmd_fig4bc(opts, 0.9)?;
    cmd_fig4bc(opts, 0.1)?;
    cmd_transient(opts)?;
    cmd_ablation(opts)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_parsing() {
        assert_eq!(parse_scheme("mtsd").unwrap(), SchemeKind::Mtsd);
        assert_eq!(parse_scheme("mtcd").unwrap(), SchemeKind::Mtcd);
        assert_eq!(parse_scheme("mfcd").unwrap(), SchemeKind::Mfcd);
        assert_eq!(
            parse_scheme("cmfsd:0.3").unwrap(),
            SchemeKind::Cmfsd { rho: 0.3 }
        );
        assert_eq!(
            parse_scheme("cmfsd").unwrap(),
            SchemeKind::Cmfsd { rho: 0.0 }
        );
        assert!(parse_scheme("cmfsd:x").is_err());
        assert!(parse_scheme("ftp").is_err());
    }

    #[test]
    fn dispatch_help_and_unknown() {
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&["--help".into()]).is_ok());
        assert!(dispatch(&["frobnicate".into()]).is_err());
    }

    #[test]
    fn fig2_runs_small() {
        let argv = vec!["fig2".into(), "--points".into(), "3".into(), "--csv".into()];
        assert!(dispatch(&argv).is_ok());
    }

    #[test]
    fn fig3_runs() {
        let argv = vec!["fig3".into(), "--p".into(), "0.5".into()];
        assert!(dispatch(&argv).is_ok());
    }

    #[test]
    fn fig4bc_runs() {
        assert!(dispatch(&["fig4b".into()]).is_ok());
        assert!(dispatch(&["fig4c".into()]).is_ok());
    }

    #[test]
    fn scenario_list_runs() {
        assert!(dispatch(&["scenario".into(), "list".into()]).is_ok());
    }

    #[test]
    fn scenario_requires_known_name() {
        assert!(dispatch(&["scenario".into()]).is_err());
        assert!(dispatch(&["scenario".into(), "nope".into()]).is_err());
    }

    #[test]
    fn scenario_smoke_single_scheme() {
        let argv = vec![
            "scenario".into(),
            "flash_crowd".into(),
            "--smoke".into(),
            "--scheme".into(),
            "mtcd".into(),
            "--seed".into(),
            "5".into(),
            "--csv".into(),
        ];
        assert!(dispatch(&argv).is_ok());
    }

    #[test]
    fn scenario_rejects_bad_scale() {
        let argv = vec![
            "scenario".into(),
            "diurnal".into(),
            "--scale".into(),
            "0".into(),
        ];
        assert!(dispatch(&argv).is_err());
    }

    #[test]
    fn inject_spec_parses() {
        assert_eq!(parse_inject(None).unwrap(), None);
        assert_eq!(
            parse_inject(Some("mtsd-s7@120")).unwrap(),
            Some(("mtsd-s7".into(), 120))
        );
        assert_eq!(
            parse_inject(Some("mtsd-s7")).unwrap(),
            Some(("mtsd-s7".into(), 50))
        );
        assert!(parse_inject(Some("cell@lots")).is_err());
    }

    /// End-to-end sweep robustness: an injected panic quarantines exactly
    /// one cell (exit 6), the repro bundle replays the failure (exit 6),
    /// `--resume` reruns only the missing cell and the sweep completes, and
    /// a stale manifest without `--resume` is refused (exit 7).
    #[test]
    fn sweep_quarantine_repro_resume_cycle() {
        let dir = std::env::temp_dir().join("btfluid_cli_sweep_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("sweep.jsonl");
        let bundles = dir.join("bundles");
        let base = vec![
            "sweep".into(),
            "--manifest".into(),
            manifest.to_str().unwrap().to_string(),
            "--bundles".into(),
            bundles.to_str().unwrap().to_string(),
            "--schemes".into(),
            "mtsd".into(),
            "--reps".into(),
            "2".into(),
            "--horizon".into(),
            "120".into(),
            "--seed".into(),
            "42".into(),
            "--retries".into(),
            "0".into(),
            "--csv".into(),
        ];

        let mut first = base.clone();
        first.extend(["--inject-panic".into(), "mtsd-s43@20".into()]);
        let err = dispatch(&first).unwrap_err();
        assert_eq!(err.code, EXIT_SWEEP_FAILED, "{}", err.message);
        let bundle = harness::bundle_path(&bundles, "mtsd-s43");
        assert!(bundle.join("repro.json").is_file(), "bundle not written");

        // The bundle must replay the recorded panic.
        let err = dispatch(&["repro".into(), bundle.to_str().unwrap().to_string()]).unwrap_err();
        assert_eq!(err.code, EXIT_SWEEP_FAILED, "{}", err.message);
        assert!(err.message.contains("reproduced"), "{}", err.message);

        // A second sweep against the same manifest needs --resume.
        let err = dispatch(&base).unwrap_err();
        assert_eq!(err.code, EXIT_CLOBBER, "{}", err.message);

        // --resume (without the injection) reruns only the failed cell.
        let mut resumed = base.clone();
        resumed.push("--resume".into());
        dispatch(&resumed).unwrap();
        let journal = std::fs::read_to_string(&manifest).unwrap();
        assert_eq!(
            journal.matches("\"id\":\"mtsd-s42\"").count(),
            1,
            "the finished cell must not rerun:\n{journal}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Result-writing commands refuse to clobber without `--force`.
    #[test]
    fn clobber_needs_force() {
        let dir = std::env::temp_dir().join("btfluid_cli_clobber_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.csv");
        std::fs::write(&path, "old").unwrap();
        let argv = vec![
            "fig2".into(),
            "--points".into(),
            "3".into(),
            "--out".into(),
            path.to_str().unwrap().to_string(),
        ];
        let err = dispatch(&argv).unwrap_err();
        assert_eq!(err.code, EXIT_CLOBBER, "{}", err.message);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "old");

        let mut forced = argv.clone();
        forced.push("--force".into());
        dispatch(&forced).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().starts_with("p,"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_file_written() {
        let dir = std::env::temp_dir().join("btfluid_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.csv");
        let argv = vec![
            "fig2".into(),
            "--points".into(),
            "3".into(),
            "--out".into(),
            path.to_str().unwrap().to_string(),
        ];
        dispatch(&argv).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("p,MTCD,MTSD"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
