//! Subcommand dispatch and execution.

use crate::args::Options;
use btfluid_bench::{
    ablation, adapt_exp, fig2, fig3, fig4a, fig4bc, skew, transient, validate, Table,
};
use btfluid_core::adapt::AdaptConfig;
use btfluid_core::multiclass::{BandwidthClass, MultiClassFluid};
use btfluid_core::FluidParams;
use btfluid_des::{
    estimate_eta, run_single_torrent, ChunkLevelConfig, DesConfig, OrderPolicy, SchemeKind,
    Simulation, SingleTorrentConfig,
};
use btfluid_scenario::{registry, runner};
use btfluid_workload::CorrelationModel;
use std::error::Error;
use std::fs;

type AnyError = Box<dyn Error>;

const USAGE: &str = "\
btfluid — multiple-file BitTorrent downloading, reproduced (ICPP 2006)

USAGE: btfluid <command> [options]

COMMANDS
  fig2        Figure 2: MTCD vs MTSD avg online time per file vs correlation
                [--points N] [--k K]
  fig3        Figure 3: per-class times at p = 0.1 and p = 1.0  [--k K] [--p LIST]
  fig4a       Figure 4(a): CMFSD avg online time per file over the (p, ρ) grid
  fig4b       Figure 4(b): per-class CMFSD vs MFCD at p = 0.9
  fig4c       Figure 4(c): per-class CMFSD vs MFCD at p = 0.1
  validate    X3: fluid model vs peer-level simulator
                [--p P] [--reps N] [--horizon H] [--warmup W] [--seed S]
  adapt       X4: Adapt under cheaters  [--cheaters LIST] [--p P] [--reps N]
                [--epoch E] [--horizon H] [--seed S]
  transient   X5: flash-crowd settling  [--p P] [--crowd N]
  ablation    X6: parameter elasticities per scheme  [--p P]
  skew        X8: Zipf popularity skew, MTCD vs MTSD  [--k K]
  multiclass  X7: heterogeneous bandwidth classes, fluid vs simulation
                [--classes MU:C:LAMBDA,...] [--seed S]
  eta         X9: measure the sharing efficiency η at chunk level [--seed S]
  sim         one raw simulation  --scheme mtsd|mtcd|mfcd|cmfsd[:RHO]
                [--p P] [--horizon H] [--warmup W] [--seed S]
                [--origin-seeds N]
  scenario    non-stationary scenario runs (flash crowds, churn, faults)
                btfluid scenario list
                btfluid scenario <name> [--scheme SCHEME] [--seed S]
                  [--smoke | --scale F] [--exact] [--fluid]
  all         every fluid-model figure in sequence

GLOBAL OPTIONS
  --csv            print CSV instead of an aligned table
  --out FILE       also write the (CSV) output to FILE
  --help           this message

SEEDS
  Every DES-running command is deterministic under --seed; reruns with the
  same seed are bit-identical. Defaults: validate 2006, adapt 43, sim 1,
  eta 11, multiclass 7, scenario 2006. Fluid-only commands (fig*,
  transient, ablation, skew) take no seed.
";

/// Runs the command line; `Ok(())` on success.
pub fn dispatch(argv: &[String]) -> Result<(), AnyError> {
    let Some(cmd) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    if cmd == "--help" || cmd == "help" || cmd == "-h" {
        print!("{USAGE}");
        return Ok(());
    }
    // `scenario` takes a positional name before the options.
    if cmd == "scenario" {
        return cmd_scenario(&argv[1..]);
    }
    let opts = Options::parse(&argv[1..])?;
    match cmd.as_str() {
        "fig2" => cmd_fig2(&opts),
        "fig3" => cmd_fig3(&opts),
        "fig4a" => cmd_fig4a(&opts),
        "fig4b" => cmd_fig4bc(&opts, 0.9),
        "fig4c" => cmd_fig4bc(&opts, 0.1),
        "validate" => cmd_validate(&opts),
        "adapt" => cmd_adapt(&opts),
        "transient" => cmd_transient(&opts),
        "ablation" => cmd_ablation(&opts),
        "multiclass" => cmd_multiclass(&opts),
        "skew" => cmd_skew(&opts),
        "eta" => cmd_eta(&opts),
        "sim" => cmd_sim(&opts),
        "all" => cmd_all(&opts),
        other => Err(format!("unknown command '{other}' (try --help)").into()),
    }
}

/// Prints a table (or its CSV form) and optionally writes the CSV to disk.
fn emit(table: &Table, opts: &Options) -> Result<(), AnyError> {
    if opts.has("csv") {
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.render());
    }
    if let Some(path) = opts.get("out") {
        fs::write(path, table.to_csv())?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_fig2(opts: &Options) -> Result<(), AnyError> {
    let cfg = fig2::Fig2Config {
        points: opts.get_usize("points", 50)?,
        k: opts.get_usize("k", 10)? as u32,
        params: FluidParams::paper(),
    };
    let r = fig2::run(&cfg)?;
    emit(&r.table(), opts)
}

fn cmd_fig3(opts: &Options) -> Result<(), AnyError> {
    let cfg = fig3::Fig3Config {
        k: opts.get_usize("k", 10)? as u32,
        correlations: opts.get_f64_list("p", &[0.1, 1.0])?,
        params: FluidParams::paper(),
    };
    let r = fig3::run(&cfg)?;
    for t in r.tables() {
        emit(&t, opts)?;
    }
    Ok(())
}

fn cmd_fig4a(opts: &Options) -> Result<(), AnyError> {
    let r = fig4a::run(&fig4a::Fig4aConfig::default())?;
    emit(&r.table(), opts)
}

fn cmd_fig4bc(opts: &Options, p: f64) -> Result<(), AnyError> {
    let cfg = fig4bc::Fig4bcConfig {
        correlations: vec![p],
        ..Default::default()
    };
    let r = fig4bc::run(&cfg)?;
    for t in r.tables() {
        emit(&t, opts)?;
    }
    Ok(())
}

fn cmd_validate(opts: &Options) -> Result<(), AnyError> {
    let p = opts.get_f64("p", 0.5)?;
    let cfg = validate::ValidateConfig {
        model: CorrelationModel::new(10, p, 0.25)?,
        replications: opts.get_usize("reps", 4)?,
        horizon: opts.get_f64("horizon", 4000.0)?,
        warmup: opts.get_f64("warmup", 1000.0)?,
        seed: opts.get_u64("seed", 2006)?,
        ..Default::default()
    };
    let r = validate::run(&cfg)?;
    emit(&r.table(), opts)?;
    eprintln!(
        "worst relative online-time error: {:.1}%",
        100.0 * r.worst_online_error()
    );
    Ok(())
}

fn cmd_adapt(opts: &Options) -> Result<(), AnyError> {
    let p = opts.get_f64("p", 0.9)?;
    let cfg = adapt_exp::AdaptExpConfig {
        model: CorrelationModel::new(10, p, 0.25)?,
        cheater_fractions: opts.get_f64_list("cheaters", &[0.0, 0.25, 0.5, 0.75])?,
        replications: opts.get_usize("reps", 3)?,
        epoch: opts.get_f64("epoch", 20.0)?,
        horizon: opts.get_f64("horizon", 4000.0)?,
        warmup: opts.get_f64("warmup", 1000.0)?,
        seed: opts.get_u64("seed", 43)?,
        controller: AdaptConfig::default_for_mu(0.02),
        params: FluidParams::paper(),
    };
    let r = adapt_exp::run(&cfg)?;
    emit(&r.table(), opts)
}

fn cmd_transient(opts: &Options) -> Result<(), AnyError> {
    let cfg = transient::TransientConfig {
        p: opts.get_f64("p", 0.5)?,
        flash_crowd: opts.get_f64("crowd", 200.0)?,
        ..Default::default()
    };
    let r = transient::run(&cfg)?;
    emit(&r.table(), opts)?;
    if opts.has("csv") {
        print!("{}", r.mtcd.to_csv());
    }
    Ok(())
}

fn cmd_ablation(opts: &Options) -> Result<(), AnyError> {
    let p = opts.get_f64("p", 0.7)?;
    let cfg = ablation::AblationConfig {
        model: CorrelationModel::new(10, p, 1.0)?,
        ..Default::default()
    };
    let r = ablation::run(&cfg)?;
    emit(&r.table(), opts)
}

fn cmd_eta(opts: &Options) -> Result<(), AnyError> {
    let seed = opts.get_u64("seed", 11)?;
    let mut t = Table::new(
        "X9 — chunk-level η: downloader upload utilization and seed byte share",
        vec!["chunks", "1/γ", "utilization", "seed/dl bytes", "completed"],
    );
    for &chunks in &[4usize, 16, 64, 256] {
        for &gamma in &[0.05, 0.2] {
            let e = estimate_eta(&ChunkLevelConfig {
                chunks,
                gamma,
                horizon: 2000.0,
                warmup: 500.0,
                seed,
                ..Default::default()
            })?;
            t.push_row(vec![
                format!("{chunks}"),
                format!("{:.0}", 1.0 / gamma),
                format!("{:.3}", e.utilization),
                format!("{:.2}", e.seed_byte_ratio()),
                format!("{}", e.completed),
            ]);
        }
    }
    emit(&t, opts)
}

fn cmd_skew(opts: &Options) -> Result<(), AnyError> {
    let cfg = skew::SkewConfig {
        k: opts.get_usize("k", 10)? as u32,
        ..Default::default()
    };
    let r = skew::run(&cfg)?;
    emit(&r.table(), opts)
}

fn parse_classes(spec: &str) -> Result<Vec<BandwidthClass>, AnyError> {
    let mut classes = Vec::new();
    for (i, tok) in spec.split(',').enumerate() {
        let parts: Vec<&str> = tok.trim().split(':').collect();
        if parts.len() != 3 {
            return Err(format!("class {i}: expected MU:C:LAMBDA, got '{tok}'").into());
        }
        classes.push(BandwidthClass {
            mu: parts[0]
                .parse()
                .map_err(|_| format!("class {i}: bad μ '{}'", parts[0]))?,
            c: parts[1]
                .parse()
                .map_err(|_| format!("class {i}: bad c '{}'", parts[1]))?,
            lambda: parts[2]
                .parse()
                .map_err(|_| format!("class {i}: bad λ '{}'", parts[2]))?,
        });
    }
    Ok(classes)
}

fn cmd_multiclass(opts: &Options) -> Result<(), AnyError> {
    let classes = match opts.get("classes") {
        Some(spec) => parse_classes(spec)?,
        None => vec![
            BandwidthClass {
                mu: 0.005,
                c: 0.05,
                lambda: 0.2,
            },
            BandwidthClass {
                mu: 0.02,
                c: 0.2,
                lambda: 0.3,
            },
            BandwidthClass {
                mu: 0.08,
                c: 0.8,
                lambda: 0.1,
            },
        ],
    };
    let fluid = MultiClassFluid::new(classes.clone(), 0.5, 0.05)?;
    let ss = fluid.steady_state()?;
    let sim = run_single_torrent(&SingleTorrentConfig {
        classes: classes.clone(),
        eta: 0.5,
        gamma: 0.05,
        horizon: 8000.0,
        warmup: 2500.0,
        drain: 4000.0,
        seed: opts.get_u64("seed", 7)?,
    })?;
    let mut t = Table::new(
        "X7 — heterogeneous bandwidth classes (Section 2), fluid vs simulation",
        vec!["class", "μ", "c", "λ", "fluid T_dl", "sim T_dl", "users"],
    );
    for (i, cl) in classes.iter().enumerate() {
        t.push_row(vec![
            format!("{}", i + 1),
            format!("{}", cl.mu),
            format!("{}", cl.c),
            format!("{}", cl.lambda),
            format!("{:.2}", ss.download_times[i]),
            format!("{:.2}", sim.classes[i].download.mean()),
            format!("{}", sim.classes[i].download.count()),
        ]);
    }
    emit(&t, opts)?;
    if sim.censored > 0 {
        eprintln!("warning: {} censored users", sim.censored);
    }
    Ok(())
}

fn parse_scheme(s: &str) -> Result<SchemeKind, AnyError> {
    match s {
        "mtsd" => Ok(SchemeKind::Mtsd),
        "mtcd" => Ok(SchemeKind::Mtcd),
        "mfcd" => Ok(SchemeKind::Mfcd),
        _ => {
            if let Some(rho) = s.strip_prefix("cmfsd") {
                let rho = rho.strip_prefix(':').unwrap_or("0.0");
                let rho: f64 = rho
                    .parse()
                    .map_err(|_| format!("bad CMFSD ρ in '{s}' (use cmfsd:0.3)"))?;
                Ok(SchemeKind::Cmfsd { rho })
            } else {
                Err(format!("unknown scheme '{s}' (mtsd|mtcd|mfcd|cmfsd[:RHO])").into())
            }
        }
    }
}

fn cmd_sim(opts: &Options) -> Result<(), AnyError> {
    let scheme = parse_scheme(opts.get("scheme").unwrap_or("mtsd"))?;
    let p = opts.get_f64("p", 0.5)?;
    let horizon = opts.get_f64("horizon", 4000.0)?;
    let cfg = DesConfig {
        params: FluidParams::paper(),
        model: CorrelationModel::new(10, p, 0.25)?,
        scheme,
        horizon,
        warmup: opts.get_f64("warmup", horizon / 4.0)?,
        drain: horizon,
        seed: opts.get_u64("seed", 1)?,
        adapt: None,
        origin_seeds: opts.get_usize("origin-seeds", 1)?,
        warm_start: false,
        order_policy: OrderPolicy::default(),
        record_every: None,
        exact_rates: false,
    };
    let outcome = Simulation::new(cfg)?.run();
    let mut t = Table::new(
        format!("simulation — {} (p = {p})", scheme.name()),
        vec!["class", "users", "download/file", "online/file"],
    );
    for (i, stats) in outcome.classes.iter().enumerate() {
        if stats.count() == 0 {
            continue;
        }
        let class = (i + 1) as f64;
        t.push_row(vec![
            format!("{}", i + 1),
            format!("{}", stats.count()),
            format!("{:.2}", stats.download.mean() / class),
            format!("{:.2}", stats.online.mean() / class),
        ]);
    }
    emit(&t, opts)?;
    eprintln!(
        "arrivals: {}, counted: {}, censored: {}, avg online/file: {:.2}",
        outcome.arrivals,
        outcome.records.len(),
        outcome.censored,
        outcome.avg_online_per_file()?
    );
    Ok(())
}

/// `btfluid scenario list` | `btfluid scenario <name> [options]`.
///
/// The scenario name is positional, so it is peeled off before the
/// option parser (which rejects positionals) sees the rest.
fn cmd_scenario(rest: &[String]) -> Result<(), AnyError> {
    let Some(name) = rest.first() else {
        return Err(format!(
            "scenario: missing name (try 'btfluid scenario list'); registry: {}",
            registry::SCENARIO_NAMES.join(", ")
        )
        .into());
    };
    let opts = Options::parse(&rest[1..])?;
    if name == "list" {
        return scenario_list(&opts);
    }
    let Some(mut program) = registry::by_name(name) else {
        return Err(format!(
            "scenario: unknown name '{name}'; registry: {}",
            registry::SCENARIO_NAMES.join(", ")
        )
        .into());
    };

    let scale = if opts.has("smoke") {
        0.25
    } else {
        opts.get_f64("scale", 1.0)?
    };
    if !scale.is_finite() || scale <= 0.0 {
        return Err("scenario: --scale must be positive".into());
    }
    if (scale - 1.0).abs() > 1e-12 {
        program = program.time_scaled(scale);
    }
    let seed = opts.get_u64("seed", 2006)?;
    let exact = opts.has("exact");

    let runs = match opts.get("scheme") {
        Some(spec) => {
            let scheme = parse_scheme(spec)?;
            vec![runner::run_one(
                &program,
                scheme,
                None,
                &scheme.name(),
                seed,
                exact,
            )?]
        }
        None => runner::run_all(&program, seed, exact)?,
    };

    eprintln!(
        "scenario {name}: {} (seed {seed}, scale {scale})",
        program.description
    );
    for run in &runs {
        emit(&scenario_table(name, run), &opts)?;
        eprintln!(
            "{}: arrivals {}, completed {}, aborted {}, censored {}",
            run.label,
            run.outcome.arrivals,
            run.outcome.records.len(),
            run.outcome.aborts.len(),
            run.outcome.censored
        );
    }

    if opts.has("fluid") {
        scenario_fluid_comparison(name, &program, seed)?;
    }
    Ok(())
}

fn scenario_list(opts: &Options) -> Result<(), AnyError> {
    let mut t = Table::new(
        "scenario registry — btfluid scenario <name>",
        vec!["name", "description", "phases"],
    );
    for p in registry::all() {
        let phases: Vec<String> = p.phases.iter().map(|ph| ph.name.clone()).collect();
        t.push_row(vec![
            p.name.clone(),
            p.description.clone(),
            phases.join("/"),
        ]);
    }
    emit(&t, opts)
}

/// Per-phase timeline of one scheme's scenario run.
fn scenario_table(name: &str, run: &runner::ScenarioRun) -> Table {
    let mut t = Table::new(
        format!("scenario {name} — {}", run.label),
        vec![
            "phase",
            "window",
            "completed",
            "aborted",
            "dl/file",
            "online/file",
        ],
    );
    for ph in &run.phases {
        let mut dl = 0.0;
        let mut files = 0.0;
        for (idx, c) in ph.classes.iter().enumerate() {
            dl += c.download.mean() * c.count() as f64;
            files += (idx + 1) as f64 * c.count() as f64;
        }
        let per_file = |v: f64| {
            if files > 0.0 {
                format!("{:.2}", v / files)
            } else {
                "-".into()
            }
        };
        t.push_row(vec![
            ph.name.clone(),
            format!("[{:.0}, {:.0})", ph.start, ph.end),
            format!("{}", ph.completed()),
            format!("{}", ph.aborted),
            per_file(dl),
            ph.online_per_file()
                .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
        ]);
    }
    t
}

/// DES-vs-fluid transient check: the schedule-driven MTCD ODE against an
/// MTCD DES run of the same program. Origin seeds are zeroed on both
/// sides — the fluid model has no publisher, and under MTCD a pinned
/// origin seed adds a full μ per subtorrent.
fn scenario_fluid_comparison(
    name: &str,
    program: &btfluid_scenario::ScenarioProgram,
    seed: u64,
) -> Result<(), AnyError> {
    let mut program = program.clone();
    program.origin_seeds = 0;
    let run = runner::run_one(&program, SchemeKind::Mtcd, None, "MTCD", seed, false)?;
    let des = btfluid_scenario::des_avg_downloaders(&run.outcome);
    let fluid = btfluid_scenario::fluid_avg_downloaders(&program, 0.5)?;
    let rel = (des - fluid).abs() / fluid.max(1e-9);
    eprintln!(
        "fluid check ({name}, MTCD, origin seeds off): DES {des:.2} downloading users, \
         fluid {fluid:.2}, relative error {:.1}%",
        100.0 * rel
    );
    Ok(())
}

fn cmd_all(opts: &Options) -> Result<(), AnyError> {
    cmd_fig2(opts)?;
    cmd_fig3(opts)?;
    cmd_fig4a(opts)?;
    cmd_fig4bc(opts, 0.9)?;
    cmd_fig4bc(opts, 0.1)?;
    cmd_transient(opts)?;
    cmd_ablation(opts)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_parsing() {
        assert_eq!(parse_scheme("mtsd").unwrap(), SchemeKind::Mtsd);
        assert_eq!(parse_scheme("mtcd").unwrap(), SchemeKind::Mtcd);
        assert_eq!(parse_scheme("mfcd").unwrap(), SchemeKind::Mfcd);
        assert_eq!(
            parse_scheme("cmfsd:0.3").unwrap(),
            SchemeKind::Cmfsd { rho: 0.3 }
        );
        assert_eq!(
            parse_scheme("cmfsd").unwrap(),
            SchemeKind::Cmfsd { rho: 0.0 }
        );
        assert!(parse_scheme("cmfsd:x").is_err());
        assert!(parse_scheme("ftp").is_err());
    }

    #[test]
    fn dispatch_help_and_unknown() {
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&["--help".into()]).is_ok());
        assert!(dispatch(&["frobnicate".into()]).is_err());
    }

    #[test]
    fn fig2_runs_small() {
        let argv = vec!["fig2".into(), "--points".into(), "3".into(), "--csv".into()];
        assert!(dispatch(&argv).is_ok());
    }

    #[test]
    fn fig3_runs() {
        let argv = vec!["fig3".into(), "--p".into(), "0.5".into()];
        assert!(dispatch(&argv).is_ok());
    }

    #[test]
    fn fig4bc_runs() {
        assert!(dispatch(&["fig4b".into()]).is_ok());
        assert!(dispatch(&["fig4c".into()]).is_ok());
    }

    #[test]
    fn scenario_list_runs() {
        assert!(dispatch(&["scenario".into(), "list".into()]).is_ok());
    }

    #[test]
    fn scenario_requires_known_name() {
        assert!(dispatch(&["scenario".into()]).is_err());
        assert!(dispatch(&["scenario".into(), "nope".into()]).is_err());
    }

    #[test]
    fn scenario_smoke_single_scheme() {
        let argv = vec![
            "scenario".into(),
            "flash_crowd".into(),
            "--smoke".into(),
            "--scheme".into(),
            "mtcd".into(),
            "--seed".into(),
            "5".into(),
            "--csv".into(),
        ];
        assert!(dispatch(&argv).is_ok());
    }

    #[test]
    fn scenario_rejects_bad_scale() {
        let argv = vec![
            "scenario".into(),
            "diurnal".into(),
            "--scale".into(),
            "0".into(),
        ];
        assert!(dispatch(&argv).is_err());
    }

    #[test]
    fn out_file_written() {
        let dir = std::env::temp_dir().join("btfluid_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.csv");
        let argv = vec![
            "fig2".into(),
            "--points".into(),
            "3".into(),
            "--out".into(),
            path.to_str().unwrap().to_string(),
        ];
        dispatch(&argv).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("p,MTCD,MTSD"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
