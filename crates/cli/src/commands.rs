//! Subcommand dispatch and execution.

use crate::args::Options;
use crate::errors::{CliError, EXIT_CLOBBER, EXIT_INVARIANT, EXIT_SWEEP_FAILED};
use btfluid_bench::{
    ablation, adapt_exp, fig2, fig3, fig4a, fig4bc, skew, transient, validate, Table,
};
use btfluid_core::adapt::AdaptConfig;
use btfluid_core::multiclass::{BandwidthClass, MultiClassFluid};
use btfluid_core::FluidParams;
use btfluid_des::{
    estimate_eta, run_single_torrent, ChunkLevelConfig, DesConfig, OrderPolicy, SchemeKind,
    SimOutcome, Simulation, SingleTorrentConfig, Snapshot,
};
use btfluid_harness as harness;
use btfluid_harness::json::Json;
use btfluid_hybrid::{HybridConfig, HybridRunner, Regime};
use btfluid_scenario::{registry, runner, trace_program, RateMode, TraceHook, TraceShaper};
use btfluid_telemetry::{
    diag, set_level, shared_recorder, Counters, FanoutProbe, Level, MetaField, Profiler,
    RecorderProbe, SharedRecorder, SharedSink, SinkProbe, TraceSink, DEFAULT_FLIGHT_CAPACITY,
    DEFAULT_SAMPLE_EVERY, FLIGHTREC_SCHEMA, FLIGHTREC_VERSION, TRACE_SCHEMA, TRACE_VERSION,
};
use btfluid_workload::{fit_model, ArrivalTrace, CorrelationModel};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
btfluid — multiple-file BitTorrent downloading, reproduced (ICPP 2006)

USAGE: btfluid <command> [options]

COMMANDS
  fig2        Figure 2: MTCD vs MTSD avg online time per file vs correlation
                [--points N] [--k K]
  fig3        Figure 3: per-class times at p = 0.1 and p = 1.0  [--k K] [--p LIST]
  fig4a       Figure 4(a): CMFSD avg online time per file over the (p, ρ) grid
  fig4b       Figure 4(b): per-class CMFSD vs MFCD at p = 0.9
  fig4c       Figure 4(c): per-class CMFSD vs MFCD at p = 0.1
  validate    X3: fluid model vs peer-level simulator
                [--p P] [--reps N] [--horizon H] [--warmup W] [--seed S]
  adapt       X4: Adapt under cheaters  [--cheaters LIST] [--p P] [--reps N]
                [--epoch E] [--horizon H] [--seed S]
  transient   X5: flash-crowd settling  [--p P] [--crowd N]
  ablation    X6: parameter elasticities per scheme  [--p P]
  skew        X8: Zipf popularity skew, MTCD vs MTSD  [--k K]
  multiclass  X7: heterogeneous bandwidth classes, fluid vs simulation
                [--classes MU:C:LAMBDA,...] [--seed S]
  eta         X9: measure the sharing efficiency η at chunk level [--seed S]
  sim         one raw simulation  --scheme mtsd|mtcd|mfcd|cmfsd[:RHO]
                [--p P] [--horizon H] [--warmup W] [--seed S]
                [--origin-seeds N]
  scenario    non-stationary scenario runs (flash crowds, churn, faults)
                btfluid scenario list
                btfluid scenario <name> [--scheme SCHEME] [--seed S]
                  [--smoke | --scale F] [--exact | --aggregate] [--fluid]
                  [--checked] [--trace FILE] [--sample-every T]
                crash-safe (single-scheme only):
                  [--checkpoint FILE] [--checkpoint-every N] [--resume]
                  [--records FILE]
                multiscale fluid/DES driver (mtcd|mtsd only):
                  --hybrid [--hybrid-tol T] (default 0.1; thresholds
                  hi = ceil(1/T²), lo = hi/2); --checkpoint-every counts
                  decision boundaries here, not events
                flight recorder (observe-only ring of recent happenings):
                  [--flightrec FILE] [--flightrec-cap N] (default 256)
  inspect     summarize a telemetry trace (counters, anomaly flags,
              per-class trajectories) or a flight-recorder dump (event
              mix, last handoff/checkpoint, staleness vs failure time)
                btfluid inspect <trace.jsonl|flightrec.jsonl> [--csv-out FILE]
  profile     hot-path self-profiler: one engine run with scoped phase
              timers (heap ops, rate maintenance, member sampling, hook
              dispatch, snapshot encode, sink write), calibrated-overhead
              subtracted, rendered as per-phase wall and per-event tables
                [--scheme S] [--p P] [--horizon H] [--seed S]
                [--exact | --aggregate] [--trace FILE]
  perf        cross-run performance observatory over committed BENCH_*.json
              and sweep manifests
                [--bench FILES] [--manifest FILE] [--history FILE]
                [--report FILE] [--md-out FILE] [--record] [--check]
                [--canary]
              --record appends today's metrics to the history
              (PERF_HISTORY.jsonl); --check compares them against the
              noise band (median ± MAD over history) and exits 4 on a
              regression; --canary degrades the metrics first and must
              exit 4 — CI asserts exactly that
  sweep       supervised replicate sweep with failure quarantine
                --manifest FILE [--bundles DIR] [--schemes LIST] [--reps N]
                [--seed S] [--p P] [--k K] [--horizon H] [--resume]
                [--retries N] [--workers N] [--event-budget N]
                [--wall-budget-ms MS] [--checkpoint-every N] [--checked]
                [--exact] [--inject-panic CELL@EVENT]
                [--workload FILE] replays a recorded arrival trace into
                every cell (geometry and rates come from the trace;
                --p/--k/--horizon are ignored; [--bins N] bins the
                empirical rate for the reference schedule)
  trace       measurement-calibrated workload traces
              (codec btfluid-trace-arrivals v1, CSV or JSONL)
                btfluid trace gen --out FILE [--shape flat|diurnal]
                  [--k K] [--p P] [--lambda0 L] [--horizon H] [--seed S]
                  [--alpha A] [--leecher-frac F] [--format csv|jsonl]
                btfluid trace fit --in FILE          recover (λ₀, p) by
                  moment matching; prints fitted vs empirical moments
                btfluid trace replay --in FILE [--scheme S] [--seed S]
                  [--exact | --aggregate] [--bins N] [--warmup W]
                  [--fluid]  drive the DES with the recorded arrivals
                btfluid trace info --in FILE         codec header, rate,
                  and class histogram
  repro       replay a quarantined cell (or chaos plan) from its repro
              bundle
                btfluid repro <bundle-dir>
  chaos       deterministic chaos sweep: seeded random fault plans × I/O
              fault schedules × kill/resume points, run against the
              invariant catalog; violations are shrunk to minimal failing
              plans and written as replayable repro bundles
                [--seed S] [--cells N] [--bundles DIR] [--expect-fail]
              exits 4 when any invariant is violated; --expect-fail runs
              a canary with silently corrupted checkpoints that must be
              caught (exit 4) — CI asserts exactly that
  selfcheck   differential self-check oracle: paper-derived invariants,
              cross-implementation agreement, decoder fuzz
                [--full] [--seed S] [--expect-fail]
              --full adds the simulation-heavy checks; --expect-fail seeds
              a deliberate rate-cache corruption and exits 4 when (and only
              when) the audit detects it
  all         every fluid-model figure in sequence

GLOBAL OPTIONS
  --csv            print CSV instead of an aligned table
  --out FILE       also write the (CSV) output to FILE
  --force          overwrite existing --out/--records files
  --verbose        debug-level stderr diagnostics (includes engine traces)
  --quiet          errors only on stderr; result output is unaffected
  --help           this message

OBSERVABILITY
  --trace FILE streams a versioned JSONL telemetry trace (schema
  btfluid-trace v1): per-class populations, aggregate rates, Adapt ρ/Δ,
  and hot-loop counters, sampled every --sample-every simulated time
  units (default 5). Traces are written atomically (FILE.tmp, renamed on
  completion) and never mix with result files. 'btfluid inspect' reads
  them back. All diagnostics go to stderr; --quiet/--verbose set their
  level globally.

SEEDS
  Every DES-running command is deterministic under --seed; reruns with the
  same seed are bit-identical. Defaults: validate 2006, adapt 43, sim 1,
  eta 11, multiclass 7, scenario 2006, sweep 2006. Fluid-only commands
  (fig*, transient, ablation, skew) take no seed.

CRASH SAFETY
  --checkpoint FILE writes an atomic engine snapshot every
  --checkpoint-every events (default 5000); with --resume a run killed at
  any instant picks up from the checkpoint and finishes **bit-identical**
  to an uninterrupted run. A finished run deletes its checkpoint. The
  sweep command journals finished cells to --manifest (JSONL, append-only)
  and --resume skips them; a cell that panics or blows its budget is
  quarantined into a repro bundle under --bundles, replayable with
  'btfluid repro'. --checked enables per-event engine invariant audits.

EXIT CODES
  0 success          1 usage or I/O     2 invalid configuration
  3 solver diverged  4 invariant violated (--checked, chaos)
  5 snapshot/checkpoint rejected        6 sweep had failures / repro
  7 refused to overwrite (use --force)    reproduced the recorded failure
";

/// Runs the command line; `Ok(())` on success.
pub fn dispatch(argv: &[String]) -> Result<(), CliError> {
    // The global verbosity flags may appear anywhere on the line; peel
    // them before any positional/option handling so every command (and
    // every diag! call below it) shares one threshold.
    let mut filtered = Vec::with_capacity(argv.len());
    for arg in argv {
        match arg.as_str() {
            "--verbose" => set_level(Level::Debug),
            "--quiet" => set_level(Level::Error),
            _ => filtered.push(arg.clone()),
        }
    }
    let argv = filtered;
    let Some(cmd) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    if cmd == "--help" || cmd == "help" || cmd == "-h" {
        print!("{USAGE}");
        return Ok(());
    }
    // `scenario`, `repro`, `inspect`, and `trace` take a positional
    // argument before the options.
    if cmd == "scenario" {
        return cmd_scenario(&argv[1..]);
    }
    if cmd == "repro" {
        return cmd_repro(&argv[1..]);
    }
    if cmd == "inspect" {
        return cmd_inspect(&argv[1..]);
    }
    if cmd == "trace" {
        return cmd_trace(&argv[1..]);
    }
    let opts = Options::parse(&argv[1..])?;
    if opts.has("help") {
        print!("{USAGE}");
        return Ok(());
    }
    match cmd.as_str() {
        "fig2" => cmd_fig2(&opts),
        "fig3" => cmd_fig3(&opts),
        "fig4a" => cmd_fig4a(&opts),
        "fig4b" => cmd_fig4bc(&opts, 0.9),
        "fig4c" => cmd_fig4bc(&opts, 0.1),
        "validate" => cmd_validate(&opts),
        "adapt" => cmd_adapt(&opts),
        "transient" => cmd_transient(&opts),
        "ablation" => cmd_ablation(&opts),
        "multiclass" => cmd_multiclass(&opts),
        "skew" => cmd_skew(&opts),
        "eta" => cmd_eta(&opts),
        "sim" => cmd_sim(&opts),
        "profile" => cmd_profile(&opts),
        "perf" => crate::perf::cmd_perf(&opts),
        "sweep" => cmd_sweep(&opts),
        "chaos" => cmd_chaos(&opts),
        "selfcheck" => cmd_selfcheck(&opts),
        "all" => cmd_all(&opts),
        other => Err(format!("unknown command '{other}' (try --help)").into()),
    }
}

thread_local! {
    /// Paths this invocation already wrote: commands that emit several
    /// tables to one `--out` file may keep rewriting it, only the *first*
    /// write of a pre-existing file needs `--force`.
    static WRITTEN: std::cell::RefCell<std::collections::BTreeSet<String>> =
        const { std::cell::RefCell::new(std::collections::BTreeSet::new()) };
}

/// Refuses to overwrite `path` unless `--force` was given.
fn check_clobber(path: &str, opts: &Options) -> Result<(), CliError> {
    let first = WRITTEN.with(|w| w.borrow_mut().insert(path.to_string()));
    if first && Path::new(path).exists() && !opts.has("force") {
        return Err(CliError::clobber(path));
    }
    Ok(())
}

/// Prints a table (or its CSV form) and optionally writes the CSV to disk.
fn emit(table: &Table, opts: &Options) -> Result<(), CliError> {
    if opts.has("csv") {
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.render());
    }
    if let Some(path) = opts.get("out") {
        check_clobber(path, opts)?;
        fs::write(path, table.to_csv())?;
        diag!(Level::Info, "wrote {path}");
    }
    Ok(())
}

fn cmd_fig2(opts: &Options) -> Result<(), CliError> {
    let cfg = fig2::Fig2Config {
        points: opts.get_usize("points", 50)?,
        k: opts.get_usize("k", 10)? as u32,
        params: FluidParams::paper(),
    };
    let r = fig2::run(&cfg)?;
    emit(&r.table(), opts)
}

fn cmd_fig3(opts: &Options) -> Result<(), CliError> {
    let cfg = fig3::Fig3Config {
        k: opts.get_usize("k", 10)? as u32,
        correlations: opts.get_f64_list("p", &[0.1, 1.0])?,
        params: FluidParams::paper(),
    };
    let r = fig3::run(&cfg)?;
    for t in r.tables() {
        emit(&t, opts)?;
    }
    Ok(())
}

fn cmd_fig4a(opts: &Options) -> Result<(), CliError> {
    let r = fig4a::run(&fig4a::Fig4aConfig::default())?;
    emit(&r.table(), opts)
}

fn cmd_fig4bc(opts: &Options, p: f64) -> Result<(), CliError> {
    let cfg = fig4bc::Fig4bcConfig {
        correlations: vec![p],
        ..Default::default()
    };
    let r = fig4bc::run(&cfg)?;
    for t in r.tables() {
        emit(&t, opts)?;
    }
    Ok(())
}

fn cmd_validate(opts: &Options) -> Result<(), CliError> {
    let p = opts.get_f64("p", 0.5)?;
    let cfg = validate::ValidateConfig {
        model: CorrelationModel::new(10, p, 0.25)?,
        replications: opts.get_usize("reps", 4)?,
        horizon: opts.get_f64("horizon", 4000.0)?,
        warmup: opts.get_f64("warmup", 1000.0)?,
        seed: opts.get_u64("seed", 2006)?,
        ..Default::default()
    };
    let r = validate::run(&cfg)?;
    emit(&r.table(), opts)?;
    diag!(
        Level::Info,
        "worst relative online-time error: {:.1}%",
        100.0 * r.worst_online_error()
    );
    Ok(())
}

fn cmd_adapt(opts: &Options) -> Result<(), CliError> {
    let p = opts.get_f64("p", 0.9)?;
    let cfg = adapt_exp::AdaptExpConfig {
        model: CorrelationModel::new(10, p, 0.25)?,
        cheater_fractions: opts.get_f64_list("cheaters", &[0.0, 0.25, 0.5, 0.75])?,
        replications: opts.get_usize("reps", 3)?,
        epoch: opts.get_f64("epoch", 20.0)?,
        horizon: opts.get_f64("horizon", 4000.0)?,
        warmup: opts.get_f64("warmup", 1000.0)?,
        seed: opts.get_u64("seed", 43)?,
        controller: AdaptConfig::default_for_mu(0.02),
        params: FluidParams::paper(),
    };
    let r = adapt_exp::run(&cfg)?;
    emit(&r.table(), opts)
}

fn cmd_transient(opts: &Options) -> Result<(), CliError> {
    let cfg = transient::TransientConfig {
        p: opts.get_f64("p", 0.5)?,
        flash_crowd: opts.get_f64("crowd", 200.0)?,
        ..Default::default()
    };
    let r = transient::run(&cfg)?;
    emit(&r.table(), opts)?;
    if opts.has("csv") {
        print!("{}", r.mtcd.to_csv());
    }
    Ok(())
}

fn cmd_ablation(opts: &Options) -> Result<(), CliError> {
    let p = opts.get_f64("p", 0.7)?;
    let cfg = ablation::AblationConfig {
        model: CorrelationModel::new(10, p, 1.0)?,
        ..Default::default()
    };
    let r = ablation::run(&cfg)?;
    emit(&r.table(), opts)
}

fn cmd_eta(opts: &Options) -> Result<(), CliError> {
    let seed = opts.get_u64("seed", 11)?;
    let mut t = Table::new(
        "X9 — chunk-level η: downloader upload utilization and seed byte share",
        vec!["chunks", "1/γ", "utilization", "seed/dl bytes", "completed"],
    );
    for &chunks in &[4usize, 16, 64, 256] {
        for &gamma in &[0.05, 0.2] {
            let e = estimate_eta(&ChunkLevelConfig {
                chunks,
                gamma,
                horizon: 2000.0,
                warmup: 500.0,
                seed,
                ..Default::default()
            })?;
            t.push_row(vec![
                format!("{chunks}"),
                format!("{:.0}", 1.0 / gamma),
                format!("{:.3}", e.utilization),
                format!("{:.2}", e.seed_byte_ratio()),
                format!("{}", e.completed),
            ]);
        }
    }
    emit(&t, opts)
}

fn cmd_skew(opts: &Options) -> Result<(), CliError> {
    let cfg = skew::SkewConfig {
        k: opts.get_usize("k", 10)? as u32,
        ..Default::default()
    };
    let r = skew::run(&cfg)?;
    emit(&r.table(), opts)
}

fn parse_classes(spec: &str) -> Result<Vec<BandwidthClass>, CliError> {
    let mut classes = Vec::new();
    for (i, tok) in spec.split(',').enumerate() {
        let parts: Vec<&str> = tok.trim().split(':').collect();
        if parts.len() != 3 {
            return Err(format!("class {i}: expected MU:C:LAMBDA, got '{tok}'").into());
        }
        classes.push(BandwidthClass {
            mu: parts[0]
                .parse()
                .map_err(|_| format!("class {i}: bad μ '{}'", parts[0]))?,
            c: parts[1]
                .parse()
                .map_err(|_| format!("class {i}: bad c '{}'", parts[1]))?,
            lambda: parts[2]
                .parse()
                .map_err(|_| format!("class {i}: bad λ '{}'", parts[2]))?,
        });
    }
    Ok(classes)
}

fn cmd_multiclass(opts: &Options) -> Result<(), CliError> {
    let classes = match opts.get("classes") {
        Some(spec) => parse_classes(spec)?,
        None => vec![
            BandwidthClass {
                mu: 0.005,
                c: 0.05,
                lambda: 0.2,
            },
            BandwidthClass {
                mu: 0.02,
                c: 0.2,
                lambda: 0.3,
            },
            BandwidthClass {
                mu: 0.08,
                c: 0.8,
                lambda: 0.1,
            },
        ],
    };
    let fluid = MultiClassFluid::new(classes.clone(), 0.5, 0.05)?;
    let ss = fluid.steady_state()?;
    let sim = run_single_torrent(&SingleTorrentConfig {
        classes: classes.clone(),
        eta: 0.5,
        gamma: 0.05,
        horizon: 8000.0,
        warmup: 2500.0,
        drain: 4000.0,
        seed: opts.get_u64("seed", 7)?,
    })?;
    let mut t = Table::new(
        "X7 — heterogeneous bandwidth classes (Section 2), fluid vs simulation",
        vec!["class", "μ", "c", "λ", "fluid T_dl", "sim T_dl", "users"],
    );
    for (i, cl) in classes.iter().enumerate() {
        t.push_row(vec![
            format!("{}", i + 1),
            format!("{}", cl.mu),
            format!("{}", cl.c),
            format!("{}", cl.lambda),
            format!("{:.2}", ss.download_times[i]),
            format!("{:.2}", sim.classes[i].download.mean()),
            format!("{}", sim.classes[i].download.count()),
        ]);
    }
    emit(&t, opts)?;
    if sim.censored > 0 {
        diag!(Level::Warn, "warning: {} censored users", sim.censored);
    }
    Ok(())
}

fn parse_scheme(s: &str) -> Result<SchemeKind, CliError> {
    match s {
        "mtsd" => Ok(SchemeKind::Mtsd),
        "mtcd" => Ok(SchemeKind::Mtcd),
        "mfcd" => Ok(SchemeKind::Mfcd),
        _ => {
            if let Some(rho) = s.strip_prefix("cmfsd") {
                let rho = rho.strip_prefix(':').unwrap_or("0.0");
                let rho: f64 = rho
                    .parse()
                    .map_err(|_| format!("bad CMFSD ρ in '{s}' (use cmfsd:0.3)"))?;
                Ok(SchemeKind::Cmfsd { rho })
            } else {
                Err(format!("unknown scheme '{s}' (mtsd|mtcd|mfcd|cmfsd[:RHO])").into())
            }
        }
    }
}

fn cmd_sim(opts: &Options) -> Result<(), CliError> {
    let scheme = parse_scheme(opts.get("scheme").unwrap_or("mtsd"))?;
    let p = opts.get_f64("p", 0.5)?;
    let horizon = opts.get_f64("horizon", 4000.0)?;
    let cfg = DesConfig {
        params: FluidParams::paper(),
        model: CorrelationModel::new(10, p, 0.25)?,
        scheme,
        horizon,
        warmup: opts.get_f64("warmup", horizon / 4.0)?,
        drain: horizon,
        seed: opts.get_u64("seed", 1)?,
        adapt: None,
        origin_seeds: opts.get_usize("origin-seeds", 1)?,
        warm_start: false,
        order_policy: OrderPolicy::default(),
        record_every: None,
        exact_rates: opts.has("exact"),
        aggregate: opts.has("aggregate"),
        checked: opts.has("checked"),
    };
    let outcome = Simulation::new(cfg)?.try_run()?;
    let mut t = Table::new(
        format!("simulation — {} (p = {p})", scheme.name()),
        vec!["class", "users", "download/file", "online/file"],
    );
    for (i, stats) in outcome.classes.iter().enumerate() {
        if stats.count() == 0 {
            continue;
        }
        let class = (i + 1) as f64;
        t.push_row(vec![
            format!("{}", i + 1),
            format!("{}", stats.count()),
            format!("{:.2}", stats.download.mean() / class),
            format!("{:.2}", stats.online.mean() / class),
        ]);
    }
    emit(&t, opts)?;
    diag!(
        Level::Info,
        "arrivals: {}, counted: {}, censored: {}, avg online/file: {:.2}",
        outcome.arrivals,
        outcome.records.len(),
        outcome.censored,
        outcome.avg_online_per_file()?
    );
    Ok(())
}

/// Writes a flight recorder's `flightrec v1` dump to `path` atomically.
fn write_flight_dump(path: &Path, flight: &SharedRecorder) -> Result<(), CliError> {
    let dump = flight
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .dump_string(None);
    harness::atomic_write(path, dump.as_bytes())?;
    diag!(Level::Info, "wrote flight recording {}", path.display());
    Ok(())
}

/// Best-effort flight dump on an error path, so a typed engine or driver
/// error still ships its last-N-events story. Never masks the original
/// error: a dump failure only warns, and an empty ring (the error fired
/// before any run) writes nothing.
fn dump_flight_on_error(path: &Path, flight: &SharedRecorder) {
    if flight.lock().unwrap_or_else(|e| e.into_inner()).is_empty() {
        return;
    }
    if let Err(e) = write_flight_dump(path, flight) {
        diag!(Level::Warn, "flight dump on the error path failed: {e}");
    }
}

/// `btfluid profile` — run one engine configuration with the hierarchical
/// self-profiler enabled and render the per-phase cost tables.
fn cmd_profile(opts: &Options) -> Result<(), CliError> {
    let scheme = parse_scheme(opts.get("scheme").unwrap_or("mtcd"))?;
    let p = opts.get_f64("p", 0.5)?;
    let horizon = opts.get_f64("horizon", 2000.0)?;
    let cfg = DesConfig {
        params: FluidParams::paper(),
        model: CorrelationModel::new(10, p, 0.25)?,
        scheme,
        horizon,
        warmup: opts.get_f64("warmup", horizon / 4.0)?,
        drain: horizon,
        seed: opts.get_u64("seed", 1)?,
        adapt: None,
        origin_seeds: opts.get_usize("origin-seeds", 1)?,
        warm_start: false,
        order_policy: OrderPolicy::default(),
        record_every: None,
        exact_rates: opts.has("exact"),
        aggregate: opts.has("aggregate"),
        checked: opts.has("checked"),
    };
    let sink = match opts.get("trace") {
        Some(path) => {
            check_clobber(path, opts)?;
            harness::clean_stale_tmp(Path::new(path));
            Some(TraceSink::create(Path::new(path))?.shared())
        }
        None => None,
    };
    let mut sim = Simulation::new(cfg)?;
    sim.enable_profiler(Profiler::calibrated());
    if let Some(sink) = &sink {
        sink.lock().unwrap_or_else(|e| e.into_inner()).meta(&[
            (
                "label",
                MetaField::Str(format!("profile-{}", scheme.name())),
            ),
            ("seed", MetaField::U64(opts.get_u64("seed", 1)?)),
        ]);
        sim.attach_probe(Box::new(SinkProbe::new(
            sink.clone(),
            opts.get_f64("sample-every", DEFAULT_SAMPLE_EVERY)?,
        )));
    }
    let started = std::time::Instant::now();
    while sim.step()? {}
    let wall = started.elapsed();
    let table = sim
        .profiler_table()
        .ok_or_else(|| CliError::from("internal: profiler vanished".to_string()))?;
    let outcome = sim.finish();
    if let Some(sink) = sink {
        let mut guard = sink.lock().unwrap_or_else(|e| e.into_inner());
        guard.profile(&table);
        let path = guard.finish()?;
        diag!(Level::Info, "wrote trace {}", path.display());
    }

    let events = table.events.max(1);
    let accounted = table.accounted_ns();
    let mut t = Table::new(
        format!(
            "profile — {} (p = {p}, {} events, {:.1} ms wall)",
            scheme.name(),
            table.events,
            wall.as_secs_f64() * 1e3
        ),
        vec![
            "phase", "calls", "self ms", "total ms", "ns/call", "ns/event", "self %",
        ],
    );
    for (name, stats) in &table.phases {
        let pct = if accounted > 0 {
            100.0 * stats.self_ns as f64 / accounted as f64
        } else {
            0.0
        };
        let per_call = if stats.calls > 0 {
            format!("{:.0}", stats.self_ns as f64 / stats.calls as f64)
        } else {
            "-".into()
        };
        t.push_row(vec![
            (*name).to_string(),
            format!("{}", stats.calls),
            format!("{:.3}", stats.self_ns as f64 / 1e6),
            format!("{:.3}", stats.total_ns as f64 / 1e6),
            per_call,
            format!("{:.0}", stats.self_ns as f64 / events as f64),
            format!("{pct:.1}"),
        ]);
    }
    t.push_row(vec![
        "accounted".into(),
        "-".into(),
        format!("{:.3}", accounted as f64 / 1e6),
        "-".into(),
        "-".into(),
        format!("{:.0}", accounted as f64 / events as f64),
        "100.0".into(),
    ]);
    emit(&t, opts)?;
    diag!(
        Level::Info,
        "profile: pair overhead {} ns (subtracted per scope); {:.1}% of wall \
         accounted to phases; arrivals {}, completed {}",
        table.pair_overhead_ns,
        100.0 * accounted as f64 / (wall.as_nanos().max(1) as f64),
        outcome.arrivals,
        outcome.records.len()
    );
    Ok(())
}

/// `btfluid scenario list` | `btfluid scenario <name> [options]`.
///
/// The scenario name is positional, so it is peeled off before the
/// option parser (which rejects positionals) sees the rest.
fn cmd_scenario(rest: &[String]) -> Result<(), CliError> {
    let Some(name) = rest.first() else {
        return Err(format!(
            "scenario: missing name (try 'btfluid scenario list'); registry: {}",
            registry::SCENARIO_NAMES.join(", ")
        )
        .into());
    };
    let opts = Options::parse(&rest[1..])?;
    if name == "list" {
        return scenario_list(&opts);
    }
    let Some(mut program) = registry::by_name(name) else {
        return Err(format!(
            "scenario: unknown name '{name}'; registry: {}",
            registry::SCENARIO_NAMES.join(", ")
        )
        .into());
    };

    let scale = if opts.has("smoke") {
        0.25
    } else {
        opts.get_f64("scale", 1.0)?
    };
    if !scale.is_finite() || scale <= 0.0 {
        return Err("scenario: --scale must be positive".into());
    }
    if (scale - 1.0).abs() > 1e-12 {
        program = program.time_scaled(scale);
    }
    let seed = opts.get_u64("seed", 2006)?;
    let mode = match (opts.has("exact"), opts.has("aggregate")) {
        (true, true) => {
            return Err("scenario: --exact and --aggregate are mutually exclusive".into())
        }
        (true, false) => RateMode::Exact,
        (false, true) => RateMode::Aggregate,
        (false, false) => RateMode::Incremental,
    };
    let crash_safe = opts.get("checkpoint").is_some()
        || opts.get("records").is_some()
        || opts.has("resume")
        || opts.has("checked");

    let sample_every = opts.get_f64("sample-every", DEFAULT_SAMPLE_EVERY)?;
    if !sample_every.is_finite() || sample_every <= 0.0 {
        return Err("scenario: --sample-every must be positive".into());
    }
    let sink = match opts.get("trace") {
        Some(path) => {
            check_clobber(path, &opts)?;
            // A kill between the sink's tmp write and its finishing rename
            // leaves `<trace>.tmp` behind; clear it like checkpoint tmps.
            harness::clean_stale_tmp(Path::new(path));
            Some(TraceSink::create(Path::new(path))?.shared())
        }
        None => None,
    };

    // Flight recorder: an observe-only ring of the last-N engine
    // happenings, dumped as a `flightrec v1` JSONL artifact at the end.
    let flightrec = opts.get("flightrec").map(PathBuf::from);
    let flight = match &flightrec {
        Some(path) => {
            check_clobber(&path.display().to_string(), &opts)?;
            let cap = opts.get_usize("flightrec-cap", DEFAULT_FLIGHT_CAPACITY)?;
            if cap == 0 {
                return Err("scenario: --flightrec-cap must be at least 1".into());
            }
            Some(shared_recorder(cap))
        }
        None => None,
    };

    if opts.has("hybrid") {
        return run_scenario_hybrid(
            name,
            &program,
            seed,
            scale,
            mode,
            &opts,
            sink,
            flight.map(|f| (f, flightrec.expect("flight implies a path"))),
        );
    }

    // Each scheme run gets its own meta record (a trace "segment") and a
    // fresh probe streaming into the shared sink, so one file holds the
    // whole line-up and `btfluid inspect` can tell the runs apart.
    let mut make_probe = |label: &str| -> Option<Box<dyn btfluid_des::Probe>> {
        let mut probes: Vec<Box<dyn btfluid_des::Probe>> = Vec::new();
        if let Some(sink) = sink.as_ref() {
            sink.lock().unwrap_or_else(|e| e.into_inner()).meta(&[
                ("scenario", MetaField::Str(name.clone())),
                ("label", MetaField::Str(label.to_string())),
                ("seed", MetaField::U64(seed)),
                ("scale", MetaField::F64(scale)),
                ("exact_rates", MetaField::Bool(mode == RateMode::Exact)),
                ("aggregate", MetaField::Bool(mode == RateMode::Aggregate)),
                ("sample_every", MetaField::F64(sample_every)),
            ]);
            probes.push(Box::new(SinkProbe::new(sink.clone(), sample_every)));
        }
        if let Some(flight) = flight.as_ref() {
            probes.push(Box::new(RecorderProbe::new(Arc::clone(flight))));
        }
        match probes.len() {
            0 => None,
            1 => probes.pop(),
            _ => Some(Box::new(FanoutProbe::new(probes))),
        }
    };

    let run_result = (|| -> Result<Vec<runner::ScenarioRun>, CliError> {
        match opts.get("scheme") {
            Some(spec) => {
                let scheme = parse_scheme(spec)?;
                let probe = make_probe(&scheme.name());
                if crash_safe {
                    Ok(vec![run_scenario_resumable(
                        &program, scheme, seed, mode, &opts, probe,
                    )?])
                } else {
                    Ok(vec![runner::run_one_probed(
                        &program,
                        scheme,
                        None,
                        &scheme.name(),
                        seed,
                        mode,
                        probe,
                    )?])
                }
            }
            None if crash_safe => Err(
                "scenario: --checkpoint/--records/--resume/--checked need --scheme \
                 (one engine run, one checkpoint)"
                    .into(),
            ),
            None => Ok(runner::run_all_probed(
                &program,
                seed,
                mode,
                &mut make_probe,
            )?),
        }
    })();
    let runs = match run_result {
        Ok(runs) => runs,
        Err(e) => {
            // A surfaced DesError still ships its flight story.
            if let (Some(path), Some(flight)) = (&flightrec, &flight) {
                dump_flight_on_error(path, flight);
            }
            return Err(e);
        }
    };

    if let Some(sink) = sink {
        let path = sink.lock().unwrap_or_else(|e| e.into_inner()).finish()?;
        diag!(Level::Info, "wrote trace {}", path.display());
    }
    if let (Some(path), Some(flight)) = (&flightrec, &flight) {
        write_flight_dump(path, flight)?;
    }

    if let Some(path) = opts.get("records") {
        write_records(path, &runs[0].outcome, &opts)?;
    }

    diag!(
        Level::Info,
        "scenario {name}: {} (seed {seed}, scale {scale})",
        program.description
    );
    for run in &runs {
        emit(&scenario_table(name, run), &opts)?;
        diag!(
            Level::Info,
            "{}: arrivals {}, completed {}, aborted {}, censored {}",
            run.label,
            run.outcome.arrivals,
            run.outcome.records.len(),
            run.outcome.aborts.len(),
            run.outcome.censored
        );
    }

    if opts.has("fluid") {
        scenario_fluid_comparison(name, &program, seed)?;
    }
    Ok(())
}

fn scenario_list(opts: &Options) -> Result<(), CliError> {
    let mut t = Table::new(
        "scenario registry — btfluid scenario <name>",
        vec!["name", "description", "phases"],
    );
    for p in registry::all() {
        let phases: Vec<String> = p.phases.iter().map(|ph| ph.name.clone()).collect();
        t.push_row(vec![
            p.name.clone(),
            p.description.clone(),
            phases.join("/"),
        ]);
    }
    emit(&t, opts)
}

/// Per-phase timeline of one scheme's scenario run.
fn scenario_table(name: &str, run: &runner::ScenarioRun) -> Table {
    let mut t = Table::new(
        format!("scenario {name} — {}", run.label),
        vec![
            "phase",
            "window",
            "completed",
            "aborted",
            "dl/file",
            "online/file",
        ],
    );
    for ph in &run.phases {
        let mut dl = 0.0;
        let mut files = 0.0;
        for (idx, c) in ph.classes.iter().enumerate() {
            dl += c.download.mean() * c.count() as f64;
            files += (idx + 1) as f64 * c.count() as f64;
        }
        let per_file = |v: f64| {
            if files > 0.0 {
                format!("{:.2}", v / files)
            } else {
                "-".into()
            }
        };
        t.push_row(vec![
            ph.name.clone(),
            format!("[{:.0}, {:.0})", ph.start, ph.end),
            format!("{}", ph.completed()),
            format!("{}", ph.aborted),
            per_file(dl),
            ph.online_per_file()
                .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
        ]);
    }
    t
}

/// DES-vs-fluid transient check: the schedule-driven MTCD ODE against an
/// MTCD DES run of the same program. Origin seeds are zeroed on both
/// sides — the fluid model has no publisher, and under MTCD a pinned
/// origin seed adds a full μ per subtorrent.
fn scenario_fluid_comparison(
    name: &str,
    program: &btfluid_scenario::ScenarioProgram,
    seed: u64,
) -> Result<(), CliError> {
    let mut program = program.clone();
    program.origin_seeds = 0;
    let run = runner::run_one(
        &program,
        SchemeKind::Mtcd,
        None,
        "MTCD",
        seed,
        RateMode::Incremental,
    )?;
    let des = btfluid_scenario::des_avg_downloaders(&run.outcome);
    let fluid = btfluid_scenario::fluid_avg_downloaders(&program, 0.5)?;
    let rel = (des - fluid).abs() / fluid.max(1e-9);
    diag!(
        Level::Info,
        "fluid check ({name}, MTCD, origin seeds off): DES {des:.2} downloading users, \
         fluid {fluid:.2}, relative error {:.1}%",
        100.0 * rel
    );
    Ok(())
}

/// A single-scheme scenario run through the crash-safe driver: honors
/// `--checkpoint`, `--checkpoint-every`, `--resume`, and `--checked`.
fn run_scenario_resumable(
    program: &btfluid_scenario::ScenarioProgram,
    scheme: SchemeKind,
    seed: u64,
    mode: RateMode,
    opts: &Options,
    probe: Option<Box<dyn btfluid_des::Probe>>,
) -> Result<runner::ScenarioRun, CliError> {
    let mut cfg = program.des_config(scheme, seed)?;
    mode.apply(&mut cfg);
    cfg.checked = opts.has("checked");
    cfg.validate()?;
    let plan = harness::CheckpointPlan {
        path: opts.get("checkpoint").map(PathBuf::from),
        every_events: opts.get_u64("checkpoint-every", 5000)?,
        retry: harness::RetryPolicy::default(),
    };
    let hook_factory = || -> Box<dyn btfluid_des::ScenarioHook> { Box::new(program.hook()) };
    let report = harness::drive(
        cfg,
        Some(&hook_factory),
        Some(&plan),
        opts.has("resume"),
        &harness::RunLimits::default(),
        None,
        None,
        probe,
    )?;
    if report.resumed {
        diag!(
            Level::Info,
            "resumed from checkpoint; finished at {} events ({} checkpoint(s) this run)",
            report.events,
            report.checkpoints
        );
    }
    let Some(outcome) = report.outcome else {
        return Err("internal: unlimited run returned without an outcome".into());
    };
    let phases = runner::phase_stats(program, &outcome);
    Ok(runner::ScenarioRun {
        label: scheme.name(),
        scheme,
        outcome,
        phases,
    })
}

/// `btfluid scenario <name> --hybrid` — the multiscale fluid/DES driver:
/// the scheduled ODE carries the swarm while the population is large,
/// the DES takes over for small/critical windows (DESIGN.md §15).
///
/// Honors `--checkpoint`/`--checkpoint-every`/`--resume` with hybrid
/// snapshots (v4); `--checkpoint-every` counts decision boundaries, not
/// events. Per-class means print with shortest-roundtrip formatting, so
/// byte-identical `--out` files mean bit-identical runs.
#[allow(clippy::too_many_arguments)]
fn run_scenario_hybrid(
    name: &str,
    program: &btfluid_scenario::ScenarioProgram,
    seed: u64,
    scale: f64,
    mode: RateMode,
    opts: &Options,
    sink: Option<SharedSink>,
    flight: Option<(SharedRecorder, PathBuf)>,
) -> Result<(), CliError> {
    let scheme = match opts.get("scheme") {
        Some(spec) => parse_scheme(spec)?,
        None => {
            return Err(
                "scenario: --hybrid needs --scheme mtcd|mtsd (the schemes with \
                 scheduled fluid models)"
                    .into(),
            )
        }
    };
    if !matches!(scheme, SchemeKind::Mtcd | SchemeKind::Mtsd) {
        return Err(format!(
            "scenario: --hybrid supports mtcd and mtsd, not {}",
            scheme.name()
        )
        .into());
    }
    if mode == RateMode::Exact {
        return Err(
            "scenario: --exact has no fluid counterpart; use --hybrid with the \
             incremental or --aggregate engine"
                .into(),
        );
    }
    if opts.get("records").is_some() || opts.has("checked") {
        return Err(
            "scenario: --records/--checked are not supported with --hybrid \
             (the driver is class-level; there is no per-user record stream)"
                .into(),
        );
    }
    let tol = opts.get_f64("hybrid-tol", 0.1)?;
    let cfg = HybridConfig {
        program: program.clone(),
        scheme,
        seed,
        tol,
        aggregate: mode == RateMode::Aggregate,
    };

    let checkpoint = opts.get("checkpoint").map(PathBuf::from);
    let every = opts.get_u64("checkpoint-every", 8)?.max(1);
    // Same discipline as the engine driver: a leftover `.tmp` from a kill
    // mid-rename is never a valid resume source — remove it so the resume
    // below reads only the committed hybrid v4 checkpoint.
    if let Some(path) = &checkpoint {
        harness::clean_stale_tmp(path);
    }
    let mut runner = match &checkpoint {
        Some(path) if opts.has("resume") && path.is_file() => {
            let bytes = fs::read(path)?;
            let r = HybridRunner::resume(cfg.clone(), &bytes)?;
            diag!(
                Level::Info,
                "resumed hybrid run at t = {:.3} in the {:?} regime \
                 ({} handoff(s) so far)",
                r.sim_time(),
                r.regime(),
                r.handoffs().len()
            );
            r
        }
        _ => HybridRunner::new(cfg)?,
    };

    if let Some(sink) = &sink {
        sink.lock().unwrap_or_else(|e| e.into_inner()).meta(&[
            ("scenario", MetaField::Str(name.to_string())),
            ("label", MetaField::Str(format!("hybrid-{}", scheme.name()))),
            ("seed", MetaField::U64(seed)),
            ("scale", MetaField::F64(scale)),
            ("hybrid", MetaField::Bool(true)),
            ("hybrid_tol", MetaField::F64(tol)),
            ("aggregate", MetaField::Bool(mode == RateMode::Aggregate)),
        ]);
        runner.attach_sink(sink.clone());
    }
    if let Some((rec, _)) = &flight {
        runner.attach_flight(Arc::clone(rec));
    }

    let mut since_checkpoint = 0u64;
    let drive = (|| -> Result<(), CliError> {
        while runner.step_boundary()? {
            since_checkpoint += 1;
            if let Some(path) = &checkpoint {
                if since_checkpoint >= every {
                    harness::atomic_write(path, &runner.snapshot())?;
                    since_checkpoint = 0;
                }
            }
        }
        Ok(())
    })();
    if let Err(e) = drive {
        // A surfaced HybridError still ships its flight story.
        if let Some((rec, path)) = &flight {
            dump_flight_on_error(path, rec);
        }
        return Err(e);
    }
    let outcome = runner.finish();

    if let Some(sink) = sink {
        let counters = Counters {
            events_popped: outcome.des_events,
            ..Default::default()
        };
        let mut guard = sink.lock().unwrap_or_else(|e| e.into_inner());
        guard.end(outcome.final_t, &counters);
        let path = guard.finish()?;
        diag!(Level::Info, "wrote trace {}", path.display());
    }
    if let Some((rec, path)) = &flight {
        write_flight_dump(path, rec)?;
    }
    if let Some(path) = &checkpoint {
        if path.is_file() {
            fs::remove_file(path)?;
        }
    }

    let mut t = Table::new(
        format!(
            "scenario {name} — hybrid {} (tol {tol}, seed {seed})",
            scheme.name()
        ),
        vec!["class", "mean downloading users"],
    );
    for (i, mean) in outcome.class_means.iter().enumerate() {
        t.push_row(vec![format!("{}", i + 1), format!("{mean}")]);
    }
    t.push_row(vec!["total".into(), format!("{}", outcome.total_mean())]);
    emit(&t, opts)?;

    let to_fluid = outcome
        .handoffs
        .iter()
        .filter(|h| h.to == Regime::Fluid)
        .count();
    diag!(
        Level::Info,
        "hybrid {name}: {} handoff(s) ({to_fluid} →fluid, {} →discrete), \
         {} DES events, {} fluid substeps, final t {:.1}",
        outcome.handoffs.len(),
        outcome.handoffs.len() - to_fluid,
        outcome.des_events,
        outcome.fluid_steps,
        outcome.final_t
    );

    if opts.has("fluid") {
        scenario_fluid_comparison(name, program, seed)?;
    }
    Ok(())
}

/// Writes the per-user record stream as CSV. Floats use Rust's
/// shortest-roundtrip formatting, so two byte-identical files mean two
/// bit-identical record streams — the resume tests compare exactly this.
fn write_records(path: &str, outcome: &SimOutcome, opts: &Options) -> Result<(), CliError> {
    check_clobber(path, opts)?;
    let mut body =
        String::from("id,class,arrival,departure,download_span,online_fluid,final_rho,cheater\n");
    for r in &outcome.records {
        body.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.id,
            r.class,
            r.arrival,
            r.departure,
            r.download_span,
            r.online_fluid,
            r.final_rho,
            r.cheater
        ));
    }
    fs::write(path, body)?;
    diag!(
        Level::Info,
        "wrote {path} ({} records)",
        outcome.records.len()
    );
    Ok(())
}

/// `--inject-panic CELL[@EVENT]` (default event 50).
fn parse_inject(spec: Option<&str>) -> Result<Option<(String, u64)>, CliError> {
    let Some(spec) = spec else { return Ok(None) };
    match spec.rsplit_once('@') {
        Some((cell, ev)) => {
            let ev = ev.parse().map_err(|_| {
                format!("--inject-panic: '{ev}' is not an event count (use CELL@EVENT)")
            })?;
            Ok(Some((cell.to_string(), ev)))
        }
        None => Ok(Some((spec.to_string(), 50))),
    }
}

/// `btfluid sweep` — supervised replicate sweep with failure quarantine.
fn cmd_sweep(opts: &Options) -> Result<(), CliError> {
    let Some(manifest) = opts.get("manifest") else {
        return Err("sweep: --manifest FILE is required (the append-only journal)".into());
    };
    let manifest_path = PathBuf::from(manifest);
    let resume = opts.has("resume");
    if !resume && fs::metadata(&manifest_path).is_ok_and(|m| m.len() > 0) {
        return Err(CliError::new(
            EXIT_CLOBBER,
            format!(
                "{manifest} already journals a sweep; pass --resume to continue it \
                 or choose a fresh manifest path"
            ),
        ));
    }
    let bundles = opts
        .get("bundles")
        .map(PathBuf::from)
        .unwrap_or_else(|| manifest_path.with_extension("bundles"));

    let scheme_specs: Vec<String> = match opts.get("schemes") {
        Some(s) => s.split(',').map(|t| t.trim().to_string()).collect(),
        None => ["mtsd", "mtcd", "mfcd", "cmfsd:0.5"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let reps = opts.get_usize("reps", 2)?;
    if reps == 0 {
        return Err("sweep: --reps must be at least 1".into());
    }
    let base_seed = opts.get_u64("seed", 2006)?;
    let p = opts.get_f64("p", 0.5)?;
    let k = opts.get_usize("k", 10)? as u32;
    let horizon = opts.get_f64("horizon", 600.0)?;
    let warmup = opts.get_f64("warmup", horizon / 4.0)?;
    let inject = parse_inject(opts.get("inject-panic"))?;

    // `--workload FILE` makes every cell a trace replay: the recorded
    // arrivals drive the engine and the reference model/geometry come
    // from the trace itself (fitted by `trace_program`), not from
    // --p/--k/--horizon.
    let workload = match opts.get("workload") {
        None => None,
        Some(path) => {
            let trace = harness::load_trace(Path::new(path))?;
            let bins = opts.get_usize("bins", 8)?;
            let w = opts.get_f64("warmup", trace.horizon() / 4.0)?;
            let program = trace_program(&trace, bins, w)?;
            diag!(
                Level::Info,
                "workload {path}: {} arrivals over [0, {}), K = {}, \
                 entering rate {:.4}",
                trace.len(),
                trace.horizon(),
                trace.k(),
                trace.empirical_rate()
            );
            Some((path.to_string(), program))
        }
    };

    let mut cells = Vec::new();
    for spec in &scheme_specs {
        let scheme = parse_scheme(spec)?;
        for rep in 0..reps {
            let seed = base_seed.wrapping_add(rep as u64);
            let id = format!("{spec}-s{seed}");
            let (cfg, scenario) = match &workload {
                Some((path, program)) => {
                    let mut cfg = program.des_config(scheme, seed)?;
                    cfg.exact_rates = opts.has("exact");
                    cfg.aggregate = opts.has("aggregate");
                    cfg.checked = opts.has("checked");
                    (cfg, Some(harness::ScenarioRef::traced(path)))
                }
                None => {
                    let cfg = DesConfig {
                        params: FluidParams::paper(),
                        model: CorrelationModel::new(k, p, 0.25)?,
                        scheme,
                        horizon,
                        warmup,
                        drain: horizon,
                        seed,
                        adapt: None,
                        origin_seeds: 1,
                        warm_start: false,
                        order_policy: OrderPolicy::default(),
                        record_every: None,
                        exact_rates: opts.has("exact"),
                        aggregate: opts.has("aggregate"),
                        checked: opts.has("checked"),
                    };
                    (cfg, None)
                }
            };
            cfg.validate()?;
            let inject_panic_at = inject
                .as_ref()
                .and_then(|(cell, ev)| (cell == &id).then_some(*ev));
            cells.push(harness::CellSpec {
                id,
                cfg,
                scenario,
                inject_panic_at,
            });
        }
    }
    let total = cells.len();

    let max_events = match opts.get("event-budget") {
        None => None,
        Some(_) => Some(opts.get_u64("event-budget", 0)?),
    };
    let max_wall = match opts.get("wall-budget-ms") {
        None => None,
        Some(_) => Some(Duration::from_millis(opts.get_u64("wall-budget-ms", 0)?)),
    };
    let sup = harness::SupervisorConfig {
        manifest: manifest_path,
        bundle_dir: bundles,
        budget: harness::Budget {
            max_events,
            max_wall,
        },
        max_retries: opts.get_usize("retries", 1)? as u32,
        backoff: Duration::from_millis(100),
        workers: opts.get_usize("workers", 1)?,
        resume,
        checkpoint_every: opts.get_u64("checkpoint-every", 5000)?,
    };
    let report = harness::run_sweep(&sup, cells)?;

    let mut t = Table::new(
        "sweep results (this invocation)",
        vec![
            "cell",
            "events",
            "arrivals",
            "completed",
            "censored",
            "aborted",
            "online/file",
        ],
    );
    for r in &report.completed {
        t.push_row(vec![
            r.id.clone(),
            format!("{}", r.events),
            format!("{}", r.arrivals),
            format!("{}", r.completed),
            format!("{}", r.censored),
            format!("{}", r.aborted),
            r.avg_online_per_file
                .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
        ]);
    }
    emit(&t, opts)?;
    if !report.skipped.is_empty() {
        diag!(
            Level::Info,
            "skipped {} cell(s) the manifest already records done",
            report.skipped.len()
        );
    }
    for f in &report.failed {
        diag!(
            Level::Warn,
            "quarantined {} after {} attempt(s): {} — replay with \
             'btfluid repro {}'",
            f.id,
            f.attempts,
            f.reason,
            f.bundle.display()
        );
    }
    if report.failed.is_empty() {
        diag!(
            Level::Info,
            "sweep complete: {} ran, {} skipped, {total} total",
            report.completed.len(),
            report.skipped.len()
        );
        Ok(())
    } else {
        Err(CliError::new(
            EXIT_SWEEP_FAILED,
            format!(
                "sweep: {} of {total} cell(s) quarantined (all others completed)",
                report.failed.len()
            ),
        ))
    }
}

/// Renders a caught panic payload.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// `btfluid trace <gen|fit|replay|info>` — the measurement-calibrated
/// workload pipeline (DESIGN.md §18): synthesize shaped traces, fit the
/// stationary model back out of a recording, and replay recordings into
/// the DES.
fn cmd_trace(rest: &[String]) -> Result<(), CliError> {
    let Some(sub) = rest.first() else {
        return Err("trace: missing subcommand (gen | fit | replay | info)".into());
    };
    let opts = Options::parse(&rest[1..])?;
    if opts.has("help") {
        print!("{USAGE}");
        return Ok(());
    }
    match sub.as_str() {
        "gen" => trace_gen(&opts),
        "fit" => trace_fit(&opts),
        "replay" => trace_replay(&opts),
        "info" => trace_info(&opts),
        other => {
            Err(format!("trace: unknown subcommand '{other}' (gen | fit | replay | info)").into())
        }
    }
}

/// Loads the `--in FILE` trace; the codec follows the extension
/// (`.jsonl` → JSONL, anything else → CSV).
fn trace_input(opts: &Options, sub: &str) -> Result<ArrivalTrace, CliError> {
    let Some(path) = opts.get("in") else {
        return Err(format!("trace {sub}: --in FILE is required").into());
    };
    Ok(harness::load_trace(Path::new(path))?)
}

/// `btfluid trace gen` — synthesize a trace through [`TraceShaper`].
fn trace_gen(opts: &Options) -> Result<(), CliError> {
    let k = opts.get_usize("k", 10)? as u32;
    let horizon = opts.get_f64("horizon", 2000.0)?;
    let seed = opts.get_u64("seed", 1)?;
    let shape = opts.get("shape").unwrap_or("flat");
    let mut shaper = match shape {
        "flat" => TraceShaper::flat(
            opts.get_f64("lambda0", 0.25)?,
            opts.get_f64("p", 0.4)?,
            k,
            horizon,
        ),
        "diurnal" => {
            if opts.get("lambda0").is_some() || opts.get("p").is_some() {
                return Err("trace gen: --shape diurnal fixes λ₀(t) and p to the \
                     measured preset; --alpha/--leecher-frac remain tunable"
                    .into());
            }
            TraceShaper::measured(k, horizon)
        }
        other => {
            return Err(format!("trace gen: unknown --shape '{other}' (flat | diurnal)").into())
        }
    };
    if opts.get("alpha").is_some() {
        shaper.session_alpha = opts.get_f64("alpha", 0.0)?;
    }
    if opts.get("leecher-frac").is_some() {
        shaper.leecher_fraction = opts.get_f64("leecher-frac", 1.0)?;
    }
    let mut rng = btfluid_numkit::rng::Xoshiro256StarStar::seed_from_u64(seed);
    let trace = shaper.synthesize(&mut rng)?;

    let out = opts.get("out");
    let format = match opts.get("format") {
        Some("csv") => "csv",
        Some("jsonl") => "jsonl",
        Some(other) => {
            return Err(format!("trace gen: unknown --format '{other}' (csv | jsonl)").into())
        }
        None => match out {
            Some(p) if p.ends_with(".jsonl") => "jsonl",
            _ => "csv",
        },
    };
    let text = if format == "jsonl" {
        trace.to_jsonl()
    } else {
        trace.to_csv()
    };
    match out {
        Some(path) => {
            check_clobber(path, opts)?;
            fs::write(path, &text)?;
            diag!(
                Level::Info,
                "wrote {} arrivals ({format}) to {path}",
                trace.len()
            );
        }
        None => print!("{text}"),
    }
    diag!(
        Level::Info,
        "trace gen: shape {shape}, seed {seed}, K = {}, horizon {}, \
         entering rate {:.4}",
        trace.k(),
        trace.horizon(),
        trace.empirical_rate()
    );
    Ok(())
}

/// `btfluid trace fit` — recover `(λ₀, p)` by moment matching.
fn trace_fit(opts: &Options) -> Result<(), CliError> {
    let trace = trace_input(opts, "fit")?;
    let fit = fit_model(&trace)?;
    let mut t = Table::new(
        "trace fit — moment-matched stationary model",
        vec!["quantity", "fitted", "empirical"],
    );
    t.push_row(vec![
        "K (files)".into(),
        fit.k().to_string(),
        trace.k().to_string(),
    ]);
    t.push_row(vec![
        "λ₀ (visitor rate)".into(),
        format!("{:.6}", fit.lambda0()),
        "-".into(),
    ]);
    t.push_row(vec![
        "p (correlation)".into(),
        format!("{:.6}", fit.p()),
        "-".into(),
    ]);
    t.push_row(vec![
        "entering rate".into(),
        format!("{:.6}", fit.entering_rate()),
        format!("{:.6}", trace.empirical_rate()),
    ]);
    t.push_row(vec![
        "mean files/entrant".into(),
        format!("{:.4}", fit.mean_files_per_entrant()),
        format!("{:.4}", trace.mean_files_per_entrant()),
    ]);
    t.push_row(vec!["arrivals".into(), "-".into(), trace.len().to_string()]);
    emit(&t, opts)
}

/// `btfluid trace replay` — drive the DES with the recorded arrivals.
fn trace_replay(opts: &Options) -> Result<(), CliError> {
    let trace = trace_input(opts, "replay")?;
    let scheme = parse_scheme(opts.get("scheme").unwrap_or("mtcd"))?;
    let seed = opts.get_u64("seed", 2006)?;
    let mode = match (opts.has("exact"), opts.has("aggregate")) {
        (true, true) => {
            return Err("trace replay: --exact and --aggregate are mutually exclusive".into())
        }
        (true, false) => RateMode::Exact,
        (false, true) => RateMode::Aggregate,
        (false, false) => RateMode::Incremental,
    };
    let bins = opts.get_usize("bins", 8)?;
    let warmup = opts.get_f64("warmup", trace.horizon() / 4.0)?;
    let program = trace_program(&trace, bins, warmup)?;
    let mut cfg = program.des_config(scheme, seed)?;
    mode.apply(&mut cfg);
    let outcome = Simulation::with_hook(cfg, Box::new(TraceHook::new(&trace)?))?.run();

    let mut t = Table::new(
        format!(
            "trace replay — {} over {} arrivals",
            scheme.name(),
            trace.len()
        ),
        vec!["quantity", "value"],
    );
    let mut online = 0.0;
    let mut files = 0.0;
    for (idx, c) in outcome.classes.iter().enumerate() {
        online += c.online.mean() * c.count() as f64;
        files += (idx + 1) as f64 * c.count() as f64;
    }
    t.push_row(vec![
        "arrivals admitted".into(),
        outcome.arrivals.to_string(),
    ]);
    t.push_row(vec!["completed".into(), outcome.records.len().to_string()]);
    t.push_row(vec!["aborted".into(), outcome.aborts.len().to_string()]);
    t.push_row(vec!["censored".into(), outcome.censored.to_string()]);
    t.push_row(vec![
        "avg online/file".into(),
        if files > 0.0 {
            format!("{:.2}", online / files)
        } else {
            "-".into()
        },
    ]);
    t.push_row(vec![
        "avg downloading users".into(),
        format!("{:.2}", btfluid_scenario::des_avg_downloaders(&outcome)),
    ]);
    emit(&t, opts)?;

    if opts.has("fluid") {
        // The schedule adapter replays the binned empirical λ(t) through
        // the MTCD fluid ODE; under MTCD replay the two must agree.
        let des = btfluid_scenario::des_avg_downloaders(&outcome);
        let fluid = btfluid_scenario::fluid_avg_downloaders(&program, 0.5)?;
        let rel = (des - fluid).abs() / fluid.max(1e-9);
        diag!(
            Level::Info,
            "fluid check ({}, trace-driven): DES {des:.2} downloading users, \
             scheduled fluid {fluid:.2}, relative error {:.1}%",
            scheme.name(),
            100.0 * rel
        );
    }
    Ok(())
}

/// `btfluid trace info` — codec header, moments, and class histogram.
fn trace_info(opts: &Options) -> Result<(), CliError> {
    let trace = trace_input(opts, "info")?;
    let mut t = Table::new(
        format!(
            "{} v{} — {}",
            btfluid_workload::TRACE_FORMAT,
            btfluid_workload::TRACE_VERSION,
            opts.get("in").unwrap_or("?")
        ),
        vec!["quantity", "value"],
    );
    t.push_row(vec!["K (files)".into(), trace.k().to_string()]);
    t.push_row(vec!["horizon".into(), format!("{}", trace.horizon())]);
    t.push_row(vec!["arrivals".into(), trace.len().to_string()]);
    t.push_row(vec![
        "entering rate".into(),
        format!("{:.6}", trace.empirical_rate()),
    ]);
    t.push_row(vec![
        "total file requests".into(),
        trace.total_files().to_string(),
    ]);
    t.push_row(vec![
        "mean files/entrant".into(),
        format!("{:.4}", trace.mean_files_per_entrant()),
    ]);
    emit(&t, opts)?;
    if !trace.is_empty() {
        let counts = trace.class_counts();
        let mut h = Table::new("class histogram", vec!["class", "count", "share"]);
        for (idx, n) in counts.iter().enumerate() {
            if *n > 0 {
                h.push_row(vec![
                    (idx + 1).to_string(),
                    n.to_string(),
                    format!("{:.1}%", 100.0 * *n as f64 / trace.len() as f64),
                ]);
            }
        }
        emit(&h, opts)?;
    }
    Ok(())
}

/// `btfluid repro <bundle-dir>` — replay a quarantined cell.
fn cmd_repro(rest: &[String]) -> Result<(), CliError> {
    let Some(dir) = rest.first() else {
        return Err("repro: missing bundle directory (written under a sweep's --bundles)".into());
    };
    let _opts = Options::parse(&rest[1..])?;
    // Chaos bundles (`chaos.json`) replay through the chaos executor;
    // supervisor cell bundles (`repro.json`) through the engine below.
    if btfluid_chaos::ChaosBundle::is_chaos_dir(Path::new(dir)) {
        return repro_chaos(Path::new(dir));
    }
    let bundle = harness::ReproBundle::read(Path::new(dir))?;
    diag!(
        Level::Info,
        "repro {}: recorded failure: {}",
        bundle.cell_id,
        bundle.reason
    );
    let hook = bundle
        .scenario
        .as_ref()
        .map(harness::ScenarioRef::build_hook)
        .transpose()?;
    let mut sim = match &bundle.checkpoint {
        Some(bytes) => {
            let snap = Snapshot::from_bytes(bytes)?;
            diag!(
                Level::Info,
                "restoring checkpoint at t = {:.3} ({} events)",
                snap.sim_time(),
                snap.events()
            );
            match hook {
                Some(h) => Simulation::restore_with_hook(bundle.cfg.clone(), &snap, h)?,
                None => Simulation::restore(bundle.cfg.clone(), &snap)?,
            }
        }
        None => match hook {
            Some(h) => Simulation::with_hook(bundle.cfg.clone(), h)?,
            None => Simulation::new(bundle.cfg.clone())?,
        },
    };
    let inject = bundle.inject_panic_at;
    let replay = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        move || -> Result<SimOutcome, btfluid_des::DesError> {
            loop {
                if inject.is_some_and(|n| sim.events() >= n) {
                    panic!(
                        "injected panic at event {} (t = {:.3})",
                        sim.events(),
                        sim.sim_time()
                    );
                }
                if !sim.step()? {
                    break;
                }
            }
            Ok(sim.finish())
        },
    ));
    match replay {
        Err(payload) => Err(CliError::new(
            EXIT_SWEEP_FAILED,
            format!(
                "repro {}: failure reproduced: {}",
                bundle.cell_id,
                panic_text(payload)
            ),
        )),
        Ok(Err(e)) => {
            diag!(
                Level::Info,
                "repro {}: typed engine failure reproduced",
                bundle.cell_id
            );
            Err(e.into())
        }
        Ok(Ok(outcome)) => {
            diag!(
                Level::Info,
                "repro {}: ran to completion without reproducing the failure \
                 (events {}, arrivals {}, completed {})",
                bundle.cell_id,
                outcome.events,
                outcome.arrivals,
                outcome.records.len()
            );
            Ok(())
        }
    }
}

/// Scratch directory for chaos executor checkpoints/traces.
fn chaos_work_dir() -> Result<PathBuf, CliError> {
    let work = std::env::temp_dir().join(format!("btfluid-chaos-{}", std::process::id()));
    fs::create_dir_all(&work)?;
    Ok(work)
}

/// `btfluid chaos` — the deterministic chaos sweep: generate seeded
/// random plans, execute each against the invariant catalog, shrink any
/// violation to a minimal failing plan, and write replayable bundles.
fn cmd_chaos(opts: &Options) -> Result<(), CliError> {
    let seed = opts.get_u64("seed", 2006)?;
    let cells = opts.get_u64("cells", 100)?;
    let bundles = opts.get("bundles").unwrap_or("chaos-bundles").to_string();
    let work = chaos_work_dir()?;

    let plans = if opts.has("expect-fail") {
        diag!(
            Level::Info,
            "chaos: expect-fail canary — silently corrupted checkpoint \
             writes; the resume must catch it via the snapshot checksum"
        );
        vec![btfluid_chaos::canary(seed)]
    } else {
        btfluid_chaos::generate(seed, cells)
    };

    let mut failing: Vec<(btfluid_chaos::ChaosPlan, btfluid_chaos::Verdict)> = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        let verdict = btfluid_chaos::run_plan(plan, &work);
        if !verdict.clean() {
            diag!(
                Level::Warn,
                "chaos plan {}: {} violation(s): {}",
                plan.index,
                verdict.violations.len(),
                verdict
                    .violations
                    .iter()
                    .map(|v| v.invariant.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            failing.push((plan.clone(), verdict));
        }
        if (i + 1) % 20 == 0 {
            diag!(Level::Info, "chaos: {}/{} plans run", i + 1, plans.len());
        }
    }
    println!(
        "chaos: seed {seed}, {} plan(s), {} violating",
        plans.len(),
        failing.len()
    );
    if failing.is_empty() {
        return Ok(());
    }

    // Shrink and bundle the first few failures (each shrink evaluation is
    // a full re-run, so keep the tail bounded).
    const MAX_BUNDLES: usize = 4;
    const SHRINK_BUDGET: u32 = 60;
    for (plan, _) in failing.iter().take(MAX_BUNDLES) {
        let (small, evals) = btfluid_chaos::shrink(
            plan,
            |cand| !btfluid_chaos::run_plan(cand, &work).clean(),
            SHRINK_BUDGET,
        );
        let verdict = btfluid_chaos::run_plan(&small, &work);
        let bundle = btfluid_chaos::ChaosBundle {
            master_seed: seed,
            plan: small,
            violations: verdict.violations,
            shrink_evals: evals,
            flight: verdict.flight,
        };
        let dir = Path::new(&bundles).join(format!("plan-{}", plan.index));
        bundle
            .write(&dir)
            .map_err(|e| CliError::new(1, format!("chaos: writing {}: {e}", dir.display())))?;
        println!(
            "chaos: plan {} shrunk ({} rule(s) left, {} eval(s)) -> {}",
            plan.index,
            bundle.plan.script.rules.len(),
            evals,
            dir.display()
        );
    }
    if failing.len() > MAX_BUNDLES {
        diag!(
            Level::Warn,
            "chaos: only the first {MAX_BUNDLES} of {} failing plans were \
             shrunk and bundled",
            failing.len()
        );
    }
    Err(CliError::new(
        EXIT_INVARIANT,
        format!(
            "chaos: {}/{} plan(s) violated invariants (seed {seed}; bundles \
             under {bundles})",
            failing.len(),
            plans.len()
        ),
    ))
}

/// Replays a chaos bundle: re-run the shrunk plan and report whether the
/// recorded violation reproduces (exit 6, mirroring cell repro) or is
/// gone (exit 0).
fn repro_chaos(dir: &Path) -> Result<(), CliError> {
    let bundle = btfluid_chaos::ChaosBundle::read(dir)
        .map_err(|e| CliError::new(1, format!("repro: {e}")))?;
    diag!(
        Level::Info,
        "repro chaos plan {} (master seed {}): recorded {} violation(s), \
         shrunk in {} eval(s)",
        bundle.plan.index,
        bundle.master_seed,
        bundle.violations.len(),
        bundle.shrink_evals
    );
    let verdict = btfluid_chaos::run_plan(&bundle.plan, &chaos_work_dir()?);
    if verdict.clean() {
        println!(
            "chaos plan {}: ran clean; the recorded violation did not reproduce",
            bundle.plan.index
        );
        return Ok(());
    }
    for v in &verdict.violations {
        println!("violation[{}]: {}", v.invariant, v.detail);
    }
    let same = verdict
        .violations
        .iter()
        .any(|v| bundle.violations.iter().any(|r| r.invariant == v.invariant));
    Err(CliError::new(
        EXIT_SWEEP_FAILED,
        format!(
            "repro: chaos plan {} reproduced {} violation(s){}",
            bundle.plan.index,
            verdict.violations.len(),
            if same {
                " (same invariant class as recorded)"
            } else {
                " (different invariant class than recorded)"
            }
        ),
    ))
}

/// One `sample` record from a trace, decoded.
struct TraceSample {
    t: f64,
    events: u64,
    downloaders: Vec<u64>,
    download_pairs: Vec<u64>,
    seed_pairs: Vec<u64>,
    rho_mean: Option<f64>,
    delta_mean: Option<f64>,
    counters: Counters,
}

/// One trace segment: a `meta` record plus every `sample`/`span`/`end`
/// record up to the next `meta` (one engine run).
struct TraceSegment {
    label: String,
    exact_rates: bool,
    aggregate: bool,
    samples: Vec<TraceSample>,
    /// `(name, micros, t)` — `t` is the simulated time the span was
    /// emitted at (present on hybrid handoff spans, absent on plain ones).
    spans: Vec<(String, u64, Option<f64>)>,
    end: Option<(f64, Counters)>,
}

impl TraceSegment {
    /// The run's closing counters: the end record's, or the last
    /// sample's for a truncated trace.
    fn final_counters(&self) -> Counters {
        self.end
            .as_ref()
            .map(|(_, c)| *c)
            .or_else(|| self.samples.last().map(|s| s.counters))
            .unwrap_or_default()
    }

    /// Simulated times of hybrid regime switches, in trace order (the
    /// driver emits one timestamped `handoff:*` span per switch).
    fn handoff_times(&self) -> Vec<f64> {
        self.spans
            .iter()
            .filter(|(name, _, _)| name.starts_with("handoff:"))
            .filter_map(|(_, _, t)| *t)
            .collect()
    }

    /// Appends human-readable anomaly descriptions for this segment.
    fn detect_anomalies(&self, out: &mut Vec<String>) {
        let label = &self.label;
        if self.end.is_none() {
            out.push(format!(
                "{label}: truncated trace (no end record — the run did not finish)"
            ));
        }
        let mut ts: Vec<f64> = self.samples.iter().map(|s| s.t).collect();
        if let Some((t, _)) = self.end {
            ts.push(t);
        }
        // A NaN timestamp compares as `None` and counts as non-monotone.
        let ordered = |w: &[f64]| {
            matches!(
                w[0].partial_cmp(&w[1]),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            )
        };
        if ts.windows(2).any(|w| !ordered(w)) {
            out.push(format!("{label}: non-monotone clock across samples"));
        }
        if self.aggregate {
            // Aggregate-mode cost health: per-peer rate recomputes are
            // structurally absent (the whole point of the mode), so the
            // incremental heuristic below would see zero recomputes and
            // report nothing even on a degenerating run. The right counter
            // here is `agg_rate_updates` — group-rate refreshes per event.
            // The group count is O(K²), independent of the swarm, so the
            // marginal updates-per-event cost is NOT normalized by live
            // download pairs: on a healthy run it is flat on its own, and
            // growth means group invalidation is fanning out.
            let mut costs = Vec::new();
            for w in self.samples.windows(2) {
                let de = w[1].events.saturating_sub(w[0].events);
                let dr = w[1]
                    .counters
                    .agg_rate_updates
                    .saturating_sub(w[0].counters.agg_rate_updates);
                if de > 0 {
                    costs.push(dr as f64 / de as f64);
                }
            }
            let third = costs.len() / 3;
            if third >= 8 {
                let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
                let early = mean(&costs[..third]);
                let late = mean(&costs[costs.len() - third..]);
                if early > 0.0 && late > 4.0 * early {
                    out.push(format!(
                        "{label}: group-rate cost drift (per-event aggregate \
                         update cost grew {:.1}× over the run in aggregate mode)",
                        late / early
                    ));
                }
            }
            let c = self.final_counters();
            if c.rate_recomputes > 0 {
                out.push(format!(
                    "{label}: {} per-peer rate recomputes in aggregate mode \
                     (the per-peer cache should be idle)",
                    c.rate_recomputes
                ));
            }
        } else if !self.exact_rates {
            // Self-calibrating rate-cache health check: the marginal
            // recompute cost per event, normalized by the live download
            // pairs it could touch, stays flat over a healthy run (the
            // dirty set tracks the event, not the swarm). Absolute
            // thresholds don't work here — MFCD legitimately recomputes
            // more pairs per event than MTSD by an order of magnitude —
            // but a cost that *grows* several-fold over the run's own
            // history means lazy invalidation is degenerating.
            let mut costs = Vec::new();
            for w in self.samples.windows(2) {
                let de = w[1].events.saturating_sub(w[0].events);
                let dr = w[1]
                    .counters
                    .rate_recomputes
                    .saturating_sub(w[0].counters.rate_recomputes);
                let pairs: u64 = w[1].download_pairs.iter().sum();
                if de > 0 && pairs > 0 {
                    costs.push(dr as f64 / de as f64 / pairs as f64);
                }
            }
            let third = costs.len() / 3;
            if third >= 8 {
                let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
                let early = mean(&costs[..third]);
                let late = mean(&costs[costs.len() - third..]);
                if early > 0.0 && late > 4.0 * early {
                    out.push(format!(
                        "{label}: rate-cache cost drift (per-event recompute cost \
                         grew {:.1}× over the run in incremental mode)",
                        late / early
                    ));
                }
            }
        }
        if self.samples.len() >= 3 {
            // A class whose users are *present* most of the run but never
            // form a single seeding pair never completes a download —
            // starvation. (A class with zero downloaders throughout simply
            // had no arrivals; that is a workload fact, not an anomaly.)
            let k = self
                .samples
                .iter()
                .map(|s| s.downloaders.len())
                .max()
                .unwrap_or(0);
            let n = self.samples.len();
            for class in 0..k {
                let present = self
                    .samples
                    .iter()
                    .filter(|s| s.downloaders.get(class).copied().unwrap_or(0) > 0)
                    .count();
                let ever_seeded = self
                    .samples
                    .iter()
                    .any(|s| s.seed_pairs.get(class).copied().unwrap_or(0) > 0);
                if present * 2 >= n && !ever_seeded {
                    out.push(format!(
                        "{label}: class {} starved (downloaders in {present} of \
                         {n} samples but no seed pair ever formed)",
                        class + 1
                    ));
                }
            }
        }
        // Hybrid regime thrash: the hysteresis band exists precisely so
        // that switches are rare, so the yardstick is the run's own
        // median dwell between switches. Four consecutive switches packed
        // inside one median dwell means the driver is flip-flopping —
        // burning handoff cost without either engine settling.
        let switches = self.handoff_times();
        if switches.len() >= 4 {
            let mut dwells: Vec<f64> = switches.windows(2).map(|w| w[1] - w[0]).collect();
            dwells.sort_by(f64::total_cmp);
            let median = dwells[dwells.len() / 2];
            if let Some(w) = switches.windows(4).find(|w| w[3] - w[0] <= median) {
                out.push(format!(
                    "{label}: hybrid regime thrash (4 switches within {:.3} time \
                     units at t = {:.1}; median dwell {median:.3})",
                    w[3] - w[0],
                    w[0]
                ));
            }
        }
    }
}

/// Decodes a trace record's embedded `counters` object (absent fields
/// read as zero, tolerating older traces).
fn trace_counters(v: Option<&Json>) -> Counters {
    let g = |k: &str| v.and_then(|c| c.get(k)).and_then(Json::as_u64).unwrap_or(0);
    Counters {
        events_popped: g("events_popped"),
        stale_discards: g("stale_discards"),
        heap_peak: g("heap_peak"),
        rate_recomputes: g("rate_recomputes"),
        rate_clean_hits: g("rate_clean_hits"),
        snapshots_taken: g("snapshots_taken"),
        snapshot_bytes: g("snapshot_bytes"),
        snapshot_micros: g("snapshot_micros"),
        agg_rate_updates: g("agg_rate_updates"),
        agg_samples: g("agg_samples"),
    }
}

/// Decodes a JSON array of non-negative integers.
fn trace_u64_arr(v: Option<&Json>) -> Vec<u64> {
    v.and_then(Json::as_arr)
        .map(|xs| xs.iter().map(|x| x.as_u64().unwrap_or(0)).collect())
        .unwrap_or_default()
}

/// Per-class trajectory export: one CSV row per sample, classes padded
/// to the widest segment.
fn trajectories_csv(segments: &[TraceSegment]) -> String {
    let k = segments
        .iter()
        .flat_map(|seg| seg.samples.iter())
        .map(|s| s.downloaders.len().max(s.seed_pairs.len()))
        .max()
        .unwrap_or(0);
    let mut out = String::from("run,t,events,rho_mean,delta_mean");
    for i in 1..=k {
        out.push_str(&format!(",downloaders_{i}"));
    }
    for i in 1..=k {
        out.push_str(&format!(",seed_pairs_{i}"));
    }
    out.push('\n');
    let opt = |v: Option<f64>| v.map(|x| format!("{x}")).unwrap_or_default();
    for seg in segments {
        for s in &seg.samples {
            out.push_str(&format!(
                "{},{},{},{},{}",
                seg.label,
                s.t,
                s.events,
                opt(s.rho_mean),
                opt(s.delta_mean)
            ));
            for i in 0..k {
                out.push(',');
                if let Some(d) = s.downloaders.get(i) {
                    out.push_str(&d.to_string());
                }
            }
            for i in 0..k {
                out.push(',');
                if let Some(d) = s.seed_pairs.get(i) {
                    out.push_str(&d.to_string());
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Summarizes a `flightrec v1` dump: record mix, last handoff, last
/// checkpoint, and a staleness flag when the newest record predates the
/// failure time stamped into the meta line.
fn inspect_flightrec(path: &str, body: &str, opts: &Options) -> Result<(), CliError> {
    let mut lines = body.lines().filter(|l| !l.trim().is_empty());
    let meta = Json::parse(lines.next().expect("caller checked the meta line"))
        .map_err(|e| format!("inspect: {path}:1: {e}"))?;
    let version = meta.get("version").and_then(Json::as_u64).unwrap_or(0);
    if version != u64::from(FLIGHTREC_VERSION) {
        diag!(
            Level::Warn,
            "inspect: {path}: flightrec version {version}; this build reads \
             v{FLIGHTREC_VERSION}"
        );
    }
    let capacity = meta.get("capacity").and_then(Json::as_u64).unwrap_or(0);
    let total = meta.get("total").and_then(Json::as_u64).unwrap_or(0);
    let dropped = meta.get("dropped").and_then(Json::as_u64).unwrap_or(0);
    let failure_t = meta.get("failure_t").and_then(Json::as_f64);

    // (kind, count, last t, last events, last a, last b) per record kind,
    // in first-seen order; the dump is oldest-first so "last" is newest.
    let mut mix: Vec<(String, u64, f64, u64, u64, u64)> = Vec::new();
    let mut newest_t = f64::NEG_INFINITY;
    let mut pop_codes: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut records = 0u64;
    for (idx, line) in lines.enumerate() {
        let v = Json::parse(line).map_err(|e| format!("inspect: {path}:{}: {e}", idx + 2))?;
        let Some(k) = v.get("k").and_then(Json::as_str).map(str::to_string) else {
            return Err(format!("inspect: {path}:{}: record without 'k'", idx + 2).into());
        };
        let t = v.get("t").and_then(Json::as_f64).unwrap_or(f64::NAN);
        let ev = v.get("ev").and_then(Json::as_u64).unwrap_or(0);
        let a = v.get("a").and_then(Json::as_u64).unwrap_or(0);
        let b = v.get("b").and_then(Json::as_u64).unwrap_or(0);
        records += 1;
        if t.is_finite() && t > newest_t {
            newest_t = t;
        }
        if k == "pop" {
            *pop_codes.entry(a).or_insert(0) += 1;
        }
        match mix.iter_mut().find(|row| row.0 == k) {
            Some(row) => {
                row.1 += 1;
                (row.2, row.3, row.4, row.5) = (t, ev, a, b);
            }
            None => mix.push((k, 1, t, ev, a, b)),
        }
    }

    let mut t = Table::new(
        format!(
            "flight recording {path} — {records} of {total} record(s) \
             retained (capacity {capacity}, dropped {dropped})"
        ),
        vec!["kind", "count", "last t", "last events", "last a", "last b"],
    );
    for (k, n, last_t, last_ev, a, b) in &mix {
        t.push_row(vec![
            k.clone(),
            format!("{n}"),
            format!("{last_t:.3}"),
            format!("{last_ev}"),
            format!("{a}"),
            format!("{b}"),
        ]);
    }
    emit(&t, opts)?;

    const EVENT_NAMES: [&str; 7] = [
        "end",
        "arrival",
        "completion",
        "seed-expiry",
        "epoch",
        "abort",
        "control",
    ];
    let pops: Vec<String> = pop_codes
        .iter()
        .map(|(code, n)| {
            let name = EVENT_NAMES
                .get(usize::try_from(*code).unwrap_or(usize::MAX))
                .copied()
                .unwrap_or("?");
            format!("{name} × {n}")
        })
        .collect();
    if !pops.is_empty() {
        diag!(Level::Info, "event mix: {}", pops.join(", "));
    }
    if let Some(row) = mix.iter().find(|row| row.0 == "handoff") {
        diag!(
            Level::Info,
            "last handoff: t = {:.3}, {} (population {})",
            row.2,
            if row.4 == 0 {
                "DES -> fluid"
            } else {
                "fluid -> DES"
            },
            row.5
        );
    }
    if let Some(row) = mix.iter().find(|row| row.0 == "checkpoint") {
        diag!(
            Level::Info,
            "last checkpoint: t = {:.3} at {} events ({} snapshot bytes)",
            row.2,
            row.3,
            row.4
        );
    }
    if let Some(ft) = failure_t {
        // `failure_t` is parsed from a message formatted at 3 decimals,
        // so allow half an ulp of that rounding before calling it stale.
        if newest_t.is_finite() && newest_t < ft - 5e-4 {
            println!(
                "WARNING: stale dump — newest record at t = {newest_t:.3} predates \
                 the failure at t = {ft:.3}; the recorder stopped observing before \
                 the quarantine fired"
            );
        } else {
            diag!(
                Level::Info,
                "dump covers the failure time (newest t = {newest_t:.3} >= {ft:.3})"
            );
        }
    }
    Ok(())
}

/// `btfluid inspect <trace.jsonl>` — summarize a telemetry trace.
fn cmd_inspect(rest: &[String]) -> Result<(), CliError> {
    let Some(path) = rest.first() else {
        return Err("inspect: missing trace path (a scenario --trace JSONL file)".into());
    };
    let opts = Options::parse(&rest[1..])?;
    let body = fs::read_to_string(path)?;
    // A flight-recorder dump leads with its own schema marker; route it
    // to the dedicated summarizer before assuming a telemetry trace.
    if let Some(first) = body.lines().find(|l| !l.trim().is_empty()) {
        if let Ok(head) = Json::parse(first) {
            if head.get("schema").and_then(Json::as_str) == Some(FLIGHTREC_SCHEMA) {
                return inspect_flightrec(path, &body, &opts);
            }
        }
    }
    let mut segments: Vec<TraceSegment> = Vec::new();
    for (idx, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("inspect: {path}:{}: {e}", idx + 1))?;
        let Some(kind) = v.get("kind").and_then(Json::as_str).map(str::to_string) else {
            return Err(format!("inspect: {path}:{}: record without a kind", idx + 1).into());
        };
        if kind == "meta" {
            let schema = v.get("schema").and_then(Json::as_str).unwrap_or("?");
            if schema != TRACE_SCHEMA {
                return Err(format!(
                    "inspect: {path}:{}: schema '{schema}' is not '{TRACE_SCHEMA}'",
                    idx + 1
                )
                .into());
            }
            let version = v.get("version").and_then(Json::as_u64).unwrap_or(0);
            if version != u64::from(TRACE_VERSION) {
                diag!(
                    Level::Warn,
                    "inspect: {path}: trace version {version}; this build reads v{TRACE_VERSION}"
                );
            }
            segments.push(TraceSegment {
                label: v
                    .get("label")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                exact_rates: v
                    .get("exact_rates")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
                aggregate: v.get("aggregate").and_then(Json::as_bool).unwrap_or(false),
                samples: Vec::new(),
                spans: Vec::new(),
                end: None,
            });
            continue;
        }
        let Some(seg) = segments.last_mut() else {
            return Err(format!(
                "inspect: {path}:{}: '{kind}' record before any meta — not a btfluid trace?",
                idx + 1
            )
            .into());
        };
        match kind.as_str() {
            "sample" => seg.samples.push(TraceSample {
                t: v.get("t").and_then(Json::as_f64).unwrap_or(f64::NAN),
                events: v.get("events").and_then(Json::as_u64).unwrap_or(0),
                downloaders: trace_u64_arr(v.get("downloaders")),
                download_pairs: trace_u64_arr(v.get("download_pairs")),
                seed_pairs: trace_u64_arr(v.get("seed_pairs")),
                rho_mean: v.get("rho_mean").and_then(Json::as_f64),
                delta_mean: v.get("delta_mean").and_then(Json::as_f64),
                counters: trace_counters(v.get("counters")),
            }),
            "span" => seg.spans.push((
                v.get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                v.get("micros").and_then(Json::as_u64).unwrap_or(0),
                v.get("t").and_then(Json::as_f64),
            )),
            "end" => {
                seg.end = Some((
                    v.get("t").and_then(Json::as_f64).unwrap_or(f64::NAN),
                    trace_counters(v.get("counters")),
                ))
            }
            "profile" => {
                let events = v.get("events").and_then(Json::as_u64).unwrap_or(0).max(1);
                for ph in v.get("phases").and_then(Json::as_arr).unwrap_or(&[]) {
                    let name = ph.get("name").and_then(Json::as_str).unwrap_or("?");
                    let calls = ph.get("calls").and_then(Json::as_u64).unwrap_or(0);
                    let self_ns = ph.get("self_ns").and_then(Json::as_u64).unwrap_or(0);
                    diag!(
                        Level::Info,
                        "{}: profile {name}: {calls} call(s), self {:.3} ms, {:.0} ns/event",
                        seg.label,
                        self_ns as f64 / 1e6,
                        self_ns as f64 / events as f64
                    );
                }
            }
            other => diag!(
                Level::Warn,
                "inspect: {path}:{}: unknown record kind '{other}' (skipped)",
                idx + 1
            ),
        }
    }
    if segments.is_empty() {
        return Err(format!("inspect: {path}: no meta records — not a btfluid trace").into());
    }

    let mut t = Table::new(
        format!("trace {path} — {} run(s)", segments.len()),
        vec![
            "run",
            "samples",
            "spans",
            "events",
            "stale",
            "heap peak",
            "recomputes",
            "recomp/ev",
            "snapshots",
        ],
    );
    for seg in &segments {
        let c = seg.final_counters();
        let per_event = c.rate_recomputes as f64 / c.events_popped.max(1) as f64;
        t.push_row(vec![
            seg.label.clone(),
            format!("{}", seg.samples.len()),
            format!("{}", seg.spans.len()),
            format!("{}", c.events_popped),
            format!("{}", c.stale_discards),
            format!("{}", c.heap_peak),
            format!("{}", c.rate_recomputes),
            format!("{per_event:.1}"),
            format!("{}", c.snapshots_taken),
        ]);
    }
    emit(&t, &opts)?;

    for seg in &segments {
        let mut totals: Vec<(String, u64, u64)> = Vec::new();
        for (name, micros, _) in &seg.spans {
            match totals.iter_mut().find(|row| &row.0 == name) {
                Some(row) => {
                    row.1 += 1;
                    row.2 += micros;
                }
                None => totals.push((name.clone(), 1, *micros)),
            }
        }
        for (name, n, micros) in totals {
            diag!(
                Level::Info,
                "{}: span {name}: {n} × totalling {micros} µs",
                seg.label
            );
        }
        let handoffs = seg.handoff_times();
        if !handoffs.is_empty() {
            let to_fluid = seg
                .spans
                .iter()
                .filter(|(name, _, _)| name == "handoff:des->fluid")
                .count();
            println!(
                "{}: {} hybrid handoff(s): {} →fluid, {} →discrete",
                seg.label,
                handoffs.len(),
                to_fluid,
                handoffs.len() - to_fluid
            );
        }
    }

    let mut anomalies = Vec::new();
    for seg in &segments {
        seg.detect_anomalies(&mut anomalies);
    }
    if anomalies.is_empty() {
        println!("no anomalies detected");
    } else {
        for a in &anomalies {
            println!("anomaly: {a}");
        }
    }

    if let Some(csv) = opts.get("csv-out") {
        check_clobber(csv, &opts)?;
        fs::write(csv, trajectories_csv(&segments))?;
        diag!(Level::Info, "wrote {csv}");
    }
    Ok(())
}

/// The arg parser's own structural fuzz target, registered here because
/// `args.rs` is CLI-private: random token soup must never panic the
/// parser, and every accepted line must round-trip through the typed
/// getters without error.
fn cli_arg_round_trip(cfg: &btfluid_oracle::OracleConfig) -> Result<String, String> {
    use btfluid_numkit::rng::{RngCore, Xoshiro256StarStar};
    let mut rng = Xoshiro256StarStar::stream(cfg.seed, 9);
    // Exact round-trip: numbers formatted, parsed, and read back.
    for trial in 0..64u64 {
        let p = (rng.next_u64() % 1000) as f64 / 1000.0;
        let seed = rng.next_u64() % 1_000_000;
        let argv = vec![
            format!("--p"),
            format!("{p}"),
            format!("--seed"),
            format!("{seed}"),
            format!("--exact"),
        ];
        let opts = Options::parse(&argv)
            .map_err(|e| format!("trial {trial}: valid argv rejected: {e}"))?;
        let p_back = opts.get_f64("p", f64::NAN).map_err(|e| e.to_string())?;
        let s_back = opts.get_u64("seed", 0).map_err(|e| e.to_string())?;
        if p_back.to_bits() != p.to_bits() || s_back != seed {
            return Err(format!(
                "trial {trial}: round-trip drift (p {p} → {p_back}, seed {seed} → {s_back})"
            ));
        }
        if !opts.has("exact") {
            return Err(format!("trial {trial}: flag --exact lost in parsing"));
        }
    }
    // Token soup: junk must produce typed errors, never a panic or a
    // silently-accepted unknown option.
    let vocab = [
        "--p",
        "--seed",
        "--horizon",
        "--frobnicate",
        "--scheme",
        "mtsd",
        "abc",
        "1e6",
        "-3",
        "0.5,oops",
        "--",
        "--exact",
        "--records",
    ];
    let mut rejected = 0usize;
    for trial in 0..256u64 {
        let n = 1 + (rng.next_u64() % 5) as usize;
        let argv: Vec<String> = (0..n)
            .map(|_| vocab[(rng.next_u64() % vocab.len() as u64) as usize].to_string())
            .collect();
        let verdict =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| Options::parse(&argv)));
        match verdict {
            Err(_) => return Err(format!("trial {trial}: parser PANICKED on {argv:?}")),
            Ok(Err(_)) => rejected += 1,
            Ok(Ok(opts)) => {
                if opts.has("frobnicate") {
                    return Err(format!("trial {trial}: unknown --frobnicate accepted"));
                }
            }
        }
    }
    Ok(format!(
        "64 argv round-trips bit-exact; {rejected}/256 junk lines rejected with typed errors"
    ))
}

fn cmd_selfcheck(opts: &Options) -> Result<(), CliError> {
    let cfg = btfluid_oracle::OracleConfig {
        seed: opts.get_u64("seed", 42)?,
        full: opts.has("full"),
    };

    if opts.has("expect-fail") {
        // Mutation mode: seed a deliberate rate-cache corruption and
        // demand the audit catch it. Detection maps to the invariant exit
        // code (4); a miss is a usage-class failure of the oracle itself.
        return match btfluid_oracle::differential::mutation_canary(&cfg) {
            Ok(detail) => Err(CliError::new(
                crate::errors::EXIT_INVARIANT,
                format!("expect-fail: {detail}"),
            )),
            Err(detail) => Err(CliError::new(
                crate::errors::EXIT_USAGE,
                format!("expect-fail: detection MISSED — {detail}"),
            )),
        };
    }

    let mut report = btfluid_oracle::run_all(&cfg);
    // Append the CLI-local check so the table covers the whole surface.
    let started = std::time::Instant::now();
    let result = cli_arg_round_trip(&cfg);
    let wall_ms = started.elapsed().as_millis() as u64;
    let (passed, detail) = match result {
        Ok(d) => (true, d),
        Err(d) => (false, d),
    };
    report.outcomes.push(btfluid_oracle::CheckOutcome {
        name: "cli-arg-round-trip",
        paper_ref: "CLI contract (parse → getters, no panic)",
        passed,
        detail,
        wall_ms,
    });

    let mut table = Table::new(
        format!(
            "selfcheck ({} tier, seed {})",
            if cfg.full { "full" } else { "quick" },
            cfg.seed
        ),
        vec!["check", "pins", "status", "ms", "detail"],
    );
    for o in &report.outcomes {
        table.push_row(vec![
            o.name.to_string(),
            o.paper_ref.to_string(),
            if o.passed { "ok".into() } else { "FAIL".into() },
            o.wall_ms.to_string(),
            o.detail.clone(),
        ]);
    }
    emit(&table, opts)?;
    println!(
        "selfcheck: {}/{} checks passed in {} ms",
        report.outcomes.iter().filter(|o| o.passed).count(),
        report.outcomes.len(),
        report.wall_ms
    );
    if report.outcomes.iter().any(|o| !o.passed) {
        let failed: Vec<&str> = report
            .outcomes
            .iter()
            .filter(|o| !o.passed)
            .map(|o| o.name)
            .collect();
        return Err(CliError::new(
            crate::errors::EXIT_INVARIANT,
            format!("selfcheck failed: {failed:?}"),
        ));
    }
    Ok(())
}

fn cmd_all(opts: &Options) -> Result<(), CliError> {
    cmd_fig2(opts)?;
    cmd_fig3(opts)?;
    cmd_fig4a(opts)?;
    cmd_fig4bc(opts, 0.9)?;
    cmd_fig4bc(opts, 0.1)?;
    cmd_transient(opts)?;
    cmd_ablation(opts)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::EXIT_CONFIG;

    #[test]
    fn scheme_parsing() {
        assert_eq!(parse_scheme("mtsd").unwrap(), SchemeKind::Mtsd);
        assert_eq!(parse_scheme("mtcd").unwrap(), SchemeKind::Mtcd);
        assert_eq!(parse_scheme("mfcd").unwrap(), SchemeKind::Mfcd);
        assert_eq!(
            parse_scheme("cmfsd:0.3").unwrap(),
            SchemeKind::Cmfsd { rho: 0.3 }
        );
        assert_eq!(
            parse_scheme("cmfsd").unwrap(),
            SchemeKind::Cmfsd { rho: 0.0 }
        );
        assert!(parse_scheme("cmfsd:x").is_err());
        assert!(parse_scheme("ftp").is_err());
    }

    #[test]
    fn dispatch_help_and_unknown() {
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&["--help".into()]).is_ok());
        assert!(dispatch(&["frobnicate".into()]).is_err());
    }

    #[test]
    fn fig2_runs_small() {
        let argv = vec!["fig2".into(), "--points".into(), "3".into(), "--csv".into()];
        assert!(dispatch(&argv).is_ok());
    }

    #[test]
    fn fig3_runs() {
        let argv = vec!["fig3".into(), "--p".into(), "0.5".into()];
        assert!(dispatch(&argv).is_ok());
    }

    #[test]
    fn fig4bc_runs() {
        assert!(dispatch(&["fig4b".into()]).is_ok());
        assert!(dispatch(&["fig4c".into()]).is_ok());
    }

    #[test]
    fn scenario_list_runs() {
        assert!(dispatch(&["scenario".into(), "list".into()]).is_ok());
    }

    #[test]
    fn scenario_requires_known_name() {
        assert!(dispatch(&["scenario".into()]).is_err());
        assert!(dispatch(&["scenario".into(), "nope".into()]).is_err());
    }

    #[test]
    fn scenario_smoke_single_scheme() {
        let argv = vec![
            "scenario".into(),
            "flash_crowd".into(),
            "--smoke".into(),
            "--scheme".into(),
            "mtcd".into(),
            "--seed".into(),
            "5".into(),
            "--csv".into(),
        ];
        assert!(dispatch(&argv).is_ok());
    }

    #[test]
    fn scenario_rejects_bad_scale() {
        let argv = vec![
            "scenario".into(),
            "diurnal".into(),
            "--scale".into(),
            "0".into(),
        ];
        assert!(dispatch(&argv).is_err());
    }

    #[test]
    fn inject_spec_parses() {
        assert_eq!(parse_inject(None).unwrap(), None);
        assert_eq!(
            parse_inject(Some("mtsd-s7@120")).unwrap(),
            Some(("mtsd-s7".into(), 120))
        );
        assert_eq!(
            parse_inject(Some("mtsd-s7")).unwrap(),
            Some(("mtsd-s7".into(), 50))
        );
        assert!(parse_inject(Some("cell@lots")).is_err());
    }

    /// End-to-end sweep robustness: an injected panic quarantines exactly
    /// one cell (exit 6), the repro bundle replays the failure (exit 6),
    /// `--resume` reruns only the missing cell and the sweep completes, and
    /// a stale manifest without `--resume` is refused (exit 7).
    #[test]
    fn sweep_quarantine_repro_resume_cycle() {
        let dir = std::env::temp_dir().join("btfluid_cli_sweep_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("sweep.jsonl");
        let bundles = dir.join("bundles");
        let base = vec![
            "sweep".into(),
            "--manifest".into(),
            manifest.to_str().unwrap().to_string(),
            "--bundles".into(),
            bundles.to_str().unwrap().to_string(),
            "--schemes".into(),
            "mtsd".into(),
            "--reps".into(),
            "2".into(),
            "--horizon".into(),
            "120".into(),
            "--seed".into(),
            "42".into(),
            "--retries".into(),
            "0".into(),
            "--csv".into(),
        ];

        let mut first = base.clone();
        first.extend(["--inject-panic".into(), "mtsd-s43@20".into()]);
        let err = dispatch(&first).unwrap_err();
        assert_eq!(err.code, EXIT_SWEEP_FAILED, "{}", err.message);
        let bundle = harness::bundle_path(&bundles, "mtsd-s43");
        assert!(bundle.join("repro.json").is_file(), "bundle not written");

        // The bundle must replay the recorded panic.
        let err = dispatch(&["repro".into(), bundle.to_str().unwrap().to_string()]).unwrap_err();
        assert_eq!(err.code, EXIT_SWEEP_FAILED, "{}", err.message);
        assert!(err.message.contains("reproduced"), "{}", err.message);

        // A second sweep against the same manifest needs --resume.
        let err = dispatch(&base).unwrap_err();
        assert_eq!(err.code, EXIT_CLOBBER, "{}", err.message);

        // --resume (without the injection) reruns only the failed cell.
        let mut resumed = base.clone();
        resumed.push("--resume".into());
        dispatch(&resumed).unwrap();
        let journal = std::fs::read_to_string(&manifest).unwrap();
        assert_eq!(
            journal.matches("\"id\":\"mtsd-s42\"").count(),
            1,
            "the finished cell must not rerun:\n{journal}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// End-to-end observability: a traced scenario line-up writes one
    /// JSONL segment per scheme, `inspect` summarizes it, and `--csv-out`
    /// exports the per-class trajectories.
    #[test]
    fn scenario_trace_then_inspect_roundtrip() {
        let dir = std::env::temp_dir().join("btfluid_cli_trace_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("out.jsonl");
        let argv = vec![
            "scenario".into(),
            "flash_crowd".into(),
            "--smoke".into(),
            "--seed".into(),
            "5".into(),
            "--trace".into(),
            trace.to_str().unwrap().to_string(),
            "--csv".into(),
        ];
        dispatch(&argv).unwrap();
        assert!(trace.is_file(), "trace not renamed into place");
        let body = std::fs::read_to_string(&trace).unwrap();
        assert_eq!(
            body.matches("\"kind\":\"meta\"").count(),
            5,
            "one meta segment per scheme in the line-up:\n{body}"
        );
        assert_eq!(body.matches("\"kind\":\"end\"").count(), 5);
        assert!(body.contains("\"schema\":\"btfluid-trace\""));
        assert!(body.contains("\"kind\":\"sample\""));

        // Re-running without --force must refuse to clobber the trace.
        // (Fresh thread: the per-invocation WRITTEN set is thread-local.)
        let reinvoke = argv.clone();
        std::thread::spawn(move || {
            let err = dispatch(&reinvoke).unwrap_err();
            assert_eq!(err.code, EXIT_CLOBBER, "{}", err.message);
        })
        .join()
        .unwrap();

        let csv = dir.join("traj.csv");
        let inspect = vec![
            "inspect".into(),
            trace.to_str().unwrap().to_string(),
            "--csv".into(),
            "--csv-out".into(),
            csv.to_str().unwrap().to_string(),
        ];
        dispatch(&inspect).unwrap();
        let traj = std::fs::read_to_string(&csv).unwrap();
        let header = traj.lines().next().unwrap();
        assert!(
            header.starts_with("run,t,events,rho_mean,delta_mean,downloaders_1"),
            "unexpected trajectory header: {header}"
        );
        assert!(header.contains("seed_pairs_1"));
        for label in ["MTSD", "MTCD", "MFCD", "CMFSD+Adapt"] {
            assert!(
                traj.lines().any(|l| l.starts_with(&format!("{label},"))),
                "no trajectory rows for {label}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// `inspect` rejects non-trace input instead of mis-summarizing it.
    #[test]
    fn inspect_rejects_non_traces() {
        assert!(dispatch(&["inspect".into()]).is_err());
        assert!(dispatch(&["inspect".into(), "/nonexistent/trace.jsonl".into()]).is_err());
        let dir = std::env::temp_dir().join("btfluid_cli_inspect_reject");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let bogus = dir.join("bogus.jsonl");
        std::fs::write(&bogus, "{\"kind\":\"sample\",\"t\":1}\n").unwrap();
        let err = dispatch(&["inspect".into(), bogus.to_str().unwrap().to_string()]).unwrap_err();
        assert!(err.message.contains("before any meta"), "{}", err.message);
        std::fs::write(
            &bogus,
            "{\"schema\":\"other\",\"version\":1,\"kind\":\"meta\"}\n",
        )
        .unwrap();
        let err = dispatch(&["inspect".into(), bogus.to_str().unwrap().to_string()]).unwrap_err();
        assert!(err.message.contains("schema"), "{}", err.message);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The anomaly heuristics flag truncation, clock regressions, cache
    /// cost drift, and starved classes — and stay quiet on a healthy
    /// trace where the same quantities are merely large but stable.
    #[test]
    fn inspect_anomaly_heuristics() {
        // One sample every 5 time units, 10 events per window, class 1
        // present throughout, class 2 present and seeding.
        let sample = |i: u64, recomputes: u64, seed_pairs: Vec<u64>| TraceSample {
            t: i as f64 * 5.0,
            events: 10 * (i + 1),
            downloaders: vec![2, 1],
            download_pairs: vec![2, 1],
            seed_pairs,
            rho_mean: None,
            delta_mean: None,
            counters: Counters {
                rate_recomputes: recomputes,
                ..Default::default()
            },
        };

        let mut recomputes = 0;
        let bad_samples: Vec<TraceSample> = (0..30)
            .map(|i| {
                // Flat marginal cost for the first 20 windows, then a
                // 50× blow-up — the drift detector's target.
                recomputes += if i < 20 { 10 } else { 500 };
                let mut s = sample(i, recomputes, vec![0, 1]);
                if i == 3 {
                    s.t = 2.0; // clock regression
                }
                s
            })
            .collect();
        let seg = TraceSegment {
            label: "X".into(),
            exact_rates: false,
            aggregate: false,
            samples: bad_samples,
            spans: Vec::new(),
            end: None,
        };
        let mut out = Vec::new();
        seg.detect_anomalies(&mut out);
        let all = out.join("\n");
        assert!(all.contains("truncated"), "{all}");
        assert!(all.contains("non-monotone"), "{all}");
        assert!(all.contains("cost drift"), "{all}");
        assert!(all.contains("class 1 starved"), "{all}");
        assert!(!all.contains("class 2 starved"), "{all}");

        // Same per-event cost in every window (large, but stable), every
        // present class eventually seeds, and the run finished.
        let mut recomputes = 0;
        let healthy_samples: Vec<TraceSample> = (0..30)
            .map(|i| {
                recomputes += 500;
                sample(i, recomputes, vec![1, 1])
            })
            .collect();
        let healthy = TraceSegment {
            label: "Y".into(),
            exact_rates: false,
            aggregate: false,
            samples: healthy_samples,
            spans: Vec::new(),
            end: Some((150.0, Counters::default())),
        };
        let mut out = Vec::new();
        healthy.detect_anomalies(&mut out);
        assert!(out.is_empty(), "healthy trace flagged: {out:?}");
    }

    /// In aggregate mode the drift detector reads `agg_rate_updates` (the
    /// per-peer recompute counter is structurally zero there), and any
    /// nonzero per-peer recompute count is itself flagged.
    #[test]
    fn inspect_anomaly_heuristics_aggregate() {
        let sample = |i: u64, agg_updates: u64, recomputes: u64| TraceSample {
            t: i as f64 * 5.0,
            events: 10 * (i + 1),
            downloaders: vec![2, 1],
            download_pairs: vec![2, 1],
            seed_pairs: vec![1, 1],
            rho_mean: None,
            delta_mean: None,
            counters: Counters {
                agg_rate_updates: agg_updates,
                rate_recomputes: recomputes,
                ..Default::default()
            },
        };

        // Flat group-update cost for 20 windows, then a 50× blow-up:
        // invisible to the incremental heuristic (rate_recomputes stays
        // zero), caught by the aggregate one.
        let mut updates = 0;
        let drifting: Vec<TraceSample> = (0..30)
            .map(|i| {
                updates += if i < 20 { 10 } else { 500 };
                sample(i, updates, 0)
            })
            .collect();
        let seg = TraceSegment {
            label: "A".into(),
            exact_rates: false,
            aggregate: true,
            samples: drifting,
            spans: Vec::new(),
            end: Some((
                150.0,
                Counters {
                    agg_rate_updates: updates,
                    ..Default::default()
                },
            )),
        };
        let mut out = Vec::new();
        seg.detect_anomalies(&mut out);
        let all = out.join("\n");
        assert!(all.contains("group-rate cost drift"), "{all}");
        assert!(!all.contains("rate-cache cost drift"), "{all}");

        // Healthy aggregate run: flat group-update cost, zero per-peer
        // recomputes — no anomalies.
        let mut updates = 0;
        let flat: Vec<TraceSample> = (0..30)
            .map(|i| {
                updates += 40;
                sample(i, updates, 0)
            })
            .collect();
        let healthy = TraceSegment {
            label: "B".into(),
            exact_rates: false,
            aggregate: true,
            samples: flat,
            spans: Vec::new(),
            end: Some((
                150.0,
                Counters {
                    agg_rate_updates: updates,
                    ..Default::default()
                },
            )),
        };
        let mut out = Vec::new();
        healthy.detect_anomalies(&mut out);
        assert!(out.is_empty(), "healthy aggregate trace flagged: {out:?}");

        // A leaking per-peer cache (recomputes > 0 in aggregate mode) is
        // flagged even when the group-update cost stays flat.
        let mut updates = 0;
        let leaking: Vec<TraceSample> = (0..30)
            .map(|i| {
                updates += 40;
                sample(i, updates, 7)
            })
            .collect();
        let leaky = TraceSegment {
            label: "C".into(),
            exact_rates: false,
            aggregate: true,
            samples: leaking,
            spans: Vec::new(),
            end: Some((
                150.0,
                Counters {
                    agg_rate_updates: updates,
                    rate_recomputes: 7,
                    ..Default::default()
                },
            )),
        };
        let mut out = Vec::new();
        leaky.detect_anomalies(&mut out);
        let all = out.join("\n");
        assert!(
            all.contains("per-peer rate recomputes in aggregate mode"),
            "{all}"
        );
    }

    /// The hybrid driver runs end to end from the CLI, writes a trace
    /// `inspect` can read back, and rejects the unsupported knobs.
    #[test]
    fn scenario_hybrid_smoke_and_guards() {
        let dir = std::env::temp_dir().join("btfluid_cli_hybrid_smoke");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("hybrid.jsonl");
        let argv = vec![
            "scenario".into(),
            "flash_crowd".into(),
            "--hybrid".into(),
            "--scheme".into(),
            "mtsd".into(),
            "--aggregate".into(),
            "--smoke".into(),
            "--seed".into(),
            "3".into(),
            "--trace".into(),
            trace.to_str().unwrap().to_string(),
            "--csv".into(),
        ];
        dispatch(&argv).unwrap();
        let body = std::fs::read_to_string(&trace).unwrap();
        assert!(body.contains("\"label\":\"hybrid-MTSD\""), "{body}");
        assert!(body.contains("\"kind\":\"end\""), "{body}");
        dispatch(&["inspect".into(), trace.to_str().unwrap().to_string()]).unwrap();

        let base = |extra: &[&str]| -> Vec<String> {
            ["scenario", "flash_crowd", "--hybrid", "--smoke"]
                .iter()
                .copied()
                .chain(extra.iter().copied())
                .map(String::from)
                .collect()
        };
        // --scheme is mandatory and must be a scheduled-fluid scheme.
        assert!(dispatch(&base(&[])).is_err());
        assert!(dispatch(&base(&["--scheme", "mfcd"])).is_err());
        // --exact, --records, --checked, and out-of-range tolerances are
        // rejected before anything runs.
        assert!(dispatch(&base(&["--scheme", "mtsd", "--exact"])).is_err());
        assert!(dispatch(&base(&["--scheme", "mtsd", "--checked"])).is_err());
        let err = dispatch(&base(&["--scheme", "mtsd", "--hybrid-tol", "3"])).unwrap_err();
        assert_eq!(err.code, EXIT_CONFIG, "{}", err.message);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The thrash heuristic flags a burst of regime switches measured
    /// against the run's own median dwell — and stays quiet when the
    /// same number of switches is evenly spread.
    #[test]
    fn inspect_hybrid_thrash_heuristic() {
        let span = |t: f64| ("handoff:des->fluid".to_string(), 10u64, Some(t));
        let segment = |spans: Vec<(String, u64, Option<f64>)>| TraceSegment {
            label: "H".into(),
            exact_rates: false,
            aggregate: true,
            samples: Vec::new(),
            spans,
            end: Some((2000.0, Counters::default())),
        };

        // Four switches packed into 1.5 time units amid ~400-unit dwells.
        let thrashing = segment(vec![
            span(100.0),
            span(500.0),
            span(900.0),
            span(1300.0),
            span(1300.5),
            span(1301.0),
            span(1301.5),
            span(1700.0),
        ]);
        let mut out = Vec::new();
        thrashing.detect_anomalies(&mut out);
        assert!(
            out.iter().any(|a| a.contains("regime thrash")),
            "burst not flagged: {out:?}"
        );

        // The same switch count, evenly spaced: healthy.
        let healthy = segment(vec![span(100.0), span(600.0), span(1100.0), span(1600.0)]);
        let mut out = Vec::new();
        healthy.detect_anomalies(&mut out);
        assert!(out.is_empty(), "even spacing flagged: {out:?}");
    }

    /// Result-writing commands refuse to clobber without `--force`.
    #[test]
    fn clobber_needs_force() {
        let dir = std::env::temp_dir().join("btfluid_cli_clobber_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.csv");
        std::fs::write(&path, "old").unwrap();
        let argv = vec![
            "fig2".into(),
            "--points".into(),
            "3".into(),
            "--out".into(),
            path.to_str().unwrap().to_string(),
        ];
        let err = dispatch(&argv).unwrap_err();
        assert_eq!(err.code, EXIT_CLOBBER, "{}", err.message);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "old");

        let mut forced = argv.clone();
        forced.push("--force".into());
        dispatch(&forced).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().starts_with("p,"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_file_written() {
        let dir = std::env::temp_dir().join("btfluid_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.csv");
        let argv = vec![
            "fig2".into(),
            "--points".into(),
            "3".into(),
            "--out".into(),
            path.to_str().unwrap().to_string(),
        ];
        dispatch(&argv).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("p,MTCD,MTSD"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
