//! Tiny dependency-free option parser: `--flag`, `--key value`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: positional command plus `--key [value]` options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Options {
    flags: BTreeMap<String, Option<String>>,
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Value-taking options whose argument must be a number (or a
/// comma-separated list of numbers). Validated eagerly at parse time so a
/// typo like `--p abc` is a hard error even for commands that never read
/// `p` — nothing silently falls back to a default.
const NUMERIC: &[&str] = &[
    "points",
    "k",
    "p",
    "rho",
    "reps",
    "horizon",
    "warmup",
    "seed",
    "cells",
    "cheaters",
    "crowd",
    "epoch",
    "origin-seeds",
    "scale",
    "checkpoint-every",
    "retries",
    "workers",
    "event-budget",
    "wall-budget-ms",
    "sample-every",
    "hybrid-tol",
    "flightrec-cap",
    "lambda0",
    "alpha",
    "leecher-frac",
    "bins",
];

/// Value-taking options with free-form string arguments (paths, scheme
/// names, `CELL@EVENT` specs, colon/comma grammars parsed by the command).
const STRINGLY: &[&str] = &[
    "scheme",
    "out",
    "classes",
    "checkpoint",
    "records",
    "schemes",
    "manifest",
    "bundles",
    "inject-panic",
    "trace",
    "csv-out",
    "flightrec",
    "history",
    "report",
    "md-out",
    "bench",
    "in",
    "shape",
    "format",
    "workload",
];

/// Known bare flags. Anything else starting with `--` is an unknown
/// option and a hard error (exit 1), instead of a silently-accepted flag.
const FLAGS: &[&str] = &[
    "csv",
    "force",
    "exact",
    "aggregate",
    "checked",
    "smoke",
    "resume",
    "fluid",
    "hybrid",
    "full",
    "expect-fail",
    "help",
    "verbose",
    "quiet",
    "record",
    "check",
    "canary",
];

impl Options {
    /// Parses `argv` after the subcommand.
    pub fn parse(argv: &[String]) -> Result<Self, ArgError> {
        let mut flags = BTreeMap::new();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError(format!(
                    "unexpected positional argument '{arg}' (options start with --)"
                )));
            };
            if name.is_empty() {
                return Err(ArgError("empty option name '--'".into()));
            }
            let numeric = NUMERIC.contains(&name);
            if numeric || STRINGLY.contains(&name) {
                let Some(value) = it.next() else {
                    return Err(ArgError(format!("option --{name} requires a value")));
                };
                if numeric {
                    for tok in value.split(',') {
                        if tok.trim().parse::<f64>().is_err() {
                            return Err(ArgError(format!("--{name}: '{tok}' is not a number")));
                        }
                    }
                }
                flags.insert(name.to_string(), Some(value.clone()));
            } else if FLAGS.contains(&name) {
                flags.insert(name.to_string(), None);
            } else {
                return Err(ArgError(format!(
                    "unknown option --{name} (see --help for the option list)"
                )));
            }
        }
        Ok(Self { flags })
    }

    /// Whether a bare flag (or any option) was given.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// String value of an option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).and_then(|v| v.as_deref())
    }

    /// Typed value with a default.
    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| ArgError(format!("--{name}: '{s}' is not a number"))),
        }
    }

    /// Typed integer with a default.
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| ArgError(format!("--{name}: '{s}' is not an integer"))),
        }
    }

    /// Typed u64 with a default.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| ArgError(format!("--{name}: '{s}' is not an integer"))),
        }
    }

    /// Comma-separated list of numbers with a default.
    pub fn get_f64_list(&self, name: &str, default: &[f64]) -> Result<Vec<f64>, ArgError> {
        match self.get(name) {
            None => Ok(default.to_vec()),
            Some(s) => s
                .split(',')
                .map(|tok| {
                    tok.trim()
                        .parse()
                        .map_err(|_| ArgError(format!("--{name}: '{tok}' is not a number")))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_values() {
        let o = Options::parse(&argv(&["--csv", "--points", "25", "--p", "0.5"])).unwrap();
        assert!(o.has("csv"));
        assert_eq!(o.get("points"), Some("25"));
        assert_eq!(o.get_usize("points", 10).unwrap(), 25);
        assert_eq!(o.get_f64("p", 0.1).unwrap(), 0.5);
    }

    #[test]
    fn defaults_apply() {
        let o = Options::parse(&argv(&[])).unwrap();
        assert_eq!(o.get_usize("points", 50).unwrap(), 50);
        assert_eq!(o.get_f64("p", 0.9).unwrap(), 0.9);
        assert_eq!(o.get_u64("seed", 7).unwrap(), 7);
        assert!(!o.has("csv"));
    }

    #[test]
    fn missing_value_rejected() {
        assert!(Options::parse(&argv(&["--points"])).is_err());
    }

    #[test]
    fn positional_rejected() {
        assert!(Options::parse(&argv(&["oops"])).is_err());
    }

    #[test]
    fn bad_number_rejected_at_parse_time() {
        // Regression: `--p abc` used to parse fine and only fail (or be
        // silently ignored) when some command happened to read `p`.
        let err = Options::parse(&argv(&["--p", "abc"])).unwrap_err();
        assert!(err.0.contains("not a number"), "{err}");
        assert!(Options::parse(&argv(&["--seed", "12x"])).is_err());
        assert!(Options::parse(&argv(&["--cheaters", "0.1,oops,0.5"])).is_err());
        // Scientific notation and negatives are still fine.
        assert!(Options::parse(&argv(&["--horizon", "1e6"])).is_ok());
        assert!(Options::parse(&argv(&["--crowd", "-2.5"])).is_ok());
    }

    #[test]
    fn unknown_flag_rejected() {
        // Regression: any unrecognized `--whatever` used to become an
        // accepted bare flag, so typos like `--forcee` were silent no-ops.
        let err = Options::parse(&argv(&["--forcee"])).unwrap_err();
        assert!(err.0.contains("unknown option --forcee"), "{err}");
        assert!(Options::parse(&argv(&["--no-such-thing", "1"])).is_err());
        // Known bare flags still parse.
        let o = Options::parse(&argv(&["--force", "--checked", "--resume"])).unwrap();
        assert!(o.has("force") && o.has("checked") && o.has("resume"));
    }

    #[test]
    fn lists_parse() {
        let o = Options::parse(&argv(&["--cheaters", "0,0.25, 0.5"])).unwrap();
        assert_eq!(
            o.get_f64_list("cheaters", &[]).unwrap(),
            vec![0.0, 0.25, 0.5]
        );
        let o = Options::parse(&argv(&[])).unwrap();
        assert_eq!(o.get_f64_list("cheaters", &[0.1]).unwrap(), vec![0.1]);
    }

    #[test]
    fn empty_option_rejected() {
        assert!(Options::parse(&argv(&["--"])).is_err());
    }

    #[test]
    fn valued_options_consume_their_argument() {
        // Regression: `--origin-seeds 0` and `--classes ...` must be
        // treated as key/value pairs, not a flag followed by a positional.
        let o =
            Options::parse(&argv(&["--origin-seeds", "0", "--classes", "0.02:0.2:0.3"])).unwrap();
        assert_eq!(o.get_usize("origin-seeds", 1).unwrap(), 0);
        assert_eq!(o.get("classes"), Some("0.02:0.2:0.3"));
        let o = Options::parse(&argv(&["--scale", "0.25"])).unwrap();
        assert_eq!(o.get_f64("scale", 1.0).unwrap(), 0.25);
    }
}
