//! CLI failure type: a message plus a documented exit code.
//!
//! Exit-code map (also printed by `btfluid --help`):
//!
//! | code | class                                                  |
//! |------|--------------------------------------------------------|
//! | 0    | success                                                |
//! | 1    | usage error or I/O failure                             |
//! | 2    | invalid configuration (rejected before running)        |
//! | 3    | solver diverged (iterative numeric method failed)      |
//! | 4    | engine invariant violated (`checked` mode)             |
//! | 5    | snapshot/checkpoint rejected (corrupt, wrong config)   |
//! | 6    | sweep finished with quarantined cells, or `repro`      |
//! |      | reproduced the recorded failure                        |
//! | 7    | refused to overwrite an existing file (use `--force`)  |

use crate::args::ArgError;
use btfluid_des::{DesError, SnapshotError};
use btfluid_harness::HarnessError;
use btfluid_hybrid::HybridError;
use btfluid_numkit::NumError;
use std::fmt;

/// Exit code: usage error or I/O failure.
pub const EXIT_USAGE: u8 = 1;
/// Exit code: invalid configuration.
pub const EXIT_CONFIG: u8 = 2;
/// Exit code: solver diverged.
pub const EXIT_SOLVER: u8 = 3;
/// Exit code: engine invariant violated (`checked` mode).
pub const EXIT_INVARIANT: u8 = 4;
/// Exit code: snapshot/checkpoint rejected.
pub const EXIT_SNAPSHOT: u8 = 5;
/// Exit code: sweep finished with failures / repro reproduced one.
pub const EXIT_SWEEP_FAILED: u8 = 6;
/// Exit code: refused to overwrite without `--force`.
pub const EXIT_CLOBBER: u8 = 7;

/// A CLI failure: what to tell the user, and which exit code to die with.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError {
    /// Process exit code (1..=7, see the module table).
    pub code: u8,
    /// The message printed to stderr (prefixed `btfluid:`).
    pub message: String,
}

impl CliError {
    /// An error with an explicit code.
    pub fn new(code: u8, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// A refusal to overwrite `path` (exit code 7).
    pub fn clobber(path: &str) -> Self {
        Self::new(
            EXIT_CLOBBER,
            format!("{path} exists; pass --force to overwrite"),
        )
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        Self::new(EXIT_USAGE, e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        Self::new(EXIT_USAGE, e.to_string())
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self::new(EXIT_USAGE, message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        Self::new(EXIT_USAGE, message)
    }
}

impl From<NumError> for CliError {
    fn from(e: NumError) -> Self {
        match e {
            // Domain rejections happen before anything runs.
            NumError::InvalidInput { .. } => Self::new(EXIT_CONFIG, e.to_string()),
            // Everything else is an iterative method giving up mid-flight.
            NumError::NoConvergence { .. }
            | NumError::NoBracket { .. }
            | NumError::StepUnderflow { .. }
            | NumError::NonFinite { .. } => Self::new(EXIT_SOLVER, format!("solver diverged: {e}")),
        }
    }
}

impl From<SnapshotError> for CliError {
    fn from(e: SnapshotError) -> Self {
        Self::new(EXIT_SNAPSHOT, e.to_string())
    }
}

impl From<DesError> for CliError {
    fn from(e: DesError) -> Self {
        match e {
            DesError::Num(e) => e.into(),
            DesError::Invariant { .. } => Self::new(EXIT_INVARIANT, e.to_string()),
            DesError::Snapshot(e) => e.into(),
        }
    }
}

impl From<HybridError> for CliError {
    fn from(e: HybridError) -> Self {
        match e {
            HybridError::Num(e) => e.into(),
            HybridError::Des(e) => e.into(),
            HybridError::Snapshot(msg) => {
                Self::new(EXIT_SNAPSHOT, format!("hybrid snapshot: {msg}"))
            }
        }
    }
}

impl From<HarnessError> for CliError {
    fn from(e: HarnessError) -> Self {
        match e {
            HarnessError::Num(e) => e.into(),
            HarnessError::Engine(e) => e.into(),
            HarnessError::Config(msg) => Self::new(EXIT_CONFIG, msg),
            HarnessError::Io { .. } | HarnessError::Manifest { .. } => {
                Self::new(EXIT_USAGE, e.to_string())
            }
            HarnessError::Bundle(_) => Self::new(EXIT_SNAPSHOT, e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_des::InvariantKind;

    #[test]
    fn exit_codes_map_by_failure_class() {
        let e: CliError = NumError::NoConvergence {
            what: "newton",
            iterations: 9,
            residual: 1.0,
        }
        .into();
        assert_eq!(e.code, EXIT_SOLVER);
        assert!(e.message.starts_with("solver diverged:"), "{}", e.message);

        let e: CliError = NumError::InvalidInput {
            what: "DesConfig::validate",
            detail: "bad".into(),
        }
        .into();
        assert_eq!(e.code, EXIT_CONFIG);

        let e: CliError = DesError::Invariant {
            kind: InvariantKind::RateCacheDrift,
            t: 1.0,
            detail: "x".into(),
        }
        .into();
        assert_eq!(e.code, EXIT_INVARIANT);

        let e: CliError = SnapshotError::ChecksumMismatch.into();
        assert_eq!(e.code, EXIT_SNAPSHOT);

        let e: CliError = HybridError::Snapshot("truncated".into()).into();
        assert_eq!(e.code, EXIT_SNAPSHOT);

        let e: CliError = HarnessError::Config("no".into()).into();
        assert_eq!(e.code, EXIT_CONFIG);

        assert_eq!(CliError::clobber("out.csv").code, EXIT_CLOBBER);
    }
}
