//! `btfluid` — regenerate any figure of "Analyzing Multiple File
//! Downloading in BitTorrent" (Tian/Wu/Ng, ICPP 2006) or drive the
//! peer-level simulator.
//!
//! ```text
//! btfluid fig2       MTCD vs MTSD online time per file over correlation
//! btfluid fig3       per-class times at p = 0.1 and p = 1.0
//! btfluid fig4a      CMFSD online time per file over the (p, ρ) grid
//! btfluid fig4b      per-class CMFSD vs MFCD at p = 0.9
//! btfluid fig4c      per-class CMFSD vs MFCD at p = 0.1
//! btfluid validate   fluid model vs discrete-event simulation (X3)
//! btfluid adapt      Adapt under cheaters (X4, the paper's future work)
//! btfluid transient  flash-crowd settling (X5 ablation)
//! btfluid sim        one raw simulation run
//! btfluid scenario   non-stationary scenarios: flash crowds, churn, faults
//! btfluid all        every fluid-model figure in sequence
//! ```

mod args;
mod commands;
mod errors;
mod perf;

use btfluid_telemetry::{diag, Level};
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            diag!(Level::Error, "btfluid: {e}");
            ExitCode::from(e.code)
        }
    }
}
