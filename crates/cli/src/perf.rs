//! `btfluid perf` — the cross-run performance observatory.
//!
//! Ingests the committed `BENCH_*.json` artifacts (and, optionally, a
//! sweep manifest's `wall_ms` fields), flattens every numeric leaf into a
//! dotted metric name, and maintains `PERF_HISTORY.jsonl` — one JSON line
//! per recorded observation set. From the history it computes a **noise
//! band** per metric (median ± max(3·1.4826·MAD, 5% of the median)) and
//! classifies the current value:
//!
//! * metrics whose name marks them *lower-is-better* (`overhead`, `wall`,
//!   `ns_per`, `per_checkpoint`) regress when they land **above** the
//!   band;
//! * *higher-is-better* metrics (`speedup`, `events_per`, `flatness`)
//!   regress when they land **below** it;
//! * everything else is informational.
//!
//! `--check` exits 4 ([`EXIT_INVARIANT`]) on any regression — the CI gate.
//! `--record` appends the current observation to the history. `--canary`
//! degrades every directional metric before checking (lower-better ×1.5,
//! higher-better ×0.5) and therefore must exit 4: CI asserts that the
//! gate actually trips. A `perf-report.json` (and optionally a markdown
//! delta table) is written either way.

use crate::args::Options;
use crate::errors::{CliError, EXIT_INVARIANT};
use btfluid_harness as harness;
use btfluid_harness::json::Json;
use btfluid_telemetry::{diag, Level};
use std::collections::BTreeMap;
use std::path::Path;

/// History schema version, stamped into every line.
pub const PERF_HISTORY_VERSION: u64 = 1;

/// Minimum history depth before the band is trusted to gate.
const MIN_HISTORY: usize = 3;

/// How a metric's movement is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller values are better (walls, overheads).
    LowerBetter,
    /// Larger values are better (speedups, throughputs).
    HigherBetter,
    /// No gate — tracked for context only.
    Informational,
}

impl Direction {
    fn name(self) -> &'static str {
        match self {
            Direction::LowerBetter => "lower-better",
            Direction::HigherBetter => "higher-better",
            Direction::Informational => "informational",
        }
    }
}

/// Classifies a dotted metric name. Substring-based on purpose: bench
/// keys are stable, and a new key lands in the right class by following
/// the existing naming convention instead of editing a table here.
pub fn direction(metric: &str) -> Direction {
    let lower = [
        "overhead",
        "wall",
        "ns_per",
        "per_checkpoint",
        "per_consult",
    ];
    let higher = ["speedup", "events_per", "flatness"];
    // Only the leaf's own name decides: matching the full dotted path
    // would drag every sibling of an "…_overhead" object into the gate
    // (its lambda0, rep count, capacities — config constants, not perf).
    // Numeric tail segments (array indices) defer to the nearest named
    // ancestor, so spread arrays classify by their field name.
    let leaf = metric
        .rsplit('.')
        .find(|seg| !seg.chars().all(|c| c.is_ascii_digit()))
        .unwrap_or(metric);
    // "overhead" wins over "events_per" etc. — a name matching both
    // classes (none today) gates conservatively on the lower-better side.
    if lower.iter().any(|k| leaf.contains(k)) {
        Direction::LowerBetter
    } else if higher.iter().any(|k| leaf.contains(k)) {
        Direction::HigherBetter
    } else {
        Direction::Informational
    }
}

/// Flattens every numeric leaf of `doc` into `out` under dotted names
/// rooted at `prefix`; array elements are indexed by position.
pub fn flatten(prefix: &str, doc: &Json, out: &mut BTreeMap<String, f64>) {
    match doc {
        Json::Num(raw) => {
            if let Ok(v) = raw.parse::<f64>() {
                if v.is_finite() {
                    out.insert(prefix.to_string(), v);
                }
            }
        }
        Json::Obj(fields) => {
            for (key, val) in fields {
                let name = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                flatten(&name, val, out);
            }
        }
        Json::Arr(items) => {
            for (i, val) in items.iter().enumerate() {
                flatten(&format!("{prefix}.{i}"), val, out);
            }
        }
        _ => {}
    }
}

/// One metric's verdict in the report.
struct Row {
    metric: String,
    value: f64,
    median: Option<f64>,
    band: Option<f64>,
    dir: Direction,
    regressed: bool,
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Median and noise half-width over history samples: MAD scaled to a
/// normal-consistent sigma, three sigmas wide, floored at 5% of the
/// median so a dead-flat history doesn't gate on measurement jitter.
fn band(samples: &[f64]) -> (f64, f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let med = median_of(&sorted);
    let mut dev: Vec<f64> = sorted.iter().map(|x| (x - med).abs()).collect();
    dev.sort_by(f64::total_cmp);
    let mad = median_of(&dev);
    let width = (3.0 * 1.4826 * mad).max(0.05 * med.abs()).max(1e-9);
    (med, width)
}

/// Collects the current observation set from bench files and an optional
/// sweep manifest.
fn observe(opts: &Options) -> Result<BTreeMap<String, f64>, CliError> {
    let mut metrics = BTreeMap::new();
    let bench_list = opts
        .get("bench")
        .unwrap_or("BENCH_des.json,BENCH_scenario.json,BENCH_trace.json");
    for path in bench_list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
    {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                diag!(Level::Warn, "perf: {path} not found; skipping");
                continue;
            }
            Err(e) => return Err(format!("perf: {path}: {e}").into()),
        };
        let doc = Json::parse(&text).map_err(|e| format!("perf: {path}: {e}"))?;
        let root = doc
            .get("bench")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| {
                Path::new(path)
                    .file_stem()
                    .map_or_else(|| path.to_string(), |s| s.to_string_lossy().into_owned())
            });
        // Identity fields (p, seed, lambda0 grids…) are configuration,
        // not measurements, but they flatten harmlessly: they never move,
        // so their band is zero-width around the pinned value, and they
        // carry no direction keyword, so they never gate.
        flatten(&root, &doc, &mut metrics);
    }
    if let Some(path) = opts.get("manifest") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("perf: {path}: {e}"))?;
        let mut rates: Vec<f64> = Vec::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let Ok(rec) = Json::parse(line) else { continue };
            let events = rec.get("events").and_then(Json::as_u64).unwrap_or(0);
            let wall_ms = rec.get("wall_ms").and_then(Json::as_u64).unwrap_or(0);
            if events > 0 && wall_ms > 0 {
                rates.push(events as f64 / wall_ms as f64);
            }
        }
        if !rates.is_empty() {
            rates.sort_by(f64::total_cmp);
            metrics.insert("sweep.events_per_ms_median".into(), median_of(&rates));
            metrics.insert("sweep.cells".into(), rates.len() as f64);
        }
    }
    if metrics.is_empty() {
        return Err("perf: no metrics found (no readable --bench files)".into());
    }
    Ok(metrics)
}

/// Loads the per-metric history from the JSONL file (missing file = empty
/// history — the observatory bootstraps itself).
fn load_history(path: &str) -> Result<Vec<BTreeMap<String, f64>>, CliError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("perf: {path}: {e}").into()),
    };
    let mut history = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = Json::parse(line).map_err(|e| format!("perf: {path}:{}: {e}", i + 1))?;
        let Some(obj) = rec.get("metrics") else {
            return Err(format!("perf: {path}:{}: missing metrics", i + 1).into());
        };
        let mut metrics = BTreeMap::new();
        flatten("", obj, &mut metrics);
        history.push(metrics);
    }
    Ok(history)
}

fn history_line(seq: usize, metrics: &BTreeMap<String, f64>) -> String {
    let fields: Vec<(String, Json)> = metrics
        .iter()
        .map(|(k, v)| (k.clone(), Json::num_f64(*v)))
        .collect();
    let doc = Json::Obj(vec![
        ("version".into(), Json::num_u64(PERF_HISTORY_VERSION)),
        ("seq".into(), Json::num_u64(seq as u64)),
        ("metrics".into(), Json::Obj(fields)),
    ]);
    format!("{doc}\n")
}

fn report_json(rows: &[Row], history_len: usize, gated: bool) -> String {
    let entries: Vec<Json> = rows
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("metric".into(), Json::Str(r.metric.clone())),
                ("value".into(), Json::num_f64(r.value)),
                ("direction".into(), Json::Str(r.dir.name().into())),
                ("regressed".into(), Json::Bool(r.regressed)),
            ];
            if let (Some(med), Some(w)) = (r.median, r.band) {
                fields.push(("median".into(), Json::num_f64(med)));
                fields.push(("band".into(), Json::num_f64(w)));
            }
            Json::Obj(fields)
        })
        .collect();
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("btfluid-perf-report".into())),
        ("version".into(), Json::num_u64(PERF_HISTORY_VERSION)),
        ("history".into(), Json::num_u64(history_len as u64)),
        ("gated".into(), Json::Bool(gated)),
        (
            "regressions".into(),
            Json::num_u64(rows.iter().filter(|r| r.regressed).count() as u64),
        ),
        ("metrics".into(), Json::Arr(entries)),
    ]);
    format!("{doc}\n")
}

fn markdown_table(rows: &[Row]) -> String {
    let mut out = String::from(
        "| metric | value | median | band ± | direction | verdict |\n\
         |---|---:|---:|---:|---|---|\n",
    );
    for r in rows {
        let fmt = |x: f64| {
            if x.abs() >= 1000.0 {
                format!("{x:.0}")
            } else {
                format!("{x:.4}")
            }
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            r.metric,
            fmt(r.value),
            r.median.map_or_else(|| "-".into(), fmt),
            r.band.map_or_else(|| "-".into(), fmt),
            r.dir.name(),
            if r.regressed {
                "**REGRESSED**"
            } else if r.dir == Direction::Informational {
                "info"
            } else {
                "ok"
            },
        ));
    }
    out
}

/// Entry point for `btfluid perf`.
pub fn cmd_perf(opts: &Options) -> Result<(), CliError> {
    let mut current = observe(opts)?;
    let history_path = opts.get("history").unwrap_or("PERF_HISTORY.jsonl");
    let history = load_history(history_path)?;

    if opts.has("canary") {
        // Degrade every directional metric far outside any honest noise
        // band; a gate that stays green on this data is broken.
        for (name, value) in current.iter_mut() {
            match direction(name) {
                Direction::LowerBetter => *value *= 1.5,
                Direction::HigherBetter => *value *= 0.5,
                Direction::Informational => {}
            }
        }
        diag!(
            Level::Info,
            "perf: canary mode — directional metrics degraded 50%"
        );
    }

    let gate = history.len() >= MIN_HISTORY;
    let mut rows: Vec<Row> = Vec::new();
    for (metric, value) in &current {
        let samples: Vec<f64> = history
            .iter()
            .filter_map(|h| h.get(metric))
            .copied()
            .collect();
        let dir = direction(metric);
        if samples.len() >= MIN_HISTORY {
            let (med, width) = band(&samples);
            let regressed = gate
                && match dir {
                    Direction::LowerBetter => *value > med + width,
                    Direction::HigherBetter => *value < med - width,
                    Direction::Informational => false,
                };
            rows.push(Row {
                metric: metric.clone(),
                value: *value,
                median: Some(med),
                band: Some(width),
                dir,
                regressed,
            });
        } else {
            rows.push(Row {
                metric: metric.clone(),
                value: *value,
                median: None,
                band: None,
                dir,
                regressed: false,
            });
        }
    }

    let report_path = opts.get("report").unwrap_or("perf-report.json");
    let regressions: Vec<&Row> = rows.iter().filter(|r| r.regressed).collect();
    harness::atomic_write(
        Path::new(report_path),
        report_json(&rows, history.len(), gate).as_bytes(),
    )?;
    diag!(Level::Info, "perf: wrote {report_path}");
    if let Some(md) = opts.get("md-out") {
        harness::atomic_write(Path::new(md), markdown_table(&rows).as_bytes())?;
        diag!(Level::Info, "perf: wrote {md}");
    }

    if opts.has("record") {
        let line = history_line(history.len() + 1, &current);
        let mut text = match std::fs::read_to_string(history_path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("perf: {history_path}: {e}").into()),
        };
        text.push_str(&line);
        harness::atomic_write(Path::new(history_path), text.as_bytes())?;
        println!(
            "perf: recorded observation {} ({} metric(s)) into {history_path}",
            history.len() + 1,
            current.len()
        );
    }

    let tracked = rows
        .iter()
        .filter(|r| r.dir != Direction::Informational)
        .count();
    println!(
        "perf: {} metric(s), {} gated, history depth {}{}",
        rows.len(),
        tracked,
        history.len(),
        if gate {
            String::new()
        } else {
            format!(" (< {MIN_HISTORY}: observing only, no gate)")
        }
    );
    for r in &regressions {
        println!(
            "perf: REGRESSION {}: {} vs median {} ± {} ({})",
            r.metric,
            r.value,
            r.median.unwrap_or(f64::NAN),
            r.band.unwrap_or(f64::NAN),
            r.dir.name()
        );
    }

    if opts.has("check") || opts.has("canary") {
        if !regressions.is_empty() {
            return Err(CliError::new(
                EXIT_INVARIANT,
                format!(
                    "perf: {} metric(s) regressed beyond the noise band \
                     (see {report_path})",
                    regressions.len()
                ),
            ));
        }
        if opts.has("canary") {
            return Err(CliError::new(
                EXIT_INVARIANT,
                if gate {
                    "perf: canary degraded the metrics but nothing regressed — \
                     the gate is broken"
                        .to_string()
                } else {
                    format!(
                        "perf: canary cannot arm — history depth {} < {MIN_HISTORY}",
                        history.len()
                    )
                },
            ));
        }
        println!("perf: all gated metrics within their noise bands");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_classify_by_convention() {
        assert_eq!(
            direction("des_scale.telemetry_overhead.noop_overhead_pct"),
            Direction::LowerBetter
        );
        assert_eq!(
            direction("des_scale.points.2.exact.wall_s"),
            Direction::LowerBetter
        );
        assert_eq!(
            direction("sweep.events_per_ms_median"),
            Direction::HigherBetter
        );
        assert_eq!(
            direction("des_scale.aggregate_flatness_512_over_32"),
            Direction::HigherBetter
        );
        assert_eq!(
            direction("des_scale.points.0.lambda0"),
            Direction::Informational
        );
        // Only the leaf name decides — siblings of an "…_overhead" object
        // are config constants, not perf metrics.
        assert_eq!(
            direction("des_scale.telemetry_overhead.lambda0"),
            Direction::Informational
        );
        assert_eq!(
            direction("des_scale.telemetry_overhead.reps"),
            Direction::Informational
        );
        // Array indices defer to the nearest named ancestor.
        assert_eq!(
            direction("des_scale.telemetry_overhead.bare_spread_s.0"),
            Direction::Informational
        );
        assert_eq!(
            direction("des_scale.injector_overhead.per_consult_ns"),
            Direction::LowerBetter
        );
    }

    #[test]
    fn flatten_walks_objects_and_arrays() {
        let doc = Json::parse(r#"{"a":{"b":1.5,"c":[2,3]},"d":"x","e":true}"#).unwrap();
        let mut out = BTreeMap::new();
        flatten("root", &doc, &mut out);
        assert_eq!(out.get("root.a.b"), Some(&1.5));
        assert_eq!(out.get("root.a.c.0"), Some(&2.0));
        assert_eq!(out.get("root.a.c.1"), Some(&3.0));
        assert_eq!(out.len(), 3, "{out:?}");
    }

    #[test]
    fn band_floors_on_flat_history() {
        let (med, width) = band(&[10.0, 10.0, 10.0, 10.0]);
        assert_eq!(med, 10.0);
        assert!((width - 0.5).abs() < 1e-12, "5% floor, got {width}");
        // Real spread dominates the floor once it is wide enough.
        let (_, width) = band(&[10.0, 14.0, 6.0, 10.0, 11.0, 9.0]);
        assert!(width > 0.5, "{width}");
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median_of(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median_of(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }
}
