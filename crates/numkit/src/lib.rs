//! # btfluid-numkit
//!
//! Self-contained numerics substrate for the `btfluid` workspace.
//!
//! The paper this workspace reproduces ("Analyzing Multiple File Downloading
//! in BitTorrent", Tian/Wu/Ng, ICPP 2006) is evaluated purely numerically:
//! every figure is a steady-state solution of a fluid ordinary-differential
//! -equation model, and the companion discrete-event simulator needs
//! reproducible random streams. This crate provides everything those
//! computations need, with no external dependencies:
//!
//! * [`ode`] — fixed-step (Euler, Heun, classical RK4) and adaptive
//!   (Dormand–Prince 5(4)) integrators over a generic [`ode::OdeSystem`]
//!   trait, plus a steady-state driver that integrates until the right-hand
//!   side vanishes.
//! * [`rng`] — SplitMix64 and Xoshiro256★★ generators with cheap independent
//!   stream splitting, chosen over the `rand` crate for bit-exact
//!   reproducibility of every figure (see DESIGN.md §5.1).
//! * [`dist`] — the exact samplers the workload model needs: uniform,
//!   Bernoulli, exponential, binomial and Poisson-process arrival gaps.
//! * [`roots`] — bisection, Brent and safeguarded Newton scalar root finders
//!   (used by the CMFSD fixed-point steady-state solver).
//! * [`special`] — `ln_gamma`, stable binomial coefficients and pmf.
//! * [`stats`] — Welford online moments, confidence intervals, percentiles,
//!   histograms and Jain's fairness index.
//! * [`linalg`] — small dense LU with partial pivoting (Newton steps of
//!   the implicit integrator).
//! * [`quadrature`] — trapezoid/Simpson rules and sampled-series
//!   time-averages.
//! * [`interp`] / [`series`] — piecewise-linear interpolation and labelled
//!   time-series containers used by ODE observers and the simulator.
//!
//! ## Quick example
//!
//! ```
//! use btfluid_numkit::ode::{OdeSystem, Rk4, FixedStep};
//!
//! /// dx/dt = -x, x(0) = 1  =>  x(t) = e^{-t}
//! struct Decay;
//! impl OdeSystem for Decay {
//!     fn dim(&self) -> usize { 1 }
//!     fn rhs(&self, _t: f64, x: &[f64], dx: &mut [f64]) { dx[0] = -x[0]; }
//! }
//!
//! let mut x = vec![1.0];
//! Rk4.integrate(&Decay, 0.0, &mut x, 1.0, 1e-3);
//! assert!((x[0] - (-1.0f64).exp()).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it also
// rejects NaN, which is exactly what parameter validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod dist;
pub mod error;
pub mod interp;
pub mod linalg;
pub mod ode;
pub mod quadrature;
pub mod rng;
pub mod roots;
pub mod series;
pub mod special;
pub mod stats;

pub use error::NumError;
