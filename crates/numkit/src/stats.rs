//! Online statistics: Welford moments, confidence intervals, percentiles,
//! histograms and Jain's fairness index.
//!
//! The simulator aggregates per-peer completion times across replications;
//! these utilities compute the summary rows printed by the experiment
//! harness. Jain's fairness index quantifies the class-unfairness the paper
//! observes under CMFSD (Section 4.2.2).

use crate::error::NumError;

/// Numerically stable single-pass mean/variance accumulator (Welford 1962).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// `Default` must agree with [`Welford::new`]: a derived default would zero
/// the min/max sentinels, so the first `push` into a defaulted accumulator
/// would report `min = min(0, x)` instead of `x`.
impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction;
    /// Chan et al. pairwise update).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Decomposes the accumulator into `(n, mean, m2, min, max)`, for
    /// checkpointing. Inverse of [`Welford::from_raw_parts`].
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from parts captured with
    /// [`Welford::raw_parts`]. The reconstruction is bit-exact: the restored
    /// accumulator continues the statistic as if it had never been
    /// serialized.
    pub fn from_raw_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self {
            n,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Symmetric confidence half-width for the mean at the given confidence
    /// level, using the normal approximation for `n ≥ 30` and a small
    /// Student-t table below that.
    pub fn ci_half_width(&self, confidence: Confidence) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        confidence.critical_value(self.n - 1) * self.std_err()
    }
}

/// Supported confidence levels for interval estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confidence {
    /// 90% two-sided confidence.
    P90,
    /// 95% two-sided confidence.
    P95,
    /// 99% two-sided confidence.
    P99,
}

impl Confidence {
    /// Critical value (t for small df, z asymptotically).
    fn critical_value(self, df: u64) -> f64 {
        // Student-t two-sided critical values for small df, indexed df 1..=30.
        const T95: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        const T90: [f64; 30] = [
            6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782,
            1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
            1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
        ];
        const T99: [f64; 30] = [
            63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055,
            3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797,
            2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
        ];
        let (table, z) = match self {
            Confidence::P90 => (&T90, 1.645),
            Confidence::P95 => (&T95, 1.960),
            Confidence::P99 => (&T99, 2.576),
        };
        if df == 0 {
            f64::INFINITY
        } else if df <= 30 {
            table[(df - 1) as usize]
        } else {
            z
        }
    }
}

/// Jain's fairness index: `(Σxᵢ)² / (n·Σxᵢ²)`.
///
/// Equals 1 when all values are identical and `1/n` when one value dominates.
/// Used to quantify per-class download-time unfairness under CMFSD.
///
/// # Errors
/// Returns [`NumError::InvalidInput`] if `values` is empty or contains a
/// negative/non-finite entry.
pub fn jain_fairness(values: &[f64]) -> Result<f64, NumError> {
    if values.is_empty() {
        return Err(NumError::InvalidInput {
            what: "jain_fairness",
            detail: "values must be non-empty".into(),
        });
    }
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for (i, &v) in values.iter().enumerate() {
        if !v.is_finite() || v < 0.0 {
            return Err(NumError::InvalidInput {
                what: "jain_fairness",
                detail: format!("values[{i}] = {v} is negative or non-finite"),
            });
        }
        sum += v;
        sum_sq += v * v;
    }
    if sum_sq == 0.0 {
        // All zeros: perfectly fair by convention.
        return Ok(1.0);
    }
    Ok(sum * sum / (values.len() as f64 * sum_sq))
}

/// Percentile (inclusive, linear interpolation between closest ranks) of an
/// unsorted slice. `q ∈ [0, 1]`.
///
/// # Errors
/// Returns [`NumError::InvalidInput`] for an empty slice, `q ∉ [0,1]`, or a
/// NaN entry (which has no rank).
pub fn percentile(values: &[f64], q: f64) -> Result<f64, NumError> {
    if values.is_empty() {
        return Err(NumError::InvalidInput {
            what: "percentile",
            detail: "values must be non-empty".into(),
        });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(NumError::InvalidInput {
            what: "percentile",
            detail: format!("q must lie in [0,1], got {q}"),
        });
    }
    if let Some(i) = values.iter().position(|v| v.is_nan()) {
        return Err(NumError::InvalidInput {
            what: "percentile",
            detail: format!("values[{i}] is NaN and has no rank"),
        });
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected above"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Fixed-width histogram over `[lo, hi)` with values outside the range
/// clamped into the edge bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, NumError> {
        if bins == 0 {
            return Err(NumError::InvalidInput {
                what: "Histogram::new",
                detail: "bins must be > 0".into(),
            });
        }
        if !(lo < hi) {
            return Err(NumError::InvalidInput {
                what: "Histogram::new",
                detail: format!("require lo < hi, got lo = {lo}, hi = {hi}"),
            });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Records one observation (out-of-range values clamp to edge bins).
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            let f = (x - self.lo) / (self.hi - self.lo);
            ((f * bins as f64) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of mass in bin `i`.
    pub fn frac(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }
}

/// Weighted mean of `(value, weight)` pairs.
///
/// # Errors
/// Returns [`NumError::InvalidInput`] if the slices differ in length, any
/// weight is negative, or all weights are zero.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> Result<f64, NumError> {
    if values.len() != weights.len() {
        return Err(NumError::InvalidInput {
            what: "weighted_mean",
            detail: format!(
                "length mismatch: {} values vs {} weights",
                values.len(),
                weights.len()
            ),
        });
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, (&v, &w)) in values.iter().zip(weights).enumerate() {
        if w < 0.0 || !w.is_finite() {
            return Err(NumError::InvalidInput {
                what: "weighted_mean",
                detail: format!("weights[{i}] = {w} is negative or non-finite"),
            });
        }
        num += v * w;
        den += w;
    }
    if den == 0.0 {
        return Err(NumError::InvalidInput {
            what: "weighted_mean",
            detail: "all weights are zero".into(),
        });
    }
    Ok(num / den)
}

/// Batch-means confidence interval for *autocorrelated* sequences (e.g.
/// per-user times from one simulation run, where consecutive users share
/// swarm state).
///
/// Splits the sequence into `batches` contiguous batches (discarding the
/// remainder at the front), treats the batch means as approximately
/// independent, and returns `(mean, half_width)` at the given confidence.
///
/// # Errors
/// Returns [`NumError::InvalidInput`] when fewer than two batches are
/// requested or there are not at least two observations per batch.
pub fn batch_means_ci(
    samples: &[f64],
    batches: usize,
    confidence: Confidence,
) -> Result<(f64, f64), NumError> {
    if batches < 2 {
        return Err(NumError::InvalidInput {
            what: "batch_means_ci",
            detail: format!("need at least 2 batches, got {batches}"),
        });
    }
    let per_batch = samples.len() / batches;
    if per_batch < 2 {
        return Err(NumError::InvalidInput {
            what: "batch_means_ci",
            detail: format!(
                "need ≥ 2 observations per batch; {} samples / {batches} batches",
                samples.len()
            ),
        });
    }
    let start = samples.len() - per_batch * batches;
    let mut acc = Welford::new();
    for b in 0..batches {
        let lo = start + b * per_batch;
        let batch = &samples[lo..lo + per_batch];
        let mean = batch.iter().sum::<f64>() / per_batch as f64;
        acc.push(mean);
    }
    Ok((acc.mean(), acc.ci_half_width(confidence)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_mean_variance_known() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased sample variance of this classic set is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn welford_empty_defaults() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.ci_half_width(Confidence::P95), f64::INFINITY);
    }

    #[test]
    fn welford_default_carries_sentinels() {
        // Regression: the derived Default zeroed min/max, so the first push
        // into a defaulted accumulator clamped min to 0.
        let d = Welford::default();
        assert_eq!(d, Welford::new());
        assert_eq!(d.min(), f64::INFINITY);
        assert_eq!(d.max(), f64::NEG_INFINITY);
        let mut w = Welford::default();
        w.push(5.0);
        assert_eq!(w.min(), 5.0);
        assert_eq!(w.max(), 5.0);
        let mut neg = Welford::default();
        neg.push(-3.0);
        assert_eq!(neg.max(), -3.0);
    }

    #[test]
    fn welford_merge_empty_keeps_sentinels() {
        // ±∞ sentinels must survive empty-into-empty merges and a
        // raw_parts round-trip, then behave like a fresh accumulator.
        let mut e = Welford::default();
        e.merge(&Welford::default());
        let (n, mean, m2, min, max) = e.raw_parts();
        let back = Welford::from_raw_parts(n, mean, m2, min, max);
        assert_eq!(back, Welford::new());
        let mut w = back;
        w.push(7.0);
        assert_eq!((w.min(), w.max()), (7.0, 7.0));
    }

    #[test]
    fn small_n_moments_are_defined() {
        // n = 0 and n = 1 must yield finite std_err and a defined (infinite,
        // not NaN) CI half-width.
        for w in [Welford::new(), {
            let mut w = Welford::new();
            w.push(2.5);
            w
        }] {
            assert_eq!(w.std_err(), 0.0);
            assert!(!w.std_err().is_nan());
            assert_eq!(w.ci_half_width(Confidence::P95), f64::INFINITY);
            assert_eq!(w.ci_half_width(Confidence::P99), f64::INFINITY);
        }
    }

    #[test]
    fn ci_uses_t_for_small_samples() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0] {
            w.push(x);
        }
        // df = 2 -> t = 4.303 at 95%.
        let expected = 4.303 * w.std_err();
        assert!((w.ci_half_width(Confidence::P95) - expected).abs() < 1e-12);
    }

    #[test]
    fn ci_uses_z_for_large_samples() {
        let mut w = Welford::new();
        for i in 0..1000 {
            w.push(i as f64 % 10.0);
        }
        let expected = 1.960 * w.std_err();
        assert!((w.ci_half_width(Confidence::P95) - expected).abs() < 1e-12);
    }

    #[test]
    fn ci_ordering_by_confidence() {
        let mut w = Welford::new();
        for i in 0..100 {
            w.push(i as f64);
        }
        let c90 = w.ci_half_width(Confidence::P90);
        let c95 = w.ci_half_width(Confidence::P95);
        let c99 = w.ci_half_width(Confidence::P99);
        assert!(c90 < c95 && c95 < c99);
    }

    #[test]
    fn jain_extremes() {
        assert!((jain_fairness(&[5.0, 5.0, 5.0]).unwrap() - 1.0).abs() < 1e-12);
        let n = 4;
        let mut vals = vec![0.0; n];
        vals[0] = 10.0;
        assert!((jain_fairness(&vals).unwrap() - 1.0 / n as f64).abs() < 1e-12);
    }

    #[test]
    fn jain_rejects_bad_input() {
        assert!(jain_fairness(&[]).is_err());
        assert!(jain_fairness(&[1.0, -2.0]).is_err());
        assert!(jain_fairness(&[f64::NAN]).is_err());
    }

    #[test]
    fn jain_all_zero_is_fair() {
        assert_eq!(jain_fairness(&[0.0, 0.0]).unwrap(), 1.0);
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&v, 1.0).unwrap(), 5.0);
        assert_eq!(percentile(&v, 0.5).unwrap(), 3.0);
        // Interpolated quartile.
        assert!((percentile(&v, 0.25).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0];
        assert!((percentile(&v, 0.5).unwrap() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_rejects_bad_input() {
        assert!(percentile(&[], 0.5).is_err());
        assert!(percentile(&[1.0], 1.5).is_err());
    }

    #[test]
    fn percentile_single_sample_all_q() {
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(percentile(&[42.0], q).unwrap(), 42.0);
        }
    }

    #[test]
    fn percentile_nan_is_typed_error_not_panic() {
        // Regression: NaN inputs used to panic inside the sort comparator.
        let err = percentile(&[1.0, f64::NAN, 3.0], 0.5).unwrap_err();
        match err {
            NumError::InvalidInput { what, .. } => assert_eq!(what, "percentile"),
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        for (i, &c) in h.counts().iter().enumerate() {
            assert_eq!(c, 1, "bin {i}");
        }
        assert_eq!(h.total(), 10);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.frac(3) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.push(-5.0);
        h.push(5.0);
        h.push(1.0); // hi is exclusive -> clamps to last bin
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 2);
    }

    #[test]
    fn histogram_rejects_bad_config() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
    }

    #[test]
    fn weighted_mean_basics() {
        let m = weighted_mean(&[1.0, 3.0], &[1.0, 1.0]).unwrap();
        assert!((m - 2.0).abs() < 1e-12);
        let m = weighted_mean(&[1.0, 3.0], &[3.0, 1.0]).unwrap();
        assert!((m - 1.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_rejects_bad_input() {
        assert!(weighted_mean(&[1.0], &[1.0, 2.0]).is_err());
        assert!(weighted_mean(&[1.0], &[-1.0]).is_err());
        assert!(weighted_mean(&[1.0, 2.0], &[0.0, 0.0]).is_err());
    }

    #[test]
    fn batch_means_validation() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(batch_means_ci(&xs, 1, Confidence::P95).is_err());
        assert!(batch_means_ci(&xs[..3], 2, Confidence::P95).is_err());
        assert!(batch_means_ci(&xs, 10, Confidence::P95).is_ok());
    }

    #[test]
    fn batch_means_mean_matches_sample_mean_for_exact_split() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let (mean, hw) = batch_means_ci(&xs, 10, Confidence::P95).unwrap();
        assert!((mean - 4.5).abs() < 1e-12);
        // Identical batches ⇒ zero variance between batch means.
        assert!(hw < 1e-12);
    }

    #[test]
    fn batch_means_widens_ci_for_correlated_data() {
        // AR(1) with φ = 0.95: strong positive autocorrelation. The naive
        // iid CI underestimates; batch means must be wider.
        let mut xs = Vec::with_capacity(5000);
        let mut x = 0.0f64;
        let mut state = 9u64;
        let mut next_u = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for _ in 0..5000 {
            x = 0.95 * x + next_u();
            xs.push(x);
        }
        let mut naive = Welford::new();
        for &v in &xs {
            naive.push(v);
        }
        let naive_hw = naive.ci_half_width(Confidence::P95);
        let (_, batch_hw) = batch_means_ci(&xs, 20, Confidence::P95).unwrap();
        assert!(
            batch_hw > 2.0 * naive_hw,
            "batch CI {batch_hw} should dwarf naive {naive_hw}"
        );
    }

    #[test]
    fn batch_means_discards_leading_remainder() {
        // 103 samples, 10 batches of 10: the first 3 are dropped.
        let mut xs = vec![1000.0, 1000.0, 1000.0];
        xs.extend((0..100).map(|_| 1.0));
        let (mean, _) = batch_means_ci(&xs, 10, Confidence::P95).unwrap();
        assert!((mean - 1.0).abs() < 1e-12);
    }
}
