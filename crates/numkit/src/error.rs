//! Error types shared by the numeric routines.

use std::fmt;

/// Errors produced by the numeric kernels in this crate.
///
/// Every solver in `btfluid-numkit` reports failure through this type instead
/// of panicking, so callers (the fluid-model crate, the experiment harness)
/// can surface diagnostics to the user.
#[derive(Debug, Clone, PartialEq)]
pub enum NumError {
    /// An argument was outside the routine's domain.
    InvalidInput {
        /// Which routine rejected the input.
        what: &'static str,
        /// Human-readable detail about the violation.
        detail: String,
    },
    /// An iterative method exhausted its iteration budget without meeting
    /// its tolerance.
    NoConvergence {
        /// Which routine failed to converge.
        what: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// The residual (or error estimate) at the final iterate.
        residual: f64,
    },
    /// A root-bracketing method was given endpoints that do not bracket a
    /// sign change.
    NoBracket {
        /// Function value at the left endpoint.
        fa: f64,
        /// Function value at the right endpoint.
        fb: f64,
    },
    /// An adaptive step-size controller underflowed the minimum step.
    StepUnderflow {
        /// Time at which the step collapsed.
        t: f64,
        /// The step size that fell below the admissible minimum.
        h: f64,
    },
    /// A computation produced a non-finite value (NaN or ±∞).
    NonFinite {
        /// Which routine observed the non-finite value.
        what: &'static str,
        /// Time or iterate index at which it appeared.
        at: f64,
    },
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::InvalidInput { what, detail } => {
                write!(f, "invalid input to {what}: {detail}")
            }
            NumError::NoConvergence {
                what,
                iterations,
                residual,
            } => write!(
                f,
                "{what} failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
            NumError::NoBracket { fa, fb } => write!(
                f,
                "root not bracketed: f(a) = {fa:.3e} and f(b) = {fb:.3e} have the same sign"
            ),
            NumError::StepUnderflow { t, h } => {
                write!(f, "step size underflow at t = {t:.6e} (h = {h:.3e})")
            }
            NumError::NonFinite { what, at } => {
                write!(f, "{what} produced a non-finite value at {at:.6e}")
            }
        }
    }
}

impl std::error::Error for NumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_input() {
        let e = NumError::InvalidInput {
            what: "bisect",
            detail: "a >= b".into(),
        };
        assert!(e.to_string().contains("bisect"));
        assert!(e.to_string().contains("a >= b"));
    }

    #[test]
    fn display_no_convergence_mentions_counts() {
        let e = NumError::NoConvergence {
            what: "newton",
            iterations: 17,
            residual: 1e-3,
        };
        let s = e.to_string();
        assert!(s.contains("newton"));
        assert!(s.contains("17"));
    }

    #[test]
    fn display_no_bracket_shows_values() {
        let e = NumError::NoBracket { fa: 1.0, fb: 2.0 };
        assert!(e.to_string().contains("same sign"));
    }

    #[test]
    fn display_step_underflow_and_nonfinite() {
        let e = NumError::StepUnderflow { t: 1.0, h: 1e-18 };
        assert!(e.to_string().contains("underflow"));
        let e = NumError::NonFinite {
            what: "dopri5",
            at: 3.0,
        };
        assert!(e.to_string().contains("non-finite"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        let e = NumError::NoBracket { fa: 1.0, fb: 2.0 };
        takes_err(&e);
    }
}
