//! Piecewise-linear interpolation over monotone grids.
//!
//! Used by the experiment harness to read figure series at arbitrary
//! abscissae (e.g. locating the `p` at which MTCD crosses a given online
//! time) and by the ODE observers for resampling trajectories onto uniform
//! grids.

use crate::error::NumError;

/// A piecewise-linear function defined by strictly increasing knots.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterp {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterp {
    /// Builds the interpolant from knot abscissae `xs` (strictly increasing)
    /// and ordinates `ys`.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] if the slices differ in length,
    /// have fewer than two points, contain non-finite values, or `xs` is not
    /// strictly increasing.
    pub fn new(xs: &[f64], ys: &[f64]) -> Result<Self, NumError> {
        if xs.len() != ys.len() {
            return Err(NumError::InvalidInput {
                what: "LinearInterp::new",
                detail: format!("length mismatch: {} xs vs {} ys", xs.len(), ys.len()),
            });
        }
        if xs.len() < 2 {
            return Err(NumError::InvalidInput {
                what: "LinearInterp::new",
                detail: "need at least two knots".into(),
            });
        }
        for (i, w) in xs.windows(2).enumerate() {
            if !(w[0] < w[1]) {
                return Err(NumError::InvalidInput {
                    what: "LinearInterp::new",
                    detail: format!(
                        "xs must be strictly increasing, xs[{i}] = {} >= xs[{}] = {}",
                        w[0],
                        i + 1,
                        w[1]
                    ),
                });
            }
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(NumError::InvalidInput {
                what: "LinearInterp::new",
                detail: "knots must be finite".into(),
            });
        }
        Ok(Self {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
        })
    }

    /// Domain of the interpolant `[x_min, x_max]`.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("≥2 knots"))
    }

    /// Evaluates the interpolant, clamping outside the domain (constant
    /// extrapolation).
    pub fn eval(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            return self.ys[0];
        }
        let last = self.xs.len() - 1;
        if x >= self.xs[last] {
            return self.ys[last];
        }
        // Binary search for the bracketing segment.
        let idx = match self
            .xs
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite knots"))
        {
            Ok(i) => return self.ys[i],
            Err(i) => i - 1,
        };
        let (x0, x1) = (self.xs[idx], self.xs[idx + 1]);
        let (y0, y1) = (self.ys[idx], self.ys[idx + 1]);
        let t = (x - x0) / (x1 - x0);
        y0 + t * (y1 - y0)
    }

    /// Finds the abscissa at which the interpolant first crosses `level`,
    /// scanning segments left to right. Returns `None` if it never does.
    pub fn first_crossing(&self, level: f64) -> Option<f64> {
        for i in 0..self.xs.len() - 1 {
            let (y0, y1) = (self.ys[i] - level, self.ys[i + 1] - level);
            if y0 == 0.0 {
                return Some(self.xs[i]);
            }
            if y0.signum() != y1.signum() {
                // Linear crossing within the segment.
                let t = y0 / (y0 - y1);
                return Some(self.xs[i] + t * (self.xs[i + 1] - self.xs[i]));
            }
        }
        if *self.ys.last().expect("≥2 knots") == level {
            return Some(*self.xs.last().expect("≥2 knots"));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_on_knots_and_between() {
        let f = LinearInterp::new(&[0.0, 1.0, 2.0], &[0.0, 10.0, 0.0]).unwrap();
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(1.0), 10.0);
        assert_eq!(f.eval(0.5), 5.0);
        assert_eq!(f.eval(1.5), 5.0);
    }

    #[test]
    fn eval_clamps_outside_domain() {
        let f = LinearInterp::new(&[0.0, 1.0], &[2.0, 4.0]).unwrap();
        assert_eq!(f.eval(-1.0), 2.0);
        assert_eq!(f.eval(9.0), 4.0);
    }

    #[test]
    fn rejects_bad_knots() {
        assert!(LinearInterp::new(&[0.0], &[1.0]).is_err());
        assert!(LinearInterp::new(&[0.0, 0.0], &[1.0, 2.0]).is_err());
        assert!(LinearInterp::new(&[1.0, 0.0], &[1.0, 2.0]).is_err());
        assert!(LinearInterp::new(&[0.0, 1.0], &[1.0]).is_err());
        assert!(LinearInterp::new(&[0.0, f64::NAN], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn domain_reported() {
        let f = LinearInterp::new(&[-2.0, 3.0], &[0.0, 1.0]).unwrap();
        assert_eq!(f.domain(), (-2.0, 3.0));
    }

    #[test]
    fn first_crossing_found() {
        let f = LinearInterp::new(&[0.0, 1.0, 2.0], &[0.0, 10.0, 0.0]).unwrap();
        let x = f.first_crossing(5.0).unwrap();
        assert!((x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn first_crossing_none_when_never_crossed() {
        let f = LinearInterp::new(&[0.0, 1.0], &[0.0, 1.0]).unwrap();
        assert!(f.first_crossing(5.0).is_none());
    }

    #[test]
    fn first_crossing_at_knot() {
        let f = LinearInterp::new(&[0.0, 1.0, 2.0], &[5.0, 7.0, 9.0]).unwrap();
        assert_eq!(f.first_crossing(5.0), Some(0.0));
        assert_eq!(f.first_crossing(9.0), Some(2.0));
    }

    #[test]
    fn binary_search_dense_grid() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x).collect();
        let f = LinearInterp::new(&xs, &ys).unwrap();
        assert!((f.eval(123.456) - 246.912).abs() < 1e-9);
    }
}
