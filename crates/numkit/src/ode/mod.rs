//! Ordinary differential equation integration.
//!
//! All of the paper's fluid models (Eqs. 1, 3 and 5) are autonomous ODE
//! systems `dx/dt = f(t, x)`. This module provides:
//!
//! * [`OdeSystem`] — the right-hand-side trait every model implements.
//! * Fixed-step methods: [`Euler`], [`Heun`] (order 2), [`Rk4`] (order 4),
//!   all through the [`FixedStep`] trait.
//! * [`Dopri5`] — adaptive Dormand–Prince 5(4) with PI step-size control,
//!   the workhorse for stiff-ish multi-class systems.
//! * [`BackwardEuler`] — L-stable implicit Euler with damped Newton and
//!   finite-difference Jacobians, for genuinely stiff bandwidth mixes.
//! * [`integrate_observed`] — observed integration that records
//!   trajectories into a [`crate::series::TimeSeries`].
//! * [`steady_state`] — integrate-to-equilibrium with a residual-based
//!   stopping rule, used for every steady-state figure.

mod dopri5;
mod driver;
mod fixed;
mod implicit;
mod steady;
mod system;

pub use dopri5::{Dopri5, Dopri5Options, Dopri5Stats};
pub use driver::{integrate_observed, ObserveEvery};
pub use fixed::{Euler, FixedStep, Heun, Rk4};
pub use implicit::{BackwardEuler, ImplicitOptions};
pub use steady::{steady_state, SteadyOptions, SteadyState};
pub use system::{LinearSystem, OdeSystem};
