//! Adaptive Dormand–Prince 5(4) integrator with PI step-size control.
//!
//! This is the default solver for steady-state runs of the multi-class fluid
//! models: early transients (flash crowds) need small steps, while the long
//! relaxation tail towards equilibrium can take steps of many time units.

use super::system::OdeSystem;
use crate::error::NumError;

/// Tolerances and budgets for [`Dopri5`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dopri5Options {
    /// Relative tolerance per component.
    pub rtol: f64,
    /// Absolute tolerance per component.
    pub atol: f64,
    /// Initial step size (`None` → heuristic from the first derivative).
    pub h0: Option<f64>,
    /// Upper bound on the step size (`f64::INFINITY` to disable).
    pub h_max: f64,
    /// Hard cap on accepted + rejected steps.
    pub max_steps: usize,
}

impl Default for Dopri5Options {
    fn default() -> Self {
        Self {
            rtol: 1e-8,
            atol: 1e-10,
            h0: None,
            h_max: f64::INFINITY,
            max_steps: 1_000_000,
        }
    }
}

/// Counters reported after a successful integration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dopri5Stats {
    /// Steps whose error estimate passed the tolerance.
    pub accepted: usize,
    /// Steps that were retried with a smaller h.
    pub rejected: usize,
    /// Right-hand-side evaluations.
    pub rhs_evals: usize,
}

/// The Dormand–Prince 5(4) embedded Runge–Kutta pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dopri5;

// Butcher tableau (Dormand & Prince 1980).
const C: [f64; 7] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
const A: [[f64; 6]; 7] = [
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
    [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
    [
        19372.0 / 6561.0,
        -25360.0 / 2187.0,
        64448.0 / 6561.0,
        -212.0 / 729.0,
        0.0,
        0.0,
    ],
    [
        9017.0 / 3168.0,
        -355.0 / 33.0,
        46732.0 / 5247.0,
        49.0 / 176.0,
        -5103.0 / 18656.0,
        0.0,
    ],
    [
        35.0 / 384.0,
        0.0,
        500.0 / 1113.0,
        125.0 / 192.0,
        -2187.0 / 6784.0,
        11.0 / 84.0,
    ],
];
/// 5th-order weights (same as the last row of A — FSAL).
const B5: [f64; 7] = [
    35.0 / 384.0,
    0.0,
    500.0 / 1113.0,
    125.0 / 192.0,
    -2187.0 / 6784.0,
    11.0 / 84.0,
    0.0,
];
/// 4th-order (embedded) weights.
const B4: [f64; 7] = [
    5179.0 / 57600.0,
    0.0,
    7571.0 / 16695.0,
    393.0 / 640.0,
    -92097.0 / 339200.0,
    187.0 / 2100.0,
    1.0 / 40.0,
];

impl Dopri5 {
    /// Integrates `sys` from `t0` to `t1`, updating `x` in place.
    ///
    /// `on_step(t, x)` is invoked after every *accepted* step (and once at
    /// `t0` with the initial state); use it to record trajectories.
    ///
    /// # Errors
    /// * [`NumError::StepUnderflow`] when the controller cannot meet the
    ///   tolerance even with the minimum representable step.
    /// * [`NumError::NoConvergence`] when `max_steps` is exhausted.
    /// * [`NumError::NonFinite`] when the RHS produces NaN/∞.
    /// * [`NumError::InvalidInput`] for a backwards interval or bad
    ///   tolerances.
    pub fn integrate<S, F>(
        &self,
        sys: &S,
        t0: f64,
        x: &mut [f64],
        t1: f64,
        opts: Dopri5Options,
        mut on_step: F,
    ) -> Result<Dopri5Stats, NumError>
    where
        S: OdeSystem,
        F: FnMut(f64, &[f64]),
    {
        if !(t1 >= t0) {
            return Err(NumError::InvalidInput {
                what: "Dopri5::integrate",
                detail: format!("require t1 >= t0, got t0 = {t0}, t1 = {t1}"),
            });
        }
        if !(opts.rtol > 0.0 && opts.atol > 0.0) {
            return Err(NumError::InvalidInput {
                what: "Dopri5::integrate",
                detail: format!(
                    "tolerances must be > 0, got rtol = {}, atol = {}",
                    opts.rtol, opts.atol
                ),
            });
        }
        let n = sys.dim();
        debug_assert_eq!(x.len(), n);
        let mut stats = Dopri5Stats::default();
        if t1 == t0 {
            on_step(t0, x);
            return Ok(stats);
        }

        let mut k = vec![vec![0.0; n]; 7];
        let mut x5 = vec![0.0; n];
        let mut stage = vec![0.0; n];

        let mut t = t0;
        // FSAL: k[0] holds f(t, x).
        sys.rhs(t, x, &mut k[0]);
        stats.rhs_evals += 1;
        on_step(t, x);

        let mut h = match opts.h0 {
            Some(h0) => h0.min(t1 - t0).min(opts.h_max),
            None => initial_step(sys, t, x, &k[0], opts, &mut stats),
        };
        // PI controller memory.
        let mut err_prev: f64 = 1.0;
        const SAFETY: f64 = 0.9;
        const MIN_SCALE: f64 = 0.2;
        const MAX_SCALE: f64 = 10.0;
        const ALPHA: f64 = 0.7 / 5.0;
        const BETA: f64 = 0.4 / 5.0;

        while t < t1 {
            if stats.accepted + stats.rejected >= opts.max_steps {
                return Err(NumError::NoConvergence {
                    what: "Dopri5::integrate",
                    iterations: opts.max_steps,
                    residual: t1 - t,
                });
            }
            h = h.min(t1 - t).min(opts.h_max);
            if h <= f64::EPSILON * t.abs().max(1.0) {
                return Err(NumError::StepUnderflow { t, h });
            }

            // Stages 1..6 (stage 0 is FSAL-carried).
            for s in 1..7 {
                for i in 0..n {
                    let mut acc = 0.0;
                    for (j, kj) in k.iter().enumerate().take(s) {
                        let a = A[s][j];
                        if a != 0.0 {
                            acc += a * kj[i];
                        }
                    }
                    stage[i] = x[i] + h * acc;
                }
                let (head, tail) = k.split_at_mut(s);
                let _ = head;
                sys.rhs(t + C[s] * h, &stage, &mut tail[0]);
                stats.rhs_evals += 1;
            }

            // 5th-order solution and embedded error estimate.
            let mut err_norm = 0.0f64;
            for i in 0..n {
                let mut acc5 = 0.0;
                let mut acc4 = 0.0;
                for (j, kj) in k.iter().enumerate() {
                    acc5 += B5[j] * kj[i];
                    acc4 += B4[j] * kj[i];
                }
                x5[i] = x[i] + h * acc5;
                let e = h * (acc5 - acc4);
                let scale = opts.atol + opts.rtol * x[i].abs().max(x5[i].abs());
                let r = e / scale;
                err_norm += r * r;
            }
            err_norm = (err_norm / n as f64).sqrt();
            if !err_norm.is_finite() || x5.iter().any(|v| !v.is_finite()) {
                return Err(NumError::NonFinite {
                    what: "Dopri5::integrate",
                    at: t,
                });
            }

            if err_norm <= 1.0 {
                // Accept.
                t += h;
                x.copy_from_slice(&x5);
                // FSAL: k[6] = f(t+h, x5) is next step's k[0].
                let k6 = k[6].clone();
                k[0].copy_from_slice(&k6);
                stats.accepted += 1;
                on_step(t, x);
                let scale = SAFETY * err_norm.max(1e-10).powf(-ALPHA) * err_prev.powf(BETA);
                h *= scale.clamp(MIN_SCALE, MAX_SCALE);
                err_prev = err_norm.max(1e-10);
            } else {
                stats.rejected += 1;
                let scale = SAFETY * err_norm.powf(-ALPHA);
                h *= scale.clamp(MIN_SCALE, 1.0);
            }
        }
        Ok(stats)
    }
}

/// Hairer–Nørsett–Wanner style initial step heuristic.
fn initial_step<S: OdeSystem>(
    sys: &S,
    t: f64,
    x: &[f64],
    f0: &[f64],
    opts: Dopri5Options,
    stats: &mut Dopri5Stats,
) -> f64 {
    let n = x.len();
    let sc: Vec<f64> = x
        .iter()
        .map(|xi| opts.atol + opts.rtol * xi.abs())
        .collect();
    let d0 = norm_scaled(x, &sc);
    let d1 = norm_scaled(f0, &sc);
    let h0 = if d0 < 1e-5 || d1 < 1e-5 {
        1e-6
    } else {
        0.01 * d0 / d1
    };
    // One Euler probe to estimate the second derivative.
    let x1: Vec<f64> = x.iter().zip(f0).map(|(xi, fi)| xi + h0 * fi).collect();
    let mut f1 = vec![0.0; n];
    sys.rhs(t + h0, &x1, &mut f1);
    stats.rhs_evals += 1;
    let d2 = {
        let diff: Vec<f64> = f1.iter().zip(f0).map(|(a, b)| a - b).collect();
        norm_scaled(&diff, &sc) / h0
    };
    let h1 = if d1.max(d2) <= 1e-15 {
        (h0 * 1e-3).max(1e-6)
    } else {
        (0.01 / d1.max(d2)).powf(1.0 / 5.0)
    };
    (100.0 * h0).min(h1).min(opts.h_max)
}

fn norm_scaled(v: &[f64], sc: &[f64]) -> f64 {
    let s: f64 = v.iter().zip(sc).map(|(vi, si)| (vi / si) * (vi / si)).sum();
    (s / v.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::system::{LinearSystem, OdeSystem};

    fn decay() -> LinearSystem {
        LinearSystem::new(vec![-1.0], vec![0.0])
    }

    #[test]
    fn decay_to_tolerance() {
        let mut x = vec![1.0];
        let stats = Dopri5
            .integrate(
                &decay(),
                0.0,
                &mut x,
                5.0,
                Dopri5Options::default(),
                |_, _| {},
            )
            .unwrap();
        assert!((x[0] - (-5.0f64).exp()).abs() < 1e-7);
        assert!(stats.accepted > 0);
    }

    #[test]
    fn tighter_tolerance_means_smaller_error() {
        let run = |rtol: f64| {
            let mut x = vec![1.0];
            Dopri5
                .integrate(
                    &decay(),
                    0.0,
                    &mut x,
                    2.0,
                    Dopri5Options {
                        rtol,
                        atol: rtol * 1e-2,
                        ..Default::default()
                    },
                    |_, _| {},
                )
                .unwrap();
            (x[0] - (-2.0f64).exp()).abs()
        };
        let loose = run(1e-4);
        let tight = run(1e-10);
        assert!(tight < loose, "tight {tight} should beat loose {loose}");
        assert!(tight < 1e-10);
    }

    #[test]
    fn oscillator_long_horizon() {
        let sys = LinearSystem::new(vec![0.0, 1.0, -1.0, 0.0], vec![0.0, 0.0]);
        let mut x = vec![1.0, 0.0];
        let t1 = 20.0 * std::f64::consts::PI; // 10 full periods
        Dopri5
            .integrate(&sys, 0.0, &mut x, t1, Dopri5Options::default(), |_, _| {})
            .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-5, "x = {:?}", x);
        assert!(x[1].abs() < 1e-5);
    }

    #[test]
    fn observer_sees_monotone_times_and_endpoints() {
        let mut x = vec![1.0];
        let mut times = Vec::new();
        Dopri5
            .integrate(
                &decay(),
                0.0,
                &mut x,
                1.0,
                Dopri5Options::default(),
                |t, _| times.push(t),
            )
            .unwrap();
        assert_eq!(times[0], 0.0);
        assert_eq!(*times.last().unwrap(), 1.0);
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn zero_interval_reports_initial_state_only() {
        let mut x = vec![3.0];
        let mut calls = 0;
        let stats = Dopri5
            .integrate(
                &decay(),
                1.0,
                &mut x,
                1.0,
                Dopri5Options::default(),
                |_, _| calls += 1,
            )
            .unwrap();
        assert_eq!(calls, 1);
        assert_eq!(stats.accepted, 0);
        assert_eq!(x[0], 3.0);
    }

    #[test]
    fn backwards_interval_rejected() {
        let mut x = vec![1.0];
        let e = Dopri5
            .integrate(
                &decay(),
                1.0,
                &mut x,
                0.0,
                Dopri5Options::default(),
                |_, _| {},
            )
            .unwrap_err();
        assert!(matches!(e, NumError::InvalidInput { .. }));
    }

    #[test]
    fn bad_tolerances_rejected() {
        let mut x = vec![1.0];
        let opts = Dopri5Options {
            rtol: 0.0,
            ..Default::default()
        };
        let e = Dopri5
            .integrate(&decay(), 0.0, &mut x, 1.0, opts, |_, _| {})
            .unwrap_err();
        assert!(matches!(e, NumError::InvalidInput { .. }));
    }

    #[test]
    fn max_steps_budget_enforced() {
        let mut x = vec![1.0];
        let opts = Dopri5Options {
            max_steps: 3,
            h0: Some(1e-9),
            ..Default::default()
        };
        let e = Dopri5
            .integrate(&decay(), 0.0, &mut x, 1.0e9, opts, |_, _| {})
            .unwrap_err();
        assert!(matches!(e, NumError::NoConvergence { .. }));
    }

    #[test]
    fn nonfinite_rhs_detected() {
        struct Blowup;
        impl OdeSystem for Blowup {
            fn dim(&self) -> usize {
                1
            }
            fn rhs(&self, _t: f64, x: &[f64], d: &mut [f64]) {
                // x' = x², blows up at t = 1/x0; NaNs appear past the pole.
                d[0] = x[0] * x[0];
            }
        }
        let mut x = vec![10.0];
        // Integration to t = 1 passes through the pole at t = 0.1.
        let r = Dopri5.integrate(
            &Blowup,
            0.0,
            &mut x,
            1.0,
            Dopri5Options::default(),
            |_, _| {},
        );
        assert!(r.is_err(), "integration through a pole must fail");
    }

    #[test]
    fn stiff_ish_relaxation_uses_few_steps_late() {
        // Fast transient then slow tail: x' = -100(x - cos t) (mildly stiff).
        struct Relax;
        impl OdeSystem for Relax {
            fn dim(&self) -> usize {
                1
            }
            fn rhs(&self, t: f64, x: &[f64], d: &mut [f64]) {
                d[0] = -100.0 * (x[0] - t.cos());
            }
        }
        let mut x = vec![2.0];
        let stats = Dopri5
            .integrate(
                &Relax,
                0.0,
                &mut x,
                10.0,
                Dopri5Options::default(),
                |_, _| {},
            )
            .unwrap();
        // Exact particular solution: (a² cos t + a sin t)/(a² + 1), a = 100.
        let a = 100.0f64;
        let exact = (a * a * 10.0f64.cos() + a * 10.0f64.sin()) / (a * a + 1.0);
        assert!((x[0] - exact).abs() < 1e-6, "x = {}, exact = {exact}", x[0]);
        assert!(stats.accepted > 10);
    }

    #[test]
    fn h_max_is_respected() {
        let mut x = vec![1.0];
        let mut max_seen: f64 = 0.0;
        let mut last_t = 0.0;
        Dopri5
            .integrate(
                &decay(),
                0.0,
                &mut x,
                10.0,
                Dopri5Options {
                    h_max: 0.25,
                    ..Default::default()
                },
                |t, _| {
                    max_seen = max_seen.max(t - last_t);
                    last_t = t;
                },
            )
            .unwrap();
        assert!(max_seen <= 0.25 + 1e-12, "max step = {max_seen}");
    }
}
