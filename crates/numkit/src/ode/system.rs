//! The ODE right-hand-side trait and simple reference systems.

/// A first-order ODE system `dx/dt = f(t, x)` with fixed dimension.
///
/// Implementations write the derivative into `dxdt` (pre-sized to
/// [`OdeSystem::dim`]) instead of allocating, so the inner integration loops
/// are allocation-free — the fluid-model sweeps solve hundreds of thousands
/// of these.
pub trait OdeSystem {
    /// State dimension (number of equations).
    fn dim(&self) -> usize;

    /// Evaluates the right-hand side at `(t, x)`, writing into `dxdt`.
    ///
    /// `x.len()` and `dxdt.len()` both equal [`OdeSystem::dim`].
    fn rhs(&self, t: f64, x: &[f64], dxdt: &mut [f64]);
}

/// Blanket impl so `&S` can be passed where an owned system is expected.
impl<S: OdeSystem + ?Sized> OdeSystem for &S {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn rhs(&self, t: f64, x: &[f64], dxdt: &mut [f64]) {
        (**self).rhs(t, x, dxdt)
    }
}

/// A constant-coefficient linear system `dx/dt = A·x + b`.
///
/// Reference system for integrator order/accuracy tests (its exact solution
/// is known) and a convenient building block for linearized fluid models.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSystem {
    /// Row-major `n × n` matrix.
    a: Vec<f64>,
    /// Constant forcing vector of length `n`.
    b: Vec<f64>,
    n: usize,
}

impl LinearSystem {
    /// Builds the system from a row-major matrix and forcing vector.
    ///
    /// # Panics
    /// Panics when `a.len() != b.len()²` (programming error).
    pub fn new(a: Vec<f64>, b: Vec<f64>) -> Self {
        let n = b.len();
        assert_eq!(a.len(), n * n, "matrix/vector size mismatch");
        Self { a, b, n }
    }

    /// The matrix entry `A[i][j]`.
    pub fn a(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }
}

impl OdeSystem for LinearSystem {
    fn dim(&self) -> usize {
        self.n
    }

    fn rhs(&self, _t: f64, x: &[f64], dxdt: &mut [f64]) {
        for (i, out) in dxdt.iter_mut().enumerate().take(self.n) {
            let mut acc = self.b[i];
            let row = &self.a[i * self.n..(i + 1) * self.n];
            for (aij, xj) in row.iter().zip(x) {
                acc += aij * xj;
            }
            *out = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_system_rhs() {
        // dx/dt = [[0, 1], [-1, 0]] x + [0, 0]  (harmonic oscillator)
        let sys = LinearSystem::new(vec![0.0, 1.0, -1.0, 0.0], vec![0.0, 0.0]);
        let mut d = vec![0.0; 2];
        sys.rhs(0.0, &[1.0, 0.0], &mut d);
        assert_eq!(d, vec![0.0, -1.0]);
        assert_eq!(sys.dim(), 2);
        assert_eq!(sys.a(0, 1), 1.0);
    }

    #[test]
    fn linear_system_with_forcing() {
        let sys = LinearSystem::new(vec![-1.0], vec![2.0]);
        let mut d = vec![0.0];
        sys.rhs(0.0, &[0.0], &mut d);
        assert_eq!(d[0], 2.0);
        // Fixed point at x = 2.
        sys.rhs(0.0, &[2.0], &mut d);
        assert_eq!(d[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn linear_system_size_mismatch_panics() {
        let _ = LinearSystem::new(vec![1.0, 2.0, 3.0], vec![0.0, 0.0]);
    }

    #[test]
    fn reference_impl_through_borrow() {
        let sys = LinearSystem::new(vec![-1.0], vec![0.0]);
        let by_ref: &dyn OdeSystem = &sys;
        let mut d = vec![0.0];
        by_ref.rhs(0.0, &[3.0], &mut d);
        assert_eq!(d[0], -3.0);
    }
}
