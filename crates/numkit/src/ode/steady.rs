//! Integrate-to-equilibrium driver.
//!
//! Every steady-state figure in the paper is the equilibrium of a fluid ODE.
//! Where a closed form exists (MTCD, MTSD) we use it directly; where it does
//! not (CMFSD transients, sanity cross-checks) we integrate until the scaled
//! right-hand side falls below a tolerance.

use super::dopri5::{Dopri5, Dopri5Options};
use super::system::OdeSystem;
use crate::error::NumError;

/// Stopping rule and budgets for [`steady_state`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyOptions {
    /// Residual tolerance: stop when
    /// `max_i |f_i(x)| / max(1, |x_i|) < residual_tol`.
    pub residual_tol: f64,
    /// Check the residual after every chunk of this much simulated time.
    pub check_interval: f64,
    /// Give up at this simulated time.
    pub t_max: f64,
    /// Tolerances handed to the inner adaptive integrator.
    pub integrator: Dopri5Options,
}

impl Default for SteadyOptions {
    fn default() -> Self {
        Self {
            residual_tol: 1e-9,
            check_interval: 50.0,
            t_max: 1e7,
            integrator: Dopri5Options {
                rtol: 1e-9,
                atol: 1e-11,
                ..Default::default()
            },
        }
    }
}

/// A converged equilibrium.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyState {
    /// Equilibrium state vector.
    pub x: Vec<f64>,
    /// Simulated time at which convergence was declared.
    pub t: f64,
    /// Scaled residual at the reported state.
    pub residual: f64,
}

/// Scaled sup-norm residual `max_i |f_i| / max(1, |x_i|)`.
pub(crate) fn residual<S: OdeSystem>(sys: &S, t: f64, x: &[f64], scratch: &mut [f64]) -> f64 {
    sys.rhs(t, x, scratch);
    x.iter()
        .zip(scratch.iter())
        .map(|(xi, fi)| fi.abs() / xi.abs().max(1.0))
        .fold(0.0, f64::max)
}

/// Integrates `sys` from `x0` until equilibrium.
///
/// # Errors
/// * [`NumError::NoConvergence`] if the residual has not met the tolerance
///   by `t_max`.
/// * Propagates integrator failures ([`NumError::StepUnderflow`] etc.).
/// * [`NumError::InvalidInput`] for nonsensical options.
pub fn steady_state<S: OdeSystem>(
    sys: &S,
    x0: &[f64],
    opts: SteadyOptions,
) -> Result<SteadyState, NumError> {
    if !(opts.residual_tol > 0.0) || !(opts.check_interval > 0.0) || !(opts.t_max > 0.0) {
        return Err(NumError::InvalidInput {
            what: "steady_state",
            detail: "residual_tol, check_interval and t_max must all be > 0".into(),
        });
    }
    let n = sys.dim();
    if x0.len() != n {
        return Err(NumError::InvalidInput {
            what: "steady_state",
            detail: format!("x0 has {} entries, system dim is {n}", x0.len()),
        });
    }
    let mut x = x0.to_vec();
    let mut scratch = vec![0.0; n];
    let mut t = 0.0;

    // Initial state might already be the equilibrium (e.g. warm starts along
    // a parameter sweep).
    let r0 = residual(sys, t, &x, &mut scratch);
    if r0 < opts.residual_tol {
        return Ok(SteadyState { x, t, residual: r0 });
    }

    while t < opts.t_max {
        let t_next = (t + opts.check_interval).min(opts.t_max);
        Dopri5.integrate(sys, t, &mut x, t_next, opts.integrator, |_, _| {})?;
        t = t_next;
        let r = residual(sys, t, &x, &mut scratch);
        if r < opts.residual_tol {
            return Ok(SteadyState { x, t, residual: r });
        }
    }
    let r = residual(sys, t, &x, &mut scratch);
    Err(NumError::NoConvergence {
        what: "steady_state",
        iterations: (opts.t_max / opts.check_interval) as usize,
        residual: r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::system::LinearSystem;

    #[test]
    fn relaxation_finds_fixed_point() {
        // x' = -(x - 5): equilibrium x = 5.
        let sys = LinearSystem::new(vec![-1.0], vec![5.0]);
        let ss = steady_state(&sys, &[0.0], SteadyOptions::default()).unwrap();
        assert!((ss.x[0] - 5.0).abs() < 1e-7, "x = {}", ss.x[0]);
        assert!(ss.residual < 1e-9);
    }

    #[test]
    fn coupled_system_equilibrium() {
        // x' = 1 - x - y, y' = x - 2y  =>  y = x/2, x + x/2 = 1 => x = 2/3.
        let sys = LinearSystem::new(vec![-1.0, -1.0, 1.0, -2.0], vec![1.0, 0.0]);
        let ss = steady_state(&sys, &[0.0, 0.0], SteadyOptions::default()).unwrap();
        assert!((ss.x[0] - 2.0 / 3.0).abs() < 1e-7);
        assert!((ss.x[1] - 1.0 / 3.0).abs() < 1e-7);
    }

    #[test]
    fn already_at_equilibrium_returns_immediately() {
        let sys = LinearSystem::new(vec![-1.0], vec![5.0]);
        let ss = steady_state(&sys, &[5.0], SteadyOptions::default()).unwrap();
        assert_eq!(ss.t, 0.0);
    }

    #[test]
    fn oscillator_never_converges() {
        // Undamped oscillator has no attracting equilibrium away from 0.
        let sys = LinearSystem::new(vec![0.0, 1.0, -1.0, 0.0], vec![0.0, 0.0]);
        let opts = SteadyOptions {
            t_max: 200.0,
            ..Default::default()
        };
        let e = steady_state(&sys, &[1.0, 0.0], opts).unwrap_err();
        assert!(matches!(e, NumError::NoConvergence { .. }));
    }

    #[test]
    fn option_validation() {
        let sys = LinearSystem::new(vec![-1.0], vec![0.0]);
        let bad = SteadyOptions {
            residual_tol: 0.0,
            ..Default::default()
        };
        assert!(steady_state(&sys, &[1.0], bad).is_err());
        let bad_dim = steady_state(&sys, &[1.0, 2.0], SteadyOptions::default());
        assert!(bad_dim.is_err());
    }

    #[test]
    fn residual_is_scaled() {
        // Large state: residual should be relative.
        let sys = LinearSystem::new(vec![-1e-6], vec![1.0]);
        // Equilibrium at 1e6 — the absolute RHS near eq is tiny relative to x.
        let ss = steady_state(
            &sys,
            &[0.9e6],
            SteadyOptions {
                check_interval: 1e6,
                t_max: 1e9,
                residual_tol: 1e-8,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((ss.x[0] - 1e6).abs() / 1e6 < 1e-2);
    }
}
