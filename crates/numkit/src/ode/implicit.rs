//! Implicit (stiff-capable) integration: backward Euler with a damped
//! Newton iteration and finite-difference Jacobians.
//!
//! The fluid models become stiff when bandwidth scales are widely spread
//! (e.g. multiclass systems mixing dial-up and fiber peers: rates differing
//! by 10³). Explicit methods then need steps at the fastest scale; backward
//! Euler is L-stable and can stride over it.

use super::system::OdeSystem;
use crate::error::NumError;
use crate::linalg::{Lu, Matrix};

/// Options for [`BackwardEuler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImplicitOptions {
    /// Newton convergence tolerance on the scaled update norm.
    pub newton_tol: f64,
    /// Maximum Newton iterations per step.
    pub max_newton: usize,
    /// Relative perturbation for finite-difference Jacobians.
    pub fd_eps: f64,
}

impl Default for ImplicitOptions {
    fn default() -> Self {
        Self {
            newton_tol: 1e-10,
            max_newton: 25,
            fd_eps: 1e-7,
        }
    }
}

/// Backward (implicit) Euler: solves `x₁ = x₀ + h·f(t₁, x₁)` per step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackwardEuler {
    /// Newton/Jacobian options.
    pub options: ImplicitOptions,
}

impl BackwardEuler {
    /// Creates the method with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finite-difference Jacobian of `f` at `(t, x)`.
    fn jacobian<S: OdeSystem>(&self, sys: &S, t: f64, x: &[f64]) -> Matrix {
        let n = sys.dim();
        let mut jac = Matrix::zeros(n);
        let mut f0 = vec![0.0; n];
        sys.rhs(t, x, &mut f0);
        let mut xp = x.to_vec();
        let mut fp = vec![0.0; n];
        for j in 0..n {
            let h = self.options.fd_eps * x[j].abs().max(1.0);
            xp[j] = x[j] + h;
            sys.rhs(t, &xp, &mut fp);
            xp[j] = x[j];
            for i in 0..n {
                jac[(i, j)] = (fp[i] - f0[i]) / h;
            }
        }
        jac
    }

    /// Advances `x` from `t` to `t + h` in place.
    ///
    /// # Errors
    /// Returns [`NumError::NoConvergence`] when Newton stalls and
    /// propagates singular-Jacobian failures.
    pub fn step<S: OdeSystem>(
        &self,
        sys: &S,
        t: f64,
        x: &mut [f64],
        h: f64,
    ) -> Result<(), NumError> {
        let n = sys.dim();
        let t1 = t + h;
        // Predictor: explicit Euler.
        let mut f = vec![0.0; n];
        sys.rhs(t, x, &mut f);
        let x0 = x.to_vec();
        let mut xk: Vec<f64> = x.iter().zip(&f).map(|(xi, fi)| xi + h * fi).collect();

        for _iter in 0..self.options.max_newton {
            // Residual g(x) = x − x0 − h·f(t1, x).
            sys.rhs(t1, &xk, &mut f);
            let g: Vec<f64> = (0..n).map(|i| xk[i] - x0[i] - h * f[i]).collect();
            // Newton matrix M = I − h·J.
            let jac = self.jacobian(sys, t1, &xk);
            let mut m = Matrix::identity(n);
            for i in 0..n {
                for j in 0..n {
                    m[(i, j)] -= h * jac[(i, j)];
                }
            }
            let delta = Lu::factor(&m)?.solve(&g);
            let mut norm = 0.0f64;
            for i in 0..n {
                xk[i] -= delta[i];
                norm = norm.max(delta[i].abs() / xk[i].abs().max(1.0));
            }
            if norm < self.options.newton_tol {
                x.copy_from_slice(&xk);
                return Ok(());
            }
        }
        Err(NumError::NoConvergence {
            what: "BackwardEuler::step (Newton)",
            iterations: self.options.max_newton,
            residual: f64::NAN,
        })
    }

    /// Integrates from `t0` to `t1` with fixed step `h` (last step shrinks
    /// to land on `t1`).
    ///
    /// # Errors
    /// Propagates per-step failures.
    pub fn integrate<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        x: &mut [f64],
        t1: f64,
        h: f64,
    ) -> Result<(), NumError> {
        if !(h > 0.0) || t1 < t0 {
            return Err(NumError::InvalidInput {
                what: "BackwardEuler::integrate",
                detail: format!("need h > 0 and t1 >= t0, got h = {h}, t0 = {t0}, t1 = {t1}"),
            });
        }
        let mut t = t0;
        while t < t1 {
            let step = h.min(t1 - t);
            self.step(sys, t, x, step)?;
            t += step;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::fixed::{FixedStep, Rk4};
    use crate::ode::system::LinearSystem;

    /// Very stiff decay: x' = -1000(x - cos t).
    struct Stiff;
    impl OdeSystem for Stiff {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, t: f64, x: &[f64], d: &mut [f64]) {
            d[0] = -1000.0 * (x[0] - t.cos());
        }
    }

    #[test]
    fn stable_on_stiff_problem_with_large_steps() {
        // Explicit RK4 at h = 0.01 has hλ = -10 — far outside its
        // stability region, so it explodes; backward Euler strides along.
        let mut x_exp = vec![2.0];
        Rk4.integrate(&Stiff, 0.0, &mut x_exp, 1.0, 0.01);
        assert!(
            !x_exp[0].is_finite() || x_exp[0].abs() > 1e3,
            "RK4 should blow up, got {}",
            x_exp[0]
        );

        let mut x_imp = vec![2.0];
        BackwardEuler::new()
            .integrate(&Stiff, 0.0, &mut x_imp, 1.0, 0.01)
            .unwrap();
        // Tracks cos(t) within O(h) + boundary layer.
        assert!((x_imp[0] - 1.0f64.cos()).abs() < 0.02, "x = {}", x_imp[0]);
    }

    #[test]
    fn first_order_accuracy() {
        let sys = LinearSystem::new(vec![-1.0], vec![0.0]);
        let run = |h: f64| {
            let mut x = vec![1.0];
            BackwardEuler::new()
                .integrate(&sys, 0.0, &mut x, 1.0, h)
                .unwrap();
            (x[0] - (-1.0f64).exp()).abs()
        };
        let e1 = run(1e-2);
        let e2 = run(5e-3);
        let ratio = e1 / e2;
        assert!((ratio - 2.0).abs() < 0.3, "first order: ratio = {ratio}");
    }

    #[test]
    fn matches_exact_on_linear_system() {
        // 2x2 coupled system, small step for accuracy.
        let sys = LinearSystem::new(vec![-1.0, -1.0, 1.0, -2.0], vec![1.0, 0.0]);
        let mut x = vec![0.0, 0.0];
        BackwardEuler::new()
            .integrate(&sys, 0.0, &mut x, 50.0, 0.05)
            .unwrap();
        // Equilibrium x = 2/3, y = 1/3.
        assert!((x[0] - 2.0 / 3.0).abs() < 1e-4);
        assert!((x[1] - 1.0 / 3.0).abs() < 1e-4);
    }

    #[test]
    fn invalid_input_rejected() {
        let sys = LinearSystem::new(vec![-1.0], vec![0.0]);
        let mut x = vec![1.0];
        assert!(BackwardEuler::new()
            .integrate(&sys, 0.0, &mut x, 1.0, 0.0)
            .is_err());
        assert!(BackwardEuler::new()
            .integrate(&sys, 1.0, &mut x, 0.0, 0.1)
            .is_err());
    }

    #[test]
    fn works_on_cmfsd_scale_dimensions() {
        // A 30-dimensional relaxation system: x' = -(x - b).
        let n = 30;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = -(1.0 + i as f64);
        }
        let b: Vec<f64> = (0..n).map(|i| (1.0 + i as f64) * 2.0).collect();
        let sys = LinearSystem::new(a, b);
        let mut x = vec![0.0; n];
        BackwardEuler::new()
            .integrate(&sys, 0.0, &mut x, 30.0, 0.1)
            .unwrap();
        for &xi in &x {
            assert!((xi - 2.0).abs() < 1e-3, "xi = {xi}");
        }
    }
}
