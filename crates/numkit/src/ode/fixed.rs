//! Fixed-step explicit Runge–Kutta methods: Euler, Heun and classical RK4.

use super::system::OdeSystem;

/// A fixed-step one-step method.
///
/// `step` advances the state in place by `h`; the default `integrate` walks
/// from `t0` to `t1` with steps of at most `h`, shrinking the final step to
/// land on `t1` exactly.
pub trait FixedStep {
    /// Classical order of accuracy of the method (for tests/step heuristics).
    fn order(&self) -> usize;

    /// Advances `x` from `t` to `t + h` in place.
    fn step<S: OdeSystem>(&self, sys: &S, t: f64, x: &mut [f64], h: f64);

    /// Integrates from `t0` to `t1` with step `h` (the last step shrinks to
    /// hit `t1` exactly). `x` holds `x(t0)` on entry and `x(t1)` on exit.
    ///
    /// # Panics
    /// Panics when `h <= 0` or `t1 < t0` (programming errors — all call
    /// sites in this workspace construct these from validated parameters).
    fn integrate<S: OdeSystem>(&self, sys: &S, t0: f64, x: &mut [f64], t1: f64, h: f64) {
        assert!(h > 0.0, "step size must be positive, got {h}");
        assert!(t1 >= t0, "t1 = {t1} must be >= t0 = {t0}");
        let mut t = t0;
        while t < t1 {
            let step = h.min(t1 - t);
            self.step(sys, t, x, step);
            t += step;
        }
    }
}

/// Forward Euler (order 1). Mostly useful as a baseline in convergence tests
/// and for very smooth relaxation dynamics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euler;

impl FixedStep for Euler {
    fn order(&self) -> usize {
        1
    }

    fn step<S: OdeSystem>(&self, sys: &S, t: f64, x: &mut [f64], h: f64) {
        let n = sys.dim();
        debug_assert_eq!(x.len(), n);
        let mut k = vec![0.0; n];
        sys.rhs(t, x, &mut k);
        for (xi, ki) in x.iter_mut().zip(&k) {
            *xi += h * ki;
        }
    }
}

/// Heun's method (explicit trapezoid, order 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Heun;

impl FixedStep for Heun {
    fn order(&self) -> usize {
        2
    }

    fn step<S: OdeSystem>(&self, sys: &S, t: f64, x: &mut [f64], h: f64) {
        let n = sys.dim();
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut pred = vec![0.0; n];
        sys.rhs(t, x, &mut k1);
        for i in 0..n {
            pred[i] = x[i] + h * k1[i];
        }
        sys.rhs(t + h, &pred, &mut k2);
        for i in 0..n {
            x[i] += 0.5 * h * (k1[i] + k2[i]);
        }
    }
}

/// Classical fourth-order Runge–Kutta.
///
/// The default fixed-step method for transient fluid-model trajectories
/// (Figure X5, flash-crowd analysis); cheap, fourth order, and the step can
/// be chosen from the slowest time constant `1/γ`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rk4;

impl FixedStep for Rk4 {
    fn order(&self) -> usize {
        4
    }

    fn step<S: OdeSystem>(&self, sys: &S, t: f64, x: &mut [f64], h: f64) {
        let n = sys.dim();
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut k3 = vec![0.0; n];
        let mut k4 = vec![0.0; n];
        let mut tmp = vec![0.0; n];

        sys.rhs(t, x, &mut k1);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * h * k1[i];
        }
        sys.rhs(t + 0.5 * h, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * h * k2[i];
        }
        sys.rhs(t + 0.5 * h, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = x[i] + h * k3[i];
        }
        sys.rhs(t + h, &tmp, &mut k4);
        for i in 0..n {
            x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::system::LinearSystem;

    /// dx/dt = -x, exact solution e^{-t}.
    fn decay() -> LinearSystem {
        LinearSystem::new(vec![-1.0], vec![0.0])
    }

    fn integrate_decay<M: FixedStep>(m: &M, h: f64) -> f64 {
        let mut x = vec![1.0];
        m.integrate(&decay(), 0.0, &mut x, 1.0, h);
        (x[0] - (-1.0f64).exp()).abs()
    }

    #[test]
    fn euler_converges_first_order() {
        let e1 = integrate_decay(&Euler, 1e-2);
        let e2 = integrate_decay(&Euler, 5e-3);
        let ratio = e1 / e2;
        assert!(
            (ratio - 2.0).abs() < 0.2,
            "halving h should halve the error, ratio = {ratio}"
        );
    }

    #[test]
    fn heun_converges_second_order() {
        let e1 = integrate_decay(&Heun, 1e-2);
        let e2 = integrate_decay(&Heun, 5e-3);
        let ratio = e1 / e2;
        assert!(
            (ratio - 4.0).abs() < 0.5,
            "halving h should quarter the error, ratio = {ratio}"
        );
    }

    #[test]
    fn rk4_converges_fourth_order() {
        let e1 = integrate_decay(&Rk4, 1e-1);
        let e2 = integrate_decay(&Rk4, 5e-2);
        let ratio = e1 / e2;
        assert!(
            (ratio - 16.0).abs() < 3.0,
            "halving h should give 16x smaller error, ratio = {ratio}"
        );
    }

    #[test]
    fn rk4_high_accuracy_small_step() {
        assert!(integrate_decay(&Rk4, 1e-3) < 1e-12);
    }

    #[test]
    fn orders_reported() {
        assert_eq!(Euler.order(), 1);
        assert_eq!(Heun.order(), 2);
        assert_eq!(Rk4.order(), 4);
    }

    #[test]
    fn harmonic_oscillator_energy_rk4() {
        // x'' = -x as a 2-system; energy x² + v² should be conserved to
        // O(h⁴) per unit time.
        let sys = LinearSystem::new(vec![0.0, 1.0, -1.0, 0.0], vec![0.0, 0.0]);
        let mut x = vec![1.0, 0.0];
        Rk4.integrate(&sys, 0.0, &mut x, 2.0 * std::f64::consts::PI, 1e-2);
        let energy = x[0] * x[0] + x[1] * x[1];
        assert!((energy - 1.0).abs() < 1e-7, "energy drifted to {energy}");
        // One full period returns to the start.
        assert!((x[0] - 1.0).abs() < 1e-6 && x[1].abs() < 1e-6);
    }

    #[test]
    fn integrate_lands_exactly_on_t1() {
        // h does not divide the interval; the final shortened step must land
        // on t1 so the comparison against the analytic value is fair.
        let mut x = vec![1.0];
        Rk4.integrate(&decay(), 0.0, &mut x, 0.95, 0.1);
        // RK4 global error at h = 0.1 is O(h⁴) ≈ 1e-7 for this problem.
        assert!((x[0] - (-0.95f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn zero_length_interval_is_identity() {
        let mut x = vec![7.0];
        Rk4.integrate(&decay(), 3.0, &mut x, 3.0, 0.1);
        assert_eq!(x[0], 7.0);
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn nonpositive_step_panics() {
        let mut x = vec![1.0];
        Euler.integrate(&decay(), 0.0, &mut x, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be >=")]
    fn backwards_interval_panics() {
        let mut x = vec![1.0];
        Euler.integrate(&decay(), 1.0, &mut x, 0.0, 0.1);
    }

    #[test]
    fn forced_linear_system_reaches_fixed_point() {
        // dx/dt = -(x - 5) relaxes to 5.
        let sys = LinearSystem::new(vec![-1.0], vec![5.0]);
        let mut x = vec![0.0];
        Rk4.integrate(&sys, 0.0, &mut x, 40.0, 0.05);
        assert!((x[0] - 5.0).abs() < 1e-9);
    }
}
