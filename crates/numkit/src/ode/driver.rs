//! Observed integration: record a trajectory into a [`TimeSeries`].

use super::fixed::FixedStep;
use super::system::OdeSystem;
use crate::error::NumError;
use crate::series::TimeSeries;

/// Sampling policy for [`integrate_observed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObserveEvery {
    /// Record every integration step.
    Step,
    /// Record at (approximately) fixed time intervals `dt`.
    Time(f64),
}

/// Integrates `sys` from `t0` to `t1` with a fixed-step method, recording the
/// sampled trajectory into a fresh [`TimeSeries`] whose channels are named
/// `x0, x1, …` (or the provided `names`).
///
/// # Errors
/// Returns [`NumError::InvalidInput`] for inconsistent names/step/interval.
#[allow(clippy::too_many_arguments)] // a flat argument list mirrors the math: (method, system, t0, x0, t1, h, sampling, names)
pub fn integrate_observed<M, S>(
    method: &M,
    sys: &S,
    t0: f64,
    x0: &[f64],
    t1: f64,
    h: f64,
    observe: ObserveEvery,
    names: Option<Vec<String>>,
) -> Result<TimeSeries, NumError>
where
    M: FixedStep,
    S: OdeSystem,
{
    let n = sys.dim();
    if x0.len() != n {
        return Err(NumError::InvalidInput {
            what: "integrate_observed",
            detail: format!("x0 has {} entries, system dim is {n}", x0.len()),
        });
    }
    if !(h > 0.0) {
        return Err(NumError::InvalidInput {
            what: "integrate_observed",
            detail: format!("step must be > 0, got {h}"),
        });
    }
    if t1 < t0 {
        return Err(NumError::InvalidInput {
            what: "integrate_observed",
            detail: format!("t1 = {t1} < t0 = {t0}"),
        });
    }
    let names = match names {
        Some(ns) => {
            if ns.len() != n {
                return Err(NumError::InvalidInput {
                    what: "integrate_observed",
                    detail: format!("{} names for {n} channels", ns.len()),
                });
            }
            ns
        }
        None => (0..n).map(|i| format!("x{i}")).collect(),
    };
    if let ObserveEvery::Time(dt) = observe {
        if !(dt > 0.0) {
            return Err(NumError::InvalidInput {
                what: "integrate_observed",
                detail: format!("observation interval must be > 0, got {dt}"),
            });
        }
    }

    let mut series = TimeSeries::new(names)?;
    let mut x = x0.to_vec();
    let mut t = t0;
    series.push(t, &x)?;
    let mut next_obs = match observe {
        ObserveEvery::Step => t0,
        ObserveEvery::Time(dt) => t0 + dt,
    };
    while t < t1 {
        let step = h.min(t1 - t);
        method.step(sys, t, &mut x, step);
        t += step;
        let record = match observe {
            ObserveEvery::Step => true,
            ObserveEvery::Time(_) => t + 1e-12 >= next_obs || t >= t1,
        };
        if record {
            series.push(t, &x)?;
            if let ObserveEvery::Time(dt) = observe {
                while next_obs <= t {
                    next_obs += dt;
                }
            }
        }
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::fixed::Rk4;
    use crate::ode::system::LinearSystem;

    fn decay() -> LinearSystem {
        LinearSystem::new(vec![-1.0], vec![0.0])
    }

    #[test]
    fn records_every_step() {
        let s = integrate_observed(
            &Rk4,
            &decay(),
            0.0,
            &[1.0],
            1.0,
            0.125,
            ObserveEvery::Step,
            None,
        )
        .unwrap();
        // 8 exactly representable steps + initial row.
        assert_eq!(s.len(), 9);
        assert_eq!(s.names()[0], "x0");
        let last = s.last().unwrap();
        assert!((last.0 - 1.0).abs() < 1e-12);
        assert!((last.1[0] - (-1.0f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn records_at_time_intervals() {
        let s = integrate_observed(
            &Rk4,
            &decay(),
            0.0,
            &[1.0],
            1.0,
            0.01,
            ObserveEvery::Time(0.25),
            None,
        )
        .unwrap();
        // t = 0, .25, .5, .75, 1.0 -> 5 rows.
        assert_eq!(s.len(), 5);
        for (i, &t) in s.times().iter().enumerate() {
            assert!((t - 0.25 * i as f64).abs() < 1e-9, "t[{i}] = {t}");
        }
    }

    #[test]
    fn custom_names_used() {
        let s = integrate_observed(
            &Rk4,
            &decay(),
            0.0,
            &[1.0],
            0.5,
            0.1,
            ObserveEvery::Step,
            Some(vec!["downloaders".into()]),
        )
        .unwrap();
        assert_eq!(s.names()[0], "downloaders");
    }

    #[test]
    fn validation_errors() {
        let bad_x0 = integrate_observed(
            &Rk4,
            &decay(),
            0.0,
            &[1.0, 2.0],
            1.0,
            0.1,
            ObserveEvery::Step,
            None,
        );
        assert!(bad_x0.is_err());
        let bad_h = integrate_observed(
            &Rk4,
            &decay(),
            0.0,
            &[1.0],
            1.0,
            0.0,
            ObserveEvery::Step,
            None,
        );
        assert!(bad_h.is_err());
        let bad_interval = integrate_observed(
            &Rk4,
            &decay(),
            0.0,
            &[1.0],
            1.0,
            0.1,
            ObserveEvery::Time(0.0),
            None,
        );
        assert!(bad_interval.is_err());
        let bad_names = integrate_observed(
            &Rk4,
            &decay(),
            0.0,
            &[1.0],
            1.0,
            0.1,
            ObserveEvery::Step,
            Some(vec!["a".into(), "b".into()]),
        );
        assert!(bad_names.is_err());
        let bad_t = integrate_observed(
            &Rk4,
            &decay(),
            1.0,
            &[1.0],
            0.0,
            0.1,
            ObserveEvery::Step,
            None,
        );
        assert!(bad_t.is_err());
    }

    #[test]
    fn trajectory_matches_analytic_solution_pointwise() {
        let s = integrate_observed(
            &Rk4,
            &decay(),
            0.0,
            &[1.0],
            2.0,
            0.05,
            ObserveEvery::Step,
            None,
        )
        .unwrap();
        let xs = s.channel(0);
        for (&t, &x) in s.times().iter().zip(&xs) {
            assert!((x - (-t).exp()).abs() < 1e-7, "t = {t}");
        }
    }
}
