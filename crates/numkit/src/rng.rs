//! Deterministic pseudo-random number generation.
//!
//! The workspace deliberately ships its own generators instead of depending
//! on the `rand` crate: every figure in EXPERIMENTS.md must be bit-exact
//! reproducible across platforms and across dependency upgrades, and the
//! simulator needs cheap *stream splitting* (one independent stream per
//! replication, per peer-arrival process, per subsystem) with a documented
//! algorithm.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny 64-bit generator used for seeding and for
//!   deriving independent substreams.
//! * [`Xoshiro256StarStar`] — the workhorse generator (Blackman & Vigna,
//!   2018): 256-bit state, period `2^256 − 1`, excellent statistical quality
//!   and a `jump()` function giving `2^128` non-overlapping subsequences.

/// Minimal trait implemented by the generators in this module.
///
/// The simulator and samplers are generic over `RngCore` so tests can inject
/// counting or constant generators.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in the half-open interval `[0, 1)`.
    ///
    /// Uses the top 53 bits of [`RngCore::next_u64`], the standard
    /// "multiply by 2^-53" construction, so every returned value is an exact
    /// multiple of 2⁻⁵³.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in the open interval `(0, 1]`.
    ///
    /// Useful for `ln(u)` style inverse-CDF sampling where `u = 0` would
    /// produce `-inf`.
    fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, n)` using Lemire's rejection method
    /// (unbiased).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0) is meaningless");
        // Lemire's multiply-shift rejection sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// SplitMix64 (Steele, Lea & Flood 2014). Used for seeding and splitting.
///
/// Not a statistical workhorse on its own, but its output function is a
/// strong 64-bit mix, which makes it the canonical seeder for xoshiro-family
/// generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent child seed; advancing `self` once per call.
    ///
    /// Children derived from distinct indices of the same parent are
    /// statistically independent for all practical purposes.
    pub fn split(&mut self) -> u64 {
        self.next_u64()
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256★★ (Blackman & Vigna 2018): the workspace's default generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the 256-bit state from a 64-bit seed through SplitMix64, as
    /// recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one forbidden fixed point; SplitMix64
        // cannot emit four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Derives the `index`-th independent stream from a base seed.
    ///
    /// Streams with distinct `(seed, index)` pairs are independent: the index
    /// is folded into the seed through a SplitMix64 round, then the state is
    /// expanded as usual.
    pub fn stream(seed: u64, index: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // Burn `index`-dependent entropy into the seeder so that nearby
        // indices yield unrelated states.
        let folded = sm.next_u64() ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
        Self::seed_from_u64(folded)
    }

    /// Returns the raw 256-bit state, for checkpointing.
    ///
    /// Round-trips exactly through [`Xoshiro256StarStar::from_state`]: a
    /// generator rebuilt from the returned words produces the same output
    /// sequence as the original from this point on.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state previously captured with
    /// [`Xoshiro256StarStar::state`].
    ///
    /// # Panics
    /// Panics on the all-zero state, the generator's one forbidden fixed
    /// point (it can never be produced by a live generator, so encountering
    /// it means the caller's bytes are corrupt).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s != [0, 0, 0, 0],
            "all-zero xoshiro256** state is unreachable; refusing to restore"
        );
        Self { s }
    }

    /// Advances the state by 2¹²⁸ steps, equivalent to that many `next_u64`
    /// calls; used to carve non-overlapping subsequences out of one stream.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_9759_90E0_741C,
            0x39AB_DC45_29B1_661C,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 from the public-domain C version.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_distinct_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_distinct() {
        let mut s0 = Xoshiro256StarStar::stream(7, 0);
        let mut s1 = Xoshiro256StarStar::stream(7, 1);
        let collisions = (0..64).filter(|_| s0.next_u64() == s1.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn next_f64_open_never_zero() {
        // A generator that always yields 0 exercises the open-interval shift.
        struct Zero;
        impl RngCore for Zero {
            fn next_u64(&mut self) -> u64 {
                0
            }
        }
        let mut z = Zero;
        assert!(z.next_f64() == 0.0);
        assert!(z.next_f64_open() > 0.0);
        assert!(z.next_f64_open() <= 1.0);
    }

    #[test]
    fn next_below_covers_range_uniformly() {
        let mut r = Xoshiro256StarStar::seed_from_u64(11);
        let n = 10u64;
        let mut counts = [0usize; 10];
        let draws = 100_000;
        for _ in 0..draws {
            counts[r.next_below(n) as usize] += 1;
        }
        let expect = draws as f64 / n as f64;
        for (v, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "value {v} count {c} deviates {dev:.3}");
        }
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        let mut r = SplitMix64::new(0);
        let _ = r.next_below(0);
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = Xoshiro256StarStar::seed_from_u64(5);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn jump_produces_disjoint_sequence_prefix() {
        let mut base = Xoshiro256StarStar::seed_from_u64(99);
        let mut jumped = base.clone();
        jumped.jump();
        let matches = (0..64)
            .filter(|_| base.next_u64() == jumped.next_u64())
            .count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn split_derives_child_seeds() {
        let mut parent = SplitMix64::new(123);
        let a = parent.split();
        let b = parent.split();
        assert_ne!(a, b);
    }
}
