//! Labelled time-series container shared by ODE observers, the simulator's
//! population tracker and the experiment harness.

use crate::error::NumError;
use crate::interp::LinearInterp;

/// A time-indexed multi-channel series: one time column, `k` named channels.
///
/// Rows must be appended in non-decreasing time order; channel count is fixed
/// at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    names: Vec<String>,
    times: Vec<f64>,
    /// Row-major: `values[row * channels + ch]`.
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with the given channel names.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when no channels are supplied.
    pub fn new<S: Into<String>>(names: Vec<S>) -> Result<Self, NumError> {
        if names.is_empty() {
            return Err(NumError::InvalidInput {
                what: "TimeSeries::new",
                detail: "need at least one channel".into(),
            });
        }
        Ok(Self {
            names: names.into_iter().map(Into::into).collect(),
            times: Vec::new(),
            values: Vec::new(),
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.names.len()
    }

    /// Channel names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of recorded rows.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series has no rows yet.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Appends one row.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] if the row width is wrong or time
    /// went backwards.
    pub fn push(&mut self, t: f64, row: &[f64]) -> Result<(), NumError> {
        if row.len() != self.channels() {
            return Err(NumError::InvalidInput {
                what: "TimeSeries::push",
                detail: format!("row has {} values, expected {}", row.len(), self.channels()),
            });
        }
        if let Some(&last) = self.times.last() {
            if t < last {
                return Err(NumError::InvalidInput {
                    what: "TimeSeries::push",
                    detail: format!("time went backwards: {t} < {last}"),
                });
            }
        }
        self.times.push(t);
        self.values.extend_from_slice(row);
        Ok(())
    }

    /// The time column.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The raw row-major value buffer (`values[row * channels + ch]`), for
    /// checkpointing. Inverse of [`TimeSeries::from_raw`].
    pub fn raw_values(&self) -> &[f64] {
        &self.values
    }

    /// Rebuilds a series from raw columns captured via
    /// [`TimeSeries::names`], [`TimeSeries::times`] and
    /// [`TimeSeries::raw_values`].
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when no channels are supplied or
    /// `values.len() != times.len() * names.len()`.
    pub fn from_raw(
        names: Vec<String>,
        times: Vec<f64>,
        values: Vec<f64>,
    ) -> Result<Self, NumError> {
        if names.is_empty() {
            return Err(NumError::InvalidInput {
                what: "TimeSeries::from_raw",
                detail: "need at least one channel".into(),
            });
        }
        if values.len() != times.len() * names.len() {
            return Err(NumError::InvalidInput {
                what: "TimeSeries::from_raw",
                detail: format!(
                    "value buffer has {} entries, expected {} rows × {} channels",
                    values.len(),
                    times.len(),
                    names.len()
                ),
            });
        }
        Ok(Self {
            names,
            times,
            values,
        })
    }

    /// Copies out channel `ch` as a dense vector.
    ///
    /// # Panics
    /// Panics when `ch` is out of range (programming error).
    pub fn channel(&self, ch: usize) -> Vec<f64> {
        assert!(ch < self.channels(), "channel {ch} out of range");
        self.times
            .iter()
            .enumerate()
            .map(|(row, _)| self.values[row * self.channels() + ch])
            .collect()
    }

    /// Looks a channel up by name.
    pub fn channel_by_name(&self, name: &str) -> Option<Vec<f64>> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|ch| self.channel(ch))
    }

    /// The last row, if any, as `(t, values)`.
    pub fn last(&self) -> Option<(f64, &[f64])> {
        if self.is_empty() {
            return None;
        }
        let row = self.len() - 1;
        let k = self.channels();
        Some((self.times[row], &self.values[row * k..(row + 1) * k]))
    }

    /// Builds a linear interpolant for one channel (requires ≥ 2 rows with
    /// strictly increasing times; duplicate time stamps are collapsed,
    /// keeping the last value).
    ///
    /// # Errors
    /// Propagates [`LinearInterp::new`] errors (e.g. fewer than two distinct
    /// times).
    pub fn interpolant(&self, ch: usize) -> Result<LinearInterp, NumError> {
        let ys = self.channel(ch);
        // Deduplicate equal consecutive timestamps, keeping the last sample.
        let mut xs_d = Vec::with_capacity(self.times.len());
        let mut ys_d = Vec::with_capacity(self.times.len());
        for (&t, &y) in self.times.iter().zip(&ys) {
            if xs_d.last() == Some(&t) {
                *ys_d.last_mut().expect("parallel vec") = y;
            } else {
                xs_d.push(t);
                ys_d.push(y);
            }
        }
        LinearInterp::new(&xs_d, &ys_d)
    }

    /// Renders the series as CSV with a header row (`t,<names...>`).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(32 * (self.len() + 1));
        out.push('t');
        for n in &self.names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        let k = self.channels();
        for (row, &t) in self.times.iter().enumerate() {
            out.push_str(&format!("{t}"));
            for ch in 0..k {
                out.push_str(&format!(",{}", self.values[row * k + ch]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeSeries {
        let mut s = TimeSeries::new(vec!["x", "y"]).unwrap();
        s.push(0.0, &[1.0, 2.0]).unwrap();
        s.push(1.0, &[3.0, 4.0]).unwrap();
        s.push(2.0, &[5.0, 6.0]).unwrap();
        s
    }

    #[test]
    fn push_and_read_back() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.channels(), 2);
        assert_eq!(s.channel(0), vec![1.0, 3.0, 5.0]);
        assert_eq!(s.channel(1), vec![2.0, 4.0, 6.0]);
        assert_eq!(s.times(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn channel_by_name() {
        let s = sample();
        assert_eq!(s.channel_by_name("y").unwrap(), vec![2.0, 4.0, 6.0]);
        assert!(s.channel_by_name("z").is_none());
    }

    #[test]
    fn rejects_bad_rows() {
        let mut s = sample();
        assert!(s.push(3.0, &[1.0]).is_err());
        assert!(s.push(1.5, &[0.0, 0.0]).is_err()); // time goes backwards
    }

    #[test]
    fn rejects_empty_channels() {
        assert!(TimeSeries::new(Vec::<String>::new()).is_err());
    }

    #[test]
    fn last_row() {
        let s = sample();
        let (t, row) = s.last().unwrap();
        assert_eq!(t, 2.0);
        assert_eq!(row, &[5.0, 6.0]);
        let empty = TimeSeries::new(vec!["a"]).unwrap();
        assert!(empty.last().is_none());
    }

    #[test]
    fn interpolant_works() {
        let s = sample();
        let f = s.interpolant(0).unwrap();
        assert!((f.eval(0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn interpolant_collapses_duplicate_times() {
        let mut s = TimeSeries::new(vec!["x"]).unwrap();
        s.push(0.0, &[1.0]).unwrap();
        s.push(0.0, &[2.0]).unwrap(); // same stamp, keep last
        s.push(1.0, &[3.0]).unwrap();
        let f = s.interpolant(0).unwrap();
        assert_eq!(f.eval(0.0), 2.0);
        assert_eq!(f.eval(1.0), 3.0);
    }

    #[test]
    fn csv_round_shape() {
        let s = sample();
        let csv = s.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "t,x,y");
        assert_eq!(lines.next().unwrap(), "0,1,2");
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn channel_out_of_range_panics() {
        let s = sample();
        let _ = s.channel(5);
    }
}
