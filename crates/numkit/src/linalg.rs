//! Small dense linear algebra: LU factorization with partial pivoting.
//!
//! Sized for the workspace's needs — Newton steps inside the implicit ODE
//! solver factor Jacobians of dimension `≤ K(K+1)/2 + K` (65 for the
//! paper's `K = 10`), where a simple `O(n³)` LU is exactly right.

use crate::error::NumError;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates the identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != n²`.
    pub fn from_rows(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "need n² entries");
        Self { n, data }
    }

    /// Dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| {
                self.data[i * self.n..(i + 1) * self.n]
                    .iter()
                    .zip(x)
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// An LU factorization `P·A = L·U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    pivots: Vec<usize>,
    /// Sign of the permutation (for the determinant).
    sign: f64,
}

impl Lu {
    /// Factors the matrix.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when the matrix is numerically
    /// singular (a pivot below `1e-300`).
    pub fn factor(a: &Matrix) -> Result<Self, NumError> {
        let n = a.n();
        let mut lu = a.clone();
        let mut pivots: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for col in 0..n {
            // Partial pivot: largest |entry| in this column at/below the
            // diagonal.
            let mut p = col;
            let mut best = lu[(col, col)].abs();
            for row in col + 1..n {
                let v = lu[(row, col)].abs();
                if v > best {
                    best = v;
                    p = row;
                }
            }
            if best < 1e-300 {
                return Err(NumError::InvalidInput {
                    what: "Lu::factor",
                    detail: format!("matrix is singular at column {col}"),
                });
            }
            if p != col {
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                pivots.swap(col, p);
                sign = -sign;
            }
            let pivot = lu[(col, col)];
            for row in col + 1..n {
                let factor = lu[(row, col)] / pivot;
                lu[(row, col)] = factor;
                for j in col + 1..n {
                    let upper = lu[(col, j)];
                    lu[(row, j)] -= factor * upper;
                }
            }
        }
        Ok(Self { lu, pivots, sign })
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.n();
        assert_eq!(b.len(), n);
        // Apply the permutation.
        let mut x: Vec<f64> = self.pivots.iter().map(|&p| b[p]).collect();
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            for j in 0..i {
                x[i] -= self.lu[(i, j)] * x[j];
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            for j in i + 1..n {
                x[i] -= self.lu[(i, j)] * x[j];
            }
            x[i] /= self.lu[(i, i)];
        }
        x
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.n();
        (0..n).map(|i| self.lu[(i, i)]).product::<f64>() * self.sign
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let lu = Lu::factor(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(lu.solve(&b), b);
        assert!((lu.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solves_known_system() {
        // [[2, 1], [1, 3]] x = [3, 5] -> x = [4/5, 7/5]
        let a = Matrix::from_rows(2, vec![2.0, 1.0, 1.0, 3.0]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
        assert!((lu.det() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(2, vec![0.0, 1.0, 1.0, 0.0]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(Lu::factor(&a).is_err());
    }

    #[test]
    fn residual_small_for_random_system() {
        // Deterministic pseudo-random 8×8 system.
        let n = 8;
        let mut a = Matrix::zeros(n);
        let mut state = 1u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 4.0; // diagonally dominant => well conditioned
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let b = a.mul_vec(&x_true);
        let x = Lu::factor(&a).unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn mul_vec_works() {
        let a = Matrix::from_rows(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(a.n(), 2);
    }

    #[test]
    #[should_panic(expected = "n² entries")]
    fn bad_shape_panics() {
        let _ = Matrix::from_rows(2, vec![1.0, 2.0, 3.0]);
    }
}
