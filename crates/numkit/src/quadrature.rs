//! Numerical quadrature over functions and sampled series.
//!
//! Used for time-averaging simulator trajectories (`∫x(t)dt / T`) and for
//! turning per-file distributions into means in the experiment harness.

use crate::error::NumError;

/// Composite trapezoid rule for `f` over `[a, b]` with `n` panels.
///
/// # Errors
/// Returns [`NumError::InvalidInput`] for `n == 0` or a reversed interval.
pub fn trapezoid<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> Result<f64, NumError> {
    if n == 0 {
        return Err(NumError::InvalidInput {
            what: "trapezoid",
            detail: "need at least one panel".into(),
        });
    }
    if !(b >= a) {
        return Err(NumError::InvalidInput {
            what: "trapezoid",
            detail: format!("reversed interval [{a}, {b}]"),
        });
    }
    let h = (b - a) / n as f64;
    let mut acc = 0.5 * (f(a) + f(b));
    for i in 1..n {
        acc += f(a + i as f64 * h);
    }
    Ok(acc * h)
}

/// Composite Simpson rule for `f` over `[a, b]` with `n` panels (`n` is
/// rounded up to even).
///
/// # Errors
/// Returns [`NumError::InvalidInput`] for `n == 0` or a reversed interval.
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> Result<f64, NumError> {
    if n == 0 {
        return Err(NumError::InvalidInput {
            what: "simpson",
            detail: "need at least one panel".into(),
        });
    }
    if !(b >= a) {
        return Err(NumError::InvalidInput {
            what: "simpson",
            detail: format!("reversed interval [{a}, {b}]"),
        });
    }
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        acc += w * f(a + i as f64 * h);
    }
    Ok(acc * h / 3.0)
}

/// Trapezoid integral of an irregularly sampled series `(ts, ys)`.
///
/// # Errors
/// Returns [`NumError::InvalidInput`] for mismatched lengths, fewer than
/// two samples, or non-increasing timestamps.
pub fn trapezoid_sampled(ts: &[f64], ys: &[f64]) -> Result<f64, NumError> {
    if ts.len() != ys.len() {
        return Err(NumError::InvalidInput {
            what: "trapezoid_sampled",
            detail: format!("{} timestamps vs {} values", ts.len(), ys.len()),
        });
    }
    if ts.len() < 2 {
        return Err(NumError::InvalidInput {
            what: "trapezoid_sampled",
            detail: "need at least two samples".into(),
        });
    }
    let mut acc = 0.0;
    for i in 1..ts.len() {
        let dt = ts[i] - ts[i - 1];
        if dt < 0.0 {
            return Err(NumError::InvalidInput {
                what: "trapezoid_sampled",
                detail: format!("timestamps decrease at index {i}"),
            });
        }
        acc += 0.5 * (ys[i] + ys[i - 1]) * dt;
    }
    Ok(acc)
}

/// Time-average of a sampled series: `∫y dt / (t_end − t_start)`.
///
/// # Errors
/// Propagates [`trapezoid_sampled`] errors; fails on a zero-length window.
pub fn time_average(ts: &[f64], ys: &[f64]) -> Result<f64, NumError> {
    let integral = trapezoid_sampled(ts, ys)?;
    let span = ts[ts.len() - 1] - ts[0];
    if span <= 0.0 {
        return Err(NumError::InvalidInput {
            what: "time_average",
            detail: "zero-length window".into(),
        });
    }
    Ok(integral / span)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_polynomial() {
        // ∫₀¹ x dx = 1/2 exactly for the trapezoid rule.
        let v = trapezoid(|x| x, 0.0, 1.0, 10).unwrap();
        assert!((v - 0.5).abs() < 1e-14);
        // ∫₀¹ x² dx = 1/3 with O(h²) error.
        let v = trapezoid(|x| x * x, 0.0, 1.0, 1000).unwrap();
        assert!((v - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn simpson_is_exact_for_cubics() {
        let v = simpson(|x| x * x * x - 2.0 * x * x + x, 0.0, 2.0, 2).unwrap();
        // ∫₀² = 4 − 16/3 + 2 = 2/3.
        assert!((v - 2.0 / 3.0).abs() < 1e-13);
    }

    #[test]
    fn simpson_odd_panels_rounded_up() {
        let a = simpson(|x| x.sin(), 0.0, std::f64::consts::PI, 7).unwrap();
        // composite error bound: (b−a)h⁴/180·max|f⁗| ≈ 4e-4 at 8 panels
        assert!((a - 2.0).abs() < 1e-3);
    }

    #[test]
    fn convergence_order() {
        let exact = 1.0 - (-1.0f64).exp();
        let f = |x: f64| (-x).exp();
        let t1 = (trapezoid(f, 0.0, 1.0, 10).unwrap() - exact).abs();
        let t2 = (trapezoid(f, 0.0, 1.0, 20).unwrap() - exact).abs();
        assert!((t1 / t2 - 4.0).abs() < 0.2, "trapezoid O(h²): {}", t1 / t2);
        let s1 = (simpson(f, 0.0, 1.0, 10).unwrap() - exact).abs();
        let s2 = (simpson(f, 0.0, 1.0, 20).unwrap() - exact).abs();
        assert!((s1 / s2 - 16.0).abs() < 1.0, "simpson O(h⁴): {}", s1 / s2);
    }

    #[test]
    fn sampled_series_integral() {
        let ts = [0.0, 1.0, 3.0];
        let ys = [0.0, 2.0, 2.0];
        // 0→1: area 1; 1→3: area 4.
        assert!((trapezoid_sampled(&ts, &ys).unwrap() - 5.0).abs() < 1e-14);
        assert!((time_average(&ts, &ys).unwrap() - 5.0 / 3.0).abs() < 1e-14);
    }

    #[test]
    fn validation() {
        assert!(trapezoid(|x| x, 0.0, 1.0, 0).is_err());
        assert!(trapezoid(|x| x, 1.0, 0.0, 4).is_err());
        assert!(simpson(|x| x, 0.0, 1.0, 0).is_err());
        assert!(simpson(|x| x, 1.0, 0.0, 4).is_err());
        assert!(trapezoid_sampled(&[0.0], &[1.0]).is_err());
        assert!(trapezoid_sampled(&[0.0, 1.0], &[1.0]).is_err());
        assert!(trapezoid_sampled(&[1.0, 0.0], &[1.0, 1.0]).is_err());
        assert!(time_average(&[1.0, 1.0], &[2.0, 2.0]).is_err());
    }
}
