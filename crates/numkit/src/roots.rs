//! Scalar root finding: bisection, Brent's method, safeguarded Newton.
//!
//! The CMFSD steady state (DESIGN.md §5.3) reduces to one scalar monotone
//! equation in the pooled-service ratio `s`; these solvers find it. They are
//! also used by tests to invert Little's-law relations.

use crate::error::NumError;

/// Convergence/budget options shared by the root finders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootOptions {
    /// Absolute tolerance on the root location.
    pub x_tol: f64,
    /// Absolute tolerance on the function value.
    pub f_tol: f64,
    /// Maximum number of iterations before giving up.
    pub max_iter: usize,
}

impl Default for RootOptions {
    fn default() -> Self {
        Self {
            x_tol: 1e-12,
            f_tol: 1e-12,
            max_iter: 200,
        }
    }
}

/// Result of a successful root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Root {
    /// Location of the root.
    pub x: f64,
    /// Function value at [`Root::x`] (should be ≈ 0).
    pub f: f64,
    /// Iterations consumed.
    pub iterations: usize,
}

/// Bisection on `[a, b]`; requires `f(a)` and `f(b)` to have opposite signs.
///
/// Robust and monotone-convergent; used as the fallback safeguard.
///
/// # Errors
/// * [`NumError::InvalidInput`] if `a >= b` or an endpoint evaluates
///   non-finite.
/// * [`NumError::NoBracket`] if the endpoints do not bracket a sign change.
/// * [`NumError::NoConvergence`] if the iteration budget runs out.
pub fn bisect<F>(mut f: F, a: f64, b: f64, opts: RootOptions) -> Result<Root, NumError>
where
    F: FnMut(f64) -> f64,
{
    if !(a < b) {
        return Err(NumError::InvalidInput {
            what: "bisect",
            detail: format!("require a < b, got a = {a}, b = {b}"),
        });
    }
    let (mut lo, mut hi) = (a, b);
    let mut flo = f(lo);
    let fhi = f(hi);
    if !flo.is_finite() || !fhi.is_finite() {
        return Err(NumError::InvalidInput {
            what: "bisect",
            detail: format!("endpoint values not finite: f(a) = {flo}, f(b) = {fhi}"),
        });
    }
    if flo == 0.0 {
        return Ok(Root {
            x: lo,
            f: 0.0,
            iterations: 0,
        });
    }
    if fhi == 0.0 {
        return Ok(Root {
            x: hi,
            f: 0.0,
            iterations: 0,
        });
    }
    if flo.signum() == fhi.signum() {
        return Err(NumError::NoBracket { fa: flo, fb: fhi });
    }
    for it in 1..=opts.max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 || (hi - lo) < opts.x_tol || fmid.abs() < opts.f_tol {
            return Ok(Root {
                x: mid,
                f: fmid,
                iterations: it,
            });
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(NumError::NoConvergence {
        what: "bisect",
        iterations: opts.max_iter,
        residual: hi - lo,
    })
}

/// Brent's method (inverse quadratic interpolation + secant + bisection).
///
/// Superlinear on smooth functions while keeping bisection's bracketing
/// guarantee. This is the default solver for the CMFSD fixed point.
///
/// # Errors
/// Same conditions as [`bisect`].
pub fn brent<F>(mut f: F, a: f64, b: f64, opts: RootOptions) -> Result<Root, NumError>
where
    F: FnMut(f64) -> f64,
{
    if !(a < b) {
        return Err(NumError::InvalidInput {
            what: "brent",
            detail: format!("require a < b, got a = {a}, b = {b}"),
        });
    }
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let mut fb = f(b);
    if !fa.is_finite() || !fb.is_finite() {
        return Err(NumError::InvalidInput {
            what: "brent",
            detail: format!("endpoint values not finite: f(a) = {fa}, f(b) = {fb}"),
        });
    }
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            f: 0.0,
            iterations: 0,
        });
    }
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            f: 0.0,
            iterations: 0,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(NumError::NoBracket { fa, fb });
    }
    // Ensure |f(b)| <= |f(a)|: b is the best iterate.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = 0.0f64;
    for it in 1..=opts.max_iter {
        if fb.abs() < opts.f_tol || (b - a).abs() < opts.x_tol {
            return Ok(Root {
                x: b,
                f: fb,
                iterations: it,
            });
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let between = {
            let lo = (3.0 * a + b) / 4.0;
            let (lo, hi) = if lo < b { (lo, b) } else { (b, lo) };
            s > lo && s < hi
        };
        let use_bisect = !between
            || (mflag && (s - b).abs() >= (b - c).abs() / 2.0)
            || (!mflag && (s - b).abs() >= (c - d).abs() / 2.0)
            || (mflag && (b - c).abs() < opts.x_tol)
            || (!mflag && (c - d).abs() < opts.x_tol);
        if use_bisect {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        if !fs.is_finite() {
            return Err(NumError::NonFinite {
                what: "brent",
                at: s,
            });
        }
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumError::NoConvergence {
        what: "brent",
        iterations: opts.max_iter,
        residual: fb.abs(),
    })
}

/// Newton's method with a bracketing safeguard.
///
/// Takes the function and its derivative; whenever a Newton step leaves the
/// current bracket (or the derivative vanishes) it falls back to bisection,
/// so convergence is guaranteed for a bracketed root.
///
/// # Errors
/// Same conditions as [`bisect`].
pub fn newton_safeguarded<F, D>(
    mut f: F,
    mut df: D,
    a: f64,
    b: f64,
    opts: RootOptions,
) -> Result<Root, NumError>
where
    F: FnMut(f64) -> f64,
    D: FnMut(f64) -> f64,
{
    if !(a < b) {
        return Err(NumError::InvalidInput {
            what: "newton_safeguarded",
            detail: format!("require a < b, got a = {a}, b = {b}"),
        });
    }
    let (mut lo, mut hi) = (a, b);
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(Root {
            x: lo,
            f: 0.0,
            iterations: 0,
        });
    }
    if fhi == 0.0 {
        return Ok(Root {
            x: hi,
            f: 0.0,
            iterations: 0,
        });
    }
    if flo.signum() == fhi.signum() {
        return Err(NumError::NoBracket { fa: flo, fb: fhi });
    }
    let mut x = 0.5 * (lo + hi);
    for it in 1..=opts.max_iter {
        let fx = f(x);
        if !fx.is_finite() {
            return Err(NumError::NonFinite {
                what: "newton_safeguarded",
                at: x,
            });
        }
        if fx.abs() < opts.f_tol {
            return Ok(Root {
                x,
                f: fx,
                iterations: it,
            });
        }
        // Maintain the bracket.
        if fx.signum() == flo.signum() {
            lo = x;
            flo = fx;
        } else {
            hi = x;
        }
        let dfx = df(x);
        let newton_x = if dfx != 0.0 { x - fx / dfx } else { f64::NAN };
        x = if newton_x.is_finite() && newton_x > lo && newton_x < hi {
            newton_x
        } else {
            0.5 * (lo + hi)
        };
        if (hi - lo) < opts.x_tol {
            let fx = f(x);
            return Ok(Root {
                x,
                f: fx,
                iterations: it,
            });
        }
    }
    Err(NumError::NoConvergence {
        what: "newton_safeguarded",
        iterations: opts.max_iter,
        residual: hi - lo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> RootOptions {
        RootOptions::default()
    }

    #[test]
    fn bisect_sqrt_two() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, opts()).unwrap();
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_detects_no_bracket() {
        let e = bisect(|x| x * x + 1.0, -1.0, 1.0, opts()).unwrap_err();
        assert!(matches!(e, NumError::NoBracket { .. }));
    }

    #[test]
    fn bisect_rejects_reversed_interval() {
        let e = bisect(|x| x, 1.0, -1.0, opts()).unwrap_err();
        assert!(matches!(e, NumError::InvalidInput { .. }));
    }

    #[test]
    fn bisect_exact_endpoint_root() {
        let r = bisect(|x| x, 0.0, 1.0, opts()).unwrap();
        assert_eq!(r.x, 0.0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn brent_sqrt_two_fast() {
        let r = brent(|x| x * x - 2.0, 0.0, 2.0, opts()).unwrap();
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-10);
        // Brent should converge much faster than bisection's ~40 iterations.
        assert!(r.iterations < 15, "iterations = {}", r.iterations);
    }

    #[test]
    fn brent_transcendental() {
        // x e^x = 1 -> x = W(1) ≈ 0.5671432904
        let r = brent(|x| x * x.exp() - 1.0, 0.0, 1.0, opts()).unwrap();
        assert!((r.x - 0.567_143_290_409_783_8).abs() < 1e-10);
    }

    #[test]
    fn brent_no_bracket() {
        let e = brent(|x| x * x + 0.5, -1.0, 1.0, opts()).unwrap_err();
        assert!(matches!(e, NumError::NoBracket { .. }));
    }

    #[test]
    fn brent_handles_flat_regions() {
        // Piecewise function with a long flat stretch.
        let f = |x: f64| if x < 2.0 { -1.0 } else { x - 3.0 };
        let r = brent(f, 0.0, 10.0, opts()).unwrap();
        assert!((r.x - 3.0).abs() < 1e-8, "x = {}", r.x);
    }

    #[test]
    fn newton_cubic() {
        let r = newton_safeguarded(|x| x * x * x - 8.0, |x| 3.0 * x * x, 0.0, 5.0, opts()).unwrap();
        assert!((r.x - 2.0).abs() < 1e-10);
    }

    #[test]
    fn newton_survives_zero_derivative() {
        // f(x) = x^3 has f'(0) = 0; start bracket includes it.
        let r = newton_safeguarded(|x| x * x * x, |x| 3.0 * x * x, -1.0, 2.0, opts()).unwrap();
        assert!(r.x.abs() < 1e-3, "x = {}", r.x);
    }

    #[test]
    fn newton_respects_bracket_on_wild_derivative() {
        // Derivative lies (returns garbage) — safeguard must still converge.
        let r = newton_safeguarded(|x| x - 1.5, |_| 1e-30, 0.0, 2.0, opts()).unwrap();
        assert!((r.x - 1.5).abs() < 1e-9);
    }

    #[test]
    fn all_solvers_agree_on_monotone_rational() {
        // Shape of the CMFSD fixed-point equation: s·W(s) − V(s) − Y = 0
        // with W, V rational in s.
        let y = 3.0;
        let g = |s: f64| {
            let w = 10.0 / (0.5 + s) + 5.0 / (0.1 + s);
            let v = 4.0 / (0.1 + s);
            s * w - v - y
        };
        let r1 = bisect(g, 0.0, 100.0, opts()).unwrap().x;
        let r2 = brent(g, 0.0, 100.0, opts()).unwrap().x;
        assert!((r1 - r2).abs() < 1e-8, "bisect {r1} vs brent {r2}");
    }
}
