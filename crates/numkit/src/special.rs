//! Special functions: `ln_gamma`, binomial coefficients and pmf.
//!
//! The file-correlation model of the paper (Section 4.1) needs binomial
//! probabilities `C(K,i)·pⁱ(1−p)^{K−i}` for entry rates. For the paper's
//! `K = 10` direct multiplication would do, but the library supports
//! arbitrary `K`, so everything is computed in log space.

use crate::error::NumError;

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation (g = 7, n = 9 coefficients), accurate to ~1e-13
/// over the positive reals, which is far beyond what the binomial pmf needs.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)] // Lanczos coefficients quoted verbatim
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// # Panics
/// Panics if `k > n` (a programming error, not a data error).
pub fn ln_choose(n: u32, k: u32) -> f64 {
    assert!(k <= n, "ln_choose: k = {k} > n = {n}");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Binomial coefficient `C(n, k)` as `f64` (exact for small arguments,
/// accurate to ~1e-12 relative otherwise).
pub fn choose(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    ln_choose(n, k).exp().round_ties_even_if_integer()
}

/// Binomial pmf `P[X = k]` for `X ~ Binomial(n, p)`, computed in log space.
///
/// # Errors
/// Returns [`NumError::InvalidInput`] unless `p ∈ [0, 1]`.
pub fn binomial_pmf(n: u32, k: u32, p: f64) -> Result<f64, NumError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(NumError::InvalidInput {
            what: "binomial_pmf",
            detail: format!("p must lie in [0,1], got {p}"),
        });
    }
    if k > n {
        return Ok(0.0);
    }
    // Handle the degenerate endpoints exactly (log(0) traps below).
    if p == 0.0 {
        return Ok(if k == 0 { 1.0 } else { 0.0 });
    }
    if p == 1.0 {
        return Ok(if k == n { 1.0 } else { 0.0 });
    }
    let ln_pmf = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln_1p_neg();
    Ok(ln_pmf.exp())
}

/// Helper extension: `(1-p).ln()` written as `ln_1p(-p)` for accuracy near
/// `p → 0`, plus integer rounding for `choose`.
trait F64Ext {
    fn ln_1p_neg(self) -> f64;
    fn round_ties_even_if_integer(self) -> f64;
}

impl F64Ext for f64 {
    /// For an input that is already `1 - p`, compute `ln(1-p)` accurately by
    /// recovering `p` and using `ln_1p`.
    fn ln_1p_neg(self) -> f64 {
        // self == 1 - p  =>  ln(self) = ln_1p(self - 1)
        (self - 1.0).ln_1p()
    }

    /// Round to the nearest integer when within 1e-6 of one (binomial
    /// coefficients are integers; the exp/ln round trip leaves dust).
    fn round_ties_even_if_integer(self) -> f64 {
        let r = self.round();
        if (self - r).abs() < 1e-6 * r.max(1.0) {
            r
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let lg = ln_gamma(n as f64 + 1.0);
            assert!(
                (lg - f64::ln(f)).abs() < 1e-10,
                "ln Γ({}) = {lg}, expected {}",
                n + 1,
                f64::ln(f)
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        let expect = 0.5 * std::f64::consts::PI.ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_reflection_small_x() {
        // Γ(0.25)·Γ(0.75) = π / sin(π/4) = π·sqrt(2)
        let lhs = ln_gamma(0.25) + ln_gamma(0.75);
        let rhs = (std::f64::consts::PI * std::f64::consts::SQRT_2).ln();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn choose_small_values_exact() {
        assert_eq!(choose(10, 0), 1.0);
        assert_eq!(choose(10, 1), 10.0);
        assert_eq!(choose(10, 5), 252.0);
        assert_eq!(choose(10, 10), 1.0);
        assert_eq!(choose(9, 4), 126.0);
        assert_eq!(choose(5, 7), 0.0);
    }

    #[test]
    fn choose_large_values_accurate() {
        // C(60, 30) = 118264581564861424
        let expect = 1.182_645_815_648_614_2e17;
        let got = choose(60, 30);
        assert!((got - expect).abs() / expect < 1e-9, "got {got}");
    }

    #[test]
    #[should_panic(expected = "ln_choose")]
    fn ln_choose_panics_on_k_above_n() {
        let _ = ln_choose(3, 4);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &p in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let total: f64 = (0..=10).map(|k| binomial_pmf(10, k, p).unwrap()).sum();
            assert!((total - 1.0).abs() < 1e-12, "p = {p}, total = {total}");
        }
    }

    #[test]
    fn binomial_pmf_known_values() {
        // Binomial(10, 0.5): P[X=5] = 252/1024
        let v = binomial_pmf(10, 5, 0.5).unwrap();
        assert!((v - 252.0 / 1024.0).abs() < 1e-12);
        // Binomial(10, 0.1): P[X=1] = 10 * 0.1 * 0.9^9
        let v = binomial_pmf(10, 1, 0.1).unwrap();
        assert!((v - 10.0 * 0.1 * 0.9f64.powi(9)).abs() < 1e-12);
    }

    #[test]
    fn binomial_pmf_degenerate_p() {
        assert_eq!(binomial_pmf(5, 0, 0.0).unwrap(), 1.0);
        assert_eq!(binomial_pmf(5, 3, 0.0).unwrap(), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0).unwrap(), 1.0);
        assert_eq!(binomial_pmf(5, 4, 1.0).unwrap(), 0.0);
    }

    #[test]
    fn binomial_pmf_rejects_bad_p() {
        assert!(binomial_pmf(5, 2, -0.1).is_err());
        assert!(binomial_pmf(5, 2, 1.1).is_err());
    }

    #[test]
    fn binomial_pmf_k_above_n_is_zero() {
        assert_eq!(binomial_pmf(5, 6, 0.5).unwrap(), 0.0);
    }

    #[test]
    fn binomial_pmf_tiny_p_accurate() {
        // P[X=0] for p = 1e-12, n = 10 is (1-p)^10 ≈ 1 - 1e-11; ln_1p keeps
        // the digits.
        let v = binomial_pmf(10, 0, 1e-12).unwrap();
        assert!((v - (1.0 - 1e-11)).abs() < 1e-13);
    }
}
