//! Random-variate samplers used by the workload model and the simulator.
//!
//! Only the distributions the paper's model actually needs are implemented:
//!
//! * [`Exponential`] — inter-arrival gaps of the Poisson peer-arrival process
//!   and the seed residence time (rate `γ`).
//! * [`Bernoulli`] — per-file request decisions (probability `p`).
//! * [`Binomial`] — the number of files a user requests,
//!   `i ~ Binomial(K, p)` (Section 4.1 of the paper).
//! * [`DiscreteCdf`] — alias-free inverse-CDF sampling over small weighted
//!   supports (class selection from entry rates).
//! * [`ThinnedPoisson`] — non-homogeneous Poisson event times by
//!   Lewis–Shedler thinning (time-varying arrival rates `λ(t)` for the
//!   scenario subsystem).
//!
//! Every sampler takes `&mut impl RngCore` so generators can be shared and
//! tests can inject deterministic streams.

use crate::error::NumError;
use crate::rng::RngCore;

/// Exponential distribution with rate `rate` (mean `1/rate`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when `rate` is not strictly
    /// positive and finite.
    pub fn new(rate: f64) -> Result<Self, NumError> {
        if !(rate > 0.0) || !rate.is_finite() {
            return Err(NumError::InvalidInput {
                what: "Exponential::new",
                detail: format!("rate must be finite and > 0, got {rate}"),
            });
        }
        Ok(Self { rate })
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws a variate by inverse CDF: `-ln(U)/λ` with `U ∈ (0,1]`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -rng.next_f64_open().ln() / self.rate
    }
}

/// Bernoulli distribution with success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] unless `p ∈ [0, 1]`.
    pub fn new(p: f64) -> Result<Self, NumError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(NumError::InvalidInput {
                what: "Bernoulli::new",
                detail: format!("p must lie in [0,1], got {p}"),
            });
        }
        Ok(Self { p })
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws `true` with probability `p`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_f64() < self.p
    }
}

/// Binomial distribution `Binomial(n, p)`.
///
/// The workload model only ever uses small `n` (the number of files in the
/// system, `K = 10` in the paper), so the sampler is the straightforward sum
/// of `n` Bernoulli trials — exact, branch-light and plenty fast for `n ≲ 64`.
/// For larger `n` it switches to the BINV inverse-CDF walk, which is still
/// exact and `O(n·p)` expected time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u32,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution over `n` trials with per-trial
    /// success probability `p`.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] unless `p ∈ [0, 1]`.
    pub fn new(n: u32, p: f64) -> Result<Self, NumError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(NumError::InvalidInput {
                what: "Binomial::new",
                detail: format!("p must lie in [0,1], got {p}"),
            });
        }
        Ok(Self { n, p })
    }

    /// Number of trials.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Per-trial success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Draws the number of successes.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        if self.p == 0.0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        if self.n <= 64 {
            let mut k = 0;
            for _ in 0..self.n {
                if rng.next_f64() < self.p {
                    k += 1;
                }
            }
            k
        } else {
            self.sample_binv(rng)
        }
    }

    /// BINV inverse-CDF walk (Kachitvichyanukul & Schmeiser 1988), exact for
    /// any `n`, efficient when `n·min(p, 1−p)` is moderate.
    fn sample_binv<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        // Walk from the smaller tail for numerical robustness.
        let flipped = self.p > 0.5;
        let p = if flipped { 1.0 - self.p } else { self.p };
        let n = self.n as f64;
        let q = 1.0 - p;
        let s = p / q;
        let a = (n + 1.0) * s;
        let mut f = q.powf(n);
        let mut u = rng.next_f64();
        let mut k = 0u32;
        loop {
            if u < f {
                break;
            }
            u -= f;
            k += 1;
            if k > self.n {
                // Floating-point leakage past the support; clamp.
                k = self.n;
                break;
            }
            f *= a / k as f64 - s;
        }
        if flipped {
            self.n - k
        } else {
            k
        }
    }
}

/// Inverse-CDF sampler over a small discrete support with arbitrary
/// non-negative weights.
///
/// Construction normalizes the weights; sampling is a linear CDF walk, which
/// beats alias tables for the tiny supports (≤ `K = 10` classes) used here.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteCdf {
    /// Cumulative normalized weights; last entry is exactly 1.0.
    cdf: Vec<f64>,
}

impl DiscreteCdf {
    /// Builds the sampler from raw weights.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] if `weights` is empty, contains a
    /// negative or non-finite entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, NumError> {
        if weights.is_empty() {
            return Err(NumError::InvalidInput {
                what: "DiscreteCdf::new",
                detail: "weights must be non-empty".into(),
            });
        }
        let mut total = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(NumError::InvalidInput {
                    what: "DiscreteCdf::new",
                    detail: format!("weight[{i}] = {w} is negative or non-finite"),
                });
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(NumError::InvalidInput {
                what: "DiscreteCdf::new",
                detail: "weights sum to zero".into(),
            });
        }
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Pin the final entry so a draw of u -> 1-eps can never fall off the
        // end due to rounding.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Ok(Self { cdf })
    }

    /// Number of support points.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of support point `i` (for tests/diagnostics).
    pub fn pmf(&self, i: usize) -> f64 {
        let lo = if i == 0 { 0.0 } else { self.cdf[i - 1] };
        self.cdf[i] - lo
    }

    /// Draws an index distributed according to the normalized weights.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64();
        // Linear walk; supports here have ≤ ~10 entries.
        for (i, &c) in self.cdf.iter().enumerate() {
            if u < c {
                return i;
            }
        }
        self.cdf.len() - 1
    }
}

/// Non-homogeneous Poisson process sampler by Lewis–Shedler thinning.
///
/// Candidate points are drawn from a homogeneous Poisson process at the
/// majorizing rate `bound ≥ λ(t)` and accepted with probability
/// `λ(t) / bound`, which yields exact event times of the process with
/// instantaneous rate `λ(t)` — no discretization of the rate function is
/// involved. The rate function is supplied as a closure so callers (the
/// scenario subsystem's `Schedule`) stay in charge of its representation.
///
/// The sampler is stateless between calls: every method takes the current
/// time and the RNG explicitly, which keeps replications and the DES's
/// deterministic-replay contract trivial.
#[derive(Debug, Clone)]
pub struct ThinnedPoisson<F> {
    rate: F,
    bound: f64,
    gap: Exponential,
}

impl<F: Fn(f64) -> f64> ThinnedPoisson<F> {
    /// Creates a thinning sampler for instantaneous rate `rate(t)` under the
    /// majorizing constant `bound`.
    ///
    /// Correctness requires `0 ≤ rate(t) ≤ bound` for all `t` the sampler
    /// will visit; this is checked per candidate in debug builds.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when `bound` is not strictly
    /// positive and finite.
    pub fn new(rate: F, bound: f64) -> Result<Self, NumError> {
        if !(bound > 0.0) || !bound.is_finite() {
            return Err(NumError::InvalidInput {
                what: "ThinnedPoisson::new",
                detail: format!("bound must be finite and > 0, got {bound}"),
            });
        }
        Ok(Self {
            rate,
            bound,
            gap: Exponential::new(bound)?,
        })
    }

    /// The majorizing rate.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Instantaneous rate at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        (self.rate)(t)
    }

    /// Returns the first event time strictly after `t` and strictly before
    /// `horizon`, or `None` if the next event falls at or beyond `horizon`.
    ///
    /// Bounding by `horizon` (rather than looping forever) keeps the call
    /// total even when `λ(t)` is identically zero past some point.
    pub fn next_before<R: RngCore + ?Sized>(
        &self,
        t: f64,
        horizon: f64,
        rng: &mut R,
    ) -> Option<f64> {
        let mut s = t;
        loop {
            s += self.gap.sample(rng);
            if s >= horizon {
                return None;
            }
            let lam = (self.rate)(s);
            debug_assert!(
                (0.0..=self.bound).contains(&lam),
                "rate({s}) = {lam} escapes [0, {}]",
                self.bound
            );
            if rng.next_f64() * self.bound < lam {
                return Some(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;
    use crate::stats::Welford;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn exponential_mean_and_variance() {
        let d = Exponential::new(0.05).unwrap();
        let mut r = rng(1);
        let mut w = Welford::new();
        for _ in 0..200_000 {
            w.push(d.sample(&mut r));
        }
        // mean 20, variance 400
        assert!((w.mean() - 20.0).abs() < 0.3, "mean = {}", w.mean());
        assert!(
            (w.variance() - 400.0).abs() / 400.0 < 0.05,
            "var = {}",
            w.variance()
        );
    }

    #[test]
    fn exponential_samples_positive() {
        let d = Exponential::new(3.0).unwrap();
        let mut r = rng(2);
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn bernoulli_bounds() {
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(1.1).is_err());
        assert!(Bernoulli::new(0.0).is_ok());
        assert!(Bernoulli::new(1.0).is_ok());
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let d = Bernoulli::new(0.3).unwrap();
        let mut r = rng(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| d.sample(&mut r)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn bernoulli_degenerate_cases() {
        let mut r = rng(4);
        assert!(!Bernoulli::new(0.0).unwrap().sample(&mut r));
        assert!(Bernoulli::new(1.0).unwrap().sample(&mut r));
    }

    #[test]
    fn binomial_mean_small_n() {
        let d = Binomial::new(10, 0.4).unwrap();
        let mut r = rng(5);
        let mut w = Welford::new();
        for _ in 0..100_000 {
            w.push(d.sample(&mut r) as f64);
        }
        assert!((w.mean() - 4.0).abs() < 0.05, "mean = {}", w.mean());
        // variance = n p (1-p) = 2.4
        assert!((w.variance() - 2.4).abs() < 0.1, "var = {}", w.variance());
    }

    #[test]
    fn binomial_binv_path_mean() {
        let d = Binomial::new(200, 0.02).unwrap();
        let mut r = rng(6);
        let mut w = Welford::new();
        for _ in 0..50_000 {
            let k = d.sample(&mut r);
            assert!(k <= 200);
            w.push(k as f64);
        }
        assert!((w.mean() - 4.0).abs() < 0.1, "mean = {}", w.mean());
    }

    #[test]
    fn binomial_binv_high_p_flips() {
        let d = Binomial::new(500, 0.97).unwrap();
        let mut r = rng(7);
        let mut w = Welford::new();
        for _ in 0..20_000 {
            let k = d.sample(&mut r);
            assert!(k <= 500);
            w.push(k as f64);
        }
        assert!((w.mean() - 485.0).abs() < 0.5, "mean = {}", w.mean());
    }

    #[test]
    fn binomial_degenerate_p() {
        let mut r = rng(8);
        assert_eq!(Binomial::new(12, 0.0).unwrap().sample(&mut r), 0);
        assert_eq!(Binomial::new(12, 1.0).unwrap().sample(&mut r), 12);
    }

    #[test]
    fn binomial_rejects_bad_p() {
        assert!(Binomial::new(5, 1.5).is_err());
        assert!(Binomial::new(5, -0.5).is_err());
    }

    #[test]
    fn discrete_cdf_validation() {
        assert!(DiscreteCdf::new(&[]).is_err());
        assert!(DiscreteCdf::new(&[0.0, 0.0]).is_err());
        assert!(DiscreteCdf::new(&[1.0, -1.0]).is_err());
        assert!(DiscreteCdf::new(&[1.0, f64::NAN]).is_err());
        assert!(DiscreteCdf::new(&[2.0]).is_ok());
    }

    #[test]
    fn discrete_cdf_pmf_normalized() {
        let d = DiscreteCdf::new(&[1.0, 2.0, 7.0]).unwrap();
        assert!((d.pmf(0) - 0.1).abs() < 1e-12);
        assert!((d.pmf(1) - 0.2).abs() < 1e-12);
        assert!((d.pmf(2) - 0.7).abs() < 1e-12);
        let total: f64 = (0..d.len()).map(|i| d.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn discrete_cdf_sampling_frequencies() {
        let d = DiscreteCdf::new(&[1.0, 3.0, 6.0]).unwrap();
        let mut r = rng(9);
        let n = 120_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[d.sample(&mut r)] += 1;
        }
        let freqs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freqs[0] - 0.1).abs() < 0.01);
        assert!((freqs[1] - 0.3).abs() < 0.01);
        assert!((freqs[2] - 0.6).abs() < 0.01);
    }

    #[test]
    fn thinned_rejects_bad_bound() {
        assert!(ThinnedPoisson::new(|_| 1.0, 0.0).is_err());
        assert!(ThinnedPoisson::new(|_| 1.0, -2.0).is_err());
        assert!(ThinnedPoisson::new(|_| 1.0, f64::NAN).is_err());
        assert!(ThinnedPoisson::new(|_| 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn thinned_constant_rate_matches_homogeneous_mean() {
        // λ(t) = 2 with a loose bound of 5: the mean count over [0, 1000)
        // must still be 2000 — thinning wastes candidates, not events.
        let p = ThinnedPoisson::new(|_| 2.0, 5.0).unwrap();
        let mut r = rng(11);
        let mut count = 0usize;
        let mut t = 0.0;
        while let Some(s) = p.next_before(t, 1000.0, &mut r) {
            count += 1;
            t = s;
        }
        let rel = (count as f64 - 2000.0).abs() / 2000.0;
        assert!(rel < 0.05, "count = {count}");
    }

    #[test]
    fn thinned_ramp_rate_matches_integral() {
        // λ(t) = t/100 on [0, 100): ∫λ = 50 expected events per pass.
        let p = ThinnedPoisson::new(|t: f64| t / 100.0, 1.0).unwrap();
        let mut r = rng(12);
        let mut total = 0usize;
        let passes = 400;
        for _ in 0..passes {
            let mut t = 0.0;
            while let Some(s) = p.next_before(t, 100.0, &mut r) {
                total += 1;
                t = s;
            }
        }
        let mean = total as f64 / passes as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean = {mean}");
    }

    #[test]
    fn thinned_zero_rate_terminates() {
        let p = ThinnedPoisson::new(|_| 0.0, 1.0).unwrap();
        let mut r = rng(13);
        assert!(p.next_before(0.0, 50.0, &mut r).is_none());
    }

    #[test]
    fn thinned_times_strictly_increase_within_horizon() {
        let p = ThinnedPoisson::new(|t: f64| 1.5 + (t / 10.0).sin().abs(), 3.0).unwrap();
        let mut r = rng(14);
        let mut t = 0.0;
        while let Some(s) = p.next_before(t, 200.0, &mut r) {
            assert!(s > t && s < 200.0);
            t = s;
        }
    }

    #[test]
    fn discrete_cdf_single_point() {
        let d = DiscreteCdf::new(&[5.0]).unwrap();
        let mut r = rng(10);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 0);
        }
    }
}
