//! Property tests for the numeric kernels (proptest).

use btfluid_numkit::linalg::{Lu, Matrix};
use btfluid_numkit::ode::{Dopri5, Dopri5Options, FixedStep, LinearSystem, Rk4};
use btfluid_numkit::roots::{bisect, brent, RootOptions};
use btfluid_numkit::stats::Welford;
use proptest::prelude::*;

/// Strategy: a stable 2×2 linear system (negative-definite-ish matrix) with
/// bounded forcing.
fn stable_system() -> impl Strategy<Value = (LinearSystem, Vec<f64>)> {
    (
        0.1f64..3.0,
        0.1f64..3.0,
        -1.0f64..1.0,
        -1.0f64..1.0,
        -2.0f64..2.0,
        -2.0f64..2.0,
        -2.0f64..2.0,
        -2.0f64..2.0,
    )
        .prop_map(|(d1, d2, o1, o2, b1, b2, x1, x2)| {
            // Diagonally dominant negative matrix ⇒ stable.
            let a = vec![-(d1 + o1.abs()), o1, o2, -(d2 + o2.abs())];
            (LinearSystem::new(a, vec![b1, b2]), vec![x1, x2])
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rk4_and_dopri5_agree_on_stable_systems((sys, x0) in stable_system()) {
        let mut a = x0.clone();
        Rk4.integrate(&sys, 0.0, &mut a, 5.0, 1e-3);
        let mut b = x0;
        Dopri5
            .integrate(&sys, 0.0, &mut b, 5.0, Dopri5Options::default(), |_, _| {})
            .unwrap();
        for (ai, bi) in a.iter().zip(&b) {
            prop_assert!((ai - bi).abs() < 1e-5, "rk4 {ai} vs dopri5 {bi}");
        }
    }

    #[test]
    fn root_finders_agree_on_monotone_cubics(
        a in 0.1f64..5.0,
        b in -3.0f64..3.0,
        c in -20.0f64..20.0,
    ) {
        // f(x) = a·x³ + b·x + c with a > 0 and b ≥ 0 is strictly monotone…
        let b = b.abs();
        let f = |x: f64| a * x * x * x + b * x + c;
        // …so it has exactly one real root inside a wide bracket.
        let (lo, hi) = (-100.0, 100.0);
        prop_assume!(f(lo) < 0.0 && f(hi) > 0.0);
        let opts = RootOptions::default();
        let r1 = bisect(f, lo, hi, opts).unwrap().x;
        let r2 = brent(f, lo, hi, opts).unwrap().x;
        prop_assert!((r1 - r2).abs() < 1e-6, "bisect {r1} vs brent {r2}");
        prop_assert!(f(r2).abs() < 1e-6);
    }

    #[test]
    fn welford_merge_is_order_independent(
        xs in prop::collection::vec(-1e3f64..1e3, 4..120),
        split in 1usize..3,
    ) {
        let k = xs.len() * split / 4;
        let k = k.clamp(1, xs.len() - 1);
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..k] {
            left.push(x);
        }
        for &x in &xs[k..] {
            right.push(x);
        }
        // Merge in both orders.
        let mut lr = left;
        lr.merge(&right);
        let mut rl = right;
        rl.merge(&left);
        for m in [lr, rl] {
            prop_assert_eq!(m.count(), whole.count());
            prop_assert!((m.mean() - whole.mean()).abs() < 1e-9);
            prop_assert!((m.variance() - whole.variance()).abs() < 1e-6 * whole.variance().max(1.0));
        }
    }

    #[test]
    fn lu_solves_diagonally_dominant_systems(
        entries in prop::collection::vec(-1.0f64..1.0, 16),
        rhs in prop::collection::vec(-10.0f64..10.0, 4),
    ) {
        let n = 4;
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                let v = entries[i * n + j];
                m[(i, j)] = v;
                row_sum += v.abs();
            }
            m[(i, i)] += row_sum + 1.0; // dominance ⇒ invertible
        }
        let lu = Lu::factor(&m).unwrap();
        let x = lu.solve(&rhs);
        let back = m.mul_vec(&x);
        for (bi, ri) in back.iter().zip(&rhs) {
            prop_assert!((bi - ri).abs() < 1e-8, "residual {}", bi - ri);
        }
    }

    #[test]
    fn binomial_pmf_is_a_distribution(n in 1u32..40, p in 0.0f64..=1.0) {
        let total: f64 = (0..=n)
            .map(|k| btfluid_numkit::special::binomial_pmf(n, k, p).unwrap())
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let mean: f64 = (0..=n)
            .map(|k| k as f64 * btfluid_numkit::special::binomial_pmf(n, k, p).unwrap())
            .sum();
        prop_assert!((mean - n as f64 * p).abs() < 1e-8);
    }

    #[test]
    fn quadrature_linearity(
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        hi in 0.1f64..10.0,
    ) {
        // ∫(a·x + b) over [0, hi] = a·hi²/2 + b·hi, exact for trapezoid.
        let got = btfluid_numkit::quadrature::trapezoid(|x| a * x + b, 0.0, hi, 16).unwrap();
        let expect = a * hi * hi / 2.0 + b * hi;
        prop_assert!((got - expect).abs() < 1e-9 * expect.abs().max(1.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn welford_merge_matches_sequential_any_split(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        cut in 0usize..200,
    ) {
        let cut = cut % (xs.len() + 1);
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        // One side of the split may be empty — merging it must neither
        // poison min/max nor shift the moments.
        let mut a = Welford::default();
        let mut b = Welford::default();
        for &x in &xs[..cut] {
            a.push(x);
        }
        for &x in &xs[cut..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-9 * all.mean().abs().max(1.0));
        prop_assert!((a.variance() - all.variance()).abs() < 1e-6 * all.variance().max(1.0));
        prop_assert_eq!(a.min(), all.min());
        prop_assert_eq!(a.max(), all.max());
    }

    #[test]
    fn welford_raw_parts_round_trip_is_bit_exact(
        xs in proptest::collection::vec(-1e3f64..1e3, 0..64),
    ) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let (n, mean, m2, min, max) = w.raw_parts();
        let back = Welford::from_raw_parts(n, mean, m2, min, max);
        prop_assert_eq!(back.count(), w.count());
        prop_assert_eq!(back.mean().to_bits(), w.mean().to_bits());
        prop_assert_eq!(back.min().to_bits(), w.min().to_bits());
        prop_assert_eq!(back.max().to_bits(), w.max().to_bits());
        // Continuing the statistic after the round-trip matches never
        // having serialized at all.
        let mut cont = back;
        let mut direct = w;
        cont.push(0.5);
        direct.push(0.5);
        prop_assert_eq!(cont.mean().to_bits(), direct.mean().to_bits());
    }

    #[test]
    fn percentile_bounded_by_extremes(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        q in 0.0f64..=1.0,
    ) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = btfluid_numkit::stats::percentile(&xs, q).unwrap();
        prop_assert!(v >= lo && v <= hi, "percentile {v} outside [{lo}, {hi}]");
        prop_assert_eq!(btfluid_numkit::stats::percentile(&xs, 0.0).unwrap(), lo);
        prop_assert_eq!(btfluid_numkit::stats::percentile(&xs, 1.0).unwrap(), hi);
    }

    #[test]
    fn percentile_never_panics_on_nan(
        xs in proptest::collection::vec(
            prop_oneof![(-1e3f64..1e3).prop_map(|x| x), Just(f64::NAN)],
            1..32,
        ),
        q in 0.0f64..=1.0,
    ) {
        // Either a clean value or a typed error — a panic fails the test.
        let res = btfluid_numkit::stats::percentile(&xs, q);
        if xs.iter().any(|v| v.is_nan()) {
            prop_assert!(res.is_err());
        } else {
            prop_assert!(res.unwrap().is_finite());
        }
    }
}
