//! Workspace-local stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! This build environment has no network access and no vendored registry,
//! so the real rayon cannot be fetched. This crate implements the small
//! slice of rayon's API the workspace actually uses — `par_iter` /
//! `into_par_iter` followed by `map` and `collect` — on top of
//! `std::thread::scope`, with the same semantics:
//!
//! * items are processed concurrently on up to `available_parallelism`
//!   OS threads, pulled from a shared atomic work index (so uneven work,
//!   e.g. simulations of different lengths, load-balances);
//! * `collect` preserves input order;
//! * collecting into `Result<Vec<T>, E>` short-circuits on the first
//!   error exactly like sequential `collect`.
//!
//! Panics in a worker propagate to the caller (the scope joins all
//! threads and re-raises). Swap the workspace dependency back to the real
//! rayon when the environment can resolve crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The rayon-compatible prelude: `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Runs `f` over `items` on a small thread pool, preserving order.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("item taken twice");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped an item")
        })
        .collect()
}

/// A materialized parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A lazily mapped parallel iterator.
pub struct Map<P, F> {
    base: P,
    f: F,
}

/// The subset of rayon's `ParallelIterator` this workspace needs.
pub trait ParallelIterator: Sized {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Evaluates the pipeline, in parallel, into an ordered `Vec`.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects the results in input order (including `Result` collects).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.drive().into_iter().collect()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        parallel_map(self.base.drive(), &self.f)
    }
}

/// Conversion into a parallel iterator (rayon's `into_par_iter`).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Creates the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_into_par!(usize, u32, u64, i32, i64);

/// Borrowing conversion (rayon's `par_iter`), implemented on slices so it
/// resolves through `Vec`'s deref like `slice::iter` does.
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a shared reference).
    type Item: Send;
    /// Creates a parallel iterator over references.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;

    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let xs = [1.0f64, 2.0, 3.0];
        let doubled: Vec<f64> = xs.par_iter().map(|&x| x + 1.0).collect();
        assert_eq!(doubled, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn result_collect_short_circuits() {
        let r: Result<Vec<u32>, String> = (0u32..10)
            .into_par_iter()
            .map(|x| {
                if x == 7 {
                    Err("seven".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(r, Err("seven".to_string()));
    }

    #[test]
    fn chained_maps() {
        let v: Vec<i64> = (0i64..64)
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x * 3)
            .collect();
        assert_eq!(v[63], 64 * 3);
    }
}
