//! Multi-torrent **sequential** downloading (MTSD) — Section 3.3.
//!
//! A user requesting `i` files joins the torrents one at a time with full
//! bandwidth. Each torrent is then an ordinary single-file Qiu–Srikant
//! system (Eq. 3) with download time `T = (γ−μ)/(γμη)`, and the class-`i`
//! user's total online time is `Tᵢ = i·(T + 1/γ)` (Eq. 4): after finishing
//! (and seeding) one file it moves on to the next torrent.
//!
//! Per file, *every* class pays the same `T + 1/γ` — MTSD is flat across
//! classes and across correlation `p`, which is exactly the MTSD horizontal
//! line of Figure 2.

use crate::metrics::ClassTimes;
use crate::params::FluidParams;
use btfluid_numkit::NumError;

/// The MTSD performance model.
///
/// MTSD needs no per-class rates: the per-file times are class-independent.
/// (The aggregate *population* average still weights classes via a
/// [`btfluid_workload::ClassMix`], but for MTSD that average equals the
/// constant per-file time.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mtsd {
    params: FluidParams,
}

impl Mtsd {
    /// Wraps the fluid parameters.
    pub fn new(params: FluidParams) -> Self {
        Self { params }
    }

    /// Model parameters.
    pub fn params(&self) -> &FluidParams {
        &self.params
    }

    /// Single-torrent download time `T = (γ−μ)/(γμη)`.
    ///
    /// Returns the value without validity checks; use
    /// [`Mtsd::download_time`] for the checked variant.
    fn t_raw(&self) -> f64 {
        let (mu, eta, gamma) = (self.params.mu(), self.params.eta(), self.params.gamma());
        (gamma - mu) / (gamma * mu * eta)
    }

    /// Download time per file `T`.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when `γ ≤ μ` (Eq. 4 requires
    /// `γ > μ`).
    pub fn download_time(&self) -> Result<f64, NumError> {
        self.params.require_upload_constrained()?;
        Ok(self.t_raw())
    }

    /// Online time per file `T + 1/γ` — the MTSD flat line of Figure 2
    /// (80 time units with the paper's parameters).
    ///
    /// # Panics
    /// Panics when `γ ≤ μ`; use [`Mtsd::download_time`] first when the
    /// regime is uncertain. (Kept panicking for ergonomic plotting code;
    /// the checked path is `class_times`.)
    pub fn online_time_per_file(&self) -> f64 {
        assert!(
            self.params.upload_constrained(),
            "MTSD online time requires γ > μ"
        );
        self.t_raw() + self.params.seed_residence()
    }

    /// Steady per-user service rate `1/T = γμη/(γ−μ)` — the rate at which
    /// a downloading MTSD user completes its current file once each torrent
    /// has relaxed to the Qiu–Srikant fixed point (1/60 per time unit with
    /// the paper's parameters).
    ///
    /// The transient fluid ODE ([`btfluid-scenario`]'s staged MTSD system)
    /// must converge to exactly this rate under a constant workload; the
    /// hybrid engine uses it as the reference scale for its tolerance model.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when `γ ≤ μ`.
    pub fn steady_service_rate(&self) -> Result<f64, NumError> {
        Ok(1.0 / self.download_time()?)
    }

    /// Per-class user totals for classes `1..=k`:
    /// download `i·T`, online `i·(T + 1/γ)`.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when `γ ≤ μ` or `k == 0`.
    pub fn class_times(&self, k: usize) -> Result<ClassTimes, NumError> {
        if k == 0 {
            return Err(NumError::InvalidInput {
                what: "Mtsd::class_times",
                detail: "need at least one class".into(),
            });
        }
        let t = self.download_time()?;
        let per_file_online = t + self.params.seed_residence();
        let download: Vec<f64> = (1..=k).map(|i| i as f64 * t).collect();
        let online: Vec<f64> = (1..=k).map(|i| i as f64 * per_file_online).collect();
        ClassTimes::new(download, online)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_workload::{ClassMix, CorrelationModel};

    #[test]
    fn paper_values() {
        let m = Mtsd::new(FluidParams::paper());
        assert!((m.download_time().unwrap() - 60.0).abs() < 1e-12);
        assert!((m.online_time_per_file() - 80.0).abs() < 1e-12);
        assert!((m.steady_service_rate().unwrap() - 1.0 / 60.0).abs() < 1e-15);
    }

    #[test]
    fn class_totals_scale_linearly() {
        let m = Mtsd::new(FluidParams::paper());
        let t = m.class_times(10).unwrap();
        for i in 1..=10 {
            assert!((t.download_total(i) - 60.0 * i as f64).abs() < 1e-9);
            assert!((t.online_total(i) - 80.0 * i as f64).abs() < 1e-9);
            // Per-file times are class independent.
            assert!((t.online_per_file(i) - 80.0).abs() < 1e-12);
            assert!((t.download_per_file(i) - 60.0).abs() < 1e-12);
        }
    }

    #[test]
    fn population_average_is_flat_in_p() {
        // Figure 2's MTSD line: the average online time per file does not
        // depend on the correlation p.
        let m = Mtsd::new(FluidParams::paper());
        let times = m.class_times(10).unwrap();
        for &p in &[0.05, 0.3, 0.6, 0.95] {
            let model = CorrelationModel::new(10, p, 1.0).unwrap();
            let mix = ClassMix::system_wide(&model).unwrap();
            let avg = times.avg_online_per_file(&mix).unwrap();
            assert!((avg - 80.0).abs() < 1e-9, "p = {p}: avg = {avg}");
        }
    }

    #[test]
    fn invalid_regime_rejected() {
        let m = Mtsd::new(FluidParams::new(0.06, 0.5, 0.05).unwrap());
        assert!(m.download_time().is_err());
        assert!(m.class_times(5).is_err());
    }

    #[test]
    #[should_panic(expected = "requires γ > μ")]
    fn online_time_panics_outside_regime() {
        let m = Mtsd::new(FluidParams::new(0.06, 0.5, 0.05).unwrap());
        let _ = m.online_time_per_file();
    }

    #[test]
    fn zero_classes_rejected() {
        let m = Mtsd::new(FluidParams::paper());
        assert!(m.class_times(0).is_err());
    }

    #[test]
    fn fairness_is_perfect() {
        let m = Mtsd::new(FluidParams::paper());
        let t = m.class_times(10).unwrap();
        assert!((t.download_fairness().unwrap() - 1.0).abs() < 1e-12);
    }
}
