//! # btfluid-core
//!
//! Fluid models for multiple-file downloading in BitTorrent — the primary
//! contribution of "Analyzing Multiple File Downloading in BitTorrent"
//! (Tian, Wu, Ng; ICPP 2006), implemented as a library.
//!
//! ## Model family
//!
//! Everything builds on the Qiu–Srikant fluid model of a single torrent,
//! restricted (as the paper does) to the upload-constrained regime:
//!
//! ```text
//! dx/dt = λ − μ(ηx + y)          x: downloaders
//! dy/dt = μ(ηx + y) − γy         y: seeds
//! ```
//!
//! * [`base`] — that single-torrent model plus its closed-form steady state
//!   (Section 2 of the paper; the K = 1 degeneration check of Section 3.3).
//! * [`multiclass`] — the bandwidth-class generalization of Section 2
//!   (classes `Cᵢ(μᵢ, cᵢ)` with the two proportional-service assumptions).
//! * [`mtcd`] — multi-torrent **concurrent** downloading, Eq. (1), with the
//!   closed-form steady state of Eq. (2).
//! * [`mtsd`] — multi-torrent **sequential** downloading, Eqs. (3)–(4).
//! * [`mfcd`] — multi-file-torrent concurrent downloading, shown by the
//!   paper to be equivalent to MTCD in the fluid limit.
//! * [`cmfsd`] — the paper's proposal: collaborative multi-file-torrent
//!   sequential downloading, Eq. (5), solved both by ODE relaxation and by
//!   the 1-D fixed point derived in DESIGN.md §5.3.
//! * [`cmfsd_mixed`] — an exact extension to several coexisting
//!   populations with different ρ (obedient vs cheaters), yielding an
//!   analytic prediction of the Adapt equilibrium (Section 4.3's informal
//!   argument, made quantitative).
//! * [`adapt`] — the **Adapt** control law of Section 4.3 for tuning the
//!   partial-seeding ratio ρ in a distributed fashion.
//! * [`metrics`] / [`schemes`] — the per-class and population metrics
//!   (online/download time per file) and a unified scheme-evaluation entry
//!   point used by the figure harness.
//!
//! ## Conventions
//!
//! File size is the unit of work and `μ` is upload bandwidth in files per
//! time unit, so all times are in the paper's abstract time units. With the
//! paper's parameters (`μ = 0.02, η = 0.5, γ = 0.05`) the MTSD online time
//! per file is `(γ−μ)/(γμη) + 1/γ = 80`.
//!
//! Classes are indexed `1..=K` (a class-`i` user requested `i` files);
//! vectors indexed by class use offset 0 ↔ class 1 throughout.

#![forbid(unsafe_code)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it also
// rejects NaN, which is exactly what parameter validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod adapt;
pub mod base;
pub mod cmfsd;
pub mod cmfsd_mixed;
pub mod metrics;
pub mod mfcd;
pub mod mtcd;
pub mod mtsd;
pub mod multiclass;
pub mod params;
pub mod schemes;
pub mod sensitivity;

pub use metrics::ClassTimes;
pub use params::FluidParams;
pub use schemes::{evaluate_scheme, Scheme, SchemeReport};

/// Convenience error alias (the crate reports through the shared numeric
/// error type).
pub type CoreError = btfluid_numkit::NumError;
