//! Multi-torrent **concurrent** downloading (MTCD) — Section 3.2.
//!
//! A class-`i` user joins `i` torrents at once with `μ/i` upload (and
//! `c/i` download) bandwidth per torrent. By symmetry every torrent obeys
//! the same fluid model (Eq. 1 of the paper); for torrent `t_j` with
//! per-class entry rates `λⱼⁱ`:
//!
//! ```text
//! dxⱼⁱ/dt = λⱼⁱ − η(μ/i)xⱼⁱ − wᵢ · Σₗ (μ/l)·yⱼˡ
//! dyⱼⁱ/dt = η(μ/i)xⱼⁱ + wᵢ · Σₗ (μ/l)·yⱼˡ − γ·yⱼⁱ
//!           with wᵢ = (xⱼⁱ/i) / Σₗ (xⱼˡ/l)
//! ```
//!
//! The closed-form steady state (Eq. 2) is
//!
//! ```text
//! xⱼⁱ = i·λⱼⁱ·G,   yⱼⁱ = λⱼⁱ/γ,
//! G = (γ·Σλⱼˡ − μ·Σ λⱼˡ/l) / (γμη·Σλⱼˡ)
//! ```
//!
//! giving class-`i` download time `i·G` (per file: the fair constant `G`)
//! and online time `i·G + 1/γ` (per file: `G + 1/(iγ)`, *decreasing* in `i`
//! — the "peers requesting more files do better" observation of Figure 3).

use crate::metrics::ClassTimes;
use crate::params::FluidParams;
use btfluid_numkit::ode::OdeSystem;
use btfluid_numkit::NumError;

/// The MTCD fluid model for one (symmetric) torrent.
///
/// # Examples
///
/// ```
/// use btfluid_core::mtcd::Mtcd;
/// use btfluid_core::FluidParams;
/// use btfluid_workload::CorrelationModel;
///
/// let model = CorrelationModel::new(10, 1.0, 1.0)?;
/// let mtcd = Mtcd::new(FluidParams::paper(), model.per_torrent_rates())?;
/// // At p = 1, Eq. (2) gives G = (Kγ − μ)/(γμη) / K = 96.
/// assert!((mtcd.g()? - 96.0).abs() < 1e-9);
/// # Ok::<(), btfluid_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mtcd {
    params: FluidParams,
    /// Per-torrent entry rates `λⱼⁱ` (index 0 ↔ class 1). May contain
    /// zeros; at least one entry must be positive.
    lambdas: Vec<f64>,
}

/// Closed-form steady state of [`Mtcd`].
#[derive(Debug, Clone, PartialEq)]
pub struct MtcdSteady {
    /// Per-class downloader populations `xⱼⁱ` (index 0 ↔ class 1).
    pub downloaders: Vec<f64>,
    /// Per-class seed populations `yⱼⁱ`.
    pub seeds: Vec<f64>,
    /// The shared per-file download time `G`.
    pub g: f64,
}

impl Mtcd {
    /// Creates the model from validated parameters and per-torrent class
    /// entry rates.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] if `lambdas` is empty, has a
    /// negative/non-finite entry, or sums to zero.
    pub fn new(params: FluidParams, lambdas: Vec<f64>) -> Result<Self, NumError> {
        if lambdas.is_empty() {
            return Err(NumError::InvalidInput {
                what: "Mtcd::new",
                detail: "need at least one class".into(),
            });
        }
        let mut total = 0.0;
        for (idx, &l) in lambdas.iter().enumerate() {
            if !l.is_finite() || l < 0.0 {
                return Err(NumError::InvalidInput {
                    what: "Mtcd::new",
                    detail: format!("λ for class {} is {l}", idx + 1),
                });
            }
            total += l;
        }
        if total <= 0.0 {
            return Err(NumError::InvalidInput {
                what: "Mtcd::new",
                detail: "all class entry rates are zero".into(),
            });
        }
        Ok(Self { params, lambdas })
    }

    /// Number of classes `K`.
    pub fn k(&self) -> usize {
        self.lambdas.len()
    }

    /// Model parameters.
    pub fn params(&self) -> &FluidParams {
        &self.params
    }

    /// Per-torrent entry rates (index 0 ↔ class 1).
    pub fn lambdas(&self) -> &[f64] {
        &self.lambdas
    }

    /// Total per-torrent entry rate `B = Σ λⱼˡ`.
    pub fn total_rate(&self) -> f64 {
        self.lambdas.iter().sum()
    }

    /// The bandwidth-weighted rate `D = Σ λⱼˡ/l`.
    pub fn weighted_rate(&self) -> f64 {
        self.lambdas
            .iter()
            .enumerate()
            .map(|(idx, &l)| l / (idx + 1) as f64)
            .sum()
    }

    /// The shared per-file download time
    /// `G = (γB − μD)/(γμηB)` from Eq. (2).
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when `γB ≤ μD` — the regime where
    /// seed capacity alone covers the arrival flow and the closed form
    /// breaks down (for `γ > μ` this never happens since `D ≤ B`).
    pub fn g(&self) -> Result<f64, NumError> {
        let (mu, eta, gamma) = (self.params.mu(), self.params.eta(), self.params.gamma());
        let b = self.total_rate();
        let d = self.weighted_rate();
        let g = (gamma * b - mu * d) / (gamma * mu * eta * b);
        if g <= 0.0 {
            return Err(NumError::InvalidInput {
                what: "Mtcd::g",
                detail: format!(
                    "closed form requires γ·Σλ > μ·Σλ/l (got γB = {}, μD = {}); \
                     the torrent is seed-capacity constrained",
                    gamma * b,
                    mu * d
                ),
            });
        }
        Ok(g)
    }

    /// Closed-form steady state (Eq. 2).
    ///
    /// # Errors
    /// Propagates [`Mtcd::g`] validity errors.
    pub fn steady_state(&self) -> Result<MtcdSteady, NumError> {
        let g = self.g()?;
        let gamma = self.params.gamma();
        let downloaders = self
            .lambdas
            .iter()
            .enumerate()
            .map(|(idx, &l)| (idx + 1) as f64 * l * g)
            .collect();
        let seeds = self.lambdas.iter().map(|&l| l / gamma).collect();
        Ok(MtcdSteady {
            downloaders,
            seeds,
            g,
        })
    }

    /// Per-class user-total times: class `i` downloads each of its `i`
    /// files concurrently in `i·G`, then seeds for `1/γ`; the fluid model's
    /// Little's-law online time (Eq. 2) is `Tᵢ = i·G + 1/γ`.
    ///
    /// # Errors
    /// Propagates [`Mtcd::g`] validity errors.
    pub fn class_times(&self) -> Result<ClassTimes, NumError> {
        let g = self.g()?;
        let seed = self.params.seed_residence();
        let k = self.k();
        let download: Vec<f64> = (1..=k).map(|i| i as f64 * g).collect();
        let online: Vec<f64> = download.iter().map(|&d| d + seed).collect();
        ClassTimes::new(download, online)
    }
}

impl OdeSystem for Mtcd {
    fn dim(&self) -> usize {
        2 * self.k()
    }

    /// State layout: `[x₁..x_K, y₁..y_K]`.
    fn rhs(&self, _t: f64, state: &[f64], d: &mut [f64]) {
        let k = self.k();
        let (mu, eta, gamma) = (self.params.mu(), self.params.eta(), self.params.gamma());
        let (xs, ys) = state.split_at(k);

        // Seed service pool Σₗ (μ/l)·yₗ and downloader share weights xᵢ/i.
        let mut seed_pool = 0.0;
        let mut weight_total = 0.0;
        for i in 0..k {
            let class = (i + 1) as f64;
            seed_pool += mu / class * ys[i].max(0.0);
            weight_total += xs[i].max(0.0) / class;
        }

        for i in 0..k {
            let class = (i + 1) as f64;
            let x = xs[i].max(0.0);
            let tft = eta * mu / class * x;
            let from_seeds = if weight_total > 0.0 {
                (x / class) / weight_total * seed_pool
            } else {
                // No downloaders anywhere: seed capacity idles.
                0.0
            };
            let served = tft + from_seeds;
            d[i] = self.lambdas[i] - served;
            d[k + i] = served - gamma * ys[i].max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_numkit::ode::{steady_state, SteadyOptions};
    use btfluid_workload::CorrelationModel;

    fn paper_mtcd(p: f64) -> Mtcd {
        let model = CorrelationModel::new(10, p, 1.0).unwrap();
        Mtcd::new(FluidParams::paper(), model.per_torrent_rates()).unwrap()
    }

    #[test]
    fn validation() {
        let params = FluidParams::paper();
        assert!(Mtcd::new(params, vec![]).is_err());
        assert!(Mtcd::new(params, vec![0.0, 0.0]).is_err());
        assert!(Mtcd::new(params, vec![-1.0, 1.0]).is_err());
        assert!(Mtcd::new(params, vec![0.0, 1.0]).is_ok());
    }

    #[test]
    fn k1_degenerates_to_single_torrent() {
        // Section 3.3: with K = 1 and i = 1 the model must reproduce the
        // Qiu–Srikant result T = (γ−μ)/(γμη) = 60 and online 80.
        let m = Mtcd::new(FluidParams::paper(), vec![1.0]).unwrap();
        let g = m.g().unwrap();
        assert!((g - 60.0).abs() < 1e-12);
        let times = m.class_times().unwrap();
        assert!((times.online_total(1) - 80.0).abs() < 1e-12);
    }

    #[test]
    fn p_one_all_mass_on_class_k() {
        // At p = 1 every user requests all K = 10 files: B = λ, D = λ/10,
        // G = (γ − μ/10)/(γμη) = (0.05 − 0.002)/0.0005 = 96.
        let m = paper_mtcd(1.0);
        let g = m.g().unwrap();
        assert!((g - 96.0).abs() < 1e-9, "G = {g}");
        let times = m.class_times().unwrap();
        // Class-10 user: download 960, online 980, per file 98.
        assert!((times.download_total(10) - 960.0).abs() < 1e-6);
        assert!((times.online_per_file(10) - 98.0).abs() < 1e-8);
    }

    #[test]
    fn low_correlation_approaches_mtsd() {
        // As p → 0 the mix concentrates on class 1 and G → 60.
        let m = paper_mtcd(1e-6);
        let g = m.g().unwrap();
        assert!((g - 60.0).abs() < 1e-3, "G = {g}");
    }

    #[test]
    fn g_increases_with_correlation() {
        let gs: Vec<f64> = [0.1, 0.3, 0.5, 0.7, 0.9]
            .iter()
            .map(|&p| paper_mtcd(p).g().unwrap())
            .collect();
        assert!(
            gs.windows(2).all(|w| w[0] < w[1]),
            "G should increase with p: {gs:?}"
        );
    }

    #[test]
    fn online_per_file_decreases_with_class() {
        // Figure 3's observation: higher classes do better per file.
        let times = paper_mtcd(0.1).class_times().unwrap();
        let per_file = times.online_per_file_vec();
        assert!(
            per_file.windows(2).all(|w| w[0] > w[1]),
            "per-file online should decrease: {per_file:?}"
        );
        // Download per file is the fair constant G for every class.
        let d = times.download_per_file_vec();
        let g = paper_mtcd(0.1).g().unwrap();
        for v in d {
            assert!((v - g).abs() < 1e-9);
        }
        assert!((times.download_fairness().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn seeds_closed_form_is_lambda_over_gamma() {
        let m = paper_mtcd(0.5);
        let ss = m.steady_state().unwrap();
        for (idx, &l) in m.lambdas().iter().enumerate() {
            assert!((ss.seeds[idx] - l / 0.05).abs() < 1e-12);
        }
    }

    #[test]
    fn ode_equilibrium_matches_closed_form() {
        let m = paper_mtcd(0.3);
        let ss_closed = m.steady_state().unwrap();
        let x0 = vec![0.0; m.dim()];
        let ss = steady_state(&m, &x0, SteadyOptions::default()).unwrap();
        for i in 0..m.k() {
            assert!(
                (ss.x[i] - ss_closed.downloaders[i]).abs()
                    < 1e-4 * ss_closed.downloaders[i].max(1.0),
                "x[{i}] = {}, closed form {}",
                ss.x[i],
                ss_closed.downloaders[i]
            );
            assert!(
                (ss.x[m.k() + i] - ss_closed.seeds[i]).abs() < 1e-4 * ss_closed.seeds[i].max(1.0),
                "y[{i}]"
            );
        }
    }

    #[test]
    fn rhs_balances_at_closed_form() {
        let m = paper_mtcd(0.7);
        let ss = m.steady_state().unwrap();
        let mut state = ss.downloaders.clone();
        state.extend_from_slice(&ss.seeds);
        let mut d = vec![0.0; m.dim()];
        m.rhs(0.0, &state, &mut d);
        for (i, &di) in d.iter().enumerate() {
            assert!(di.abs() < 1e-12, "rhs[{i}] = {di}");
        }
    }

    #[test]
    fn seed_capacity_constrained_regime_rejected() {
        // γ < μ with all mass on class 1 ⇒ γB < μD.
        let params = FluidParams::new(0.06, 0.5, 0.05).unwrap();
        let m = Mtcd::new(params, vec![1.0]).unwrap();
        assert!(m.g().is_err());
        assert!(m.steady_state().is_err());
        assert!(m.class_times().is_err());
    }

    #[test]
    fn gamma_below_mu_can_still_be_valid_for_high_classes() {
        // With γ slightly below μ but all users splitting across 10 files,
        // D = B/10, so γB > μB/10 still holds: the closed form is valid.
        let params = FluidParams::new(0.06, 0.5, 0.05).unwrap();
        let m = Mtcd::new(params, vec![0.0; 9].into_iter().chain([1.0]).collect()).unwrap();
        let g = m.g().unwrap();
        assert!(g > 0.0);
    }

    #[test]
    fn zero_rate_classes_have_zero_population() {
        let m = paper_mtcd(1.0); // only class 10 arrives
        let ss = m.steady_state().unwrap();
        for i in 0..9 {
            assert_eq!(ss.downloaders[i], 0.0);
            assert_eq!(ss.seeds[i], 0.0);
        }
        assert!(ss.downloaders[9] > 0.0);
    }
}
