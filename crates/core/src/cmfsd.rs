//! Collaborative multi-file-torrent **sequential** downloading (CMFSD) —
//! the paper's proposal, Section 3.5.
//!
//! `K` interest-correlated files live in one torrent with `K` subtorrents.
//! A class-`i` peer downloads its files *sequentially* (full download
//! bandwidth in the current subtorrent); once it has finished at least one
//! file it splits its upload: a fraction `ρ` plays tit-for-tat in the
//! subtorrent it is downloading from, and the rest `1 − ρ` serves one of
//! its finished files as a **virtual seed**.
//!
//! With `x^{i,j}` the population of class-`i` peers downloading their `j`-th
//! file and `y^i` the class-`i` (real) seeds, and
//! `P(i,j) = 1` if `i = 1 ∨ j = 1`, else `ρ`, Eq. (5) reads
//!
//! ```text
//! dx^{i,1}/dt = λᵢ − μη·P(i,1)·x^{i,1} − S^{i,1}
//! dx^{i,j}/dt = μη·P(i,j−1)·x^{i,j−1} + S^{i,j−1}
//!               − μη·P(i,j)·x^{i,j} − S^{i,j}          (2 ≤ j ≤ i)
//! dy^{i}/dt   = μη·P(i,i)·x^{i,i} + S^{i,i} − γ·y^{i}
//!
//! S^{i,j} = μ·x^{i,j}·(V + Y) / W
//!   W = Σ x^{l,m}   (all downloaders)
//!   V = Σ (1 − P(l,m))·x^{l,m}   (virtual-seed bandwidth weight)
//!   Y = Σ y^{l}     (real seeds)
//! ```
//!
//! ## Steady state as a 1-D fixed point
//!
//! At equilibrium the flux through every stage of class `i` equals `λᵢ`,
//! so with `s = (V + Y)/W`:
//!
//! ```text
//! x^{i,j} = λᵢ / (μη·P(i,j) + μ·s)
//! ```
//!
//! and `s` solves the scalar equation `s·W(s) = V(s) + Y` with
//! `Y = Σλᵢ/γ`, which is monotone in `s` and bracketed — solved here with
//! Brent's method and cross-validated against ODE relaxation in the test
//! suite. Per-class download time follows immediately:
//!
//! ```text
//! T_dl(i) = 1/(μη + μs) + (i−1)/(μηρ + μs)
//! ```

use crate::metrics::ClassTimes;
use crate::params::FluidParams;
use btfluid_numkit::ode::OdeSystem;
use btfluid_numkit::roots::{brent, RootOptions};
use btfluid_numkit::NumError;

/// The CMFSD fluid model (Eq. 5).
///
/// # Examples
///
/// ```
/// use btfluid_core::cmfsd::Cmfsd;
/// use btfluid_core::FluidParams;
/// use btfluid_workload::CorrelationModel;
///
/// // A 10-file torrent at high correlation, full collaboration (ρ = 0).
/// let model = CorrelationModel::new(10, 0.9, 1.0)?;
/// let cmfsd = Cmfsd::new(FluidParams::paper(), model.class_rates(), 0.0)?;
/// let times = cmfsd.class_times()?;
/// // Everyone beats the plain-MFCD 97.8 per file by a wide margin.
/// assert!(times.online_per_file(10) < 60.0);
/// # Ok::<(), btfluid_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cmfsd {
    params: FluidParams,
    /// Torrent-level class entry rates `λᵢ` (index 0 ↔ class 1).
    lambdas: Vec<f64>,
    /// Bandwidth allocation ratio ρ ∈ [0, 1]: fraction kept for TFT; the
    /// virtual seed gets `1 − ρ`.
    rho: f64,
}

/// Steady state of [`Cmfsd`] from the fixed-point solver.
#[derive(Debug, Clone, PartialEq)]
pub struct CmfsdSteady {
    /// The pooled-service ratio `s = (V + Y)/W` at equilibrium.
    pub s: f64,
    /// Stage populations `x^{i,j}` in row-major triangular order
    /// (class 1 stage 1; class 2 stages 1,2; …).
    pub stages: Vec<f64>,
    /// Per-class seed populations `y^i = λᵢ/γ`.
    pub seeds: Vec<f64>,
    /// Total downloader mass `W`.
    pub w: f64,
    /// Virtual-seed weight `V`.
    pub v: f64,
}

impl Cmfsd {
    /// Creates the model.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] if `lambdas` is empty/negative/all
    /// zero or `ρ ∉ [0, 1]`.
    pub fn new(params: FluidParams, lambdas: Vec<f64>, rho: f64) -> Result<Self, NumError> {
        if lambdas.is_empty() {
            return Err(NumError::InvalidInput {
                what: "Cmfsd::new",
                detail: "need at least one class".into(),
            });
        }
        let mut total = 0.0;
        for (idx, &l) in lambdas.iter().enumerate() {
            if !l.is_finite() || l < 0.0 {
                return Err(NumError::InvalidInput {
                    what: "Cmfsd::new",
                    detail: format!("λ for class {} is {l}", idx + 1),
                });
            }
            total += l;
        }
        if total <= 0.0 {
            return Err(NumError::InvalidInput {
                what: "Cmfsd::new",
                detail: "all class entry rates are zero".into(),
            });
        }
        if !(0.0..=1.0).contains(&rho) {
            return Err(NumError::InvalidInput {
                what: "Cmfsd::new",
                detail: format!("bandwidth allocation ratio ρ must lie in [0,1], got {rho}"),
            });
        }
        Ok(Self {
            params,
            lambdas,
            rho,
        })
    }

    /// Number of classes `K`.
    pub fn k(&self) -> usize {
        self.lambdas.len()
    }

    /// Model parameters.
    pub fn params(&self) -> &FluidParams {
        &self.params
    }

    /// Torrent-level entry rates (index 0 ↔ class 1).
    pub fn lambdas(&self) -> &[f64] {
        &self.lambdas
    }

    /// The bandwidth allocation ratio ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// `P(i, j)`: 1 for a peer with no finished file (`i = 1` or `j = 1`),
    /// ρ otherwise.
    pub fn p_fn(&self, i: usize, j: usize) -> f64 {
        if i == 1 || j == 1 {
            1.0
        } else {
            self.rho
        }
    }

    /// Number of `x^{i,j}` stages: `K(K+1)/2`.
    pub fn n_stages(&self) -> usize {
        self.k() * (self.k() + 1) / 2
    }

    /// Index of stage `(i, j)` (`1 ≤ j ≤ i ≤ K`) in the triangular layout.
    ///
    /// # Panics
    /// Panics for indices outside the triangle.
    pub fn stage_index(&self, i: usize, j: usize) -> usize {
        assert!(
            i >= 1 && i <= self.k() && j >= 1 && j <= i,
            "stage ({i},{j}) outside triangle with K = {}",
            self.k()
        );
        (i - 1) * i / 2 + (j - 1)
    }

    /// Real-seed pool at equilibrium, `Y = Σ λᵢ/γ`.
    pub fn seed_pool(&self) -> f64 {
        self.lambdas.iter().sum::<f64>() / self.params.gamma()
    }

    /// Stage population at a candidate ratio `s`:
    /// `x^{i,j}(s) = λᵢ/(μη·P(i,j) + μs)`.
    fn stage_pop(&self, i: usize, j: usize, s: f64) -> f64 {
        let mu = self.params.mu();
        let eta = self.params.eta();
        self.lambdas[i - 1] / (mu * eta * self.p_fn(i, j) + mu * s)
    }

    /// `W(s)` and `V(s)` aggregated over the triangle.
    fn pools(&self, s: f64) -> (f64, f64) {
        let mut w = 0.0;
        let mut v = 0.0;
        for i in 1..=self.k() {
            if self.lambdas[i - 1] == 0.0 {
                continue;
            }
            // Stage 1: P = 1.
            w += self.stage_pop(i, 1, s);
            // Stages 2..=i share P = ρ.
            if i >= 2 {
                let pop = self.stage_pop(i, 2, s);
                w += (i - 1) as f64 * pop;
                v += (i - 1) as f64 * (1.0 - self.rho) * pop;
            }
        }
        (w, v)
    }

    /// The fixed-point residual `g(s) = s·W(s) − V(s) − Y`.
    fn residual(&self, s: f64) -> f64 {
        let (w, v) = self.pools(s);
        s * w - v - self.seed_pool()
    }

    /// Solves the steady state via the 1-D fixed point.
    ///
    /// # Errors
    /// * [`NumError::NoBracket`] / [`NumError::InvalidInput`] when the
    ///   system is outside the regime where the equilibrium exists (e.g.
    ///   `g(∞) = Σᵢ i·λᵢ/μ − Y ≤ 0`: real seeds alone outpace demand).
    /// * Propagates root-finder convergence failures.
    pub fn steady_state(&self) -> Result<CmfsdSteady, NumError> {
        // The asymptotic value s·W(s) → Σ i·λᵢ/μ must exceed Y for a root.
        let asymptote: f64 = self
            .lambdas
            .iter()
            .enumerate()
            .map(|(idx, &l)| (idx + 1) as f64 * l)
            .sum::<f64>()
            / self.params.mu();
        if asymptote <= self.seed_pool() {
            return Err(NumError::InvalidInput {
                what: "Cmfsd::steady_state",
                detail: format!(
                    "no positive equilibrium: Σ i·λᵢ/μ = {asymptote} ≤ Y = {} \
                     (seed capacity alone covers the arrival flow; requires γ \
                     large enough relative to μ)",
                    self.seed_pool()
                ),
            });
        }
        // Bracket the root: g is negative near 0 (virtual seeds + real
        // seeds dominate) and positive for large s.
        let lo = 1e-12;
        let mut hi = 1.0;
        let mut tries = 0;
        while self.residual(hi) <= 0.0 {
            hi *= 4.0;
            tries += 1;
            if tries > 200 {
                return Err(NumError::NoConvergence {
                    what: "Cmfsd::steady_state (bracketing)",
                    iterations: tries,
                    residual: self.residual(hi),
                });
            }
        }
        let root = brent(
            |s| self.residual(s),
            lo,
            hi,
            RootOptions {
                x_tol: 1e-14,
                f_tol: 1e-12,
                max_iter: 300,
            },
        )?;
        let s = root.x;
        let (w, v) = self.pools(s);
        let mut stages = vec![0.0; self.n_stages()];
        for i in 1..=self.k() {
            for j in 1..=i {
                stages[self.stage_index(i, j)] = self.stage_pop(i, j, s);
            }
        }
        let seeds = self
            .lambdas
            .iter()
            .map(|&l| l / self.params.gamma())
            .collect();
        Ok(CmfsdSteady {
            s,
            stages,
            seeds,
            w,
            v,
        })
    }

    /// Per-class user totals from the fixed point: class `i` downloads in
    /// `1/(μη + μs) + (i−1)/(μηρ + μs)` and then seeds for `1/γ`.
    ///
    /// # Errors
    /// Propagates [`Cmfsd::steady_state`] errors.
    pub fn class_times(&self) -> Result<ClassTimes, NumError> {
        let ss = self.steady_state()?;
        Ok(self.class_times_at(ss.s))
    }

    /// Per-class totals at a given pooled-service ratio `s` (exposed for
    /// sweep warm starts and for the ODE cross-check).
    pub fn class_times_at(&self, s: f64) -> ClassTimes {
        let mu = self.params.mu();
        let eta = self.params.eta();
        let first = 1.0 / (mu * eta + mu * s);
        let later = 1.0 / (mu * eta * self.rho + mu * s);
        let seed = self.params.seed_residence();
        let download: Vec<f64> = (1..=self.k())
            .map(|i| first + (i - 1) as f64 * later)
            .collect();
        let online: Vec<f64> = download.iter().map(|&d| d + seed).collect();
        ClassTimes::new(download, online).expect("times positive by construction")
    }
}

impl OdeSystem for Cmfsd {
    fn dim(&self) -> usize {
        self.n_stages() + self.k()
    }

    /// State layout: the `K(K+1)/2` stage populations `x^{i,j}` in
    /// triangular order, then the `K` seed populations `y^i`.
    fn rhs(&self, _t: f64, state: &[f64], d: &mut [f64]) {
        let k = self.k();
        let nx = self.n_stages();
        let (mu, eta, gamma) = (self.params.mu(), self.params.eta(), self.params.gamma());
        let (xs, ys) = state.split_at(nx);

        // Pools.
        let mut w = 0.0;
        let mut v = 0.0;
        for i in 1..=k {
            for j in 1..=i {
                let x = xs[self.stage_index(i, j)].max(0.0);
                w += x;
                v += (1.0 - self.p_fn(i, j)) * x;
            }
        }
        let y_total: f64 = ys.iter().map(|y| y.max(0.0)).sum();
        // Service ratio towards each downloader unit; zero when nobody
        // downloads (capacity idles).
        let s_ratio = if w > 0.0 { (v + y_total) / w } else { 0.0 };

        for i in 1..=k {
            let lambda = self.lambdas[i - 1];
            let mut inflow = lambda;
            for j in 1..=i {
                let x = xs[self.stage_index(i, j)].max(0.0);
                let flux = mu * eta * self.p_fn(i, j) * x + mu * x * s_ratio;
                d[self.stage_index(i, j)] = inflow - flux;
                inflow = flux;
            }
            // After the last stage the peer becomes a real seed.
            d[nx + (i - 1)] = inflow - gamma * ys[i - 1].max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mfcd::Mfcd;
    use btfluid_numkit::ode::{steady_state, SteadyOptions};
    use btfluid_workload::CorrelationModel;

    fn paper_cmfsd(p: f64, rho: f64) -> Cmfsd {
        let model = CorrelationModel::new(10, p, 1.0).unwrap();
        Cmfsd::new(FluidParams::paper(), model.class_rates(), rho).unwrap()
    }

    #[test]
    fn validation() {
        let params = FluidParams::paper();
        assert!(Cmfsd::new(params, vec![], 0.5).is_err());
        assert!(Cmfsd::new(params, vec![0.0], 0.5).is_err());
        assert!(Cmfsd::new(params, vec![-1.0], 0.5).is_err());
        assert!(Cmfsd::new(params, vec![1.0], -0.1).is_err());
        assert!(Cmfsd::new(params, vec![1.0], 1.1).is_err());
        assert!(Cmfsd::new(params, vec![1.0], 0.0).is_ok());
        assert!(Cmfsd::new(params, vec![1.0], 1.0).is_ok());
    }

    #[test]
    fn stage_indexing_is_triangular() {
        let m = paper_cmfsd(0.5, 0.5);
        assert_eq!(m.n_stages(), 55);
        assert_eq!(m.stage_index(1, 1), 0);
        assert_eq!(m.stage_index(2, 1), 1);
        assert_eq!(m.stage_index(2, 2), 2);
        assert_eq!(m.stage_index(3, 1), 3);
        assert_eq!(m.stage_index(10, 10), 54);
    }

    #[test]
    #[should_panic(expected = "outside triangle")]
    fn stage_index_rejects_j_above_i() {
        let m = paper_cmfsd(0.5, 0.5);
        let _ = m.stage_index(2, 3);
    }

    #[test]
    fn p_fn_definition() {
        let m = paper_cmfsd(0.5, 0.3);
        assert_eq!(m.p_fn(1, 1), 1.0);
        assert_eq!(m.p_fn(5, 1), 1.0);
        assert_eq!(m.p_fn(5, 2), 0.3);
        assert_eq!(m.p_fn(5, 5), 0.3);
    }

    #[test]
    fn k1_degenerates_to_single_torrent() {
        // With only class 1 the CMFSD model is the Qiu–Srikant torrent:
        // download 60, online 80 with the paper's parameters.
        let m = Cmfsd::new(FluidParams::paper(), vec![1.0], 0.5).unwrap();
        let t = m.class_times().unwrap();
        assert!(
            (t.download_total(1) - 60.0).abs() < 1e-6,
            "{}",
            t.download_total(1)
        );
        assert!((t.online_total(1) - 80.0).abs() < 1e-6);
    }

    #[test]
    fn rho_one_equals_mfcd_exactly() {
        // Section 4.2.2: "for the extreme case ρ = 1 the system performs as
        // in MFCD" — with the rate identity λⱼⁱ = (i/K)·λᵢ this is exact.
        for &p in &[0.1, 0.5, 0.9] {
            let model = CorrelationModel::new(10, p, 1.0).unwrap();
            let cm = paper_cmfsd(p, 1.0);
            let mfcd = Mfcd::from_correlation(FluidParams::paper(), &model).unwrap();
            let t_c = cm.class_times().unwrap();
            let t_m = mfcd.class_times().unwrap();
            for i in 1..=10 {
                assert!(
                    (t_c.download_per_file(i) - t_m.download_per_file(i)).abs() < 1e-6,
                    "p = {p}, class {i}: CMFSD {} vs MFCD {}",
                    t_c.download_per_file(i),
                    t_m.download_per_file(i)
                );
                assert!((t_c.online_per_file(i) - t_m.online_per_file(i)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn smaller_rho_improves_high_correlation_performance() {
        // Figure 4(a): at high p, ρ = 0 beats ρ = 1 substantially.
        let t0 = paper_cmfsd(0.9, 0.0).class_times().unwrap();
        let t1 = paper_cmfsd(0.9, 1.0).class_times().unwrap();
        for i in 2..=10 {
            assert!(
                t0.online_per_file(i) < t1.online_per_file(i),
                "class {i}: ρ=0 {} should beat ρ=1 {}",
                t0.online_per_file(i),
                t1.online_per_file(i)
            );
        }
    }

    #[test]
    fn online_monotone_in_rho() {
        // Performance degrades monotonically as ρ grows (less collaboration).
        let mut prev = f64::NEG_INFINITY;
        for &rho in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let t = paper_cmfsd(0.8, rho).class_times().unwrap();
            let v = t.online_per_file(10);
            assert!(v > prev, "ρ = {rho}: {v} should exceed {prev}");
            prev = v;
        }
    }

    #[test]
    fn single_file_peers_download_faster() {
        // Figure 4(b)/(c): under CMFSD with ρ < 1, class-1 peers download a
        // file faster than multi-file peers (their later stages run at the
        // throttled TFT rate μηρ instead of μη). At ρ = 1 fairness returns.
        for &(p, rho) in &[(0.1, 0.0), (0.1, 0.9), (0.9, 0.1), (0.9, 0.9)] {
            let t = paper_cmfsd(p, rho).class_times().unwrap();
            assert!(
                t.download_per_file(1) < t.download_per_file(10),
                "p={p}, ρ={rho}"
            );
        }
        let fair = paper_cmfsd(0.5, 1.0)
            .class_times()
            .unwrap()
            .download_fairness()
            .unwrap();
        assert!((fair - 1.0).abs() < 1e-9);
    }

    #[test]
    fn download_unfairness_grows_as_rho_shrinks() {
        // In Eq. (5)'s steady state the per-file download gap between
        // classes widens as ρ → 0 (the later stages lose their TFT term
        // entirely); the Jain index across classes is monotone in ρ.
        let f: Vec<f64> = [0.0, 0.3, 0.6, 1.0]
            .iter()
            .map(|&rho| {
                paper_cmfsd(0.5, rho)
                    .class_times()
                    .unwrap()
                    .download_fairness()
                    .unwrap()
            })
            .collect();
        assert!(
            f.windows(2).all(|w| w[0] < w[1] + 1e-12),
            "fairness should rise with ρ: {f:?}"
        );
    }

    #[test]
    fn section_4_3_sacrifice_at_low_p_high_rho() {
        // Section 4.3's motivation for Adapt: at low correlation and large
        // ρ, multi-file peers gain nothing (or slightly lose) vs MFCD,
        // while at high correlation and small ρ everyone gains a lot.
        let model = CorrelationModel::new(10, 0.1, 1.0).unwrap();
        let mfcd = Mfcd::from_correlation(FluidParams::paper(), &model).unwrap();
        let mfcd_on10 = mfcd.class_times().unwrap().online_per_file(10);
        let cm_on10 = paper_cmfsd(0.1, 0.9)
            .class_times()
            .unwrap()
            .online_per_file(10);
        assert!(
            cm_on10 > mfcd_on10 - 0.5,
            "class 10 should see ~no improvement: CMFSD {cm_on10} vs MFCD {mfcd_on10}"
        );

        let model_hi = CorrelationModel::new(10, 0.9, 1.0).unwrap();
        let mfcd_hi = Mfcd::from_correlation(FluidParams::paper(), &model_hi).unwrap();
        let mfcd_hi_on10 = mfcd_hi.class_times().unwrap().online_per_file(10);
        let cm_hi_on10 = paper_cmfsd(0.9, 0.1)
            .class_times()
            .unwrap()
            .online_per_file(10);
        assert!(
            cm_hi_on10 < mfcd_hi_on10 - 20.0,
            "high-p, low-ρ should be a large win: CMFSD {cm_hi_on10} vs MFCD {mfcd_hi_on10}"
        );
    }

    #[test]
    fn fixed_point_matches_ode_equilibrium() {
        for &(p, rho) in &[(0.3, 0.2), (0.9, 0.7), (0.5, 0.0), (0.2, 1.0)] {
            let m = paper_cmfsd(p, rho);
            let fp = m.steady_state().unwrap();
            let x0 = vec![0.0; m.dim()];
            let opts = SteadyOptions {
                residual_tol: 1e-10,
                ..Default::default()
            };
            let ode = steady_state(&m, &x0, opts).unwrap();
            for i in 1..=m.k() {
                for j in 1..=i {
                    let idx = m.stage_index(i, j);
                    let (a, b) = (fp.stages[idx], ode.x[idx]);
                    assert!(
                        (a - b).abs() < 1e-3 * a.max(1.0),
                        "p={p}, ρ={rho}, stage ({i},{j}): fp {a} vs ode {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn flux_conservation_at_fixed_point() {
        // At equilibrium every stage of class i carries flux λᵢ.
        let m = paper_cmfsd(0.6, 0.4);
        let ss = m.steady_state().unwrap();
        let mu = m.params().mu();
        let eta = m.params().eta();
        for i in 1..=m.k() {
            for j in 1..=i {
                let x = ss.stages[m.stage_index(i, j)];
                let flux = mu * eta * m.p_fn(i, j) * x + mu * x * ss.s;
                assert!(
                    (flux - m.lambdas()[i - 1]).abs() < 1e-9,
                    "stage ({i},{j}) flux {flux} vs λ {}",
                    m.lambdas()[i - 1]
                );
            }
        }
    }

    #[test]
    fn seed_populations_at_fixed_point() {
        let m = paper_cmfsd(0.5, 0.5);
        let ss = m.steady_state().unwrap();
        for (idx, &l) in m.lambdas().iter().enumerate() {
            assert!((ss.seeds[idx] - l / 0.05).abs() < 1e-12);
        }
    }

    #[test]
    fn no_equilibrium_when_seeds_dominate() {
        // γ huge ⇒ tiny seed pool: fine. γ tiny ⇒ Y huge: no equilibrium.
        let params = FluidParams::new(0.02, 0.5, 1e-4).unwrap();
        let m = Cmfsd::new(params, vec![1.0], 0.5).unwrap();
        assert!(m.steady_state().is_err());
    }

    #[test]
    fn rho_zero_with_single_file_classes_only() {
        // All mass on class 1: ρ is irrelevant (nobody has finished files).
        let a = Cmfsd::new(FluidParams::paper(), vec![2.0], 0.0)
            .unwrap()
            .class_times()
            .unwrap();
        let b = Cmfsd::new(FluidParams::paper(), vec![2.0], 1.0)
            .unwrap()
            .class_times()
            .unwrap();
        assert!((a.download_total(1) - b.download_total(1)).abs() < 1e-9);
    }
}
