//! The **Adapt** mechanism (Section 4.3): distributed tuning of the CMFSD
//! bandwidth allocation ratio ρ.
//!
//! Each obedient peer starts at `ρ = 0` (full collaboration — best for the
//! system), then periodically observes
//!
//! ```text
//! Δ = (upload it donated through its virtual seed)
//!   − (download it received from other peers' virtual seeds)
//! ```
//!
//! If Δ is *consistently* large the peer is donating more than it gets back
//! (e.g. because many neighbours cheat with ρ = 1), so it protects itself by
//! raising ρ; if Δ is consistently small it lowers ρ again toward full
//! collaboration.
//!
//! ## A note on the paper's thresholds
//!
//! The paper writes "increase when Δ > φ₁ … decrease when Δ < φ₂
//! (φ₁ ≤ φ₂)", which makes the two conditions overlap for
//! Δ ∈ (φ₁, φ₂). A non-overlapping dead band needs the *decrease*
//! threshold below the *increase* threshold, so this implementation names
//! them explicitly — [`AdaptConfig::phi_inc`] (increase when Δ stays above
//! it) and [`AdaptConfig::phi_dec`] (decrease when Δ stays below it) with
//! `phi_dec ≤ phi_inc` — and treats the paper's ordering as a typo. The
//! "consistently" qualifier becomes [`AdaptConfig::patience`]: the number
//! of consecutive observations on one side of a threshold required before a
//! step is taken.
//!
//! In a fully obedient homogeneous population the virtual-seed bandwidth
//! donated equals the bandwidth received *in aggregate* (both equal `μ·V`),
//! so the population-mean Δ is zero and ρ stays at 0 — the desirable fixed
//! point. The fleet-level evaluation with cheaters lives in
//! `btfluid-des::adapt`.

use btfluid_numkit::NumError;

/// Tuning constants of the Adapt mechanism (the paper's
/// `φ₁, φ₂, υ₁, υ₂` plus the patience window implied by "consistently").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptConfig {
    /// Increase ρ when Δ stays above this threshold (the paper's φ₁ read
    /// as the *upper* edge of the dead band).
    pub phi_inc: f64,
    /// Decrease ρ when Δ stays below this threshold (`phi_dec ≤ phi_inc`).
    pub phi_dec: f64,
    /// Step added to ρ on an increase (the paper's υ₁).
    pub v_inc: f64,
    /// Step subtracted from ρ on a decrease (the paper's υ₂).
    pub v_dec: f64,
    /// Number of consecutive out-of-band observations required before a
    /// step ("consistently larger/smaller").
    pub patience: u32,
}

impl AdaptConfig {
    /// A reasonable default: symmetric dead band at ±10% of a peer's upload
    /// bandwidth share, 5% steps, patience 3.
    ///
    /// The band is expressed in absolute bandwidth units, so scale it to
    /// your `μ`: this default assumes Δ is reported in units of `μ`.
    pub fn default_for_mu(mu: f64) -> Self {
        Self {
            phi_inc: 0.1 * mu,
            phi_dec: -0.1 * mu,
            v_inc: 0.05,
            v_dec: 0.05,
            patience: 3,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] unless `phi_dec ≤ phi_inc`, both
    /// steps are in `(0, 1]`, and `patience ≥ 1`.
    pub fn validate(&self) -> Result<(), NumError> {
        if !(self.phi_dec <= self.phi_inc) || !self.phi_dec.is_finite() || !self.phi_inc.is_finite()
        {
            return Err(NumError::InvalidInput {
                what: "AdaptConfig",
                detail: format!(
                    "need finite phi_dec ≤ phi_inc, got phi_dec = {}, phi_inc = {}",
                    self.phi_dec, self.phi_inc
                ),
            });
        }
        let step_ok = |v: f64| v > 0.0 && v <= 1.0;
        if !step_ok(self.v_inc) || !step_ok(self.v_dec) {
            return Err(NumError::InvalidInput {
                what: "AdaptConfig",
                detail: format!(
                    "steps must lie in (0,1], got v_inc = {}, v_dec = {}",
                    self.v_inc, self.v_dec
                ),
            });
        }
        if self.patience == 0 {
            return Err(NumError::InvalidInput {
                what: "AdaptConfig",
                detail: "patience must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Per-peer Adapt state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptController {
    cfg: AdaptConfig,
    rho: f64,
    above: u32,
    below: u32,
}

impl AdaptController {
    /// Creates a controller at the paper's recommended initial `ρ = 0`.
    ///
    /// # Errors
    /// Propagates [`AdaptConfig::validate`].
    pub fn new(cfg: AdaptConfig) -> Result<Self, NumError> {
        Self::with_initial_rho(cfg, 0.0)
    }

    /// Creates a controller with an explicit starting ρ.
    ///
    /// # Errors
    /// Propagates config validation; rejects `ρ ∉ [0,1]`.
    pub fn with_initial_rho(cfg: AdaptConfig, rho: f64) -> Result<Self, NumError> {
        cfg.validate()?;
        if !(0.0..=1.0).contains(&rho) {
            return Err(NumError::InvalidInput {
                what: "AdaptController",
                detail: format!("initial ρ must lie in [0,1], got {rho}"),
            });
        }
        Ok(Self {
            cfg,
            rho,
            above: 0,
            below: 0,
        })
    }

    /// Current ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The configuration.
    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// Decomposes the controller into `(ρ, above-streak, below-streak)`,
    /// for checkpointing. Inverse of [`AdaptController::from_raw_state`]
    /// (the config is restored separately — it is immutable and lives in
    /// the run configuration).
    pub fn raw_state(&self) -> (f64, u32, u32) {
        (self.rho, self.above, self.below)
    }

    /// Rebuilds a controller from a config plus state captured with
    /// [`AdaptController::raw_state`].
    ///
    /// # Errors
    /// Propagates config validation; rejects `ρ ∉ [0,1]`.
    pub fn from_raw_state(
        cfg: AdaptConfig,
        rho: f64,
        above: u32,
        below: u32,
    ) -> Result<Self, NumError> {
        let mut ctrl = Self::with_initial_rho(cfg, rho)?;
        ctrl.above = above;
        ctrl.below = below;
        Ok(ctrl)
    }

    /// Feeds one periodic observation of Δ; returns the (possibly updated)
    /// ρ. A step happens only after [`AdaptConfig::patience`] consecutive
    /// observations beyond the same threshold, after which the streak
    /// resets.
    pub fn observe(&mut self, delta: f64) -> f64 {
        if delta > self.cfg.phi_inc {
            self.above += 1;
            self.below = 0;
            if self.above >= self.cfg.patience {
                self.rho = (self.rho + self.cfg.v_inc).min(1.0);
                self.above = 0;
            }
        } else if delta < self.cfg.phi_dec {
            self.below += 1;
            self.above = 0;
            if self.below >= self.cfg.patience {
                self.rho = (self.rho - self.cfg.v_dec).max(0.0);
                self.below = 0;
            }
        } else {
            // Inside the dead band: streaks break.
            self.above = 0;
            self.below = 0;
        }
        self.rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdaptConfig {
        AdaptConfig {
            phi_inc: 0.1,
            phi_dec: -0.1,
            v_inc: 0.2,
            v_dec: 0.1,
            patience: 3,
        }
    }

    #[test]
    fn config_validation() {
        assert!(cfg().validate().is_ok());
        let mut bad = cfg();
        bad.phi_dec = 0.5; // above phi_inc
        assert!(bad.validate().is_err());
        let mut bad = cfg();
        bad.v_inc = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = cfg();
        bad.v_dec = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = cfg();
        bad.patience = 0;
        assert!(bad.validate().is_err());
        let mut bad = cfg();
        bad.phi_inc = f64::NAN;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn starts_at_zero_rho() {
        let c = AdaptController::new(cfg()).unwrap();
        assert_eq!(c.rho(), 0.0);
    }

    #[test]
    fn initial_rho_bounds() {
        assert!(AdaptController::with_initial_rho(cfg(), 1.5).is_err());
        assert!(AdaptController::with_initial_rho(cfg(), -0.1).is_err());
        let c = AdaptController::with_initial_rho(cfg(), 0.7).unwrap();
        assert_eq!(c.rho(), 0.7);
    }

    #[test]
    fn patience_gates_the_step() {
        let mut c = AdaptController::new(cfg()).unwrap();
        // Two high observations: not yet.
        c.observe(1.0);
        c.observe(1.0);
        assert_eq!(c.rho(), 0.0);
        // Third consecutive: step by v_inc.
        c.observe(1.0);
        assert!((c.rho() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn dead_band_resets_streaks() {
        let mut c = AdaptController::new(cfg()).unwrap();
        c.observe(1.0);
        c.observe(1.0);
        c.observe(0.0); // inside band: streak broken
        c.observe(1.0);
        c.observe(1.0);
        assert_eq!(c.rho(), 0.0);
        c.observe(1.0);
        assert!((c.rho() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn opposite_signal_resets_streak() {
        let mut c = AdaptController::new(cfg()).unwrap();
        c.observe(1.0);
        c.observe(1.0);
        c.observe(-1.0); // flips to the below streak
        assert_eq!(c.rho(), 0.0);
        c.observe(-1.0);
        c.observe(-1.0);
        // Below streak completes but ρ is already 0: clamped.
        assert_eq!(c.rho(), 0.0);
    }

    #[test]
    fn rho_clamps_at_one() {
        let mut c = AdaptController::new(cfg()).unwrap();
        for _ in 0..30 {
            c.observe(5.0);
        }
        assert_eq!(c.rho(), 1.0);
    }

    #[test]
    fn decrease_path_steps_down() {
        let mut c = AdaptController::with_initial_rho(cfg(), 0.5).unwrap();
        for _ in 0..3 {
            c.observe(-1.0);
        }
        assert!((c.rho() - 0.4).abs() < 1e-12);
        for _ in 0..30 {
            c.observe(-1.0);
        }
        assert_eq!(c.rho(), 0.0);
    }

    #[test]
    fn selfish_environment_drives_rho_to_one() {
        // The paper's degeneration argument: when the majority cheat, every
        // obedient peer consistently sees Δ > φ and converges to ρ = 1
        // (system behaves like MFCD).
        let mut c = AdaptController::new(cfg()).unwrap();
        let mut steps = 0;
        while c.rho() < 1.0 {
            c.observe(0.5);
            steps += 1;
            assert!(steps < 100, "should converge quickly");
        }
        assert_eq!(c.rho(), 1.0);
        // 5 increments × patience 3 = 15 observations.
        assert_eq!(steps, 15);
    }

    #[test]
    fn default_for_mu_scales_band() {
        let d = AdaptConfig::default_for_mu(0.02);
        assert!((d.phi_inc - 0.002).abs() < 1e-12);
        assert!((d.phi_dec + 0.002).abs() < 1e-12);
        assert!(d.validate().is_ok());
    }
}
