//! The fluid-model parameters of Table 1.

use btfluid_numkit::NumError;

/// The per-peer parameters of the fluid model (Table 1 of the paper):
/// upload bandwidth `μ`, downloader sharing efficiency `η` and seed
/// departure rate `γ`.
///
/// The peer arrival rate `λ` is *not* part of this struct — it comes from
/// the workload (correlation model) and differs per scheme and per class.
///
/// The paper fixes `η = 0.5` (from the Izal et al. measurement: seeds
/// contribute about twice the downloader bytes) and evaluates with
/// `μ = 0.02`, `γ = 0.05`; [`FluidParams::paper`] returns those values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidParams {
    mu: f64,
    eta: f64,
    gamma: f64,
}

impl FluidParams {
    /// Creates validated parameters.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] unless `μ > 0`, `γ > 0` (both
    /// finite) and `η ∈ (0, 1]`.
    pub fn new(mu: f64, eta: f64, gamma: f64) -> Result<Self, NumError> {
        if !(mu > 0.0) || !mu.is_finite() {
            return Err(NumError::InvalidInput {
                what: "FluidParams::new",
                detail: format!("upload bandwidth μ must be finite and > 0, got {mu}"),
            });
        }
        if !(eta > 0.0 && eta <= 1.0) {
            return Err(NumError::InvalidInput {
                what: "FluidParams::new",
                detail: format!("sharing efficiency η must lie in (0, 1], got {eta}"),
            });
        }
        if !(gamma > 0.0) || !gamma.is_finite() {
            return Err(NumError::InvalidInput {
                what: "FluidParams::new",
                detail: format!("seed departure rate γ must be finite and > 0, got {gamma}"),
            });
        }
        Ok(Self { mu, eta, gamma })
    }

    /// The evaluation parameters used throughout the paper's Section 4:
    /// `μ = 0.02, η = 0.5, γ = 0.05`.
    pub fn paper() -> Self {
        Self {
            mu: 0.02,
            eta: 0.5,
            gamma: 0.05,
        }
    }

    /// Upload bandwidth `μ` (files per time unit).
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Downloader sharing efficiency `η`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Seed departure rate `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Mean seed residence time `1/γ`.
    pub fn seed_residence(&self) -> f64 {
        1.0 / self.gamma
    }

    /// Whether the single-torrent steady state is *upload-constrained with
    /// a positive downloader population*, i.e. `γ > μ`.
    ///
    /// When `γ ≤ μ` the seeds alone can serve the arrival flow and the
    /// Qiu–Srikant downloader population collapses to the boundary; the
    /// closed forms of Eqs. (2) and (4) are then not valid.
    pub fn upload_constrained(&self) -> bool {
        self.gamma > self.mu
    }

    /// Requires `γ > μ`, returning a descriptive error otherwise. Called by
    /// every closed-form steady state.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when `γ ≤ μ`.
    pub fn require_upload_constrained(&self) -> Result<(), NumError> {
        if self.upload_constrained() {
            Ok(())
        } else {
            Err(NumError::InvalidInput {
                what: "FluidParams",
                detail: format!(
                    "steady-state closed forms require γ > μ (seeds depart faster than \
                     one peer can serve the flow); got γ = {}, μ = {}",
                    self.gamma, self.mu
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let p = FluidParams::paper();
        assert_eq!(p.mu(), 0.02);
        assert_eq!(p.eta(), 0.5);
        assert_eq!(p.gamma(), 0.05);
        assert_eq!(p.seed_residence(), 20.0);
        assert!(p.upload_constrained());
        assert!(p.require_upload_constrained().is_ok());
    }

    #[test]
    fn validation() {
        assert!(FluidParams::new(0.0, 0.5, 0.05).is_err());
        assert!(FluidParams::new(-0.02, 0.5, 0.05).is_err());
        assert!(FluidParams::new(0.02, 0.0, 0.05).is_err());
        assert!(FluidParams::new(0.02, 1.5, 0.05).is_err());
        assert!(FluidParams::new(0.02, 0.5, 0.0).is_err());
        assert!(FluidParams::new(f64::NAN, 0.5, 0.05).is_err());
        assert!(FluidParams::new(0.02, 0.5, f64::INFINITY).is_err());
        assert!(FluidParams::new(0.02, 1.0, 0.05).is_ok());
    }

    #[test]
    fn upload_constraint_boundary() {
        // γ = μ is NOT upload-constrained (closed form degenerates to 0
        // download time, which only holds in the limit).
        let p = FluidParams::new(0.05, 0.5, 0.05).unwrap();
        assert!(!p.upload_constrained());
        assert!(p.require_upload_constrained().is_err());
        let p = FluidParams::new(0.06, 0.5, 0.05).unwrap();
        assert!(!p.upload_constrained());
    }
}
