//! Parameter sensitivity of the headline metric.
//!
//! The paper evaluates one parameter point (`μ = 0.02, η = 0.5, γ = 0.05`).
//! This module asks how robust its conclusions are: the *elasticity* of the
//! average online time per file with respect to each model parameter,
//!
//! ```text
//! E_θ = (∂T/∂θ) · (θ/T)   ≈ percentage change in T per 1% change in θ
//! ```
//!
//! computed by central finite differences on the closed-form/fixed-point
//! solvers. For MTSD the elasticities have closed forms (tested against
//! them); for CMFSD they quantify how the collaboration gain depends on the
//! seed residence time `1/γ` — the ablation DESIGN.md calls out.

use crate::params::FluidParams;
use crate::schemes::{evaluate_scheme, Scheme};
use btfluid_numkit::NumError;
use btfluid_workload::CorrelationModel;

/// Which knob is perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// Upload bandwidth μ.
    Mu,
    /// Sharing efficiency η.
    Eta,
    /// Seed departure rate γ.
    Gamma,
    /// File correlation p.
    P,
}

impl Knob {
    /// All knobs in display order.
    pub fn all() -> [Knob; 4] {
        [Knob::Mu, Knob::Eta, Knob::Gamma, Knob::P]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Knob::Mu => "μ",
            Knob::Eta => "η",
            Knob::Gamma => "γ",
            Knob::P => "p",
        }
    }
}

/// One elasticity measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Elasticity {
    /// The perturbed knob.
    pub knob: Knob,
    /// Metric value at the base point.
    pub base_metric: f64,
    /// Elasticity `E_θ`.
    pub elasticity: f64,
}

fn metric_at(
    params: FluidParams,
    model: &CorrelationModel,
    scheme: Scheme,
) -> Result<f64, NumError> {
    Ok(evaluate_scheme(params, model, scheme)?.avg_online_per_file)
}

/// Computes the elasticity of the average online time per file with respect
/// to one knob, by central differences with relative step `rel_step`.
///
/// # Errors
/// Propagates model validity errors at the base or perturbed points (e.g.
/// perturbing γ below μ).
pub fn elasticity(
    params: FluidParams,
    model: &CorrelationModel,
    scheme: Scheme,
    knob: Knob,
    rel_step: f64,
) -> Result<Elasticity, NumError> {
    if !(rel_step > 0.0 && rel_step < 0.5) {
        return Err(NumError::InvalidInput {
            what: "sensitivity::elasticity",
            detail: format!("relative step must lie in (0, 0.5), got {rel_step}"),
        });
    }
    let base_metric = metric_at(params, model, scheme)?;
    let eval = |factor: f64| -> Result<f64, NumError> {
        let (mu, eta, gamma, p) = (params.mu(), params.eta(), params.gamma(), model.p());
        let (params2, model2) = match knob {
            Knob::Mu => (FluidParams::new(mu * factor, eta, gamma)?, *model),
            Knob::Eta => (
                FluidParams::new(mu, (eta * factor).min(1.0), gamma)?,
                *model,
            ),
            Knob::Gamma => (FluidParams::new(mu, eta, gamma * factor)?, *model),
            Knob::P => (
                params,
                CorrelationModel::new(model.k(), (p * factor).min(1.0), model.lambda0())?,
            ),
        };
        metric_at(params2, &model2, scheme)
    };
    let hi = eval(1.0 + rel_step)?;
    let lo = eval(1.0 - rel_step)?;
    let derivative_rel = (hi - lo) / (2.0 * rel_step);
    Ok(Elasticity {
        knob,
        base_metric,
        elasticity: derivative_rel / base_metric,
    })
}

/// All four elasticities for a scheme at a parameter point.
///
/// # Errors
/// Propagates [`elasticity`] failures.
pub fn elasticities(
    params: FluidParams,
    model: &CorrelationModel,
    scheme: Scheme,
) -> Result<Vec<Elasticity>, NumError> {
    Knob::all()
        .into_iter()
        .map(|k| elasticity(params, model, scheme, k, 1e-4))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(p: f64) -> CorrelationModel {
        CorrelationModel::new(10, p, 1.0).unwrap()
    }

    #[test]
    fn step_validation() {
        let e = elasticity(
            FluidParams::paper(),
            &model(0.5),
            Scheme::Mtsd,
            Knob::Mu,
            0.0,
        );
        assert!(e.is_err());
        let e = elasticity(
            FluidParams::paper(),
            &model(0.5),
            Scheme::Mtsd,
            Knob::Mu,
            0.9,
        );
        assert!(e.is_err());
    }

    #[test]
    fn mtsd_elasticities_match_closed_form() {
        // T(μ,η,γ) = (γ−μ)/(γμη) + 1/γ.
        // ∂T/∂μ = −1/(ημ²)  ⇒ E_μ = −γ/(η μ (T γ)) ... verified numerically
        // against the analytic derivative instead of re-deriving by hand:
        let params = FluidParams::paper();
        let (mu, eta, gamma) = (0.02, 0.5, 0.05);
        let t = (gamma - mu) / (gamma * mu * eta) + 1.0 / gamma;
        let dt_dmu = -1.0 / (eta * mu * mu); // d/dμ[(γ−μ)/(γμη)] = −1/(ημ²)
        let expect_mu = dt_dmu * mu / t;
        let got = elasticity(params, &model(0.5), Scheme::Mtsd, Knob::Mu, 1e-5).unwrap();
        assert!(
            (got.elasticity - expect_mu).abs() < 1e-4,
            "E_μ = {} vs analytic {expect_mu}",
            got.elasticity
        );

        // ∂T/∂η = −(γ−μ)/(γμη²) ⇒ E_η = −T_dl/T with T_dl the download part.
        let t_dl = (gamma - mu) / (gamma * mu * eta);
        let expect_eta = -t_dl / t;
        let got = elasticity(params, &model(0.5), Scheme::Mtsd, Knob::Eta, 1e-5).unwrap();
        assert!((got.elasticity - expect_eta).abs() < 1e-4);

        // p does not enter MTSD at all.
        let got = elasticity(params, &model(0.5), Scheme::Mtsd, Knob::P, 1e-4).unwrap();
        assert!(got.elasticity.abs() < 1e-6);
    }

    #[test]
    fn signs_are_physical_for_all_schemes() {
        // More upload bandwidth or efficiency always helps; faster seed
        // departure always hurts.
        let params = FluidParams::paper();
        for scheme in [
            Scheme::Mtsd,
            Scheme::Mtcd,
            Scheme::Mfcd,
            Scheme::Cmfsd { rho: 0.3 },
        ] {
            let es = elasticities(params, &model(0.6), scheme).unwrap();
            let by = |k: Knob| es.iter().find(|e| e.knob == k).unwrap().elasticity;
            assert!(by(Knob::Mu) < 0.0, "{scheme:?}: E_μ = {}", by(Knob::Mu));
            assert!(by(Knob::Eta) < 0.0, "{scheme:?}: E_η = {}", by(Knob::Eta));
            assert!(
                by(Knob::Gamma) > 0.0,
                "{scheme:?}: E_γ = {}",
                by(Knob::Gamma)
            );
        }
    }

    #[test]
    fn correlation_hurts_concurrent_but_not_sequential() {
        let params = FluidParams::paper();
        let e_mtcd = elasticity(params, &model(0.5), Scheme::Mtcd, Knob::P, 1e-4)
            .unwrap()
            .elasticity;
        assert!(e_mtcd > 0.0, "E_p(MTCD) = {e_mtcd}");
        let e_mtsd = elasticity(params, &model(0.5), Scheme::Mtsd, Knob::P, 1e-4)
            .unwrap()
            .elasticity;
        assert!(e_mtsd.abs() < 1e-6);
    }

    #[test]
    fn cmfsd_gains_more_from_collaboration_at_low_rho() {
        // |E_γ| under CMFSD(0.1) exceeds MTSD's: collaborative systems lean
        // harder on seeds staying around.
        let params = FluidParams::paper();
        let e_c = elasticity(
            params,
            &model(0.9),
            Scheme::Cmfsd { rho: 0.1 },
            Knob::Gamma,
            1e-4,
        )
        .unwrap()
        .elasticity;
        assert!(e_c > 0.0);
    }

    #[test]
    fn all_four_knobs_reported() {
        let es = elasticities(FluidParams::paper(), &model(0.5), Scheme::Mtcd).unwrap();
        assert_eq!(es.len(), 4);
        let names: Vec<&str> = es.iter().map(|e| e.knob.name()).collect();
        assert_eq!(names, vec!["μ", "η", "γ", "p"]);
        for e in &es {
            assert!(e.base_metric > 0.0);
            assert!(e.elasticity.is_finite());
        }
    }
}
