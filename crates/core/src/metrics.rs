//! Per-class and population performance metrics.
//!
//! The paper's headline metric is the **average online time per file**: the
//! sum of the online time over all peers divided by the total number of
//! files requested (Section 4.2.1). Per class `i` this is the user's total
//! online time divided by `i`; the population average weights classes by
//! their file-request rate `i·λᵢ`, i.e.
//!
//! ```text
//! avg online per file = Σᵢ λᵢ·Tᵢ / Σᵢ i·λᵢ
//! ```
//!
//! where `Tᵢ` is the class-`i` user's total online time. [`ClassTimes`]
//! stores the per-class *totals* (download and online) and derives every
//! per-file and population-average view from them, so each scheme module
//! only has to produce totals.

use btfluid_numkit::stats::jain_fairness;
use btfluid_numkit::NumError;
use btfluid_workload::ClassMix;

/// Per-class user-total download and online times for one scheme at one
/// parameter point.
///
/// `download_total[i-1]` / `online_total[i-1]` are the class-`i` user's
/// expected total download time and total online time (download + seeding).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassTimes {
    download_total: Vec<f64>,
    online_total: Vec<f64>,
}

impl ClassTimes {
    /// Builds from per-class totals.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] if the vectors are empty, differ
    /// in length, contain non-finite or negative entries, or online time is
    /// smaller than download time for some class.
    pub fn new(download_total: Vec<f64>, online_total: Vec<f64>) -> Result<Self, NumError> {
        if download_total.is_empty() || download_total.len() != online_total.len() {
            return Err(NumError::InvalidInput {
                what: "ClassTimes::new",
                detail: format!(
                    "need equal, non-zero lengths; got {} download and {} online entries",
                    download_total.len(),
                    online_total.len()
                ),
            });
        }
        for (idx, (&d, &o)) in download_total.iter().zip(&online_total).enumerate() {
            if !d.is_finite() || d < 0.0 || !o.is_finite() || o < 0.0 {
                return Err(NumError::InvalidInput {
                    what: "ClassTimes::new",
                    detail: format!("class {}: download {d}, online {o}", idx + 1),
                });
            }
            if o + 1e-9 < d {
                return Err(NumError::InvalidInput {
                    what: "ClassTimes::new",
                    detail: format!("class {}: online time {o} < download time {d}", idx + 1),
                });
            }
        }
        Ok(Self {
            download_total,
            online_total,
        })
    }

    /// Number of classes `K`.
    pub fn k(&self) -> usize {
        self.download_total.len()
    }

    /// Class-`i` user's total download time (`1 ≤ i ≤ K`).
    ///
    /// # Panics
    /// Panics for out-of-range classes.
    pub fn download_total(&self, i: usize) -> f64 {
        self.check(i);
        self.download_total[i - 1]
    }

    /// Class-`i` user's total online time.
    ///
    /// # Panics
    /// Panics for out-of-range classes.
    pub fn online_total(&self, i: usize) -> f64 {
        self.check(i);
        self.online_total[i - 1]
    }

    /// Class-`i` download time per file.
    ///
    /// # Panics
    /// Panics for out-of-range classes.
    pub fn download_per_file(&self, i: usize) -> f64 {
        self.download_total(i) / i as f64
    }

    /// Class-`i` online time per file.
    ///
    /// # Panics
    /// Panics for out-of-range classes.
    pub fn online_per_file(&self, i: usize) -> f64 {
        self.online_total(i) / i as f64
    }

    /// All per-file download times (index 0 ↔ class 1).
    pub fn download_per_file_vec(&self) -> Vec<f64> {
        (1..=self.k()).map(|i| self.download_per_file(i)).collect()
    }

    /// All per-file online times (index 0 ↔ class 1).
    pub fn online_per_file_vec(&self) -> Vec<f64> {
        (1..=self.k()).map(|i| self.online_per_file(i)).collect()
    }

    /// Population **average online time per file** under the given class
    /// mix — the y-axis of Figures 2 and 4(a).
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when the mix has a different
    /// class count.
    pub fn avg_online_per_file(&self, mix: &ClassMix) -> Result<f64, NumError> {
        mix.file_mean(&self.online_per_file_vec())
    }

    /// Population average download time per file under the given class mix.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when the mix has a different
    /// class count.
    pub fn avg_download_per_file(&self, mix: &ClassMix) -> Result<f64, NumError> {
        mix.file_mean(&self.download_per_file_vec())
    }

    /// Jain fairness index of the per-file download times across classes —
    /// 1.0 means every class downloads a file equally fast (the fairness
    /// the paper notes MTCD/MTSD maintain and CMFSD sacrifices).
    ///
    /// # Errors
    /// Propagates [`jain_fairness`] input errors (never for constructed
    /// values).
    pub fn download_fairness(&self) -> Result<f64, NumError> {
        jain_fairness(&self.download_per_file_vec())
    }

    fn check(&self, i: usize) {
        assert!(
            (1..=self.k()).contains(&i),
            "class {i} out of 1..={}",
            self.k()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times() -> ClassTimes {
        // Class 1: download 60, online 80. Class 2: download 120, online 140.
        ClassTimes::new(vec![60.0, 120.0], vec![80.0, 140.0]).unwrap()
    }

    #[test]
    fn validation() {
        assert!(ClassTimes::new(vec![], vec![]).is_err());
        assert!(ClassTimes::new(vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(ClassTimes::new(vec![-1.0], vec![1.0]).is_err());
        assert!(ClassTimes::new(vec![f64::NAN], vec![1.0]).is_err());
        // online < download is inconsistent
        assert!(ClassTimes::new(vec![10.0], vec![5.0]).is_err());
        assert!(ClassTimes::new(vec![10.0], vec![10.0]).is_ok());
    }

    #[test]
    fn per_file_views() {
        let t = times();
        assert_eq!(t.k(), 2);
        assert_eq!(t.download_per_file(1), 60.0);
        assert_eq!(t.download_per_file(2), 60.0);
        assert_eq!(t.online_per_file(1), 80.0);
        assert_eq!(t.online_per_file(2), 70.0);
        assert_eq!(t.download_per_file_vec(), vec![60.0, 60.0]);
        assert_eq!(t.online_per_file_vec(), vec![80.0, 70.0]);
    }

    #[test]
    fn population_average_is_file_weighted() {
        let t = times();
        let mix = ClassMix::new(vec![1.0, 1.0]).unwrap();
        // files: class1 contributes 1, class2 contributes 2.
        // avg online/file = (1·80 + 2·70)/3 = 220/3
        let avg = t.avg_online_per_file(&mix).unwrap();
        assert!((avg - 220.0 / 3.0).abs() < 1e-12);
        // Equivalent to Σλ·T / Σiλ on the totals: (80 + 140)/3.
        assert!((avg - (80.0 + 140.0) / 3.0).abs() < 1e-12);
        let avg_d = t.avg_download_per_file(&mix).unwrap();
        assert!((avg_d - 60.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_of_equal_download_rates() {
        let t = times();
        assert!((t.download_fairness().unwrap() - 1.0).abs() < 1e-12);
        let unfair = ClassTimes::new(vec![10.0, 400.0], vec![20.0, 420.0]).unwrap();
        assert!(unfair.download_fairness().unwrap() < 0.8);
    }

    #[test]
    fn mix_length_mismatch_rejected() {
        let t = times();
        let mix = ClassMix::new(vec![1.0, 1.0, 1.0]).unwrap();
        assert!(t.avg_online_per_file(&mix).is_err());
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn out_of_range_class_panics() {
        let _ = times().online_total(3);
    }
}
