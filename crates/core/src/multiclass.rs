//! The bandwidth-class generalization of the fluid model (Section 2).
//!
//! Peers fall into `S` classes `Cᵢ(μᵢ, cᵢ)` — upload bandwidth `μᵢ`,
//! download bandwidth `cᵢ` — arriving at rates `λᵢ`. The paper's two
//! service assumptions become:
//!
//! * downloader-to-downloader (TFT): class `i` receives `η·μᵢ·xᵢ` — what it
//!   uploads, scaled by the sharing efficiency;
//! * seed-to-downloader (altruistic): the seed pool `Σₗ μₗ·yₗ` is split in
//!   proportion to download capacity, class `i` receiving the fraction
//!   `xᵢcᵢ / Σₗ xₗcₗ`.
//!
//! ```text
//! dxᵢ/dt = λᵢ − η·μᵢ·xᵢ − (xᵢcᵢ/Σₗxₗcₗ)·Σₗ μₗ·yₗ
//! dyᵢ/dt = η·μᵢ·xᵢ + (xᵢcᵢ/Σₗxₗcₗ)·Σₗ μₗ·yₗ − γ·yᵢ
//! ```
//!
//! The steady state reduces to a 1-D fixed point like CMFSD's: with
//! `s = (Σₗ μₗyₗ)/(Σₗ xₗcₗ)` (seed service per unit of download capacity),
//! `xᵢ = λᵢ/(ημᵢ + cᵢ·s)`, and `s` solves the monotone scalar equation
//! `s·Σₗ cₗxₗ(s) = Σₗ μₗλₗ/γ`.
//!
//! This module underpins MTCD: a class-`i` MTCD peer *is* a bandwidth class
//! `(μ/i, c/i)` (tested in `tests/degeneration.rs`).

use crate::params::FluidParams;
use btfluid_numkit::ode::OdeSystem;
use btfluid_numkit::roots::{brent, RootOptions};
use btfluid_numkit::NumError;

/// One bandwidth class `Cᵢ(μᵢ, cᵢ)` with its arrival rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthClass {
    /// Upload bandwidth `μᵢ` (files per time unit).
    pub mu: f64,
    /// Download bandwidth `cᵢ` (files per time unit).
    pub c: f64,
    /// Arrival rate `λᵢ`.
    pub lambda: f64,
}

/// The multi-class fluid model.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiClassFluid {
    classes: Vec<BandwidthClass>,
    eta: f64,
    gamma: f64,
}

/// Steady state of [`MultiClassFluid`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiClassSteady {
    /// The seed-service-per-download-capacity ratio `s` at equilibrium.
    pub s: f64,
    /// Per-class downloader populations.
    pub downloaders: Vec<f64>,
    /// Per-class seed populations `λᵢ/γ`.
    pub seeds: Vec<f64>,
    /// Per-class download times `1/(ημᵢ + cᵢs)`.
    pub download_times: Vec<f64>,
}

impl MultiClassFluid {
    /// Creates the model from classes and the shared `η`, `γ`.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] for empty classes, non-positive
    /// bandwidths, negative rates, all-zero rates, `η ∉ (0,1]` or `γ ≤ 0`.
    pub fn new(classes: Vec<BandwidthClass>, eta: f64, gamma: f64) -> Result<Self, NumError> {
        if classes.is_empty() {
            return Err(NumError::InvalidInput {
                what: "MultiClassFluid::new",
                detail: "need at least one class".into(),
            });
        }
        if !(eta > 0.0 && eta <= 1.0) {
            return Err(NumError::InvalidInput {
                what: "MultiClassFluid::new",
                detail: format!("η must lie in (0,1], got {eta}"),
            });
        }
        if !(gamma > 0.0) || !gamma.is_finite() {
            return Err(NumError::InvalidInput {
                what: "MultiClassFluid::new",
                detail: format!("γ must be finite and > 0, got {gamma}"),
            });
        }
        let mut total = 0.0;
        for (i, cl) in classes.iter().enumerate() {
            if !(cl.mu > 0.0) || !(cl.c > 0.0) || !cl.mu.is_finite() || !cl.c.is_finite() {
                return Err(NumError::InvalidInput {
                    what: "MultiClassFluid::new",
                    detail: format!("class {i}: bandwidths must be finite and > 0"),
                });
            }
            if !(cl.lambda >= 0.0) || !cl.lambda.is_finite() {
                return Err(NumError::InvalidInput {
                    what: "MultiClassFluid::new",
                    detail: format!("class {i}: λ = {} invalid", cl.lambda),
                });
            }
            total += cl.lambda;
        }
        if total <= 0.0 {
            return Err(NumError::InvalidInput {
                what: "MultiClassFluid::new",
                detail: "all arrival rates are zero".into(),
            });
        }
        Ok(Self {
            classes,
            eta,
            gamma,
        })
    }

    /// Builds a homogeneous single-class model from [`FluidParams`]
    /// (download capacity taken as `10·μ`, irrelevant in the
    /// upload-constrained regime).
    ///
    /// # Errors
    /// Propagates validation failures.
    pub fn homogeneous(params: FluidParams, lambda: f64) -> Result<Self, NumError> {
        Self::new(
            vec![BandwidthClass {
                mu: params.mu(),
                c: 10.0 * params.mu(),
                lambda,
            }],
            params.eta(),
            params.gamma(),
        )
    }

    /// The classes.
    pub fn classes(&self) -> &[BandwidthClass] {
        &self.classes
    }

    /// Number of classes `S`.
    pub fn s_classes(&self) -> usize {
        self.classes.len()
    }

    /// Seed-service pool at equilibrium, `Q = Σ μₗλₗ/γ`.
    pub fn seed_service_pool(&self) -> f64 {
        self.classes.iter().map(|c| c.mu * c.lambda).sum::<f64>() / self.gamma
    }

    fn residual(&self, s: f64) -> f64 {
        let served: f64 = self
            .classes
            .iter()
            .filter(|c| c.lambda > 0.0)
            .map(|c| c.c * c.lambda / (self.eta * c.mu + c.c * s))
            .sum();
        s * served - self.seed_service_pool()
    }

    /// Solves the steady state via the 1-D fixed point.
    ///
    /// # Errors
    /// [`NumError::InvalidInput`] when no positive equilibrium exists
    /// (`Σλₗ ≤ Q`: seeds outpace the arrival flow) and root-finder failures.
    pub fn steady_state(&self) -> Result<MultiClassSteady, NumError> {
        // s·Σ cₗxₗ(s) → Σ λₗ as s → ∞; a root needs that to exceed Q.
        let asymptote: f64 = self.classes.iter().map(|c| c.lambda).sum();
        if asymptote <= self.seed_service_pool() {
            return Err(NumError::InvalidInput {
                what: "MultiClassFluid::steady_state",
                detail: format!(
                    "no positive equilibrium: Σλ = {asymptote} ≤ Q = {} — the \
                     seeds alone can serve the flow (γ too small)",
                    self.seed_service_pool()
                ),
            });
        }
        let mut hi = 1.0;
        let mut tries = 0;
        while self.residual(hi) <= 0.0 {
            hi *= 4.0;
            tries += 1;
            if tries > 200 {
                return Err(NumError::NoConvergence {
                    what: "MultiClassFluid::steady_state (bracketing)",
                    iterations: tries,
                    residual: self.residual(hi),
                });
            }
        }
        let root = brent(
            |s| self.residual(s),
            1e-15,
            hi,
            RootOptions {
                x_tol: 1e-14,
                f_tol: 1e-12,
                max_iter: 300,
            },
        )?;
        let s = root.x;
        let download_times: Vec<f64> = self
            .classes
            .iter()
            .map(|c| 1.0 / (self.eta * c.mu + c.c * s))
            .collect();
        let downloaders = self
            .classes
            .iter()
            .zip(&download_times)
            .map(|(c, &t)| c.lambda * t)
            .collect();
        let seeds = self.classes.iter().map(|c| c.lambda / self.gamma).collect();
        Ok(MultiClassSteady {
            s,
            downloaders,
            seeds,
            download_times,
        })
    }
}

impl OdeSystem for MultiClassFluid {
    fn dim(&self) -> usize {
        2 * self.s_classes()
    }

    /// State layout: `[x₁..x_S, y₁..y_S]`.
    fn rhs(&self, _t: f64, state: &[f64], d: &mut [f64]) {
        let n = self.s_classes();
        let (xs, ys) = state.split_at(n);
        let seed_pool: f64 = self
            .classes
            .iter()
            .zip(ys)
            .map(|(c, &y)| c.mu * y.max(0.0))
            .sum();
        let capacity: f64 = self
            .classes
            .iter()
            .zip(xs)
            .map(|(c, &x)| c.c * x.max(0.0))
            .sum();
        for i in 0..n {
            let cl = &self.classes[i];
            let x = xs[i].max(0.0);
            let tft = self.eta * cl.mu * x;
            let from_seeds = if capacity > 0.0 {
                (x * cl.c) / capacity * seed_pool
            } else {
                0.0
            };
            let served = tft + from_seeds;
            d[i] = cl.lambda - served;
            d[n + i] = served - self.gamma * ys[i].max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::SingleTorrent;
    use btfluid_numkit::ode::{steady_state, SteadyOptions};

    fn class(mu: f64, c: f64, lambda: f64) -> BandwidthClass {
        BandwidthClass { mu, c, lambda }
    }

    #[test]
    fn validation() {
        assert!(MultiClassFluid::new(vec![], 0.5, 0.05).is_err());
        assert!(MultiClassFluid::new(vec![class(0.0, 1.0, 1.0)], 0.5, 0.05).is_err());
        assert!(MultiClassFluid::new(vec![class(1.0, 0.0, 1.0)], 0.5, 0.05).is_err());
        assert!(MultiClassFluid::new(vec![class(1.0, 1.0, -1.0)], 0.5, 0.05).is_err());
        assert!(MultiClassFluid::new(vec![class(1.0, 1.0, 0.0)], 0.5, 0.05).is_err());
        assert!(MultiClassFluid::new(vec![class(1.0, 1.0, 1.0)], 0.0, 0.05).is_err());
        assert!(MultiClassFluid::new(vec![class(1.0, 1.0, 1.0)], 0.5, 0.0).is_err());
        assert!(MultiClassFluid::new(vec![class(1.0, 1.0, 1.0)], 0.5, 0.05).is_ok());
    }

    #[test]
    fn homogeneous_matches_single_torrent() {
        // One class = the Qiu–Srikant model: T = (γ−μ)/(γμη) = 60.
        let params = FluidParams::paper();
        let m = MultiClassFluid::homogeneous(params, 1.0).unwrap();
        let ss = m.steady_state().unwrap();
        let reference = SingleTorrent::new(params, 1.0)
            .unwrap()
            .steady_state()
            .unwrap();
        assert!(
            (ss.download_times[0] - reference.download_time).abs() < 1e-9,
            "multiclass {} vs single {}",
            ss.download_times[0],
            reference.download_time
        );
        assert!((ss.downloaders[0] - reference.downloaders).abs() < 1e-6);
        assert!((ss.seeds[0] - reference.seeds).abs() < 1e-12);
    }

    #[test]
    fn faster_uploaders_download_faster() {
        // TFT: the class that uploads more gets more.
        let m = MultiClassFluid::new(
            vec![class(0.02, 0.2, 1.0), class(0.08, 0.2, 1.0)],
            0.5,
            0.2, // γ large enough that seeds alone cannot serve the flow
        )
        .unwrap();
        let ss = m.steady_state().unwrap();
        assert!(
            ss.download_times[1] < ss.download_times[0],
            "fast uploader should finish first: {:?}",
            ss.download_times
        );
    }

    #[test]
    fn larger_download_capacity_attracts_more_seed_service() {
        let m = MultiClassFluid::new(
            vec![class(0.02, 0.1, 1.0), class(0.02, 0.4, 1.0)],
            0.5,
            0.05,
        )
        .unwrap();
        let ss = m.steady_state().unwrap();
        assert!(ss.download_times[1] < ss.download_times[0]);
    }

    #[test]
    fn fixed_point_matches_ode() {
        let m = MultiClassFluid::new(
            vec![
                class(0.02, 0.2, 1.0),
                class(0.05, 0.3, 0.5),
                class(0.01, 0.1, 2.0),
            ],
            0.5,
            0.08,
        )
        .unwrap();
        let fp = m.steady_state().unwrap();
        let ode = steady_state(&m, &vec![0.0; m.dim()], SteadyOptions::default()).unwrap();
        for i in 0..3 {
            assert!(
                (fp.downloaders[i] - ode.x[i]).abs() < 1e-3 * fp.downloaders[i].max(1.0),
                "class {i}: fp {} vs ode {}",
                fp.downloaders[i],
                ode.x[i]
            );
        }
    }

    #[test]
    fn no_equilibrium_when_seeds_dominate() {
        // γ → 0: seeds linger forever, Q explodes.
        let m = MultiClassFluid::new(vec![class(0.02, 0.2, 1.0)], 0.5, 1e-5).unwrap();
        assert!(m.steady_state().is_err());
    }

    #[test]
    fn little_law_consistency() {
        let m = MultiClassFluid::new(
            vec![class(0.02, 0.2, 2.0), class(0.03, 0.3, 1.0)],
            0.5,
            0.06,
        )
        .unwrap();
        let ss = m.steady_state().unwrap();
        for (i, cl) in m.classes().iter().enumerate() {
            assert!(
                (ss.downloaders[i] - cl.lambda * ss.download_times[i]).abs() < 1e-9,
                "Little's law broken for class {i}"
            );
        }
    }
}
