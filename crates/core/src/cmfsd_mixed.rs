//! Mixed-population CMFSD: several peer populations with *different*
//! bandwidth allocation ratios sharing one multi-file torrent.
//!
//! This extends Eq. (5) beyond the paper: Section 4.3 reasons informally
//! about cheaters (peers that pin ρ = 1) degrading the system, and leaves
//! the Adapt mechanism's equilibrium "to be systematically evaluated". The
//! extension is exact and cheap because the pooled-service structure
//! survives: with populations `g` (allocation ratio `ρ_g`, class entry
//! rates `λ_{g,i}`) the stage balance still reads
//!
//! ```text
//! x^{g,i,j} = λ_{g,i} / (μη·P_g(i,j) + μ·s),
//! P_g(i,j) = 1 if i = 1 ∨ j = 1, else ρ_g,
//! ```
//!
//! and the same scalar `s = (V + Y)/W` closes the system, with `W`, `V`
//! summed over populations. Everything the single-population fixed point
//! gives us — per-class times, pool sizes — is therefore available per
//! population.
//!
//! ## Fluid Δ and the Adapt equilibrium
//!
//! A class-`i` peer of population `g` donates `(1 − ρ_g)·μ` while in
//! stages `j ≥ 2` and receives `μ·V/W` from virtual seeds in every stage,
//! so its time-averaged imbalance over its download is
//!
//! ```text
//! Δ̄_g(i) = (1 − ρ_g)·μ · (i−1)·τ_g / T_g(i)  −  μ·V/W
//! τ_g = 1/(μηρ_g + μs),  T_g(i) = 1/(μη + μs) + (i−1)·τ_g
//! ```
//!
//! Conservation pins the download-time-weighted mean of `Δ̄` over *all*
//! downloaders to zero; cheaters (ρ = 1) sit at `Δ̄ = −μV/W < 0`, so the
//! obedient populations must sit above zero — the analytic form of the
//! paper's "cheating makes obedient peers donate more than they receive".
//! [`adapt_equilibrium`] turns that into a prediction: the ρ at which the
//! obedient population's mean Δ̄ falls back inside the Adapt dead band.

use crate::adapt::AdaptConfig;
use crate::metrics::ClassTimes;
use crate::params::FluidParams;
use btfluid_numkit::roots::{brent, RootOptions};
use btfluid_numkit::NumError;

/// One peer population: an allocation ratio and its class entry rates.
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    /// Bandwidth allocation ratio ρ of this population.
    pub rho: f64,
    /// Class entry rates `λ_{g,i}` (index 0 ↔ class 1).
    pub lambdas: Vec<f64>,
}

/// The mixed-population CMFSD fluid model.
#[derive(Debug, Clone, PartialEq)]
pub struct CmfsdMixed {
    params: FluidParams,
    populations: Vec<Population>,
}

/// Steady state of [`CmfsdMixed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedSteady {
    /// Pooled-service ratio `s` at equilibrium.
    pub s: f64,
    /// Total downloader mass `W`.
    pub w: f64,
    /// Virtual-seed weight `V`.
    pub v: f64,
    /// Real-seed pool `Y = Σ λ/γ`.
    pub y: f64,
}

impl CmfsdMixed {
    /// Creates the model.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] for an empty population list,
    /// inconsistent class counts, invalid ρ, negative rates, or an all-zero
    /// workload.
    pub fn new(params: FluidParams, populations: Vec<Population>) -> Result<Self, NumError> {
        if populations.is_empty() {
            return Err(NumError::InvalidInput {
                what: "CmfsdMixed::new",
                detail: "need at least one population".into(),
            });
        }
        let k = populations[0].lambdas.len();
        let mut total = 0.0;
        for (g, pop) in populations.iter().enumerate() {
            if pop.lambdas.len() != k || k == 0 {
                return Err(NumError::InvalidInput {
                    what: "CmfsdMixed::new",
                    detail: format!(
                        "population {g} has {} classes, expected {k} (> 0)",
                        pop.lambdas.len()
                    ),
                });
            }
            if !(0.0..=1.0).contains(&pop.rho) {
                return Err(NumError::InvalidInput {
                    what: "CmfsdMixed::new",
                    detail: format!("population {g}: ρ = {} outside [0,1]", pop.rho),
                });
            }
            for (idx, &l) in pop.lambdas.iter().enumerate() {
                if !l.is_finite() || l < 0.0 {
                    return Err(NumError::InvalidInput {
                        what: "CmfsdMixed::new",
                        detail: format!("population {g}, class {}: λ = {l}", idx + 1),
                    });
                }
                total += l;
            }
        }
        if total <= 0.0 {
            return Err(NumError::InvalidInput {
                what: "CmfsdMixed::new",
                detail: "all entry rates are zero".into(),
            });
        }
        Ok(Self {
            params,
            populations,
        })
    }

    /// Number of classes `K`.
    pub fn k(&self) -> usize {
        self.populations[0].lambdas.len()
    }

    /// The populations.
    pub fn populations(&self) -> &[Population] {
        &self.populations
    }

    /// Model parameters.
    pub fn params(&self) -> &FluidParams {
        &self.params
    }

    /// Real-seed pool `Y = Σ_{g,i} λ_{g,i}/γ`.
    pub fn seed_pool(&self) -> f64 {
        self.populations
            .iter()
            .flat_map(|p| p.lambdas.iter())
            .sum::<f64>()
            / self.params.gamma()
    }

    /// `W(s)` and `V(s)` aggregated over populations.
    fn pools(&self, s: f64) -> (f64, f64) {
        let mu = self.params.mu();
        let eta = self.params.eta();
        let first = 1.0 / (mu * eta + mu * s);
        let mut w = 0.0;
        let mut v = 0.0;
        for pop in &self.populations {
            let later = 1.0 / (mu * eta * pop.rho + mu * s);
            for (idx, &l) in pop.lambdas.iter().enumerate() {
                if l == 0.0 {
                    continue;
                }
                let i = (idx + 1) as f64;
                w += l * (first + (i - 1.0) * later);
                v += l * (i - 1.0) * (1.0 - pop.rho) * later;
            }
        }
        (w, v)
    }

    fn residual(&self, s: f64) -> f64 {
        let (w, v) = self.pools(s);
        s * w - v - self.seed_pool()
    }

    /// Solves the steady state.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when no positive equilibrium
    /// exists (seed capacity alone covers the flow) and propagates
    /// root-finder failures.
    pub fn steady_state(&self) -> Result<MixedSteady, NumError> {
        let asymptote: f64 = self
            .populations
            .iter()
            .flat_map(|p| {
                p.lambdas
                    .iter()
                    .enumerate()
                    .map(|(idx, &l)| (idx + 1) as f64 * l)
            })
            .sum::<f64>()
            / self.params.mu();
        let y = self.seed_pool();
        if asymptote <= y {
            return Err(NumError::InvalidInput {
                what: "CmfsdMixed::steady_state",
                detail: format!("no positive equilibrium: Σ i·λ/μ = {asymptote} ≤ Y = {y}"),
            });
        }
        let mut hi = 1.0;
        let mut tries = 0;
        while self.residual(hi) <= 0.0 {
            hi *= 4.0;
            tries += 1;
            if tries > 200 {
                return Err(NumError::NoConvergence {
                    what: "CmfsdMixed::steady_state (bracketing)",
                    iterations: tries,
                    residual: self.residual(hi),
                });
            }
        }
        let root = brent(
            |s| self.residual(s),
            1e-12,
            hi,
            RootOptions {
                x_tol: 1e-14,
                f_tol: 1e-12,
                max_iter: 300,
            },
        )?;
        let (w, v) = self.pools(root.x);
        Ok(MixedSteady { s: root.x, w, v, y })
    }

    /// Per-class user totals for population `g` at the mixed equilibrium.
    ///
    /// # Errors
    /// Propagates [`CmfsdMixed::steady_state`] errors.
    ///
    /// # Panics
    /// Panics for an out-of-range population index.
    pub fn class_times(&self, g: usize) -> Result<ClassTimes, NumError> {
        assert!(g < self.populations.len(), "population {g} out of range");
        let ss = self.steady_state()?;
        let mu = self.params.mu();
        let eta = self.params.eta();
        let rho = self.populations[g].rho;
        let first = 1.0 / (mu * eta + mu * ss.s);
        let later = 1.0 / (mu * eta * rho + mu * ss.s);
        let seed = self.params.seed_residence();
        let download: Vec<f64> = (1..=self.k())
            .map(|i| first + (i - 1) as f64 * later)
            .collect();
        let online: Vec<f64> = download.iter().map(|&d| d + seed).collect();
        ClassTimes::new(download, online)
    }

    /// The fluid Δ̄ (time-averaged give − take imbalance per unit time
    /// while downloading) for a class-`i` peer of population `g`.
    ///
    /// # Panics
    /// Panics for out-of-range indices.
    pub fn delta_bar(&self, g: usize, i: usize, ss: &MixedSteady) -> f64 {
        assert!(g < self.populations.len(), "population {g} out of range");
        assert!((1..=self.k()).contains(&i), "class {i} out of range");
        let mu = self.params.mu();
        let eta = self.params.eta();
        let rho = self.populations[g].rho;
        let first = 1.0 / (mu * eta + mu * ss.s);
        let later = 1.0 / (mu * eta * rho + mu * ss.s);
        let t_dl = first + (i - 1) as f64 * later;
        let donated = (1.0 - rho) * mu * ((i - 1) as f64 * later) / t_dl;
        let received = mu * ss.v / ss.w;
        donated - received
    }

    /// Entry-rate-weighted mean Δ̄ over the multi-file classes (`i ≥ 2`) of
    /// population `g` — the signal an Adapt controller in that population
    /// sees on average.
    ///
    /// # Errors
    /// Propagates steady-state errors; fails when the population has no
    /// multi-file mass.
    pub fn mean_multi_file_delta(&self, g: usize) -> Result<f64, NumError> {
        let ss = self.steady_state()?;
        let pop = &self.populations[g];
        let mut num = 0.0;
        let mut den = 0.0;
        for (idx, &l) in pop.lambdas.iter().enumerate() {
            let i = idx + 1;
            if i >= 2 && l > 0.0 {
                num += l * self.delta_bar(g, i, &ss);
                den += l;
            }
        }
        if den == 0.0 {
            return Err(NumError::InvalidInput {
                what: "CmfsdMixed::mean_multi_file_delta",
                detail: format!("population {g} has no multi-file classes"),
            });
        }
        Ok(num / den)
    }
}

/// Predicts where the Adapt mechanism settles: the smallest obedient ρ at
/// which the obedient population's mean Δ̄ no longer exceeds the increase
/// threshold `φ_inc` (peers stop raising ρ), given a cheater population
/// pinned at ρ = 1.
///
/// `obedient` and `cheaters` are the class entry-rate vectors of the two
/// populations (either may be all-zero-but-one as long as the total
/// workload is positive).
///
/// Returns `0.0` when even full collaboration leaves Δ̄ inside the band and
/// `1.0` when no ρ < 1 suffices.
///
/// # Errors
/// Propagates model-construction and steady-state errors.
pub fn adapt_equilibrium(
    params: FluidParams,
    obedient: Vec<f64>,
    cheaters: Vec<f64>,
    config: &AdaptConfig,
) -> Result<f64, NumError> {
    config.validate()?;
    let delta_at = |rho: f64| -> Result<f64, NumError> {
        let mut populations = vec![Population {
            rho,
            lambdas: obedient.clone(),
        }];
        if cheaters.iter().any(|&l| l > 0.0) {
            populations.push(Population {
                rho: 1.0,
                lambdas: cheaters.clone(),
            });
        }
        CmfsdMixed::new(params, populations)?.mean_multi_file_delta(0)
    };
    if delta_at(0.0)? <= config.phi_inc {
        return Ok(0.0);
    }
    if delta_at(1.0)? > config.phi_inc {
        return Ok(1.0);
    }
    // Δ̄ is monotone decreasing in ρ (less donation, same receipts to first
    // order); bisect the crossing of φ_inc.
    let root = brent(
        |rho| match delta_at(rho) {
            Ok(d) => d - config.phi_inc,
            Err(_) => f64::NAN,
        },
        0.0,
        1.0,
        RootOptions {
            x_tol: 1e-6,
            f_tol: 1e-12,
            max_iter: 200,
        },
    )?;
    Ok(root.x.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmfsd::Cmfsd;
    use btfluid_workload::CorrelationModel;

    fn rates(p: f64, lambda0: f64) -> Vec<f64> {
        CorrelationModel::new(10, p, lambda0).unwrap().class_rates()
    }

    fn cfg() -> AdaptConfig {
        AdaptConfig::default_for_mu(0.02)
    }

    #[test]
    fn validation() {
        let params = FluidParams::paper();
        assert!(CmfsdMixed::new(params, vec![]).is_err());
        let bad_rho = Population {
            rho: 1.5,
            lambdas: vec![1.0],
        };
        assert!(CmfsdMixed::new(params, vec![bad_rho]).is_err());
        let a = Population {
            rho: 0.5,
            lambdas: vec![1.0, 2.0],
        };
        let b = Population {
            rho: 0.5,
            lambdas: vec![1.0],
        };
        assert!(CmfsdMixed::new(params, vec![a.clone(), b]).is_err());
        let zero = Population {
            rho: 0.5,
            lambdas: vec![0.0, 0.0],
        };
        assert!(CmfsdMixed::new(params, vec![zero]).is_err());
        assert!(CmfsdMixed::new(params, vec![a]).is_ok());
    }

    #[test]
    fn single_population_matches_cmfsd() {
        let params = FluidParams::paper();
        for &(p, rho) in &[(0.5, 0.3), (0.9, 0.0), (0.2, 1.0)] {
            let lambdas = rates(p, 1.0);
            let mixed = CmfsdMixed::new(
                params,
                vec![Population {
                    rho,
                    lambdas: lambdas.clone(),
                }],
            )
            .unwrap();
            let single = Cmfsd::new(params, lambdas, rho).unwrap();
            let ms = mixed.steady_state().unwrap();
            let ss = single.steady_state().unwrap();
            assert!(
                (ms.s - ss.s).abs() < 1e-10,
                "p={p}, ρ={rho}: mixed s {} vs single {}",
                ms.s,
                ss.s
            );
            let mt = mixed.class_times(0).unwrap();
            let st = single.class_times().unwrap();
            for i in 1..=10 {
                assert!((mt.online_per_file(i) - st.online_per_file(i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn delta_conservation_over_all_downloaders() {
        // The x-weighted mean of Δ̄ across all downloaders vanishes:
        // donated bandwidth equals received bandwidth in aggregate.
        let params = FluidParams::paper();
        let mixed = CmfsdMixed::new(
            params,
            vec![
                Population {
                    rho: 0.2,
                    lambdas: rates(0.7, 0.6),
                },
                Population {
                    rho: 1.0,
                    lambdas: rates(0.7, 0.4),
                },
            ],
        )
        .unwrap();
        let ss = mixed.steady_state().unwrap();
        let mu = params.mu();
        let eta = params.eta();
        let mut weighted = 0.0;
        for (g, pop) in mixed.populations().iter().enumerate() {
            let first = 1.0 / (mu * eta + mu * ss.s);
            let later = 1.0 / (mu * eta * pop.rho + mu * ss.s);
            for (idx, &l) in pop.lambdas.iter().enumerate() {
                let i = idx + 1;
                if l == 0.0 {
                    continue;
                }
                // Population of class-i downloaders: x = λ·T_dl; each sees
                // Δ̄ per unit time, so the aggregate imbalance rate is
                // x·Δ̄ = λ·T_dl·Δ̄.
                let t_dl = first + (i - 1) as f64 * later;
                weighted += l * t_dl * mixed.delta_bar(g, i, &ss);
            }
        }
        assert!(weighted.abs() < 1e-10, "aggregate imbalance = {weighted}");
    }

    #[test]
    fn cheaters_never_donate_so_their_delta_is_negative() {
        let params = FluidParams::paper();
        let mixed = CmfsdMixed::new(
            params,
            vec![
                Population {
                    rho: 0.0,
                    lambdas: rates(0.9, 0.5),
                },
                Population {
                    rho: 1.0,
                    lambdas: rates(0.9, 0.5),
                },
            ],
        )
        .unwrap();
        let ss = mixed.steady_state().unwrap();
        for i in 2..=10 {
            assert!(mixed.delta_bar(1, i, &ss) < 0.0, "cheater class {i}");
            assert!(mixed.delta_bar(0, i, &ss) > 0.0, "obedient class {i}");
        }
    }

    #[test]
    fn honest_swarm_needs_no_protection() {
        // With no cheaters, the obedient Δ̄ at ρ = 0 stays within the
        // default band: Adapt predicts ρ* = 0, the paper's recommendation.
        let rho = adapt_equilibrium(FluidParams::paper(), rates(0.9, 1.0), vec![0.0; 10], &cfg())
            .unwrap();
        assert_eq!(rho, 0.0);
    }

    #[test]
    fn equilibrium_rho_increases_with_cheating() {
        let params = FluidParams::paper();
        let mut prev = -1.0;
        for frac in [0.0, 0.3, 0.6, 0.9] {
            let rho = adapt_equilibrium(
                params,
                rates(0.9, 1.0 - frac),
                rates(0.9, frac.max(1e-12)),
                &cfg(),
            )
            .unwrap();
            assert!(
                rho >= prev - 1e-9,
                "ρ* should not decrease with cheating: {rho} after {prev}"
            );
            prev = rho;
        }
        assert!(prev > 0.0, "heavy cheating must push ρ* above 0");
    }

    #[test]
    fn no_multi_file_mass_rejected() {
        let params = FluidParams::paper();
        let mut lambdas = vec![0.0; 10];
        lambdas[0] = 1.0; // class 1 only
        let mixed = CmfsdMixed::new(params, vec![Population { rho: 0.5, lambdas }]).unwrap();
        assert!(mixed.mean_multi_file_delta(0).is_err());
    }

    #[test]
    fn delta_bar_monotone_in_class() {
        // Bigger classes spend a larger fraction of their download in the
        // donating stages, so Δ̄ grows with i.
        let params = FluidParams::paper();
        let mixed = CmfsdMixed::new(
            params,
            vec![Population {
                rho: 0.1,
                lambdas: rates(0.8, 1.0),
            }],
        )
        .unwrap();
        let ss = mixed.steady_state().unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 1..=10 {
            let d = mixed.delta_bar(0, i, &ss);
            assert!(d >= prev, "class {i}: Δ̄ {d} < {prev}");
            prev = d;
        }
    }
}
