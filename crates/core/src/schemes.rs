//! Unified scheme evaluation: one entry point the figure harness calls for
//! every curve.
//!
//! Population averages always weight classes by the *system-wide* entry
//! rates `λᵢ = λ₀·C(K,i)pⁱ(1−p)^{K−i}` (a class-`i` user counts once, with
//! `i` files), regardless of which rate family parameterizes the underlying
//! model — MTCD/MFCD are driven by per-torrent rates internally, but the
//! per-file metric of Figures 2 and 4 is a statement about users.

use crate::cmfsd::Cmfsd;
use crate::metrics::ClassTimes;
use crate::mfcd::Mfcd;
use crate::mtcd::Mtcd;
use crate::mtsd::Mtsd;
use crate::params::FluidParams;
use btfluid_numkit::NumError;
use btfluid_workload::{ClassMix, CorrelationModel};

/// The four downloading schemes analyzed in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// Multi-torrent concurrent downloading (Section 3.2).
    Mtcd,
    /// Multi-torrent sequential downloading (Section 3.3).
    Mtsd,
    /// Multi-file-torrent concurrent downloading (Section 3.4).
    Mfcd,
    /// Collaborative multi-file-torrent sequential downloading with
    /// bandwidth allocation ratio ρ (Section 3.5).
    Cmfsd {
        /// Fraction of upload kept for TFT; `1 − ρ` feeds the virtual seed.
        rho: f64,
    },
}

impl Scheme {
    /// Short name used in tables and CSV headers.
    pub fn name(&self) -> String {
        match self {
            Scheme::Mtcd => "MTCD".into(),
            Scheme::Mtsd => "MTSD".into(),
            Scheme::Mfcd => "MFCD".into(),
            Scheme::Cmfsd { rho } => format!("CMFSD(ρ={rho})"),
        }
    }
}

/// Everything the harness needs about one scheme at one parameter point.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeReport {
    /// Which scheme (and ρ, if CMFSD).
    pub scheme: Scheme,
    /// Per-class user-total times.
    pub times: ClassTimes,
    /// Population average online time per file (Figures 2 / 4a).
    pub avg_online_per_file: f64,
    /// Population average download time per file.
    pub avg_download_per_file: f64,
    /// Jain fairness of per-file download times across classes.
    pub download_fairness: f64,
}

/// Evaluates a scheme under the given parameters and correlation model.
///
/// # Errors
/// Propagates model-construction and closed-form validity errors (e.g.
/// `p = 0`, `γ ≤ μ`, seed-capacity-constrained regimes).
pub fn evaluate_scheme(
    params: FluidParams,
    model: &CorrelationModel,
    scheme: Scheme,
) -> Result<SchemeReport, NumError> {
    let times = match scheme {
        Scheme::Mtcd => Mtcd::new(params, model.per_torrent_rates())?.class_times()?,
        Scheme::Mtsd => Mtsd::new(params).class_times(model.k() as usize)?,
        Scheme::Mfcd => Mfcd::from_correlation(params, model)?.class_times()?,
        Scheme::Cmfsd { rho } => Cmfsd::new(params, model.class_rates(), rho)?.class_times()?,
    };
    let mix = ClassMix::system_wide(model)?;
    Ok(SchemeReport {
        scheme,
        avg_online_per_file: times.avg_online_per_file(&mix)?,
        avg_download_per_file: times.avg_download_per_file(&mix)?,
        download_fairness: times.download_fairness()?,
        times,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(p: f64) -> CorrelationModel {
        CorrelationModel::new(10, p, 1.0).unwrap()
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Mtcd.name(), "MTCD");
        assert_eq!(Scheme::Mtsd.name(), "MTSD");
        assert_eq!(Scheme::Mfcd.name(), "MFCD");
        assert_eq!(Scheme::Cmfsd { rho: 0.5 }.name(), "CMFSD(ρ=0.5)");
    }

    #[test]
    fn mtsd_average_is_flat_eighty() {
        for &p in &[0.1, 0.5, 0.9] {
            let r = evaluate_scheme(FluidParams::paper(), &model(p), Scheme::Mtsd).unwrap();
            assert!((r.avg_online_per_file - 80.0).abs() < 1e-9, "p = {p}");
            assert!((r.avg_download_per_file - 60.0).abs() < 1e-9);
            assert!((r.download_fairness - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mtcd_worsens_with_correlation_mtsd_does_not() {
        // The Figure 2 crossing story.
        let low = evaluate_scheme(FluidParams::paper(), &model(0.01), Scheme::Mtcd).unwrap();
        let high = evaluate_scheme(FluidParams::paper(), &model(0.95), Scheme::Mtcd).unwrap();
        assert!(high.avg_online_per_file > low.avg_online_per_file);
        assert!(high.avg_online_per_file > 90.0);
        // Near p = 0, MTCD ≈ MTSD (converges to 80 from above).
        assert!(low.avg_online_per_file >= 80.0);
        assert!((low.avg_online_per_file - 80.0).abs() < 2.0);
    }

    #[test]
    fn mfcd_equals_mtcd() {
        let m = model(0.7);
        let a = evaluate_scheme(FluidParams::paper(), &m, Scheme::Mtcd).unwrap();
        let b = evaluate_scheme(FluidParams::paper(), &m, Scheme::Mfcd).unwrap();
        assert!((a.avg_online_per_file - b.avg_online_per_file).abs() < 1e-12);
    }

    #[test]
    fn cmfsd_rho_zero_beats_mfcd_at_high_p() {
        let m = model(0.9);
        let mfcd = evaluate_scheme(FluidParams::paper(), &m, Scheme::Mfcd).unwrap();
        let cm = evaluate_scheme(FluidParams::paper(), &m, Scheme::Cmfsd { rho: 0.0 }).unwrap();
        assert!(
            cm.avg_online_per_file < mfcd.avg_online_per_file,
            "CMFSD(0) {} should beat MFCD {}",
            cm.avg_online_per_file,
            mfcd.avg_online_per_file
        );
    }

    #[test]
    fn cmfsd_rho_one_equals_mfcd_average() {
        let m = model(0.4);
        let mfcd = evaluate_scheme(FluidParams::paper(), &m, Scheme::Mfcd).unwrap();
        let cm = evaluate_scheme(FluidParams::paper(), &m, Scheme::Cmfsd { rho: 1.0 }).unwrap();
        assert!((cm.avg_online_per_file - mfcd.avg_online_per_file).abs() < 1e-6);
    }

    #[test]
    fn p_zero_fails_cleanly_for_all_schemes() {
        let m = model(0.0);
        for scheme in [Scheme::Mtcd, Scheme::Mfcd, Scheme::Cmfsd { rho: 0.5 }] {
            assert!(
                evaluate_scheme(FluidParams::paper(), &m, scheme).is_err(),
                "{:?}",
                scheme
            );
        }
    }
}
