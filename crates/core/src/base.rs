//! The single-torrent Qiu–Srikant fluid model (Section 2), in the
//! upload-constrained regime the paper works in.
//!
//! ```text
//! dx/dt = λ − μ(ηx + y)
//! dy/dt = μ(ηx + y) − γy
//! ```
//!
//! Steady state (for `γ > μ`):
//!
//! ```text
//! ȳ = λ/γ,     x̄ = λ(γ − μ) / (γμη),     T = x̄/λ = (γ − μ)/(γμη)
//! ```
//!
//! This module is the reference against which the multi-torrent models
//! degenerate when `K = 1` (the consistency argument of Section 3.3).

use crate::params::FluidParams;
use btfluid_numkit::ode::OdeSystem;
use btfluid_numkit::NumError;

/// A single torrent with Poisson arrivals at rate `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleTorrent {
    params: FluidParams,
    lambda: f64,
}

/// The closed-form steady state of a [`SingleTorrent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleTorrentSteady {
    /// Equilibrium downloader population `x̄`.
    pub downloaders: f64,
    /// Equilibrium seed population `ȳ`.
    pub seeds: f64,
    /// Average download time `T = x̄/λ` (Little's law).
    pub download_time: f64,
    /// Average online time `T + 1/γ`.
    pub online_time: f64,
}

impl SingleTorrent {
    /// Creates the model.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] unless `λ > 0` and finite.
    pub fn new(params: FluidParams, lambda: f64) -> Result<Self, NumError> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(NumError::InvalidInput {
                what: "SingleTorrent::new",
                detail: format!("arrival rate λ must be finite and > 0, got {lambda}"),
            });
        }
        Ok(Self { params, lambda })
    }

    /// Model parameters.
    pub fn params(&self) -> &FluidParams {
        &self.params
    }

    /// Arrival rate λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Closed-form steady state.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when `γ ≤ μ` (the downloader
    /// population would be non-positive; the system is then seed-capacity
    /// constrained and outside the paper's regime).
    pub fn steady_state(&self) -> Result<SingleTorrentSteady, NumError> {
        self.params.require_upload_constrained()?;
        let (mu, eta, gamma) = (self.params.mu(), self.params.eta(), self.params.gamma());
        let download_time = (gamma - mu) / (gamma * mu * eta);
        let downloaders = self.lambda * download_time;
        let seeds = self.lambda / gamma;
        Ok(SingleTorrentSteady {
            downloaders,
            seeds,
            download_time,
            online_time: download_time + self.params.seed_residence(),
        })
    }
}

/// Linearized relaxation behaviour around the steady state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Relaxation {
    /// Exponential decay rate of perturbations (−max real part of the
    /// Jacobian's eigenvalues); `1/rate` is the slowest time constant.
    pub rate: f64,
    /// Whether the approach is oscillatory (complex eigenvalues).
    pub oscillatory: bool,
    /// Oscillation period `2π/Im λ`, when oscillatory.
    pub period: Option<f64>,
}

impl SingleTorrent {
    /// Linearized relaxation around the steady state.
    ///
    /// The Jacobian of the (linear) system is constant,
    /// `J = [[−μη, −μ], [μη, μ−γ]]`, with trace `μ(1−η) − γ` and
    /// determinant `μηγ`. In the upload-constrained regime `γ > μ` the
    /// trace is negative and the determinant positive, so the equilibrium
    /// is always a stable node or spiral. With the paper's parameters the
    /// eigenvalues are `−0.02 ± 0.01i`: flash crowds decay with time
    /// constant 50 while *oscillating* with period ≈ 628 — the
    /// seed-overshoot ringing that `btfluid transient` (X5) plots.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when `γ ≤ μ` (outside the regime
    /// where the analyzed equilibrium exists).
    pub fn relaxation(&self) -> Result<Relaxation, NumError> {
        self.params.require_upload_constrained()?;
        let (mu, eta, gamma) = (self.params.mu(), self.params.eta(), self.params.gamma());
        let trace = mu * (1.0 - eta) - gamma;
        let det = mu * eta * gamma;
        let disc = trace * trace - 4.0 * det;
        if disc >= 0.0 {
            // Two real eigenvalues (both negative); the slow one rules.
            let sqrt = disc.sqrt();
            let slow = 0.5 * (trace + sqrt); // closer to zero
            Ok(Relaxation {
                rate: -slow,
                oscillatory: false,
                period: None,
            })
        } else {
            let imag = 0.5 * (-disc).sqrt();
            Ok(Relaxation {
                rate: -0.5 * trace,
                oscillatory: true,
                period: Some(2.0 * std::f64::consts::PI / imag),
            })
        }
    }
}

impl OdeSystem for SingleTorrent {
    fn dim(&self) -> usize {
        2
    }

    /// State layout: `[x, y]`.
    fn rhs(&self, _t: f64, state: &[f64], d: &mut [f64]) {
        let (mu, eta, gamma) = (self.params.mu(), self.params.eta(), self.params.gamma());
        let (x, y) = (state[0].max(0.0), state[1].max(0.0));
        // Service capacity is upload-constrained: downloaders contribute at
        // efficiency η, seeds at full rate. Service cannot exceed demand —
        // when there are no downloaders nothing is consumed — but in the
        // upload-constrained regime studied here demand always exceeds
        // capacity, matching the paper's simplification.
        let served = mu * (eta * x + y);
        d[0] = self.lambda - served;
        d[1] = served - gamma * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_numkit::ode::{steady_state, SteadyOptions};

    fn paper_torrent(lambda: f64) -> SingleTorrent {
        SingleTorrent::new(FluidParams::paper(), lambda).unwrap()
    }

    #[test]
    fn validation() {
        assert!(SingleTorrent::new(FluidParams::paper(), 0.0).is_err());
        assert!(SingleTorrent::new(FluidParams::paper(), -1.0).is_err());
        assert!(SingleTorrent::new(FluidParams::paper(), f64::INFINITY).is_err());
    }

    #[test]
    fn closed_form_paper_values() {
        // T = (0.05 − 0.02)/(0.05·0.02·0.5) = 60; online = 60 + 20 = 80.
        let ss = paper_torrent(1.0).steady_state().unwrap();
        assert!((ss.download_time - 60.0).abs() < 1e-12);
        assert!((ss.online_time - 80.0).abs() < 1e-12);
        assert!((ss.downloaders - 60.0).abs() < 1e-12);
        assert!((ss.seeds - 20.0).abs() < 1e-12);
    }

    #[test]
    fn steady_state_scales_linearly_with_lambda() {
        let a = paper_torrent(1.0).steady_state().unwrap();
        let b = paper_torrent(3.0).steady_state().unwrap();
        assert!((b.downloaders - 3.0 * a.downloaders).abs() < 1e-9);
        assert!((b.seeds - 3.0 * a.seeds).abs() < 1e-9);
        // Times are scale-free (the paper's scalability result).
        assert!((b.download_time - a.download_time).abs() < 1e-12);
    }

    #[test]
    fn closed_form_requires_gamma_above_mu() {
        let p = FluidParams::new(0.06, 0.5, 0.05).unwrap();
        let t = SingleTorrent::new(p, 1.0).unwrap();
        assert!(t.steady_state().is_err());
    }

    #[test]
    fn ode_converges_to_closed_form() {
        let t = paper_torrent(2.0);
        let expect = t.steady_state().unwrap();
        let ss = steady_state(&t, &[0.0, 0.0], SteadyOptions::default()).unwrap();
        assert!(
            (ss.x[0] - expect.downloaders).abs() < 1e-4,
            "x = {}, expect {}",
            ss.x[0],
            expect.downloaders
        );
        assert!((ss.x[1] - expect.seeds).abs() < 1e-4);
    }

    #[test]
    fn ode_rhs_balances_at_closed_form() {
        let t = paper_torrent(1.5);
        let ss = t.steady_state().unwrap();
        let mut d = vec![0.0; 2];
        t.rhs(0.0, &[ss.downloaders, ss.seeds], &mut d);
        assert!(d[0].abs() < 1e-12 && d[1].abs() < 1e-12, "rhs = {d:?}");
    }

    #[test]
    fn relaxation_paper_values() {
        // J eigenvalues −0.02 ± 0.01i at the paper's parameters.
        let r = paper_torrent(1.0).relaxation().unwrap();
        assert!((r.rate - 0.02).abs() < 1e-12, "rate = {}", r.rate);
        assert!(r.oscillatory);
        let period = r.period.unwrap();
        assert!(
            (period - 2.0 * std::f64::consts::PI / 0.01).abs() < 1e-9,
            "period = {period}"
        );
    }

    #[test]
    fn relaxation_always_stable_in_regime() {
        // Any γ > μ gives a positive decay rate.
        for &(mu, eta, gamma) in &[(0.01, 0.9, 0.02), (0.02, 0.1, 0.05), (0.001, 0.5, 0.1)] {
            let p = FluidParams::new(mu, eta, gamma).unwrap();
            let t = SingleTorrent::new(p, 1.0).unwrap();
            let r = t.relaxation().unwrap();
            assert!(r.rate > 0.0, "μ={mu}, η={eta}, γ={gamma}: rate {}", r.rate);
        }
    }

    #[test]
    fn relaxation_real_node_case() {
        // Large γ pushes the discriminant positive: a non-oscillatory node.
        let p = FluidParams::new(0.02, 0.5, 1.0).unwrap();
        let t = SingleTorrent::new(p, 1.0).unwrap();
        let r = t.relaxation().unwrap();
        assert!(!r.oscillatory);
        assert!(r.period.is_none());
        assert!(r.rate > 0.0);
    }

    #[test]
    fn relaxation_rate_matches_observed_decay() {
        // Integrate a perturbed state and check the decay envelope.
        let t = paper_torrent(1.0);
        let r = t.relaxation().unwrap();
        let eq = t.steady_state().unwrap();
        let x0 = vec![eq.downloaders + 50.0, eq.seeds];
        // After time T the perturbation should shrink by ≈ e^{-rate·T}
        // (modulo the oscillation phase, so compare over a full period).
        let horizon = r.period.unwrap();
        use btfluid_numkit::ode::FixedStep;
        let mut x = x0.clone();
        btfluid_numkit::ode::Rk4.integrate(&t, 0.0, &mut x, horizon, 0.1);
        let dev0 = 50.0f64;
        let dev1 = ((x[0] - eq.downloaders).powi(2) + (x[1] - eq.seeds).powi(2)).sqrt();
        let expected = dev0 * (-r.rate * horizon).exp();
        // Within a factor of ~2: the envelope argument ignores the
        // eigenvector geometry.
        assert!(
            dev1 < 2.5 * expected && dev1 > expected / 2.5,
            "dev after one period: {dev1}, envelope {expected}"
        );
    }

    #[test]
    fn flash_crowd_decays_to_equilibrium() {
        // Start with a big flash crowd of downloaders and no seeds.
        let t = paper_torrent(1.0);
        let ss = steady_state(&t, &[500.0, 0.0], SteadyOptions::default()).unwrap();
        let expect = t.steady_state().unwrap();
        assert!((ss.x[0] - expect.downloaders).abs() < 1e-4);
    }
}
