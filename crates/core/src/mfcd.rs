//! Multi-file-torrent **concurrent** downloading (MFCD) — Section 3.4.
//!
//! Several files are published in one torrent; clients that do not
//! differentiate multi-file content download the chunks of all chosen files
//! at random, which is concurrent downloading across the `K` *subtorrents*.
//! A peer requesting `i` files behaves as `i` virtual peers with `μ/i`
//! bandwidth each — exactly the MTCD setup. The paper argues the only
//! difference (virtual peers of one user depart together instead of
//! independently) does not change the fluid model because the mean seed
//! service time is `1/γ` either way, and evaluates MFCD with Eq. (2).
//!
//! [`Mfcd`] therefore *delegates to* [`crate::mtcd::Mtcd`], constructed with
//! the per-subtorrent entry rates `λⱼⁱ = λ₀·C(K−1,i−1)pⁱ(1−p)^{K−i}`; the
//! type exists so call sites say what they mean and so the equivalence is
//! pinned by tests rather than by convention.

use crate::metrics::ClassTimes;
use crate::mtcd::{Mtcd, MtcdSteady};
use crate::params::FluidParams;
use btfluid_numkit::NumError;
use btfluid_workload::CorrelationModel;

/// The MFCD performance model (fluid-equivalent to MTCD).
#[derive(Debug, Clone, PartialEq)]
pub struct Mfcd {
    inner: Mtcd,
}

impl Mfcd {
    /// Builds the model for a multi-file torrent whose users follow the
    /// given correlation model.
    ///
    /// # Errors
    /// Propagates rate validation errors (e.g. `p = 0`: nobody enters).
    pub fn from_correlation(
        params: FluidParams,
        model: &CorrelationModel,
    ) -> Result<Self, NumError> {
        Ok(Self {
            inner: Mtcd::new(params, model.per_torrent_rates())?,
        })
    }

    /// Builds the model from explicit per-subtorrent class rates.
    ///
    /// # Errors
    /// Propagates [`Mtcd::new`] validation errors.
    pub fn new(params: FluidParams, lambdas: Vec<f64>) -> Result<Self, NumError> {
        Ok(Self {
            inner: Mtcd::new(params, lambdas)?,
        })
    }

    /// The underlying MTCD model (the fluid equivalence made explicit).
    pub fn as_mtcd(&self) -> &Mtcd {
        &self.inner
    }

    /// Number of classes `K`.
    pub fn k(&self) -> usize {
        self.inner.k()
    }

    /// Shared per-file download time `G` (Eq. 2).
    ///
    /// # Errors
    /// Propagates the closed-form validity check.
    pub fn g(&self) -> Result<f64, NumError> {
        self.inner.g()
    }

    /// Closed-form steady state per subtorrent.
    ///
    /// # Errors
    /// Propagates the closed-form validity check.
    pub fn steady_state(&self) -> Result<MtcdSteady, NumError> {
        self.inner.steady_state()
    }

    /// Per-class user totals (same as MTCD's).
    ///
    /// # Errors
    /// Propagates the closed-form validity check.
    pub fn class_times(&self) -> Result<ClassTimes, NumError> {
        self.inner.class_times()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(p: f64) -> CorrelationModel {
        CorrelationModel::new(10, p, 1.0).unwrap()
    }

    #[test]
    fn equivalent_to_mtcd_by_construction() {
        let m = model(0.9);
        let mfcd = Mfcd::from_correlation(FluidParams::paper(), &m).unwrap();
        let mtcd = Mtcd::new(FluidParams::paper(), m.per_torrent_rates()).unwrap();
        assert_eq!(mfcd.g().unwrap(), mtcd.g().unwrap());
        assert_eq!(
            mfcd.class_times().unwrap().online_per_file_vec(),
            mtcd.class_times().unwrap().online_per_file_vec()
        );
        assert_eq!(mfcd.k(), 10);
    }

    #[test]
    fn p_zero_rejected() {
        assert!(Mfcd::from_correlation(FluidParams::paper(), &model(0.0)).is_err());
    }

    #[test]
    fn explicit_rates_constructor() {
        let mfcd = Mfcd::new(FluidParams::paper(), vec![0.5, 0.25]).unwrap();
        assert_eq!(mfcd.k(), 2);
        assert!(mfcd.g().unwrap() > 0.0);
        assert_eq!(mfcd.as_mtcd().lambdas(), &[0.5, 0.25]);
    }

    #[test]
    fn high_correlation_hurts_mfcd() {
        // The observation motivating CMFSD: at p near 1, the per-file time
        // under MFCD is well above the single-file baseline of 80.
        let mfcd = Mfcd::from_correlation(FluidParams::paper(), &model(0.95)).unwrap();
        let times = mfcd.class_times().unwrap();
        assert!(times.online_per_file(10) > 90.0);
    }
}
