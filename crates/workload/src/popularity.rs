//! Non-uniform file popularity: the paper's correlation model with
//! per-file request probabilities.
//!
//! The paper's Section 4.1 model gives every file the same probability `p`
//! and explicitly lists "in what scale the files are correlated" as future
//! work. This module generalizes: a visiting user requests file `f`
//! independently with probability `p_f` (e.g. Zipf-skewed popularity). The
//! class-size distribution then becomes **Poisson-binomial**, computed
//! exactly by dynamic programming:
//!
//! ```text
//! λᵢ      = λ₀ · P[|S| = i]                      (system-wide class rates)
//! λⱼⁱ     = λ₀ · p_j · P[|S \ {j}| = i − 1]       (per-torrent class rates)
//! ```
//!
//! With all `p_f = p` this reduces exactly to [`crate::CorrelationModel`]
//! (tested). The per-torrent rates now differ across torrents, so the MTCD
//! fluid model must be solved once per torrent — see
//! `btfluid-bench::skew` for the resulting experiment.

use btfluid_numkit::rng::RngCore;
use btfluid_numkit::NumError;

/// A correlation model with per-file request probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct NonUniformModel {
    probs: Vec<f64>,
    lambda0: f64,
}

impl NonUniformModel {
    /// Creates the model from per-file probabilities and the visiting rate.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] for an empty file list,
    /// probabilities outside `[0, 1]`, or a non-positive `λ₀`.
    pub fn new(probs: Vec<f64>, lambda0: f64) -> Result<Self, NumError> {
        if probs.is_empty() {
            return Err(NumError::InvalidInput {
                what: "NonUniformModel::new",
                detail: "need at least one file".into(),
            });
        }
        for (f, &p) in probs.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) {
                return Err(NumError::InvalidInput {
                    what: "NonUniformModel::new",
                    detail: format!("p[{f}] = {p} outside [0,1]"),
                });
            }
        }
        if !(lambda0 > 0.0) || !lambda0.is_finite() {
            return Err(NumError::InvalidInput {
                what: "NonUniformModel::new",
                detail: format!("λ₀ must be finite and > 0, got {lambda0}"),
            });
        }
        Ok(Self { probs, lambda0 })
    }

    /// A Zipf-skewed popularity profile: `p_f ∝ 1/(f+1)^s`, scaled so the
    /// *mean* probability equals `p_mean` (making skew sweeps
    /// approximately workload-neutral: the total file request rate
    /// `λ₀·Σp_f` is invariant in `s` as long as no probability needs
    /// clamping). When the scaling pushes the hottest file past 1 its
    /// probability clamps there and the realized mean drops below
    /// `p_mean` — steep exponents with high means are not mean-exact.
    ///
    /// # Errors
    /// Propagates constructor validation; rejects negative exponents and
    /// `p_mean ∉ (0, 1]`.
    pub fn zipf(k: u32, s: f64, p_mean: f64, lambda0: f64) -> Result<Self, NumError> {
        if !(s >= 0.0) || !s.is_finite() {
            return Err(NumError::InvalidInput {
                what: "NonUniformModel::zipf",
                detail: format!("exponent must be finite and >= 0, got {s}"),
            });
        }
        if !(p_mean > 0.0 && p_mean <= 1.0) {
            return Err(NumError::InvalidInput {
                what: "NonUniformModel::zipf",
                detail: format!("p_mean must lie in (0, 1], got {p_mean}"),
            });
        }
        if k == 0 {
            return Err(NumError::InvalidInput {
                what: "NonUniformModel::zipf",
                detail: "need at least one file".into(),
            });
        }
        let raw: Vec<f64> = (0..k).map(|f| 1.0 / (f as f64 + 1.0).powf(s)).collect();
        let mean: f64 = raw.iter().sum::<f64>() / k as f64;
        let probs = raw
            .into_iter()
            .map(|r| (r * p_mean / mean).min(1.0))
            .collect();
        Self::new(probs, lambda0)
    }

    /// Number of files `K`.
    pub fn k(&self) -> usize {
        self.probs.len()
    }

    /// Per-file probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Visiting rate `λ₀`.
    pub fn lambda0(&self) -> f64 {
        self.lambda0
    }

    /// Poisson-binomial pmf of the number of requested files over an
    /// arbitrary probability subset, by the standard DP.
    fn poisson_binomial(probs: &[f64]) -> Vec<f64> {
        let mut pmf = vec![0.0; probs.len() + 1];
        pmf[0] = 1.0;
        for (used, &p) in probs.iter().enumerate() {
            // Walk down so each file is folded in once.
            for i in (0..=used).rev() {
                let stay = pmf[i];
                pmf[i + 1] += stay * p;
                pmf[i] = stay * (1.0 - p);
            }
        }
        pmf
    }

    /// System-wide class rates `λ₁..λ_K` (index 0 ↔ class 1).
    pub fn class_rates(&self) -> Vec<f64> {
        let pmf = Self::poisson_binomial(&self.probs);
        (1..=self.k()).map(|i| self.lambda0 * pmf[i]).collect()
    }

    /// Per-torrent class rates for torrent `j`:
    /// `λⱼⁱ = λ₀·p_j·P[i−1 of the other files]`.
    ///
    /// # Panics
    /// Panics for `j ≥ K`.
    pub fn per_torrent_rates(&self, j: usize) -> Vec<f64> {
        assert!(j < self.k(), "torrent {j} out of 0..{}", self.k());
        let others: Vec<f64> = self
            .probs
            .iter()
            .enumerate()
            .filter(|(f, _)| *f != j)
            .map(|(_, &p)| p)
            .collect();
        let pmf = Self::poisson_binomial(&others);
        (1..=self.k())
            .map(|i| self.lambda0 * self.probs[j] * pmf[i - 1])
            .collect()
    }

    /// Total rate at which files are requested, `λ₀·Σ p_f`.
    pub fn file_request_rate(&self) -> f64 {
        self.lambda0 * self.probs.iter().sum::<f64>()
    }

    /// Rate of users who enter (request ≥ 1 file):
    /// `λ₀·(1 − Π(1−p_f))`.
    pub fn entering_rate(&self) -> f64 {
        let none: f64 = self.probs.iter().map(|p| 1.0 - p).product();
        self.lambda0 * (1.0 - none)
    }

    /// Samples a visiting user's request set (possibly empty).
    pub fn sample_visitor<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<u16> {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, &p)| rng.next_f64() < p)
            .map(|(f, _)| f as u16)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorrelationModel;
    use btfluid_numkit::rng::Xoshiro256StarStar;

    #[test]
    fn validation() {
        assert!(NonUniformModel::new(vec![], 1.0).is_err());
        assert!(NonUniformModel::new(vec![1.1], 1.0).is_err());
        assert!(NonUniformModel::new(vec![-0.1], 1.0).is_err());
        assert!(NonUniformModel::new(vec![0.5], 0.0).is_err());
        assert!(NonUniformModel::new(vec![0.5], 1.0).is_ok());
        assert!(NonUniformModel::zipf(10, -1.0, 0.5, 1.0).is_err());
        assert!(NonUniformModel::zipf(10, 1.0, 0.0, 1.0).is_err());
        assert!(NonUniformModel::zipf(0, 1.0, 0.5, 1.0).is_err());
    }

    #[test]
    fn uniform_case_matches_correlation_model() {
        let uniform = NonUniformModel::new(vec![0.3; 10], 2.0).unwrap();
        let reference = CorrelationModel::new(10, 0.3, 2.0).unwrap();
        let got = uniform.class_rates();
        let expect = reference.class_rates();
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!((g - e).abs() < 1e-12, "class {}: {g} vs {e}", i + 1);
        }
        // Per-torrent rates as well (every torrent identical).
        let got = uniform.per_torrent_rates(4);
        let expect = reference.per_torrent_rates();
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-12);
        }
        assert!((uniform.entering_rate() - reference.entering_rate()).abs() < 1e-12);
        assert!((uniform.file_request_rate() - reference.file_request_rate()).abs() < 1e-12);
    }

    #[test]
    fn poisson_binomial_sums_to_one() {
        let m = NonUniformModel::new(vec![0.9, 0.1, 0.5, 0.7], 1.0).unwrap();
        let pmf = NonUniformModel::poisson_binomial(m.probs());
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Mean of the pmf equals Σp.
        let mean: f64 = pmf.iter().enumerate().map(|(i, &q)| i as f64 * q).sum();
        assert!((mean - 2.2).abs() < 1e-12);
    }

    #[test]
    fn per_torrent_rates_sum_to_class_identity() {
        // Σⱼ λⱼⁱ = i·λᵢ: a class-i user appears in exactly i torrents.
        let m = NonUniformModel::new(vec![0.8, 0.2, 0.5, 0.35, 0.6], 1.5).unwrap();
        let class = m.class_rates();
        for i in 1..=5usize {
            let sum: f64 = (0..5).map(|j| m.per_torrent_rates(j)[i - 1]).sum();
            assert!(
                (sum - i as f64 * class[i - 1]).abs() < 1e-12,
                "class {i}: Σⱼ λⱼⁱ = {sum} vs i·λᵢ = {}",
                i as f64 * class[i - 1]
            );
        }
    }

    #[test]
    fn zipf_preserves_mean_and_orders_files() {
        // p_mean small enough that no clamping occurs.
        let m = NonUniformModel::zipf(10, 1.0, 0.2, 1.0).unwrap();
        let mean: f64 = m.probs().iter().sum::<f64>() / 10.0;
        assert!((mean - 0.2).abs() < 1e-9, "mean = {mean}");
        assert!(m.probs().windows(2).all(|w| w[0] >= w[1]));
        // s = 0 is uniform.
        let u = NonUniformModel::zipf(10, 0.0, 0.4, 1.0).unwrap();
        assert!(u.probs().iter().all(|&p| (p - 0.4).abs() < 1e-12));
    }

    #[test]
    fn zipf_clamps_overshooting_probabilities() {
        // Strong skew with a high mean pushes p₀ past 1 before clamping.
        let m = NonUniformModel::zipf(10, 2.0, 0.6, 1.0).unwrap();
        assert!(m.probs().iter().all(|&p| p <= 1.0));
        assert_eq!(m.probs()[0], 1.0);
    }

    #[test]
    fn sampling_matches_marginals() {
        let m = NonUniformModel::new(vec![0.9, 0.1, 0.5], 1.0).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            for f in m.sample_visitor(&mut rng) {
                counts[f as usize] += 1;
            }
        }
        for (f, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - m.probs()[f]).abs() < 0.01,
                "file {f}: freq {freq} vs p {}",
                m.probs()[f]
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of 0..")]
    fn per_torrent_out_of_range_panics() {
        let m = NonUniformModel::new(vec![0.5, 0.5], 1.0).unwrap();
        let _ = m.per_torrent_rates(2);
    }
}
