//! The binomial file-correlation model of Section 4.1.

use btfluid_numkit::special::binomial_pmf;
use btfluid_numkit::NumError;

/// The paper's file-correlation model: `K` files, index visiting rate `λ₀`,
/// per-file request probability `p`.
///
/// # Examples
///
/// ```
/// use btfluid_workload::CorrelationModel;
///
/// let m = CorrelationModel::new(10, 0.5, 2.0)?;
/// // Class rates are a binomial pmf scaled by λ₀…
/// assert!((m.class_rates().iter().sum::<f64>() - m.entering_rate()).abs() < 1e-12);
/// // …and each torrent sees λ₀·p peers per time unit in total.
/// assert!((m.per_torrent_total_rate() - 1.0).abs() < 1e-12);
/// # Ok::<(), btfluid_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationModel {
    k: u32,
    p: f64,
    lambda0: f64,
}

impl CorrelationModel {
    /// Creates the model.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] unless `k ≥ 1`, `p ∈ [0, 1]` and
    /// `λ₀ > 0` (finite).
    pub fn new(k: u32, p: f64, lambda0: f64) -> Result<Self, NumError> {
        if k == 0 {
            return Err(NumError::InvalidInput {
                what: "CorrelationModel::new",
                detail: "the system must serve at least one file (k >= 1)".into(),
            });
        }
        if !(0.0..=1.0).contains(&p) {
            return Err(NumError::InvalidInput {
                what: "CorrelationModel::new",
                detail: format!("file correlation p must lie in [0,1], got {p}"),
            });
        }
        if !(lambda0 > 0.0) || !lambda0.is_finite() {
            return Err(NumError::InvalidInput {
                what: "CorrelationModel::new",
                detail: format!("visiting rate λ₀ must be finite and > 0, got {lambda0}"),
            });
        }
        Ok(Self { k, p, lambda0 })
    }

    /// Number of files `K` in the system.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// File correlation `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Index visiting rate `λ₀`.
    pub fn lambda0(&self) -> f64 {
        self.lambda0
    }

    /// System-wide entry rate of class-`i` users,
    /// `λᵢ = λ₀·C(K,i)·pⁱ(1−p)^{K−i}`, for `1 ≤ i ≤ K`.
    ///
    /// `i = 0` returns the rate of users who request nothing (they never
    /// enter a torrent but the mass is useful for sanity checks).
    ///
    /// # Panics
    /// Panics when `i > K` (programming error).
    pub fn class_rate(&self, i: u32) -> f64 {
        assert!(i <= self.k, "class {i} exceeds K = {}", self.k);
        self.lambda0 * binomial_pmf(self.k, i, self.p).expect("p validated at construction")
    }

    /// Per-torrent entry rate of class-`i` peers,
    /// `λⱼⁱ = λ₀·C(K−1,i−1)·pⁱ(1−p)^{K−i}` (identical for every torrent by
    /// symmetry), for `1 ≤ i ≤ K`.
    ///
    /// Derivation: a class-`i` user enters torrent `tⱼ` iff file `j` is among
    /// its `i` choices; conditioning on that choice leaves `C(K−1, i−1)` ways
    /// to pick the rest.
    ///
    /// # Panics
    /// Panics when `i == 0` or `i > K`.
    pub fn per_torrent_rate(&self, i: u32) -> f64 {
        assert!(
            (1..=self.k).contains(&i),
            "per-torrent classes run 1..=K, got {i}"
        );
        if self.p == 0.0 {
            return 0.0;
        }
        // λ₀ · C(K−1, i−1) · pⁱ (1−p)^{K−i}
        //   = λ₀ · pmf_{K−1,p}(i−1) · p
        self.lambda0 * binomial_pmf(self.k - 1, i - 1, self.p).expect("p validated") * self.p
    }

    /// All system-wide class rates `λ₁..λ_K` as a vector (index 0 ↔ class 1).
    pub fn class_rates(&self) -> Vec<f64> {
        (1..=self.k).map(|i| self.class_rate(i)).collect()
    }

    /// All per-torrent class rates `λⱼ¹..λⱼᴷ` as a vector (index 0 ↔ class 1).
    pub fn per_torrent_rates(&self) -> Vec<f64> {
        (1..=self.k).map(|i| self.per_torrent_rate(i)).collect()
    }

    /// Fraction of visitors who request at least one file,
    /// `1 − (1−p)^K`, evaluated as `−expm1(K·ln1p(−p))` so that tiny `p`
    /// does not cancel to 0 (for `p` below machine epsilon the naive form
    /// rounds `(1−p)^K` to exactly 1).
    fn entering_fraction(&self) -> f64 {
        -f64::exp_m1(self.k as f64 * f64::ln_1p(-self.p))
    }

    /// Total rate of users who actually enter the system,
    /// `λ₀·(1 − (1−p)^K)`.
    pub fn entering_rate(&self) -> f64 {
        self.lambda0 * self.entering_fraction()
    }

    /// Total per-torrent peer entry rate `Σᵢ λⱼⁱ = λ₀·p` (each file is
    /// requested with probability `p`).
    pub fn per_torrent_total_rate(&self) -> f64 {
        self.lambda0 * self.p
    }

    /// Expected number of files requested per *visiting* user, `K·p`.
    pub fn mean_files_per_visitor(&self) -> f64 {
        self.k as f64 * self.p
    }

    /// Expected number of files per *entering* user,
    /// `K·p / (1 − (1−p)^K)`.
    ///
    /// At `p = 0` the raw expression is `0/0`; the limit as `p → 0⁺` is 1
    /// (an entrant requests at least one file, and in the limit exactly
    /// one), so this returns 1 there rather than NaN. The result always
    /// lies in `[max(1, K·p), K]`.
    pub fn mean_files_per_entrant(&self) -> f64 {
        if self.p == 0.0 {
            return 1.0;
        }
        self.mean_files_per_visitor() / self.entering_fraction()
    }

    /// Rate at which *files* are requested across the system, `λ₀·K·p`
    /// (equals `Σᵢ i·λᵢ`).
    pub fn file_request_rate(&self) -> f64 {
        self.lambda0 * self.k as f64 * self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(p: f64) -> CorrelationModel {
        CorrelationModel::new(10, p, 2.0).unwrap()
    }

    #[test]
    fn validation() {
        assert!(CorrelationModel::new(0, 0.5, 1.0).is_err());
        assert!(CorrelationModel::new(10, -0.1, 1.0).is_err());
        assert!(CorrelationModel::new(10, 1.5, 1.0).is_err());
        assert!(CorrelationModel::new(10, 0.5, 0.0).is_err());
        assert!(CorrelationModel::new(10, 0.5, f64::NAN).is_err());
        assert!(CorrelationModel::new(1, 0.0, 1.0).is_ok());
    }

    #[test]
    fn class_rates_sum_to_lambda0() {
        let m = model(0.3);
        let total: f64 = (0..=10).map(|i| m.class_rate(i)).sum();
        assert!((total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entering_rate_excludes_class_zero() {
        let m = model(0.3);
        let entering: f64 = (1..=10).map(|i| m.class_rate(i)).sum();
        assert!((entering - m.entering_rate()).abs() < 1e-12);
    }

    #[test]
    fn per_torrent_rates_sum_to_lambda0_p() {
        for &p in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let m = model(p);
            let total: f64 = if p == 0.0 {
                0.0
            } else {
                (1..=10).map(|i| m.per_torrent_rate(i)).sum()
            };
            assert!(
                (total - m.per_torrent_total_rate()).abs() < 1e-12,
                "p = {p}: {total} vs {}",
                m.per_torrent_total_rate()
            );
        }
    }

    #[test]
    fn per_torrent_matches_paper_formula() {
        // λⱼⁱ = λ₀·C(K−1,i−1)·pⁱ(1−p)^{K−i}, checked literally for K=10.
        let m = model(0.1);
        for i in 1..=10u32 {
            let expect = 2.0
                * btfluid_numkit::special::choose(9, i - 1)
                * 0.1f64.powi(i as i32)
                * 0.9f64.powi(10 - i as i32);
            let got = m.per_torrent_rate(i);
            assert!(
                (got - expect).abs() < 1e-12,
                "class {i}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn p_one_concentrates_on_class_k() {
        let m = model(1.0);
        assert!((m.class_rate(10) - 2.0).abs() < 1e-12);
        for i in 0..10 {
            assert_eq!(m.class_rate(i), 0.0);
        }
        assert!((m.per_torrent_rate(10) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn p_zero_means_nobody_enters() {
        let m = model(0.0);
        assert_eq!(m.entering_rate(), 0.0);
        // The conditional mean over entrants has the p → 0⁺ limit 1: the
        // (vanishingly rare) entrant requests exactly one file. It must
        // never be NaN or 0.
        assert_eq!(m.mean_files_per_entrant(), 1.0);
        for i in 1..=10 {
            assert_eq!(m.per_torrent_rate(i), 0.0);
        }
    }

    #[test]
    fn entrant_mean_is_continuous_at_tiny_p() {
        // Regression: with the naive 1 − (1−p)^K denominator, p below
        // machine epsilon rounded (1−p)^K to exactly 1 and the mean blew
        // up to ∞ (and 0/0 = NaN in intermediate forms).
        for &p in &[1e-18, 1e-12, 1e-9] {
            let m = CorrelationModel::new(10, p, 2.0).unwrap();
            let mean = m.mean_files_per_entrant();
            assert!(
                mean.is_finite() && (mean - 1.0).abs() < 1e-6,
                "p = {p}: mean = {mean}"
            );
            assert!(m.entering_rate().is_finite());
            assert!(m.entering_rate() > 0.0, "p = {p}: entering rate vanished");
        }
    }

    #[test]
    fn boundary_p_and_k_edges() {
        // p = 1: everyone requests all K files.
        let m = model(1.0);
        assert_eq!(m.mean_files_per_entrant(), 10.0);
        assert!((m.entering_rate() - 2.0).abs() < 1e-12);
        // K = 1: an entrant requests exactly the one file for any p.
        for &p in &[0.0, 0.25, 1.0] {
            let m = CorrelationModel::new(1, p, 4.0).unwrap();
            assert!(
                (m.mean_files_per_entrant() - 1.0).abs() < 1e-12,
                "K = 1, p = {p}"
            );
            if p > 0.0 {
                assert!((m.per_torrent_rate(1) - m.entering_rate()).abs() < 1e-12);
            }
        }
        // The entrant mean is bounded by [max(1, K·p), K] across the range.
        for &p in &[0.0, 1e-6, 0.1, 0.5, 0.9, 1.0] {
            let m = model(p);
            let mean = m.mean_files_per_entrant();
            assert!(
                mean >= m.mean_files_per_visitor().max(1.0) - 1e-12,
                "p = {p}"
            );
            assert!(mean <= 10.0 + 1e-12, "p = {p}");
        }
    }

    #[test]
    fn mean_files_relations() {
        let m = model(0.4);
        assert!((m.mean_files_per_visitor() - 4.0).abs() < 1e-12);
        // Entrant mean is visitor mean inflated by the entering fraction.
        let frac = 1.0 - 0.6f64.powi(10);
        assert!((m.mean_files_per_entrant() - 4.0 / frac).abs() < 1e-12);
        // Entrant mean must exceed visitor mean (zero-class removed)...
        assert!(m.mean_files_per_entrant() > m.mean_files_per_visitor());
        // ...and equal Σ i λᵢ / Σ λᵢ.
        let num: f64 = (1..=10).map(|i| i as f64 * m.class_rate(i)).sum();
        let den: f64 = (1..=10).map(|i| m.class_rate(i)).sum();
        assert!((m.mean_files_per_entrant() - num / den).abs() < 1e-12);
    }

    #[test]
    fn file_request_rate_identity() {
        let m = model(0.7);
        let by_classes: f64 = (1..=10).map(|i| i as f64 * m.class_rate(i)).sum();
        assert!((m.file_request_rate() - by_classes).abs() < 1e-12);
        // Also equals K × per-torrent total (each torrent sees λ₀·p peers).
        assert!((m.file_request_rate() - 10.0 * m.per_torrent_total_rate()).abs() < 1e-12);
    }

    #[test]
    fn k_equals_one_degenerates() {
        let m = CorrelationModel::new(1, 0.25, 4.0).unwrap();
        assert!((m.class_rate(1) - 1.0).abs() < 1e-12);
        assert!((m.per_torrent_rate(1) - 1.0).abs() < 1e-12);
        assert!((m.entering_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds K")]
    fn class_rate_out_of_range_panics() {
        let _ = model(0.5).class_rate(11);
    }

    #[test]
    #[should_panic(expected = "per-torrent classes")]
    fn per_torrent_rate_zero_panics() {
        let _ = model(0.5).per_torrent_rate(0);
    }

    #[test]
    fn vectors_match_scalars() {
        let m = model(0.2);
        let cr = m.class_rates();
        let ptr = m.per_torrent_rates();
        assert_eq!(cr.len(), 10);
        assert_eq!(ptr.len(), 10);
        for i in 1..=10u32 {
            assert_eq!(cr[(i - 1) as usize], m.class_rate(i));
            assert_eq!(ptr[(i - 1) as usize], m.per_torrent_rate(i));
        }
    }
}
