//! Peer classes and class-weighted aggregation.
//!
//! The paper categorizes peers by the number of files their user requested:
//! a *class-`i`* peer belongs to a user who requested `i` files. Every
//! per-class result (Figures 3, 4b, 4c) is a vector indexed by class, and
//! every population average (Figures 2, 4a) is a rate-weighted mean over
//! classes. [`ClassMix`] packages those weightings so the metric code in
//! `btfluid-core` cannot mix up "per user" and "per file" weights.

use crate::correlation::CorrelationModel;
use btfluid_numkit::NumError;

/// Entry rates per class (index 0 ↔ class 1), with weighted-average helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMix {
    rates: Vec<f64>,
}

impl ClassMix {
    /// Builds a mix from raw per-class entry rates (`rates[i]` is the rate
    /// of class `i+1`).
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] if `rates` is empty, contains a
    /// negative or non-finite entry, or sums to zero.
    pub fn new(rates: Vec<f64>) -> Result<Self, NumError> {
        if rates.is_empty() {
            return Err(NumError::InvalidInput {
                what: "ClassMix::new",
                detail: "need at least one class".into(),
            });
        }
        let mut total = 0.0;
        for (i, &r) in rates.iter().enumerate() {
            if !r.is_finite() || r < 0.0 {
                return Err(NumError::InvalidInput {
                    what: "ClassMix::new",
                    detail: format!("rate for class {} is {r}", i + 1),
                });
            }
            total += r;
        }
        if total <= 0.0 {
            return Err(NumError::InvalidInput {
                what: "ClassMix::new",
                detail: "all class rates are zero — nobody enters the system".into(),
            });
        }
        Ok(Self { rates })
    }

    /// System-wide mix from a correlation model (classes `1..=K`,
    /// rates `λᵢ = λ₀·C(K,i)pⁱ(1−p)^{K−i}`).
    ///
    /// # Errors
    /// Fails when `p = 0` (no entering class has positive rate).
    pub fn system_wide(model: &CorrelationModel) -> Result<Self, NumError> {
        Self::new(model.class_rates())
    }

    /// Per-torrent mix from a correlation model (classes `1..=K`,
    /// rates `λⱼⁱ = λ₀·C(K−1,i−1)pⁱ(1−p)^{K−i}`).
    ///
    /// # Errors
    /// Fails when `p = 0`.
    pub fn per_torrent(model: &CorrelationModel) -> Result<Self, NumError> {
        Self::new(model.per_torrent_rates())
    }

    /// Number of classes `K`.
    pub fn k(&self) -> usize {
        self.rates.len()
    }

    /// Entry rate of class `i` (`1 ≤ i ≤ K`).
    ///
    /// # Panics
    /// Panics for out-of-range classes.
    pub fn rate(&self, i: usize) -> f64 {
        assert!(
            (1..=self.k()).contains(&i),
            "class {i} out of 1..={}",
            self.k()
        );
        self.rates[i - 1]
    }

    /// Raw rate vector (index 0 ↔ class 1).
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Total entry rate `Σᵢ λᵢ`.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Total *file*-request rate `Σᵢ i·λᵢ`.
    pub fn file_rate(&self) -> f64 {
        self.rates
            .iter()
            .enumerate()
            .map(|(idx, &r)| (idx + 1) as f64 * r)
            .sum()
    }

    /// Rate-weighted mean of a per-class quantity: `Σᵢ λᵢ·vᵢ / Σᵢ λᵢ`
    /// — "average over users".
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when `values.len() != K`.
    pub fn user_mean(&self, values: &[f64]) -> Result<f64, NumError> {
        self.check_len(values)?;
        let num: f64 = self.rates.iter().zip(values).map(|(r, v)| r * v).sum();
        Ok(num / self.total_rate())
    }

    /// File-weighted mean: `Σᵢ i·λᵢ·vᵢ / Σᵢ i·λᵢ` — "average over files",
    /// the denominator of the paper's *average online time per file* metric.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when `values.len() != K`.
    pub fn file_mean(&self, values: &[f64]) -> Result<f64, NumError> {
        self.check_len(values)?;
        let num: f64 = self
            .rates
            .iter()
            .zip(values)
            .enumerate()
            .map(|(idx, (r, v))| (idx + 1) as f64 * r * v)
            .sum();
        Ok(num / self.file_rate())
    }

    fn check_len(&self, values: &[f64]) -> Result<(), NumError> {
        if values.len() != self.k() {
            return Err(NumError::InvalidInput {
                what: "ClassMix mean",
                detail: format!("{} values for {} classes", values.len(), self.k()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ClassMix::new(vec![]).is_err());
        assert!(ClassMix::new(vec![0.0, 0.0]).is_err());
        assert!(ClassMix::new(vec![1.0, -0.5]).is_err());
        assert!(ClassMix::new(vec![f64::NAN]).is_err());
        assert!(ClassMix::new(vec![0.0, 1.0]).is_ok());
    }

    #[test]
    fn rates_and_totals() {
        let m = ClassMix::new(vec![3.0, 2.0, 1.0]).unwrap();
        assert_eq!(m.k(), 3);
        assert_eq!(m.rate(1), 3.0);
        assert_eq!(m.rate(3), 1.0);
        assert_eq!(m.total_rate(), 6.0);
        // file rate = 1·3 + 2·2 + 3·1 = 10
        assert_eq!(m.file_rate(), 10.0);
    }

    #[test]
    fn user_mean_weights_by_rate() {
        let m = ClassMix::new(vec![3.0, 1.0]).unwrap();
        // (3·10 + 1·20) / 4 = 12.5
        assert!((m.user_mean(&[10.0, 20.0]).unwrap() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn file_mean_weights_by_class_times_rate() {
        let m = ClassMix::new(vec![3.0, 1.0]).unwrap();
        // (1·3·10 + 2·1·20) / (1·3 + 2·1) = 70/5 = 14
        assert!((m.file_mean(&[10.0, 20.0]).unwrap() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn means_agree_for_constant_values() {
        let m = ClassMix::new(vec![1.0, 2.0, 3.0]).unwrap();
        let v = [7.0, 7.0, 7.0];
        assert!((m.user_mean(&v).unwrap() - 7.0).abs() < 1e-12);
        assert!((m.file_mean(&v).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn length_mismatch_rejected() {
        let m = ClassMix::new(vec![1.0, 2.0]).unwrap();
        assert!(m.user_mean(&[1.0]).is_err());
        assert!(m.file_mean(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn from_correlation_model() {
        let cm = CorrelationModel::new(10, 0.3, 2.0).unwrap();
        let sys = ClassMix::system_wide(&cm).unwrap();
        let per = ClassMix::per_torrent(&cm).unwrap();
        assert_eq!(sys.k(), 10);
        assert!((sys.total_rate() - cm.entering_rate()).abs() < 1e-12);
        assert!((per.total_rate() - cm.per_torrent_total_rate()).abs() < 1e-12);
        // System-wide file rate must equal λ₀·K·p.
        assert!((sys.file_rate() - cm.file_request_rate()).abs() < 1e-12);
    }

    #[test]
    fn p_zero_mix_fails_cleanly() {
        let cm = CorrelationModel::new(10, 0.0, 2.0).unwrap();
        assert!(ClassMix::system_wide(&cm).is_err());
        assert!(ClassMix::per_torrent(&cm).is_err());
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn rate_out_of_range_panics() {
        let m = ClassMix::new(vec![1.0]).unwrap();
        let _ = m.rate(2);
    }
}
