//! Poisson arrival processes.
//!
//! The fluid model (and the original Qiu–Srikant analysis it extends)
//! assumes peers arrive according to a Poisson process. [`PoissonProcess`]
//! generates the event times — an iterator of exponentially spaced stamps —
//! for the simulator's arrival stream. Non-stationary scenario traces use
//! [`NonHomogeneousProcess`], whose rate varies with time.
//!
//! Both processes expose their streams as lazy iterators ([`ArrivalTimes`],
//! [`ThinnedArrivalTimes`]) so long traces — a diurnal scenario can span
//! millions of arrivals — never materialize a `Vec`; the eager
//! [`PoissonProcess::times_until`] survives as a thin `collect()` wrapper.

use btfluid_numkit::dist::{Exponential, ThinnedPoisson};
use btfluid_numkit::rng::RngCore;
use btfluid_numkit::NumError;

/// A homogeneous Poisson process with rate `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonProcess {
    gap: Exponential,
}

impl PoissonProcess {
    /// Creates a process with the given event rate.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] unless `rate > 0` and finite.
    pub fn new(rate: f64) -> Result<Self, NumError> {
        Ok(Self {
            gap: Exponential::new(rate)?,
        })
    }

    /// The event rate λ.
    pub fn rate(&self) -> f64 {
        self.gap.rate()
    }

    /// Draws the gap to the next event.
    pub fn next_gap<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.gap.sample(rng)
    }

    /// Lazily streams the event times in `[0, horizon)`.
    ///
    /// The iterator borrows the RNG, so the stream is consumed in place and
    /// memory stays O(1) regardless of trace length.
    pub fn iter_until<'r, R: RngCore + ?Sized>(
        &self,
        rng: &'r mut R,
        horizon: f64,
    ) -> ArrivalTimes<'r, R> {
        ArrivalTimes {
            gap: self.gap,
            t: 0.0,
            horizon,
            rng,
        }
    }

    /// Generates all event times in `[0, horizon)`.
    ///
    /// Thin eager wrapper over [`Self::iter_until`]; prefer the iterator for
    /// long traces.
    pub fn times_until<R: RngCore + ?Sized>(&self, rng: &mut R, horizon: f64) -> Vec<f64> {
        self.iter_until(rng, horizon).collect()
    }

    /// Generates the first `n` event times.
    pub fn first_n<R: RngCore + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        self.iter_until(rng, f64::INFINITY).take(n).collect()
    }
}

/// Lazy stream of homogeneous Poisson event times in `[0, horizon)`.
///
/// Produced by [`PoissonProcess::iter_until`].
#[derive(Debug)]
pub struct ArrivalTimes<'r, R: RngCore + ?Sized> {
    gap: Exponential,
    t: f64,
    horizon: f64,
    rng: &'r mut R,
}

impl<R: RngCore + ?Sized> Iterator for ArrivalTimes<'_, R> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        self.t += self.gap.sample(self.rng);
        (self.t < self.horizon).then_some(self.t)
    }
}

/// A non-homogeneous Poisson process with instantaneous rate `λ(t)`,
/// realized by Lewis–Shedler thinning against a majorizing bound.
///
/// The rate is a closure so callers (the scenario subsystem's `Schedule`)
/// control its representation; correctness requires `0 ≤ λ(t) ≤ bound`.
#[derive(Debug, Clone)]
pub struct NonHomogeneousProcess<F> {
    thinned: ThinnedPoisson<F>,
}

impl<F: Fn(f64) -> f64> NonHomogeneousProcess<F> {
    /// Creates the process.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] unless `bound > 0` and finite.
    pub fn new(rate: F, bound: f64) -> Result<Self, NumError> {
        Ok(Self {
            thinned: ThinnedPoisson::new(rate, bound)?,
        })
    }

    /// The majorizing rate used for candidate generation.
    pub fn bound(&self) -> f64 {
        self.thinned.bound()
    }

    /// Lazily streams the event times in `[0, horizon)`.
    pub fn iter_until<'r, R: RngCore + ?Sized>(
        &self,
        rng: &'r mut R,
        horizon: f64,
    ) -> ThinnedArrivalTimes<'r, F, R>
    where
        F: Clone,
    {
        ThinnedArrivalTimes {
            thinned: self.thinned.clone(),
            t: 0.0,
            horizon,
            rng,
        }
    }
}

/// Lazy stream of non-homogeneous Poisson event times in `[0, horizon)`.
///
/// Produced by [`NonHomogeneousProcess::iter_until`].
#[derive(Debug)]
pub struct ThinnedArrivalTimes<'r, F, R: RngCore + ?Sized> {
    thinned: ThinnedPoisson<F>,
    t: f64,
    horizon: f64,
    rng: &'r mut R,
}

impl<F: Fn(f64) -> f64, R: RngCore + ?Sized> Iterator for ThinnedArrivalTimes<'_, F, R> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let s = self.thinned.next_before(self.t, self.horizon, self.rng)?;
        self.t = s;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_numkit::rng::Xoshiro256StarStar;
    use btfluid_numkit::stats::Welford;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn validation() {
        assert!(PoissonProcess::new(0.0).is_err());
        assert!(PoissonProcess::new(-1.0).is_err());
        assert!(PoissonProcess::new(2.5).is_ok());
    }

    #[test]
    fn event_count_matches_rate() {
        let p = PoissonProcess::new(2.0).unwrap();
        let mut r = rng(1);
        let mut w = Welford::new();
        for _ in 0..2000 {
            w.push(p.times_until(&mut r, 100.0).len() as f64);
        }
        // E[N(100)] = 200, Var = 200.
        assert!((w.mean() - 200.0).abs() < 2.0, "mean = {}", w.mean());
        assert!(
            (w.variance() - 200.0).abs() / 200.0 < 0.15,
            "var = {}",
            w.variance()
        );
    }

    #[test]
    fn times_sorted_and_in_horizon() {
        let p = PoissonProcess::new(5.0).unwrap();
        let mut r = rng(2);
        let ts = p.times_until(&mut r, 50.0);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
        assert!(ts.iter().all(|&t| t > 0.0 && t < 50.0));
    }

    #[test]
    fn first_n_has_n_increasing_times() {
        let p = PoissonProcess::new(1.0).unwrap();
        let mut r = rng(3);
        let ts = p.first_n(&mut r, 100);
        assert_eq!(ts.len(), 100);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn gaps_have_exponential_mean() {
        let p = PoissonProcess::new(0.05).unwrap();
        let mut r = rng(4);
        let mut w = Welford::new();
        for _ in 0..100_000 {
            w.push(p.next_gap(&mut r));
        }
        assert!((w.mean() - 20.0).abs() < 0.3, "mean gap = {}", w.mean());
    }

    #[test]
    fn zero_horizon_yields_no_events() {
        let p = PoissonProcess::new(10.0).unwrap();
        let mut r = rng(5);
        assert!(p.times_until(&mut r, 0.0).is_empty());
    }

    #[test]
    fn iterator_matches_eager_wrapper() {
        let p = PoissonProcess::new(3.0).unwrap();
        let eager = p.times_until(&mut rng(6), 80.0);
        let lazy: Vec<f64> = p.iter_until(&mut rng(6), 80.0).collect();
        assert_eq!(eager, lazy);
    }

    #[test]
    fn iterator_is_fused_at_horizon() {
        let p = PoissonProcess::new(2.0).unwrap();
        let mut r = rng(7);
        let mut it = p.iter_until(&mut r, 5.0);
        while it.next().is_some() {}
        // Once past the horizon the stream stays exhausted.
        assert!(it.next().is_none());
        assert!(it.next().is_none());
    }

    #[test]
    fn nonhomogeneous_count_matches_integral() {
        // λ(t) = 0.4 + 0.4·1[t ≥ 50] over [0, 100): ∫λ = 60.
        let p = NonHomogeneousProcess::new(|t: f64| if t < 50.0 { 0.4 } else { 0.8 }, 0.8).unwrap();
        let mut r = rng(8);
        let mut w = Welford::new();
        for _ in 0..2000 {
            w.push(p.iter_until(&mut r, 100.0).count() as f64);
        }
        assert!((w.mean() - 60.0).abs() < 1.0, "mean = {}", w.mean());
    }

    #[test]
    fn times_until_horizon_is_half_open() {
        // Regression for the horizon-semantics audit: the documented
        // convention is the half-open window [0, horizon) — an event at
        // exactly `horizon` must never be yielded, however high the rate
        // pushes events toward the boundary.
        let p = PoissonProcess::new(500.0).unwrap();
        for seed in 0..20 {
            let mut r = rng(100 + seed);
            let ts: Vec<f64> = p.times_until(&mut r, 1.0);
            assert!(!ts.is_empty());
            assert!(
                ts.iter().all(|&t| t > 0.0 && t < 1.0),
                "seed {seed}: a time escaped (0, 1)"
            );
        }
    }

    #[test]
    fn nonhomogeneous_times_sorted() {
        let p = NonHomogeneousProcess::new(|t: f64| 1.0 + (t / 7.0).cos().abs(), 2.0).unwrap();
        let mut r = rng(9);
        let ts: Vec<f64> = p.iter_until(&mut r, 300.0).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
        assert!(ts.iter().all(|&t| t > 0.0 && t < 300.0));
    }
}
