//! Poisson arrival processes.
//!
//! The fluid model (and the original Qiu–Srikant analysis it extends)
//! assumes peers arrive according to a Poisson process. [`PoissonProcess`]
//! generates the event times — an iterator of exponentially spaced stamps —
//! for the simulator's arrival stream.

use btfluid_numkit::dist::Exponential;
use btfluid_numkit::rng::RngCore;
use btfluid_numkit::NumError;

/// A homogeneous Poisson process with rate `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonProcess {
    gap: Exponential,
}

impl PoissonProcess {
    /// Creates a process with the given event rate.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] unless `rate > 0` and finite.
    pub fn new(rate: f64) -> Result<Self, NumError> {
        Ok(Self {
            gap: Exponential::new(rate)?,
        })
    }

    /// The event rate λ.
    pub fn rate(&self) -> f64 {
        self.gap.rate()
    }

    /// Draws the gap to the next event.
    pub fn next_gap<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.gap.sample(rng)
    }

    /// Generates all event times in `[0, horizon)`.
    pub fn times_until<R: RngCore + ?Sized>(&self, rng: &mut R, horizon: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut t = self.next_gap(rng);
        while t < horizon {
            out.push(t);
            t += self.next_gap(rng);
        }
        out
    }

    /// Generates the first `n` event times.
    pub fn first_n<R: RngCore + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0;
        for _ in 0..n {
            t += self.next_gap(rng);
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_numkit::rng::Xoshiro256StarStar;
    use btfluid_numkit::stats::Welford;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn validation() {
        assert!(PoissonProcess::new(0.0).is_err());
        assert!(PoissonProcess::new(-1.0).is_err());
        assert!(PoissonProcess::new(2.5).is_ok());
    }

    #[test]
    fn event_count_matches_rate() {
        let p = PoissonProcess::new(2.0).unwrap();
        let mut r = rng(1);
        let mut w = Welford::new();
        for _ in 0..2000 {
            w.push(p.times_until(&mut r, 100.0).len() as f64);
        }
        // E[N(100)] = 200, Var = 200.
        assert!((w.mean() - 200.0).abs() < 2.0, "mean = {}", w.mean());
        assert!(
            (w.variance() - 200.0).abs() / 200.0 < 0.15,
            "var = {}",
            w.variance()
        );
    }

    #[test]
    fn times_sorted_and_in_horizon() {
        let p = PoissonProcess::new(5.0).unwrap();
        let mut r = rng(2);
        let ts = p.times_until(&mut r, 50.0);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
        assert!(ts.iter().all(|&t| t > 0.0 && t < 50.0));
    }

    #[test]
    fn first_n_has_n_increasing_times() {
        let p = PoissonProcess::new(1.0).unwrap();
        let mut r = rng(3);
        let ts = p.first_n(&mut r, 100);
        assert_eq!(ts.len(), 100);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn gaps_have_exponential_mean() {
        let p = PoissonProcess::new(0.05).unwrap();
        let mut r = rng(4);
        let mut w = Welford::new();
        for _ in 0..100_000 {
            w.push(p.next_gap(&mut r));
        }
        assert!((w.mean() - 20.0).abs() < 0.3, "mean gap = {}", w.mean());
    }

    #[test]
    fn zero_horizon_yields_no_events() {
        let p = PoissonProcess::new(10.0).unwrap();
        let mut r = rng(5);
        assert!(p.times_until(&mut r, 0.0).is_empty());
    }
}
