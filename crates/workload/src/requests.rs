//! Sampling concrete request sets for the simulator.
//!
//! The fluid model only needs class *rates*; the discrete-event simulator
//! needs actual users with actual file sets. [`RequestSampler`] draws, for
//! each visiting user, the set of files requested: every file independently
//! with probability `p`, exactly as the correlation model prescribes.

use crate::correlation::CorrelationModel;
use btfluid_numkit::rng::RngCore;

/// Identifier of a file (equivalently: of its torrent or subtorrent),
/// `0..K`.
pub type FileId = u16;

/// Draws request sets according to a [`CorrelationModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestSampler {
    model: CorrelationModel,
}

impl RequestSampler {
    /// Wraps a correlation model.
    pub fn new(model: CorrelationModel) -> Self {
        Self { model }
    }

    /// The underlying model.
    pub fn model(&self) -> &CorrelationModel {
        &self.model
    }

    /// Samples the set of files one visiting user requests. May be empty
    /// (the user leaves without entering any torrent).
    ///
    /// Each of the `K` files is included independently with probability `p`,
    /// so `|result| ~ Binomial(K, p)` and the membership of any particular
    /// file is `Bernoulli(p)` — both marginals the paper's rate formulas
    /// rely on.
    pub fn sample_visitor<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<FileId> {
        self.sample_visitor_with_p(rng, self.model.p())
    }

    /// Samples a visitor's request set under an explicit correlation `p`,
    /// overriding the model's stationary value.
    ///
    /// Non-stationary scenarios evaluate `p(t)` at the arrival instant and
    /// pass it here; `p` is clamped to `[0, 1]` so schedule round-off cannot
    /// corrupt the Bernoulli draws.
    pub fn sample_visitor_with_p<R: RngCore + ?Sized>(&self, rng: &mut R, p: f64) -> Vec<FileId> {
        let p = p.clamp(0.0, 1.0);
        let mut files = Vec::new();
        for f in 0..self.model.k() as FileId {
            if rng.next_f64() < p {
                files.push(f);
            }
        }
        files
    }

    /// Samples request sets until one is non-empty, returning it together
    /// with the number of visitors consumed (for rate-thinning accounting).
    ///
    /// With `p = 0` this would never terminate, so it returns `None` in that
    /// case; callers should have rejected `p = 0` workloads earlier.
    pub fn sample_entrant<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<(Vec<FileId>, u64)> {
        if self.model.p() == 0.0 {
            return None;
        }
        let mut visitors = 0u64;
        loop {
            visitors += 1;
            let files = self.sample_visitor(rng);
            if !files.is_empty() {
                return Some((files, visitors));
            }
            // p > 0 ⇒ geometric number of retries; terminates almost surely.
        }
    }
}

/// Draws `i` distinct files uniformly at random from `0..k`, returned
/// sorted ascending.
///
/// A partial Fisher–Yates shuffle over the identity pool: exactly `i`
/// calls of `next_below(k − idx)` in ascending `idx`. The DES warm start
/// inlined this sequence before the hybrid engine needed it too, so the
/// draw order is load-bearing — changing it breaks bit-reproducibility of
/// every warm-start and handoff stream.
pub fn uniform_subset<R: RngCore + ?Sized>(rng: &mut R, k: usize, i: usize) -> Vec<FileId> {
    debug_assert!(i <= k);
    let mut pool: Vec<FileId> = (0..k as FileId).collect();
    for idx in 0..i {
        let j = idx + rng.next_below((k - idx) as u64) as usize;
        pool.swap(idx, j);
    }
    let mut files: Vec<FileId> = pool[..i].to_vec();
    files.sort_unstable();
    files
}

/// Draws a uniformly random permutation of `0..n` (a download order over
/// `n` slots).
///
/// Fisher–Yates from the top: `n − 1` calls of `next_below(idx + 1)` for
/// `idx = n−1 .. 1`. Same bit-reproducibility caveat as
/// [`uniform_subset`] — the DES arrival path consumes this exact
/// sequence.
pub fn random_order<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for idx in (1..n).rev() {
        let j = rng.next_below(idx as u64 + 1) as usize;
        order.swap(idx, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use btfluid_numkit::rng::Xoshiro256StarStar;
    use btfluid_numkit::stats::Welford;

    fn sampler(p: f64) -> RequestSampler {
        RequestSampler::new(CorrelationModel::new(10, p, 1.0).unwrap())
    }

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn visitor_set_size_is_binomial() {
        let s = sampler(0.3);
        let mut r = rng(1);
        let mut w = Welford::new();
        for _ in 0..100_000 {
            w.push(s.sample_visitor(&mut r).len() as f64);
        }
        // mean K·p = 3, var K·p·(1−p) = 2.1
        assert!((w.mean() - 3.0).abs() < 0.05, "mean = {}", w.mean());
        assert!((w.variance() - 2.1).abs() < 0.1, "var = {}", w.variance());
    }

    #[test]
    fn each_file_equally_likely() {
        let s = sampler(0.4);
        let mut r = rng(2);
        let mut counts = [0usize; 10];
        let n = 50_000;
        for _ in 0..n {
            for f in s.sample_visitor(&mut r) {
                counts[f as usize] += 1;
            }
        }
        for (f, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!((freq - 0.4).abs() < 0.02, "file {f} freq {freq}");
        }
    }

    #[test]
    fn files_are_sorted_and_unique() {
        let s = sampler(0.8);
        let mut r = rng(3);
        for _ in 0..1000 {
            let files = s.sample_visitor(&mut r);
            assert!(files.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn p_one_requests_everything() {
        let s = sampler(1.0);
        let mut r = rng(4);
        let files = s.sample_visitor(&mut r);
        assert_eq!(files.len(), 10);
    }

    #[test]
    fn p_zero_requests_nothing() {
        let s = sampler(0.0);
        let mut r = rng(5);
        assert!(s.sample_visitor(&mut r).is_empty());
        assert!(s.sample_entrant(&mut r).is_none());
    }

    #[test]
    fn entrant_is_never_empty() {
        let s = sampler(0.05);
        let mut r = rng(6);
        for _ in 0..500 {
            let (files, visitors) = s.sample_entrant(&mut r).unwrap();
            assert!(!files.is_empty());
            assert!(visitors >= 1);
        }
    }

    #[test]
    fn entrant_visitor_count_matches_entering_fraction() {
        // E[visitors per entrant] = 1 / (1 − (1−p)^K)
        let s = sampler(0.1);
        let mut r = rng(7);
        let mut w = Welford::new();
        for _ in 0..20_000 {
            let (_, visitors) = s.sample_entrant(&mut r).unwrap();
            w.push(visitors as f64);
        }
        let expect = 1.0 / (1.0 - 0.9f64.powi(10));
        assert!(
            (w.mean() - expect).abs() < 0.02,
            "mean visitors = {}, expect {expect}",
            w.mean()
        );
    }

    #[test]
    fn entrant_class_distribution_conditional_binomial() {
        // P[i | i ≥ 1] = C(K,i) p^i (1−p)^{K−i} / (1 − (1−p)^K)
        let s = sampler(0.2);
        let mut r = rng(8);
        let n = 100_000;
        let mut counts = [0usize; 11];
        for _ in 0..n {
            let (files, _) = s.sample_entrant(&mut r).unwrap();
            counts[files.len()] += 1;
        }
        let norm = 1.0 - 0.8f64.powi(10);
        for i in 1..=10u32 {
            let expect = btfluid_numkit::special::binomial_pmf(10, i, 0.2).unwrap() / norm;
            let freq = counts[i as usize] as f64 / n as f64;
            assert!(
                (freq - expect).abs() < 0.01,
                "class {i}: freq {freq}, expect {expect}"
            );
        }
    }

    #[test]
    fn uniform_subset_is_sorted_distinct_and_uniform() {
        let mut r = rng(11);
        let mut hits = [0usize; 10];
        for _ in 0..40_000 {
            let files = uniform_subset(&mut r, 10, 3);
            assert_eq!(files.len(), 3);
            assert!(files.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            for &f in &files {
                hits[f as usize] += 1;
            }
        }
        // Each file appears with marginal probability i/k = 0.3.
        for (f, &n) in hits.iter().enumerate() {
            let freq = n as f64 / 40_000.0;
            assert!((freq - 0.3).abs() < 0.01, "file {f}: freq {freq}");
        }
    }

    #[test]
    fn random_order_is_permutation_and_uniform_first_slot() {
        let mut r = rng(12);
        let mut first = [0usize; 5];
        for _ in 0..50_000 {
            let order = random_order(&mut r, 5);
            let mut seen = [false; 5];
            for &s in &order {
                assert!(!seen[s], "duplicate slot in order");
                seen[s] = true;
            }
            first[order[0]] += 1;
        }
        for (s, &n) in first.iter().enumerate() {
            let freq = n as f64 / 50_000.0;
            assert!((freq - 0.2).abs() < 0.01, "slot {s} first: freq {freq}");
        }
    }

    #[test]
    fn empty_draws_are_well_defined() {
        let mut r = rng(13);
        assert!(uniform_subset(&mut r, 10, 0).is_empty());
        assert!(random_order(&mut r, 0).is_empty());
        assert_eq!(random_order(&mut r, 1), vec![0]);
    }
}
