//! # btfluid-workload
//!
//! The workload substrate for the `btfluid` workspace: everything about
//! *who* requests *what* and *when*, as defined in Section 4.1 of
//! "Analyzing Multiple File Downloading in BitTorrent" (Tian/Wu/Ng, ICPP
//! 2006).
//!
//! ## The file-correlation model
//!
//! A server–torrent system serves `K` files. Users visit the index at rate
//! `λ₀`; each visiting user requests every one of the `K` files
//! independently with probability `p` (the *file correlation*). Hence users
//! who request exactly `i` files arrive at rate
//!
//! ```text
//! λᵢ = λ₀ · C(K, i) · pⁱ (1 − p)^{K − i}
//! ```
//!
//! and, restricted to one particular torrent `tⱼ` (the file must be among
//! the `i` chosen), class-`i` peers enter `tⱼ` at rate
//!
//! ```text
//! λⱼⁱ = λ₀ · C(K−1, i−1) · pⁱ (1 − p)^{K − i}
//! ```
//!
//! Users with `i = 0` never enter the system. [`CorrelationModel`]
//! implements both rate families; [`requests`] samples concrete request
//! sets; [`arrivals`] generates Poisson arrival traces for the simulator.

#![forbid(unsafe_code)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it also
// rejects NaN, which is exactly what parameter validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod classes;
pub mod correlation;
pub mod popularity;
pub mod requests;
pub mod trace;

pub use arrivals::{ArrivalTimes, NonHomogeneousProcess, PoissonProcess, ThinnedArrivalTimes};
pub use classes::ClassMix;
pub use correlation::CorrelationModel;
pub use popularity::NonUniformModel;
pub use requests::{random_order, uniform_subset, RequestSampler};
pub use trace::{fit_model, Arrival, ArrivalTrace, TRACE_FORMAT, TRACE_VERSION};

/// Convenience error alias (all fallible APIs in this crate return the
/// shared numeric error type).
pub type WorkloadError = btfluid_numkit::NumError;
