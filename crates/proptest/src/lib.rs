//! Workspace-local stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! This build environment cannot reach a crate registry, so the real
//! proptest cannot be fetched. This crate implements the subset of the API
//! the workspace's property tests use:
//!
//! * the `proptest!` macro with `#![proptest_config(..)]` and
//!   `pattern in strategy` arguments;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`;
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, implemented for
//!   numeric ranges, `any::<T>()`, tuples (up to 8), `Vec<Strategy>`,
//!   and [`Just`];
//! * `prop::collection::{vec, btree_set}` with the usual size-range
//!   conversions.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name, so runs are reproducible),
//! and failing cases are **not shrunk** — the failure report prints the
//! case number instead of a minimal input. Swap the workspace dependency
//! back to the real proptest when the environment can resolve crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, FlatMap, Just, Map, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// The proptest-compatible prelude: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace matching `proptest::prelude::prop` (e.g.
    /// `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice among alternative strategies producing the same value
/// type: `prop_oneof![stratA, stratB, ...]`. Unlike real proptest the
/// shim does not support `weight => strategy` arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($arm) as _,)+
        ])
    };
}

/// Declares property tests. Each function runs its body against
/// `config.cases` randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])+
        fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(
                &__config,
                stringify!($name),
                ($($arg_strat,)+),
                |__case| -> ::core::result::Result<(), $crate::TestCaseError> {
                    let ($($arg_pat,)+) = __case;
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_cases!(($cfg) $($rest)*);
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current test case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Rejects (skips) the current test case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}
