//! The case runner: deterministic RNG, configuration, and the pass /
//! fail / reject protocol used by the `proptest!` macro.

use crate::strategy::Strategy;

/// Configuration block accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected (assumed-away) cases before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's precondition (`prop_assume!`) did not hold; the case is
    /// skipped without counting against the test.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

/// Deterministic splitmix64/xorshift generator used to draw test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        // splitmix64 scramble so nearby seeds diverge immediately.
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction: fine for test-input generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a over the test name: stable seeds across runs and platforms.
fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property test: draws inputs from `strategy` until `cases`
/// successes, panicking on the first failure. Called by `proptest!`.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::new(seed_from_name(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let value = strategy.new_value(&mut rng);
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest `{name}`: too many rejected cases \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest `{name}` failed at case {passed} \
                 (after {rejected} rejects): {msg}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(1);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn runner_counts_successes() {
        let cfg = ProptestConfig::with_cases(10);
        let mut seen = std::cell::Cell::new(0u32);
        run(&cfg, "counts", 0u64..100, |_| {
            seen.set(seen.get() + 1);
            Ok(())
        });
        assert_eq!(seen.get_mut(), &mut 10);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn runner_panics_on_failure() {
        let cfg = ProptestConfig::with_cases(10);
        run(&cfg, "fails", 0u64..100, |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn runner_skips_rejects() {
        let cfg = ProptestConfig::with_cases(5);
        run(&cfg, "rejects", 0u64..100, |x| {
            if x % 2 == 0 {
                Err(TestCaseError::reject("odd only"))
            } else {
                Ok(())
            }
        });
    }
}
