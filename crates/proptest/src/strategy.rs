//! Input-generation strategies: ranges, `any`, tuples, `Just`, and the
//! `prop_map` / `prop_flat_map` combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then uses it to pick a second-stage strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        let first = self.source.new_value(rng);
        (self.f)(first).new_value(rng)
    }
}

/// Strategy that always yields a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy over a type's full value domain; built by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generates arbitrary values of `T` (`any::<bool>()`, `any::<u64>()`, …).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// With probability 1/16 an inclusive float range yields an exact endpoint,
// mirroring real proptest's bias toward boundary values.
const ENDPOINT_BIAS: u64 = 16;

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        if rng.below(ENDPOINT_BIAS) == 0 {
            return self.start;
        }
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        match rng.below(ENDPOINT_BIAS) {
            0 => lo,
            1 => hi,
            _ => lo + rng.next_f64() * (hi - lo),
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (S0.0);
    (S0.0, S1.1);
    (S0.0, S1.1, S2.2);
    (S0.0, S1.1, S2.2, S3.3);
    (S0.0, S1.1, S2.2, S3.3, S4.4);
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.new_value(rng)).collect()
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// Uniform choice among boxed alternative strategies; built by the
/// [`prop_oneof!`](crate::prop_oneof) macro.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].new_value(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let x = (0.5f64..2.5).new_value(&mut rng);
            assert!((0.5..2.5).contains(&x));
            let y = (1u32..=7).new_value(&mut rng);
            assert!((1..=7).contains(&y));
            let z = (3usize..9).new_value(&mut rng);
            assert!((3..9).contains(&z));
        }
    }

    #[test]
    fn inclusive_float_hits_endpoints() {
        let mut rng = TestRng::new(11);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2000 {
            let x = (0.0f64..=1.0).new_value(&mut rng);
            hit_lo |= x == 0.0;
            hit_hi |= x == 1.0;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::new(5);
        let s = (1u32..10).prop_map(|x| x * 2).prop_flat_map(|x| 0u32..x);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!(v < 18);
        }
    }

    #[test]
    fn vec_of_strategies_draws_each() {
        let mut rng = TestRng::new(9);
        let strategies: Vec<_> = (0..4)
            .map(|i| (i as u64 * 10)..(i as u64 * 10 + 5))
            .collect();
        let v = strategies.new_value(&mut rng);
        assert_eq!(v.len(), 4);
        for (i, x) in v.iter().enumerate() {
            let lo = i as u64 * 10;
            assert!((lo..lo + 5).contains(x));
        }
    }

    #[test]
    fn just_clones_its_value() {
        let mut rng = TestRng::new(1);
        assert_eq!(Just(vec![1, 2]).new_value(&mut rng), vec![1, 2]);
    }

    #[test]
    fn tuples_draw_componentwise() {
        let mut rng = TestRng::new(2);
        let ((a, b, c), flag) =
            ((0u8..4, 10i32..20, 0.0f64..1.0), any::<bool>()).new_value(&mut rng);
        assert!(a < 4);
        assert!((10..20).contains(&b));
        assert!((0.0..1.0).contains(&c));
        let _ = flag;
    }
}
