//! Collection strategies (`prop::collection::{vec, btree_set}`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo {
            return self.lo;
        }
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec`s of values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `BTreeSet`s of values drawn from `element`. If the element
/// domain is smaller than the requested size, the set saturates at however
/// many distinct values were found.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Duplicates don't grow the set, so bound the number of draws.
        let max_attempts = target * 64 + 64;
        for _ in 0..max_attempts {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.new_value(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = TestRng::new(21);
        let s = vec(0u32..10, 4..120);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((4..120).contains(&v.len()));
        }
        // Exact size via plain usize.
        let fixed = vec(-1.0f64..1.0, 16usize);
        assert_eq!(fixed.new_value(&mut rng).len(), 16);
    }

    #[test]
    fn btree_set_yields_distinct_in_range() {
        let mut rng = TestRng::new(22);
        let s = btree_set(0u16..6, 1..=6);
        for _ in 0..200 {
            let set = s.new_value(&mut rng);
            assert!(!set.is_empty() && set.len() <= 6);
            assert!(set.iter().all(|&x| x < 6));
        }
    }

    #[test]
    fn btree_set_saturates_small_domains() {
        let mut rng = TestRng::new(23);
        // Domain of 2 but sizes up to 5: must not loop forever.
        let s = btree_set(0u8..2, 5usize);
        let set = s.new_value(&mut rng);
        assert!(set.len() <= 2);
    }
}
