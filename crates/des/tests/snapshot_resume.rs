//! The checkpoint contract: run → snapshot → (serialize → deserialize) →
//! restore → run is bit-identical to an uninterrupted run.
//!
//! A property test cuts a run at a random event index, round-trips the
//! snapshot through the on-disk byte format, resumes, and compares every
//! field of the two outcomes by bits — across all four schemes plus
//! CMFSD+Adapt, in both `exact_rates` modes, with trajectory recording on,
//! plus two aggregate-scheduling variants (snapshot format v3): the
//! bit-identity contract holds *within* each scheduling mode.

use btfluid_core::adapt::AdaptConfig;
use btfluid_des::config::{AdaptSetup, DesConfig, OrderPolicy, SchemeKind};
use btfluid_des::engine::Simulation;
use btfluid_des::observer::SimOutcome;
use btfluid_des::snapshot::{Snapshot, SnapshotError};
use btfluid_des::DesError;
use proptest::prelude::*;

/// The seven engine configurations the contract must hold for (5 and 6
/// run under aggregate scheduling, which excludes `exact_rates`).
fn variant_cfg(variant: usize, exact: bool, seed: u64) -> DesConfig {
    let scheme = match variant {
        0 | 5 => SchemeKind::Mtsd,
        1 => SchemeKind::Mtcd,
        2 => SchemeKind::Mfcd,
        _ => SchemeKind::Cmfsd { rho: 0.3 },
    };
    let mut cfg = DesConfig::paper_small(scheme, 0.5, seed).unwrap();
    cfg.horizon = 600.0;
    cfg.warmup = 150.0;
    cfg.drain = 600.0;
    cfg.record_every = Some(25.0);
    cfg.aggregate = variant >= 5;
    cfg.exact_rates = exact && !cfg.aggregate;
    if variant == 4 {
        cfg.adapt = Some(AdaptSetup {
            controller: AdaptConfig::default_for_mu(cfg.params.mu()),
            epoch: 40.0,
            cheater_fraction: 0.2,
        });
        cfg.order_policy = OrderPolicy::RarestFirst;
        cfg.origin_seeds = 1;
    }
    cfg
}

/// Asserts two outcomes are identical down to every float's bit pattern.
fn assert_bit_identical(a: &SimOutcome, b: &SimOutcome) {
    assert_eq!(a.events, b.events);
    assert_eq!(a.arrivals, b.arrivals);
    assert_eq!(a.censored, b.censored);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.id, rb.id);
        assert_eq!(ra.class, rb.class);
        assert_eq!(ra.arrival.to_bits(), rb.arrival.to_bits());
        assert_eq!(ra.departure.to_bits(), rb.departure.to_bits());
        assert_eq!(ra.download_span.to_bits(), rb.download_span.to_bits());
        assert_eq!(ra.online_fluid.to_bits(), rb.online_fluid.to_bits());
        assert_eq!(ra.final_rho.to_bits(), rb.final_rho.to_bits());
        assert_eq!(ra.cheater, rb.cheater);
    }
    assert_eq!(a.aborts.len(), b.aborts.len());
    for (aa, ab) in a.aborts.iter().zip(&b.aborts) {
        assert_eq!(aa.id, ab.id);
        assert_eq!(aa.time.to_bits(), ab.time.to_bits());
        assert_eq!(aa.done, ab.done);
    }
    for (ca, cb) in a.classes.iter().zip(&b.classes) {
        assert_eq!(ca.download.raw_parts(), cb.download.raw_parts());
        assert_eq!(ca.online.raw_parts(), cb.online.raw_parts());
        assert_eq!(ca.rho.raw_parts(), cb.rho.raw_parts());
    }
    assert_eq!(a.population.window.to_bits(), b.population.window.to_bits());
    for (xa, xb) in a
        .population
        .downloader_peer_integral
        .iter()
        .zip(&b.population.downloader_peer_integral)
    {
        assert_eq!(xa.to_bits(), xb.to_bits());
    }
    for (xa, xb) in a
        .population
        .seed_pair_integral
        .iter()
        .zip(&b.population.seed_pair_integral)
    {
        assert_eq!(xa.to_bits(), xb.to_bits());
    }
    match (&a.trajectory, &b.trajectory) {
        (Some(ta), Some(tb)) => {
            assert_eq!(ta.times().len(), tb.times().len());
            for (xa, xb) in ta.times().iter().zip(tb.times()) {
                assert_eq!(xa.to_bits(), xb.to_bits());
            }
            for (xa, xb) in ta.raw_values().iter().zip(tb.raw_values()) {
                assert_eq!(xa.to_bits(), xb.to_bits());
            }
        }
        (None, None) => {}
        _ => panic!("one run recorded a trajectory, the other did not"),
    }
}

/// Runs to completion straight through.
fn run_straight(cfg: DesConfig) -> SimOutcome {
    Simulation::new(cfg).unwrap().run()
}

/// Runs `cut` steps, snapshots, round-trips the snapshot through bytes,
/// restores into a fresh engine, and finishes the run there.
fn run_interrupted(cfg: DesConfig, cut: usize) -> SimOutcome {
    let mut sim = Simulation::new(cfg.clone()).unwrap();
    let mut alive = true;
    for _ in 0..cut {
        if !sim.step().unwrap() {
            alive = false;
            break;
        }
    }
    let snap = sim.snapshot();
    drop(sim);
    let snap = Snapshot::from_bytes(&snap.to_bytes()).expect("codec roundtrip");
    let mut resumed = Simulation::restore(cfg, &snap).expect("restore");
    if alive {
        while resumed.step().unwrap() {}
    }
    resumed.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn resume_is_bit_identical(
        variant in 0usize..7,
        exact in 0usize..2,
        cut in 0usize..700,
        seed in 1u64..500,
    ) {
        let cfg = variant_cfg(variant, exact == 1, seed);
        let straight = run_straight(cfg.clone());
        let resumed = run_interrupted(cfg, cut);
        assert_bit_identical(&straight, &resumed);
    }
}

#[test]
fn resume_from_disk_file() {
    let cfg = variant_cfg(3, false, 11);
    let straight = run_straight(cfg.clone());

    let mut sim = Simulation::new(cfg.clone()).unwrap();
    for _ in 0..200 {
        assert!(sim.step().unwrap());
    }
    let dir = std::env::temp_dir().join(format!("btfs-resume-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mid.snap");
    sim.snapshot().write_file(&path).unwrap();
    drop(sim);

    let snap = Snapshot::read_file(&path).unwrap();
    let mut resumed = Simulation::restore(cfg, &snap).unwrap();
    while resumed.step().unwrap() {}
    assert_bit_identical(&straight, &resumed.finish());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_before_first_step_resumes() {
    let cfg = variant_cfg(0, false, 5);
    let straight = run_straight(cfg.clone());
    let resumed = run_interrupted(cfg, 0);
    assert_bit_identical(&straight, &resumed);
}

#[test]
fn checked_mode_resume_holds() {
    let mut cfg = variant_cfg(4, false, 3);
    cfg.checked = true;
    cfg.horizon = 300.0;
    cfg.warmup = 100.0;
    cfg.drain = 300.0;
    let straight = Simulation::new(cfg.clone()).unwrap().try_run().unwrap();
    let resumed = run_interrupted(cfg, 150);
    assert_bit_identical(&straight, &resumed);
}

#[test]
fn aggregate_snapshot_encodes_as_v3_and_resumes_from_disk() {
    // The aggregate analog of a SIGKILL mid-run: snapshot to disk, drop the
    // engine, read the file back cold, and finish in a fresh process image.
    let cfg = variant_cfg(6, false, 17);
    let straight = run_straight(cfg.clone());

    let mut sim = Simulation::new(cfg.clone()).unwrap();
    for _ in 0..250 {
        assert!(sim.step().unwrap());
    }
    let bytes = sim.snapshot().to_bytes();
    assert_eq!(
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        3,
        "aggregate snapshots carry format version 3"
    );
    let dir = std::env::temp_dir().join(format!("btfs-agg-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mid.snap");
    Snapshot::write_file_bytes(&path, &bytes).unwrap();
    drop(sim);

    let snap = Snapshot::read_file(&path).unwrap();
    let mut resumed = Simulation::restore(cfg, &snap).unwrap();
    while resumed.step().unwrap() {}
    assert_bit_identical(&straight, &resumed.finish());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn per_peer_snapshot_still_encodes_as_v2() {
    let cfg = variant_cfg(0, false, 17);
    let mut sim = Simulation::new(cfg).unwrap();
    for _ in 0..50 {
        assert!(sim.step().unwrap());
    }
    let bytes = sim.snapshot().to_bytes();
    assert_eq!(
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        2,
        "per-peer snapshots keep format version 2"
    );
}

#[test]
fn aggregate_checked_mode_resume_holds() {
    let mut cfg = variant_cfg(5, false, 23);
    cfg.checked = true;
    cfg.horizon = 300.0;
    cfg.warmup = 100.0;
    cfg.drain = 300.0;
    let straight = Simulation::new(cfg.clone()).unwrap().try_run().unwrap();
    let resumed = run_interrupted(cfg, 150);
    assert_bit_identical(&straight, &resumed);
}

#[test]
fn aggregate_snapshot_refused_for_per_peer_config() {
    let cfg = variant_cfg(5, false, 29);
    let mut sim = Simulation::new(cfg.clone()).unwrap();
    for _ in 0..50 {
        assert!(sim.step().unwrap());
    }
    let snap = sim.snapshot();
    let mut other = cfg;
    other.aggregate = false;
    // The aggregate flag folds into the config digest, so offering the
    // per-peer twin of the config must be refused outright.
    match Simulation::restore(other, &snap).map(|_| ()) {
        Err(DesError::Snapshot(SnapshotError::ConfigMismatch)) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

#[test]
fn mismatched_config_is_refused() {
    let cfg = variant_cfg(0, false, 9);
    let mut sim = Simulation::new(cfg.clone()).unwrap();
    for _ in 0..50 {
        assert!(sim.step().unwrap());
    }
    let snap = sim.snapshot();
    let mut other = cfg;
    other.seed += 1;
    match Simulation::restore(other, &snap).map(|_| ()) {
        Err(DesError::Snapshot(SnapshotError::ConfigMismatch)) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

#[test]
fn hookless_snapshot_refuses_a_hook() {
    struct Flat;
    impl btfluid_des::ScenarioHook for Flat {
        fn arrival_rate(&self, _t: f64) -> f64 {
            0.25
        }
        fn arrival_rate_bound(&self) -> f64 {
            0.25
        }
        fn correlation(&self, _t: f64) -> f64 {
            0.5
        }
        fn abort_rate(&self, _t: f64) -> f64 {
            0.0
        }
        fn abort_rate_bound(&self) -> f64 {
            0.0
        }
        fn origin_seeds(&self, _t: f64) -> usize {
            0
        }
        fn tracker_up(&self, _t: f64) -> bool {
            true
        }
        fn next_boundary(&self, _t: f64) -> Option<f64> {
            None
        }
        fn hook_state(&self) -> Vec<u8> {
            b"flat".to_vec()
        }
    }
    let cfg = variant_cfg(0, false, 9);
    let mut sim = Simulation::new(cfg.clone()).unwrap();
    for _ in 0..50 {
        assert!(sim.step().unwrap());
    }
    let snap = sim.snapshot();
    match Simulation::restore_with_hook(cfg, &snap, Box::new(Flat)).map(|_| ()) {
        Err(DesError::Snapshot(SnapshotError::HookMismatch)) => {}
        other => panic!("expected HookMismatch, got {other:?}"),
    }
}
