//! Property tests for the bandwidth allocator: conservation and
//! non-negativity over randomized peer populations.

use btfluid_core::FluidParams;
use btfluid_des::config::SchemeKind;
use btfluid_des::peer::{Peer, Phase};
use btfluid_des::rate::compute_rates;
use proptest::prelude::*;

const K: usize = 6;

/// Strategy: a random CMFSD peer in a consistent state.
fn cmfsd_peer(id: u64) -> impl Strategy<Value = Peer> {
    (
        prop::collection::btree_set(0u16..K as u16, 1..=K),
        0.0f64..=1.0,
        any::<bool>(),
        0usize..K,
    )
        .prop_map(move |(files, rho, seeding_all, progress)| {
            let files: Vec<u16> = files.into_iter().collect();
            let n = files.len();
            let order: Vec<usize> = (0..n).collect();
            let mut p = Peer::new(id, 0.0, files, order, rho);
            if seeding_all {
                for s in 0..n {
                    p.remaining[s] = 0.0;
                    p.completed_at[s] = Some(1.0);
                }
                p.cursor = n;
                p.phase = Phase::SeedingAll;
            } else {
                let done = progress.min(n - 1);
                for s in 0..done {
                    let slot = p.order[s];
                    p.remaining[slot] = 0.0;
                    p.completed_at[slot] = Some(1.0);
                }
                p.cursor = done;
            }
            p
        })
}

fn population() -> impl Strategy<Value = Vec<Peer>> {
    prop::collection::vec(any::<u64>(), 1..20).prop_flat_map(|ids| {
        ids.into_iter()
            .enumerate()
            .map(|(i, _)| cmfsd_peer(i as u64))
            .collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cmfsd_conserves_bandwidth(peers in population(), origin in 0usize..3) {
        let params = FluidParams::paper();
        let scheme = SchemeKind::Cmfsd { rho: 0.5 }; // per-peer ρ is on the peer
        let snap = compute_rates(&peers, scheme, &params, K, origin);

        // Non-negativity and vs_rate ≤ rate.
        for d in &snap.downloads {
            prop_assert!(d.rate >= 0.0);
            prop_assert!(d.vs_rate >= -1e-15 && d.vs_rate <= d.rate + 1e-12);
        }

        // Conservation: total received = η·Σ(TFT uploads) + consumed
        // donations + consumed real-seed/origin bandwidth. We can't see
        // "consumed real" directly, so check the weaker sound bound:
        // total received ≤ η·ΣTFT + all donations + all real capacity.
        let eta = params.eta();
        let mu = params.mu();
        let mut tft = 0.0;
        let mut real_capacity = origin as f64 * mu;
        for p in &peers {
            match p.phase {
                Phase::Downloading => {
                    let u = if p.done_count() >= 1 { p.rho * mu } else { mu };
                    tft += u;
                }
                Phase::SeedingAll => real_capacity += mu,
                _ => {}
            }
        }
        let donations: f64 = snap.donations.iter().sum();
        let received: f64 = snap.downloads.iter().map(|d| d.rate).sum();
        prop_assert!(
            received <= eta * tft + donations + real_capacity + 1e-9,
            "received {received} exceeds capacity {}",
            eta * tft + donations + real_capacity
        );

        // Per-download TFT floor: every downloader gets at least η·(own
        // upload).
        for d in &snap.downloads {
            let p = &peers[d.peer_idx];
            let own = if p.done_count() >= 1 { p.rho * mu } else { mu };
            prop_assert!(d.rate >= eta * own - 1e-12);
        }

        // Donations only come from peers with a finished file still
        // downloading.
        for (idx, &don) in snap.donations.iter().enumerate() {
            if don > 0.0 {
                let p = &peers[idx];
                prop_assert_eq!(p.phase, Phase::Downloading);
                prop_assert!(p.done_count() >= 1);
                prop_assert!((don - (1.0 - p.rho) * mu).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mtcd_rates_respect_class_split(peers in population()) {
        // Reinterpreting the same peers under MTCD: each unfinished slot
        // downloads at ≥ η·μ/class.
        let params = FluidParams::paper();
        let snap = compute_rates(&peers, SchemeKind::Mtcd, &params, K, 0);
        for d in &snap.downloads {
            let p = &peers[d.peer_idx];
            let floor = params.eta() * params.mu() / p.class() as f64;
            prop_assert!(d.rate >= floor - 1e-12);
        }
    }
}
