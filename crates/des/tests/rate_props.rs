//! Property tests for the bandwidth allocator: conservation and
//! non-negativity over randomized peer populations.

use btfluid_core::FluidParams;
use btfluid_des::config::SchemeKind;
use btfluid_des::peer::{Peer, Phase};
use btfluid_des::rate::compute_rates;
use btfluid_des::rate_cache::RateCache;
use proptest::prelude::*;

const K: usize = 6;

const ALL_SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Mtsd,
    SchemeKind::Mtcd,
    SchemeKind::Mfcd,
    SchemeKind::Cmfsd { rho: 0.5 },
];

/// The TFT upload a peer dedicates to the file of download `(peer, slot)`
/// under `scheme` — mirrors `rate::view` / `RateCache::fill_membership`.
fn member_u(scheme: SchemeKind, peer: &Peer, mu: f64) -> f64 {
    match scheme {
        SchemeKind::Mtsd => mu,
        SchemeKind::Mtcd | SchemeKind::Mfcd => mu / peer.class() as f64,
        SchemeKind::Cmfsd { .. } => {
            if peer.done_count() >= 1 {
                peer.rho * mu
            } else {
                mu
            }
        }
    }
}

/// Builds a cache over `peers` by incremental registration, refreshing
/// after every step so the dirty tracking (not a single full build) is
/// what produces the final state.
fn build_incrementally(
    peers: &mut [Peer],
    scheme: SchemeKind,
    params: &FluidParams,
    origin: usize,
) -> RateCache {
    let mut cache = RateCache::new(K, scheme, params, origin);
    cache.grow(peers.len());
    let mut changed = Vec::new();
    for idx in 0..peers.len() {
        cache.register(idx, peers);
        cache.refresh(peers, 0.0, false, &mut changed);
        changed.clear();
    }
    cache
}

/// Asserts the cache's snapshot equals a from-scratch `compute_rates`
/// bit for bit.
fn assert_matches_full(
    cache: &RateCache,
    peers: &[Peer],
    scheme: SchemeKind,
    params: &FluidParams,
    origin: usize,
) -> Result<(), TestCaseError> {
    let snap = cache.snapshot(peers);
    let full = compute_rates(peers, scheme, params, K, origin);
    prop_assert_eq!(snap.downloads.len(), full.downloads.len());
    for (a, b) in snap.downloads.iter().zip(&full.downloads) {
        prop_assert_eq!(a.peer_idx, b.peer_idx);
        prop_assert_eq!(a.slot, b.slot);
        prop_assert_eq!(
            a.rate.to_bits(),
            b.rate.to_bits(),
            "rate mismatch for peer {} slot {}: {} vs {}",
            a.peer_idx,
            a.slot,
            a.rate,
            b.rate
        );
        prop_assert_eq!(
            a.vs_rate.to_bits(),
            b.vs_rate.to_bits(),
            "vs_rate mismatch for peer {} slot {}: {} vs {}",
            a.peer_idx,
            a.slot,
            a.vs_rate,
            b.vs_rate
        );
    }
    prop_assert_eq!(snap.donations.len(), full.donations.len());
    for (i, (a, b)) in snap.donations.iter().zip(&full.donations).enumerate() {
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "donation mismatch for peer {i}: {} vs {}",
            a,
            b
        );
    }
    Ok(())
}

/// Strategy: a random CMFSD peer in a consistent state.
fn cmfsd_peer(id: u64) -> impl Strategy<Value = Peer> {
    (
        prop::collection::btree_set(0u16..K as u16, 1..=K),
        0.0f64..=1.0,
        any::<bool>(),
        0usize..K,
    )
        .prop_map(move |(files, rho, seeding_all, progress)| {
            let files: Vec<u16> = files.into_iter().collect();
            let n = files.len();
            let order: Vec<usize> = (0..n).collect();
            let mut p = Peer::new(id, 0.0, files, order, rho);
            if seeding_all {
                for s in 0..n {
                    p.remaining[s] = 0.0;
                    p.completed_at[s] = Some(1.0);
                }
                p.cursor = n;
                p.phase = Phase::SeedingAll;
            } else {
                let done = progress.min(n - 1);
                for s in 0..done {
                    let slot = p.order[s];
                    p.remaining[slot] = 0.0;
                    p.completed_at[slot] = Some(1.0);
                }
                p.cursor = done;
            }
            p
        })
}

fn population() -> impl Strategy<Value = Vec<Peer>> {
    prop::collection::vec(any::<u64>(), 1..20).prop_flat_map(|ids| {
        ids.into_iter()
            .enumerate()
            .map(|(i, _)| cmfsd_peer(i as u64))
            .collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cmfsd_conserves_bandwidth(peers in population(), origin in 0usize..3) {
        let params = FluidParams::paper();
        let scheme = SchemeKind::Cmfsd { rho: 0.5 }; // per-peer ρ is on the peer
        let snap = compute_rates(&peers, scheme, &params, K, origin);

        // Non-negativity and vs_rate ≤ rate.
        for d in &snap.downloads {
            prop_assert!(d.rate >= 0.0);
            prop_assert!(d.vs_rate >= -1e-15 && d.vs_rate <= d.rate + 1e-12);
        }

        // Conservation: total received = η·Σ(TFT uploads) + consumed
        // donations + consumed real-seed/origin bandwidth. We can't see
        // "consumed real" directly, so check the weaker sound bound:
        // total received ≤ η·ΣTFT + all donations + all real capacity.
        let eta = params.eta();
        let mu = params.mu();
        let mut tft = 0.0;
        let mut real_capacity = origin as f64 * mu;
        for p in &peers {
            match p.phase {
                Phase::Downloading => {
                    let u = if p.done_count() >= 1 { p.rho * mu } else { mu };
                    tft += u;
                }
                Phase::SeedingAll => real_capacity += mu,
                _ => {}
            }
        }
        let donations: f64 = snap.donations.iter().sum();
        let received: f64 = snap.downloads.iter().map(|d| d.rate).sum();
        prop_assert!(
            received <= eta * tft + donations + real_capacity + 1e-9,
            "received {received} exceeds capacity {}",
            eta * tft + donations + real_capacity
        );

        // Per-download TFT floor: every downloader gets at least η·(own
        // upload).
        for d in &snap.downloads {
            let p = &peers[d.peer_idx];
            let own = if p.done_count() >= 1 { p.rho * mu } else { mu };
            prop_assert!(d.rate >= eta * own - 1e-12);
        }

        // Donations only come from peers with a finished file still
        // downloading.
        for (idx, &don) in snap.donations.iter().enumerate() {
            if don > 0.0 {
                let p = &peers[idx];
                prop_assert_eq!(p.phase, Phase::Downloading);
                prop_assert!(p.done_count() >= 1);
                prop_assert!((don - (1.0 - p.rho) * mu).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cache_matches_full_recompute_every_scheme(peers in population(), origin in 0usize..3) {
        // The incremental cache, built peer by peer with a refresh between
        // registrations, must agree bit for bit with a from-scratch
        // `compute_rates` under every scheme.
        let params = FluidParams::paper();
        for scheme in ALL_SCHEMES {
            let mut peers = peers.clone();
            let cache = build_incrementally(&mut peers, scheme, &params, origin);
            assert_matches_full(&cache, &peers, scheme, &params, origin)?;
        }
    }

    #[test]
    fn cache_tracks_mutation_cycles(peers in population(), origin in 0usize..3) {
        // Deregister → mutate (complete the current file) → re-register →
        // refresh must keep the cache in lockstep with a full recompute at
        // every step.
        let params = FluidParams::paper();
        let scheme = SchemeKind::Cmfsd { rho: 0.5 };
        let mut peers = peers.clone();
        let mut cache = build_incrementally(&mut peers, scheme, &params, origin);
        let mut changed = Vec::new();
        for idx in 0..peers.len() {
            if peers[idx].phase != Phase::Downloading {
                continue;
            }
            cache.deregister(idx, &peers);
            let slot = peers[idx].current_slot();
            peers[idx].remaining[slot] = 0.0;
            peers[idx].completed_at[slot] = Some(2.0);
            peers[idx].cursor += 1;
            if peers[idx].cursor >= peers[idx].class() {
                peers[idx].phase = Phase::SeedingAll;
            }
            cache.register(idx, &peers);
            cache.refresh(&mut peers, 0.0, false, &mut changed);
            changed.clear();
            assert_matches_full(&cache, &peers, scheme, &params, origin)?;
        }
    }

    #[test]
    fn cache_conserves_bandwidth_per_subtorrent(peers in population(), origin in 0usize..3) {
        // On every subtorrent with at least one downloader, the shares of
        // the pools sum to 1, so Σ rates = η·Σu + pool_real + pool_virtual.
        let params = FluidParams::paper();
        let eta = params.eta();
        let mu = params.mu();
        for scheme in ALL_SCHEMES {
            let mut peers = peers.clone();
            let cache = build_incrementally(&mut peers, scheme, &params, origin);
            let snap = cache.snapshot(&peers);
            let mut sum_rate = [0.0f64; K];
            let mut sum_u = [0.0f64; K];
            for d in &snap.downloads {
                let p = &peers[d.peer_idx];
                let f = p.files[d.slot] as usize;
                sum_rate[f] += d.rate;
                sum_u[f] += member_u(scheme, p, mu);
            }
            for f in 0..K {
                if cache.weight()[f] <= 0.0 {
                    continue;
                }
                let expect = eta * sum_u[f] + cache.pool_real()[f] + cache.pool_virtual()[f];
                let tol = 1e-9 * expect.abs().max(1.0);
                prop_assert!(
                    (sum_rate[f] - expect).abs() <= tol,
                    "{}: subtorrent {f}: Σrates {} vs η·Σu + pools {}",
                    scheme.name(),
                    sum_rate[f],
                    expect
                );
            }
        }
    }

    #[test]
    fn mtcd_rates_respect_class_split(peers in population()) {
        // Reinterpreting the same peers under MTCD: each unfinished slot
        // downloads at ≥ η·μ/class.
        let params = FluidParams::paper();
        let snap = compute_rates(&peers, SchemeKind::Mtcd, &params, K, 0);
        for d in &snap.downloads {
            let p = &peers[d.peer_idx];
            let floor = params.eta() * params.mu() / p.class() as f64;
            prop_assert!(d.rate >= floor - 1e-12);
        }
    }
}
