//! Bit-exact equivalence between the incremental rate engine and the
//! forced full-recompute ("exact") verification mode.
//!
//! The engine's incremental `RateCache` and the `exact_rates` mode run the
//! same code path; the only difference is that exact mode recomputes every
//! aggregate and every rate at every event. Because recomputation re-sums
//! ordered member lists, an aggregate that did not change reproduces its
//! bits exactly — so the two modes must produce *identical* trajectories:
//! the same events in the same order, the same per-user records bit for
//! bit, and the same population integrals. This suite asserts that over
//! all four schemes, with and without Adapt, rarest-first ordering, origin
//! seeds, and warm start.

use btfluid_core::adapt::AdaptConfig;
use btfluid_des::{AdaptSetup, DesConfig, OrderPolicy, SchemeKind, SimOutcome, Simulation};

/// Runs one configuration in both modes and asserts bitwise identity of
/// everything `SimOutcome` carries.
fn assert_equivalent(mut cfg: DesConfig, label: &str) {
    cfg.exact_rates = true;
    let exact = Simulation::new(cfg.clone()).expect(label).run();
    cfg.exact_rates = false;
    let incr = Simulation::new(cfg).expect(label).run();
    assert_outcomes_identical(&exact, &incr, label);
}

fn assert_outcomes_identical(a: &SimOutcome, b: &SimOutcome, label: &str) {
    assert_eq!(a.events, b.events, "{label}: event counts differ");
    assert_eq!(a.arrivals, b.arrivals, "{label}: arrival counts differ");
    assert_eq!(
        a.records.len(),
        b.records.len(),
        "{label}: record counts differ"
    );
    for (i, (ra, rb)) in a.records.iter().zip(&b.records).enumerate() {
        assert_eq!(ra.id, rb.id, "{label}: record {i} id");
        assert_eq!(ra.class, rb.class, "{label}: record {i} class");
        assert_eq!(
            ra.arrival.to_bits(),
            rb.arrival.to_bits(),
            "{label}: record {i} arrival"
        );
        assert_eq!(
            ra.departure.to_bits(),
            rb.departure.to_bits(),
            "{label}: record {i} departure"
        );
        assert_eq!(
            ra.download_span.to_bits(),
            rb.download_span.to_bits(),
            "{label}: record {i} download_span"
        );
        assert_eq!(
            ra.online_fluid.to_bits(),
            rb.online_fluid.to_bits(),
            "{label}: record {i} online_fluid"
        );
        assert_eq!(
            ra.final_rho.to_bits(),
            rb.final_rho.to_bits(),
            "{label}: record {i} final_rho"
        );
        assert_eq!(ra.cheater, rb.cheater, "{label}: record {i} cheater");
    }
    let pa = &a.population;
    let pb = &b.population;
    assert_eq!(
        pa.window.to_bits(),
        pb.window.to_bits(),
        "{label}: population window"
    );
    for (name, ia, ib) in [
        (
            "downloader peers",
            &pa.downloader_peer_integral,
            &pb.downloader_peer_integral,
        ),
        (
            "download pairs",
            &pa.download_pair_integral,
            &pb.download_pair_integral,
        ),
        ("seed pairs", &pa.seed_pair_integral, &pb.seed_pair_integral),
    ] {
        for (c, (xa, xb)) in ia.iter().zip(ib).enumerate() {
            assert_eq!(
                xa.to_bits(),
                xb.to_bits(),
                "{label}: {name} integral, class {}",
                c + 1
            );
        }
    }
    assert_eq!(a.censored, b.censored, "{label}: censored counts differ");
    assert_eq!(a.inflight, b.inflight, "{label}: inflight diagnostics");
    match (&a.trajectory, &b.trajectory) {
        (None, None) => {}
        (Some(sa), Some(sb)) => {
            assert_eq!(sa.len(), sb.len(), "{label}: trajectory lengths");
            assert_eq!(sa.times(), sb.times(), "{label}: trajectory times");
            for ch in 0..2 {
                assert_eq!(
                    sa.channel(ch),
                    sb.channel(ch),
                    "{label}: trajectory channel {ch}"
                );
            }
        }
        _ => panic!("{label}: trajectory presence differs"),
    }
}

/// A shortened paper_small so the full matrix stays fast: the population
/// still reaches a few dozen concurrent peers.
fn short(scheme: SchemeKind, p: f64, seed: u64) -> DesConfig {
    let mut cfg = DesConfig::paper_small(scheme, p, seed).unwrap();
    cfg.horizon = 1200.0;
    cfg.warmup = 300.0;
    cfg.drain = 1200.0;
    cfg
}

#[test]
fn mtsd_is_bit_identical() {
    assert_equivalent(short(SchemeKind::Mtsd, 0.5, 101), "MTSD");
}

#[test]
fn mtcd_is_bit_identical() {
    assert_equivalent(short(SchemeKind::Mtcd, 0.5, 102), "MTCD");
}

#[test]
fn mfcd_is_bit_identical() {
    assert_equivalent(short(SchemeKind::Mfcd, 0.5, 103), "MFCD");
}

#[test]
fn cmfsd_is_bit_identical() {
    assert_equivalent(short(SchemeKind::Cmfsd { rho: 0.3 }, 0.6, 104), "CMFSD");
}

#[test]
fn cmfsd_with_adapt_is_bit_identical() {
    let mut cfg = short(SchemeKind::Cmfsd { rho: 0.5 }, 0.6, 105);
    cfg.adapt = Some(AdaptSetup {
        controller: AdaptConfig::default_for_mu(0.02),
        epoch: 10.0,
        cheater_fraction: 0.2,
    });
    assert_equivalent(cfg, "CMFSD+Adapt");
}

#[test]
fn cmfsd_rarest_first_with_origin_is_bit_identical() {
    let mut cfg = short(SchemeKind::Cmfsd { rho: 0.1 }, 0.4, 106);
    cfg.order_policy = OrderPolicy::RarestFirst;
    cfg.origin_seeds = 2;
    assert_equivalent(cfg, "CMFSD rarest-first + origin");
}

#[test]
fn cmfsd_warm_start_is_bit_identical() {
    let mut cfg = short(SchemeKind::Cmfsd { rho: 0.4 }, 0.5, 107);
    cfg.warm_start = true;
    assert_equivalent(cfg, "CMFSD warm start");
}

#[test]
fn mtsd_rarest_first_with_trajectory_is_bit_identical() {
    let mut cfg = short(SchemeKind::Mtsd, 0.4, 108);
    cfg.order_policy = OrderPolicy::RarestFirst;
    cfg.origin_seeds = 1;
    cfg.record_every = Some(25.0);
    assert_equivalent(cfg, "MTSD rarest-first + trajectory");
}
