//! The telemetry contracts the rest of the workspace leans on:
//!
//! * **Zero perturbation** — a run with a probe attached is bit-identical
//!   to the same seed without one, in both `exact_rates` modes, across
//!   every scheme (probes only borrow engine state).
//! * **Resumable traces** — counters and the sampler phase live inside
//!   the snapshot, so a run cut at an arbitrary event and resumed emits
//!   exactly the trace tail the uninterrupted run would have.
//! * **Window accounting** — the `[warmup, horizon]` population window
//!   is partitioned exactly once even when an event lands on the warmup
//!   boundary itself.

use btfluid_core::adapt::AdaptConfig;
use btfluid_des::config::{AdaptSetup, DesConfig, OrderPolicy, SchemeKind};
use btfluid_des::engine::Simulation;
use btfluid_des::observer::SimOutcome;
use btfluid_des::snapshot::Snapshot;
use btfluid_des::{
    shared_recorder, Counters, FanoutProbe, FlightKind, FlightRecord, FlightRecorder, MemoryProbe,
    OwnedSample, Probe, RecorderProbe, Sample,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Forwards every observation into a shared [`MemoryProbe`] so the test
/// can read the telemetry back after the engine consumed the probe box.
struct Fwd(Arc<Mutex<MemoryProbe>>);

impl Probe for Fwd {
    fn sample_every(&self) -> f64 {
        self.0.lock().unwrap().sample_every()
    }
    fn on_sample(&mut self, sample: &Sample<'_>) {
        self.0.lock().unwrap().on_sample(sample);
    }
    fn on_span(&mut self, name: &str, micros: u64) {
        self.0.lock().unwrap().on_span(name, micros);
    }
    fn on_finish(&mut self, t: f64, counters: &Counters) {
        self.0.lock().unwrap().on_finish(t, counters);
    }
}

fn memory_probe(cadence: f64) -> (Arc<Mutex<MemoryProbe>>, Box<dyn Probe>) {
    let shared = Arc::new(Mutex::new(MemoryProbe::new(cadence)));
    let probe = Box::new(Fwd(Arc::clone(&shared)));
    (shared, probe)
}

/// Rate-maintenance mode axis: 0 = incremental, 1 = exact, 2 = aggregate.
fn apply_mode(cfg: &mut DesConfig, mode: usize) {
    cfg.exact_rates = mode == 1;
    cfg.aggregate = mode == 2;
}

/// The five engine configurations the contracts must hold for (kept
/// shorter than the snapshot-resume suite: every case runs twice).
fn variant_cfg(variant: usize, exact: bool, seed: u64) -> DesConfig {
    let scheme = match variant {
        0 => SchemeKind::Mtsd,
        1 => SchemeKind::Mtcd,
        2 => SchemeKind::Mfcd,
        _ => SchemeKind::Cmfsd { rho: 0.3 },
    };
    let mut cfg = DesConfig::paper_small(scheme, 0.5, seed).unwrap();
    cfg.horizon = 300.0;
    cfg.warmup = 100.0;
    cfg.drain = 300.0;
    cfg.record_every = Some(25.0);
    cfg.exact_rates = exact;
    if variant == 4 {
        cfg.adapt = Some(AdaptSetup {
            controller: AdaptConfig::default_for_mu(cfg.params.mu()),
            epoch: 40.0,
            cheater_fraction: 0.2,
        });
        cfg.order_policy = OrderPolicy::RarestFirst;
        cfg.origin_seeds = 1;
    }
    cfg
}

/// Asserts two outcomes are identical down to every float's bit pattern.
fn assert_bit_identical(a: &SimOutcome, b: &SimOutcome) {
    assert_eq!(a.events, b.events);
    assert_eq!(a.arrivals, b.arrivals);
    assert_eq!(a.censored, b.censored);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.id, rb.id);
        assert_eq!(ra.class, rb.class);
        assert_eq!(ra.arrival.to_bits(), rb.arrival.to_bits());
        assert_eq!(ra.departure.to_bits(), rb.departure.to_bits());
        assert_eq!(ra.download_span.to_bits(), rb.download_span.to_bits());
        assert_eq!(ra.online_fluid.to_bits(), rb.online_fluid.to_bits());
        assert_eq!(ra.final_rho.to_bits(), rb.final_rho.to_bits());
        assert_eq!(ra.cheater, rb.cheater);
    }
    assert_eq!(a.aborts.len(), b.aborts.len());
    assert_eq!(a.population.window.to_bits(), b.population.window.to_bits());
    for (xa, xb) in a
        .population
        .downloader_peer_integral
        .iter()
        .zip(&b.population.downloader_peer_integral)
    {
        assert_eq!(xa.to_bits(), xb.to_bits());
    }
    match (&a.trajectory, &b.trajectory) {
        (Some(ta), Some(tb)) => {
            assert_eq!(ta.times().len(), tb.times().len());
            for (xa, xb) in ta.raw_values().iter().zip(tb.raw_values()) {
                assert_eq!(xa.to_bits(), xb.to_bits());
            }
        }
        (None, None) => {}
        _ => panic!("one run recorded a trajectory, the other did not"),
    }
}

/// Deterministic view of a sample: everything except the counters that
/// legitimately differ across a resume. The `snapshot_*` trio carries
/// wall-clock microseconds; `stale_discards` and `heap_peak` describe
/// the queue's physical history, and restore rebuilds the queue compact
/// from peer state — the stale entries an uninterrupted run would later
/// pop and discard never exist on the resumed path.
fn deterministic_view(s: &OwnedSample) -> OwnedSample {
    let mut s = s.clone();
    s.counters.stale_discards = 0;
    s.counters.heap_peak = 0;
    s.counters.snapshots_taken = 0;
    s.counters.snapshot_bytes = 0;
    s.counters.snapshot_micros = 0;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Attaching a sampling probe — with the flight recorder armed — never
    /// changes the run, in the incremental, exact, and aggregate rate
    /// modes alike.
    #[test]
    fn telemetry_never_perturbs_the_run(
        variant in 0usize..5,
        mode in 0usize..3,
        seed in 1u64..500,
    ) {
        // Aggregate mode rejects Adapt by construction (variant 4).
        prop_assume!(!(mode == 2 && variant == 4));
        let mut cfg = variant_cfg(variant, false, seed);
        apply_mode(&mut cfg, mode);
        let bare = Simulation::new(cfg.clone()).unwrap().run();
        let (shared, probe) = memory_probe(7.5);
        let flight = shared_recorder(64);
        let probed = Simulation::new(cfg)
            .unwrap()
            .with_probe(Box::new(FanoutProbe::new(vec![
                probe,
                Box::new(RecorderProbe::new(Arc::clone(&flight))),
            ])))
            .run();
        assert_bit_identical(&bare, &probed);

        let mem = shared.lock().unwrap();
        prop_assert!(!mem.samples.is_empty(), "sampler never fired");
        let c = mem.finished.expect("on_finish not called");
        prop_assert!(c.events_popped > 0);
        // Samples carry a monotone clock and monotone counters.
        for w in mem.samples.windows(2) {
            prop_assert!(w[1].t >= w[0].t);
            prop_assert!(w[1].events >= w[0].events);
            prop_assert!(w[1].counters.events_popped >= w[0].counters.events_popped);
        }
        // The armed recorder observed the run: every step emits a pop
        // record, aggregate mode also resamples, and the ring's clock and
        // event counter are nondecreasing.
        let ring = flight.lock().unwrap();
        prop_assert!(ring.total() > 0, "flight recorder never fired");
        let records: Vec<&FlightRecord> = ring.iter().collect();
        prop_assert!(records.iter().any(|r| r.kind == FlightKind::EventPop));
        if mode == 2 {
            prop_assert!(
                records.iter().any(|r| r.kind == FlightKind::AggResample),
                "aggregate run recorded no member resamples"
            );
        }
        for w in records.windows(2) {
            prop_assert!(w[1].events >= w[0].events);
        }
    }

    /// A capacity-C ring holds exactly the last `min(C, total)` records of
    /// the stream, oldest first, and accounts for every drop.
    #[test]
    fn flight_ring_keeps_exactly_the_last_capacity_records(
        capacity in 1usize..48,
        n in 0usize..150,
    ) {
        let mut ring = FlightRecorder::new(capacity);
        let mut stream = Vec::with_capacity(n);
        for i in 0..n {
            let rec = FlightRecord {
                t: i as f64,
                events: i as u64,
                kind: FlightKind::EventPop,
                a: i as u64 % 7,
                b: i as u64 % 3,
            };
            ring.record(rec);
            stream.push(rec);
        }
        prop_assert_eq!(ring.total(), n as u64);
        prop_assert_eq!(ring.len(), n.min(capacity));
        let kept: Vec<FlightRecord> = ring.iter().copied().collect();
        let expect = &stream[n - n.min(capacity)..];
        prop_assert_eq!(kept.len(), expect.len());
        for (got, want) in kept.iter().zip(expect) {
            prop_assert_eq!(got.events, want.events);
            prop_assert_eq!(got.t.to_bits(), want.t.to_bits());
        }
        // The dump round-trips the same window: one meta line plus one
        // line per retained record.
        let dump = ring.dump_string(None);
        prop_assert_eq!(dump.lines().count(), 1 + ring.len());
    }
}

/// Counters and sampler phase round-trip through the snapshot byte
/// format, so a cut-and-resumed run emits the same trace tail (on every
/// deterministic field) as the uninterrupted run, and the head + tail
/// stitch back into exactly the full series.
#[test]
fn resumed_run_emits_the_same_trace_tail() {
    // The Adapt variant exercises rho/delta in the samples too.
    let cfg = variant_cfg(4, false, 11);
    let (full, probe) = memory_probe(5.0);
    let full_outcome = Simulation::new(cfg.clone())
        .unwrap()
        .with_probe(probe)
        .run();

    let (head, probe) = memory_probe(5.0);
    let mut sim = Simulation::new(cfg.clone()).unwrap().with_probe(probe);
    for _ in 0..300 {
        assert!(sim.step().unwrap(), "run too short for the cut point");
    }
    let counters_at_cut = sim.counters();
    let snap = Snapshot::from_bytes(&sim.snapshot().to_bytes()).expect("codec roundtrip");
    drop(sim);

    let (tail, probe) = memory_probe(5.0);
    let mut resumed = Simulation::restore(cfg, &snap)
        .expect("restore")
        .with_probe(probe);
    // The counters survived the byte round trip exactly.
    assert_eq!(resumed.counters(), counters_at_cut);
    while resumed.step().unwrap() {}
    let resumed_outcome = resumed.finish();
    assert_bit_identical(&full_outcome, &resumed_outcome);

    let full = full.lock().unwrap();
    let head = head.lock().unwrap();
    let tail = tail.lock().unwrap();
    let stitched: Vec<OwnedSample> = head
        .samples
        .iter()
        .chain(tail.samples.iter())
        .map(deterministic_view)
        .collect();
    let straight: Vec<OwnedSample> = full.samples.iter().map(deterministic_view).collect();
    assert_eq!(
        stitched.len(),
        straight.len(),
        "resume re-fired or skipped a cadence point"
    );
    for (i, (a, b)) in straight.iter().zip(&stitched).enumerate() {
        assert_eq!(a, b, "sample {i} diverged after resume");
    }
    // Both paths flush identical final counters on the deterministic
    // subset (see `deterministic_view` for why the queue-path and
    // snapshot counters are exempt).
    let scrub = |c: Counters| Counters {
        stale_discards: 0,
        heap_peak: 0,
        snapshots_taken: 0,
        snapshot_bytes: 0,
        snapshot_micros: 0,
        ..c
    };
    assert_eq!(
        full.finished.map(scrub),
        tail.finished.map(scrub),
        "final counters diverged after resume"
    );
}

/// An Adapt epoch scheduled exactly on the warmup boundary (25 · 4 = 100
/// is exact in binary) must not double-count the boundary instant: the
/// measured window is exactly `horizon - warmup`.
#[test]
fn population_window_boundary_exact() {
    let mut cfg = variant_cfg(4, false, 7);
    cfg.warmup = 100.0;
    cfg.horizon = 300.0;
    cfg.drain = 300.0;
    cfg.adapt.as_mut().unwrap().epoch = 25.0;
    let outcome = Simulation::new(cfg).unwrap().run();
    let expect = 300.0 - 100.0;
    let window = outcome.population.window;
    assert!(
        (window - expect).abs() < 1e-6,
        "window {window} != {expect} (boundary slice lost or double-counted)"
    );
    assert!(
        window <= expect + 1e-9,
        "window {window} exceeds the stationary span — an interval was counted twice"
    );
}
