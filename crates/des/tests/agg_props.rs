//! Property tests for the aggregate (class-group) completion cache:
//! group totals against the per-peer allocator, exact member enumeration
//! across the slab's SoA layout, and the from-scratch audit under
//! join/leave/seed-transition mutation cycles.

use btfluid_core::FluidParams;
use btfluid_des::config::SchemeKind;
use btfluid_des::peer::{Peer, Phase};
use btfluid_des::rate::compute_rates;
use btfluid_des::AggCache;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const K: usize = 6;
/// Aggregate mode requires a homogeneous ρ (Adapt is rejected), so every
/// generated peer carries the scheme's ρ.
const RHO: f64 = 0.5;

const ALL_SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Mtsd,
    SchemeKind::Mtcd,
    SchemeKind::Mfcd,
    SchemeKind::Cmfsd { rho: RHO },
];

/// Strategy: a random peer in a consistent state (some prefix of its
/// request set finished, or a full real seed).
fn rand_peer(id: u64) -> impl Strategy<Value = Peer> {
    (
        prop::collection::btree_set(0u16..K as u16, 1..=K),
        any::<bool>(),
        0usize..K,
    )
        .prop_map(move |(files, seeding_all, progress)| {
            let files: Vec<u16> = files.into_iter().collect();
            let n = files.len();
            let order: Vec<usize> = (0..n).collect();
            let mut p = Peer::new(id, 0.0, files, order, RHO);
            if seeding_all {
                for s in 0..n {
                    p.remaining[s] = 0.0;
                    p.completed_at[s] = Some(1.0);
                }
                p.cursor = n;
                p.phase = Phase::SeedingAll;
            } else {
                let done = progress.min(n - 1);
                for s in 0..done {
                    let slot = p.order[s];
                    p.remaining[slot] = 0.0;
                    p.completed_at[slot] = Some(1.0);
                }
                p.cursor = done;
            }
            p
        })
}

fn population() -> impl Strategy<Value = Vec<Peer>> {
    prop::collection::vec(any::<u64>(), 1..20).prop_flat_map(|ids| {
        ids.into_iter()
            .enumerate()
            .map(|(i, _)| rand_peer(i as u64))
            .collect::<Vec<_>>()
    })
}

/// Builds the cache by incremental registration with a refresh between
/// steps, so the dirty tracking (not one full build) produces the state.
fn build_incrementally(
    peers: &[Peer],
    scheme: SchemeKind,
    params: &FluidParams,
    origin: usize,
) -> AggCache {
    let mut a = AggCache::new(K, scheme, params, origin);
    a.grow(peers.len());
    let mut changed = Vec::new();
    for idx in 0..peers.len() {
        a.register(idx, peers);
        a.refresh(0.0, false, &mut changed);
        changed.clear();
    }
    a
}

/// Independent reimplementation of the membership rules: which
/// `(peer, slot)` pairs belong to each `(file, class, band)` group.
#[allow(clippy::type_complexity)]
fn expected_members(
    peers: &[Peer],
    scheme: SchemeKind,
) -> BTreeMap<(usize, usize, u8), BTreeSet<(u32, u32)>> {
    let mut m: BTreeMap<(usize, usize, u8), BTreeSet<(u32, u32)>> = BTreeMap::new();
    for (idx, p) in peers.iter().enumerate() {
        let class = p.class();
        match scheme {
            SchemeKind::Mtsd => {
                if p.phase == Phase::Downloading {
                    let slot = p.current_slot();
                    m.entry((p.files[slot] as usize, class, 0))
                        .or_default()
                        .insert((idx as u32, slot as u32));
                }
            }
            SchemeKind::Mtcd | SchemeKind::Mfcd => {
                if p.phase != Phase::Departed {
                    for slot in 0..class {
                        if !p.finished(slot) {
                            m.entry((p.files[slot] as usize, class, 0))
                                .or_default()
                                .insert((idx as u32, slot as u32));
                        }
                    }
                }
            }
            SchemeKind::Cmfsd { .. } => {
                if p.phase == Phase::Downloading {
                    let slot = p.current_slot();
                    let band = u8::from(p.done_count() >= 1);
                    m.entry((p.files[slot] as usize, class, band))
                        .or_default()
                        .insert((idx as u32, slot as u32));
                }
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn group_rate_is_sum_of_member_rates(peers in population(), origin in 0usize..3) {
        // The class-total service rate of every group must equal the sum
        // of its members' per-peer rates from the reference allocator.
        // Summation orders differ (n·w/W·P vs. Σ w/W·P), so the agreement
        // is numeric, not bitwise.
        let params = FluidParams::paper();
        for scheme in ALL_SCHEMES {
            let a = build_incrementally(&peers, scheme, &params, origin);
            let full = compute_rates(&peers, scheme, &params, K, origin);
            let mut sums = vec![0.0f64; a.n_groups()];
            for d in &full.downloads {
                let p = &peers[d.peer_idx];
                let band = match scheme {
                    SchemeKind::Cmfsd { .. } => u8::from(p.done_count() >= 1),
                    _ => 0,
                };
                let g = a.gid(p.files[d.slot] as usize, p.class(), band);
                sums[g as usize] += d.rate;
            }
            for g in 0..a.n_groups() as u32 {
                let expect = sums[g as usize];
                let got = a.group_rate(g);
                let tol = 1e-9 * expect.abs().max(1.0);
                prop_assert!(
                    (got - expect).abs() <= tol,
                    "{}: group {g}: class total {got} vs Σ member rates {expect}",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn sampling_enumerates_every_live_member_exactly_once(
        peers in population(),
        origin in 0usize..3,
    ) {
        // Uniform member sampling indexes 0..group_len; that range must
        // enumerate exactly the live members — no duplicates, no free-list
        // slots, nothing missing — for every group across the SoA layout.
        let params = FluidParams::paper();
        for scheme in ALL_SCHEMES {
            let a = build_incrementally(&peers, scheme, &params, origin);
            let expected = expected_members(&peers, scheme);
            for g in 0..a.n_groups() as u32 {
                let key = (
                    a.group_file(g),
                    a.group_class(g),
                    a.group_band(g),
                );
                let want = expected.get(&key).cloned().unwrap_or_default();
                let got: BTreeSet<(u32, u32)> =
                    (0..a.group_len(g)).map(|i| a.group_member(g, i)).collect();
                prop_assert_eq!(
                    got.len(),
                    a.group_len(g),
                    "{}: group {g} enumerates duplicates",
                    scheme.name()
                );
                prop_assert_eq!(
                    &got,
                    &want,
                    "{}: group {g} members diverge from the registration rules",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn audit_holds_under_join_leave_and_seed_transitions(
        peers in population(),
        origin in 0usize..3,
    ) {
        // Deregister → mutate (complete the current file / depart / join)
        // → re-register → refresh must keep every weight, pool, integer
        // aggregate, and group rate bitwise equal to a from-scratch
        // rebuild at every step.
        let params = FluidParams::paper();
        for scheme in [SchemeKind::Mtcd, SchemeKind::Cmfsd { rho: RHO }] {
            let mut peers = peers.clone();
            let mut a = build_incrementally(&peers, scheme, &params, origin);
            let mut changed = Vec::new();
            if let Err(d) = a.audit(&peers) {
                prop_assert!(false, "{}: initial audit: {d}", scheme.name());
            }
            for idx in 0..peers.len() {
                match peers[idx].phase {
                    Phase::Downloading => {
                        // Seed transition: finish the current file.
                        a.deregister(idx, &peers);
                        let slot = peers[idx].current_slot();
                        peers[idx].remaining[slot] = 0.0;
                        peers[idx].completed_at[slot] = Some(2.0);
                        peers[idx].cursor += 1;
                        if peers[idx].cursor >= peers[idx].class() {
                            peers[idx].phase = Phase::SeedingAll;
                        }
                        a.register(idx, &peers);
                    }
                    Phase::SeedingAll => {
                        // Leave: the seed departs for good.
                        a.deregister(idx, &peers);
                        peers[idx].phase = Phase::Departed;
                    }
                    _ => continue,
                }
                a.refresh(0.0, false, &mut changed);
                changed.clear();
                if let Err(d) = a.audit(&peers) {
                    prop_assert!(false, "{}: audit after mutating {idx}: {d}", scheme.name());
                }
            }
            // Join: two fresh arrivals extend the slab.
            for extra in 0..2u64 {
                let files: Vec<u16> = (0..=(extra as u16 % K as u16)).collect();
                let n = files.len();
                let p = Peer::new(1000 + extra, 3.0, files, (0..n).collect(), RHO);
                peers.push(p);
                let idx = peers.len() - 1;
                a.grow(peers.len());
                a.register(idx, &peers);
                a.refresh(0.0, false, &mut changed);
                changed.clear();
                if let Err(d) = a.audit(&peers) {
                    prop_assert!(false, "{}: audit after join {idx}: {d}", scheme.name());
                }
            }
        }
    }
}
