//! Measurement: per-user records, per-class statistics, population
//! time-averages.

use btfluid_numkit::stats::Welford;
use btfluid_numkit::NumError;

/// What the simulator records about one departed user.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserRecord {
    /// User id.
    pub id: u64,
    /// Class (files requested).
    pub class: usize,
    /// Arrival time.
    pub arrival: f64,
    /// Departure time.
    pub departure: f64,
    /// Wall-clock time spent with at least one active download.
    pub download_span: f64,
    /// The fluid model's notion of online time for this user (see crate
    /// docs: wall-clock for sequential schemes and MFCD; per-virtual-peer
    /// mean for MTCD).
    pub online_fluid: f64,
    /// Final individual ρ (CMFSD; 1.0 elsewhere).
    pub final_rho: f64,
    /// Whether the peer was a cheater.
    pub cheater: bool,
}

/// Per-class aggregation of user records.
#[derive(Debug, Clone, Default)]
pub struct ClassStats {
    /// Download-span accumulator.
    pub download: Welford,
    /// Fluid-online accumulator.
    pub online: Welford,
    /// Final-ρ accumulator.
    pub rho: Welford,
}

impl ClassStats {
    fn push(&mut self, r: &UserRecord) {
        self.download.push(r.download_span);
        self.online.push(r.online_fluid);
        self.rho.push(r.final_rho);
    }

    /// Number of users recorded.
    pub fn count(&self) -> u64 {
        self.download.count()
    }
}

/// Time-averaged populations per class, measured over the stationary
/// window `[warmup, horizon]`.
#[derive(Debug, Clone, Default)]
pub struct PopulationStats {
    /// ∫ (number of users in a downloading phase, per class) dt.
    pub downloader_peer_integral: Vec<f64>,
    /// ∫ (number of active (peer,file) downloads, per class) dt.
    pub download_pair_integral: Vec<f64>,
    /// ∫ (number of (peer,file) seeding pairs, per class) dt.
    pub seed_pair_integral: Vec<f64>,
    /// Length of the measured window.
    pub window: f64,
}

impl PopulationStats {
    /// Creates an accumulator for `k` classes.
    pub fn new(k: usize) -> Self {
        Self {
            downloader_peer_integral: vec![0.0; k],
            download_pair_integral: vec![0.0; k],
            seed_pair_integral: vec![0.0; k],
            window: 0.0,
        }
    }

    /// Adds `dt` at the current per-class counts.
    pub fn accumulate(
        &mut self,
        dt: f64,
        downloader_peers: &[usize],
        download_pairs: &[usize],
        seed_pairs: &[usize],
    ) {
        self.window += dt;
        for (acc, &n) in self
            .downloader_peer_integral
            .iter_mut()
            .zip(downloader_peers)
        {
            *acc += dt * n as f64;
        }
        for (acc, &n) in self.download_pair_integral.iter_mut().zip(download_pairs) {
            *acc += dt * n as f64;
        }
        for (acc, &n) in self.seed_pair_integral.iter_mut().zip(seed_pairs) {
            *acc += dt * n as f64;
        }
    }

    /// Time-averaged number of downloading users of class `i` (1-based).
    pub fn avg_downloader_peers(&self, i: usize) -> f64 {
        if self.window == 0.0 {
            0.0
        } else {
            self.downloader_peer_integral[i - 1] / self.window
        }
    }

    /// Time-averaged number of active (peer,file) downloads of class `i`.
    pub fn avg_download_pairs(&self, i: usize) -> f64 {
        if self.window == 0.0 {
            0.0
        } else {
            self.download_pair_integral[i - 1] / self.window
        }
    }

    /// Time-averaged number of (peer,file) seeding pairs of class `i`.
    pub fn avg_seed_pairs(&self, i: usize) -> f64 {
        if self.window == 0.0 {
            0.0
        } else {
            self.seed_pair_integral[i - 1] / self.window
        }
    }
}

/// One peer abort injected by a scenario's fault plan.
///
/// Aborted users never produce a [`UserRecord`] — they left without
/// finishing — so scenarios account for them separately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbortRecord {
    /// User id.
    pub id: u64,
    /// Class (files requested).
    pub class: usize,
    /// Arrival time.
    pub arrival: f64,
    /// Time the abort fired.
    pub time: f64,
    /// Files the user had finished when it aborted.
    pub done: usize,
}

/// Diagnostic snapshot of a peer still in flight at the hard stop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InflightInfo {
    /// The peer's class.
    pub class: usize,
    /// Files already finished.
    pub done: usize,
    /// Remaining work on the file currently downloading (sequential
    /// schemes) or the largest remaining work (concurrent), `0..=1`.
    pub remaining: f64,
    /// Arrival time.
    pub arrival: f64,
}

/// Everything one simulation run produces.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per-class statistics over users that arrived after warm-up and
    /// completed before the hard stop (index 0 ↔ class 1).
    pub classes: Vec<ClassStats>,
    /// Same, restricted to obedient (non-cheating) peers — the population
    /// whose welfare Adapt is meant to protect.
    pub obedient: Vec<ClassStats>,
    /// Same, restricted to cheaters.
    pub cheaters: Vec<ClassStats>,
    /// All raw records (arrival order).
    pub records: Vec<UserRecord>,
    /// Population time-averages over the stationary window.
    pub population: PopulationStats,
    /// Users still in flight at the hard stop (excluded from stats;
    /// non-zero values signal censoring — enlarge `drain`).
    pub censored: usize,
    /// Diagnostic details of the censored users.
    pub inflight: Vec<InflightInfo>,
    /// Total arrivals (including warm-up ones).
    pub arrivals: usize,
    /// Peer aborts injected by an attached scenario hook (empty for
    /// stationary runs).
    pub aborts: Vec<AbortRecord>,
    /// Optional population trajectory (channels `downloaders`, `seeds`),
    /// recorded when [`crate::config::DesConfig::record_every`] is set.
    pub trajectory: Option<btfluid_numkit::series::TimeSeries>,
    /// Number of events the engine dispatched (including the final
    /// end-of-horizon event); the denominator for events/sec throughput.
    pub events: u64,
}

impl SimOutcome {
    /// Creates an empty outcome for `k` classes.
    pub fn new(k: usize) -> Self {
        Self {
            classes: vec![ClassStats::default(); k],
            obedient: vec![ClassStats::default(); k],
            cheaters: vec![ClassStats::default(); k],
            records: Vec::new(),
            population: PopulationStats::new(k),
            censored: 0,
            inflight: Vec::new(),
            arrivals: 0,
            aborts: Vec::new(),
            trajectory: None,
            events: 0,
        }
    }

    /// Number of classes.
    pub fn k(&self) -> usize {
        self.classes.len()
    }

    /// Records one counted (post-warm-up) user.
    pub fn record(&mut self, r: UserRecord) {
        let idx = r.class - 1;
        self.classes[idx].push(&r);
        if r.cheater {
            self.cheaters[idx].push(&r);
        } else {
            self.obedient[idx].push(&r);
        }
        self.records.push(r);
    }

    /// Mean online time per file across all counted users — the paper's
    /// headline metric: `Σ online / Σ files`.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when no users were recorded.
    pub fn avg_online_per_file(&self) -> Result<f64, NumError> {
        let mut online = 0.0;
        let mut files = 0.0;
        for r in &self.records {
            online += r.online_fluid;
            files += r.class as f64;
        }
        if files == 0.0 {
            return Err(NumError::InvalidInput {
                what: "SimOutcome::avg_online_per_file",
                detail: "no completed users recorded".into(),
            });
        }
        Ok(online / files)
    }

    /// Mean download time per file across all counted users.
    ///
    /// # Errors
    /// Returns [`NumError::InvalidInput`] when no users were recorded.
    pub fn avg_download_per_file(&self) -> Result<f64, NumError> {
        let mut dl = 0.0;
        let mut files = 0.0;
        for r in &self.records {
            dl += r.download_span;
            files += r.class as f64;
        }
        if files == 0.0 {
            return Err(NumError::InvalidInput {
                what: "SimOutcome::avg_download_per_file",
                detail: "no completed users recorded".into(),
            });
        }
        Ok(dl / files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(class: usize, dl: f64, online: f64, cheater: bool) -> UserRecord {
        UserRecord {
            id: 0,
            class,
            arrival: 0.0,
            departure: online,
            download_span: dl,
            online_fluid: online,
            final_rho: 0.5,
            cheater,
        }
    }

    #[test]
    fn record_routing() {
        let mut o = SimOutcome::new(3);
        o.record(rec(1, 60.0, 80.0, false));
        o.record(rec(3, 200.0, 220.0, true));
        assert_eq!(o.classes[0].count(), 1);
        assert_eq!(o.classes[2].count(), 1);
        assert_eq!(o.obedient[0].count(), 1);
        assert_eq!(o.obedient[2].count(), 0);
        assert_eq!(o.cheaters[2].count(), 1);
        assert_eq!(o.records.len(), 2);
        assert_eq!(o.k(), 3);
    }

    #[test]
    fn per_file_averages() {
        let mut o = SimOutcome::new(3);
        o.record(rec(1, 60.0, 80.0, false));
        o.record(rec(3, 180.0, 240.0, false));
        // online: (80 + 240)/(1 + 3) = 80; download: (60 + 180)/4 = 60.
        assert!((o.avg_online_per_file().unwrap() - 80.0).abs() < 1e-12);
        assert!((o.avg_download_per_file().unwrap() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn empty_outcome_errors() {
        let o = SimOutcome::new(2);
        assert!(o.avg_online_per_file().is_err());
        assert!(o.avg_download_per_file().is_err());
    }

    #[test]
    fn population_accumulation() {
        let mut p = PopulationStats::new(2);
        p.accumulate(2.0, &[3, 0], &[3, 0], &[1, 2]);
        p.accumulate(2.0, &[1, 2], &[1, 4], &[0, 0]);
        assert_eq!(p.window, 4.0);
        assert!((p.avg_downloader_peers(1) - 2.0).abs() < 1e-12);
        assert!((p.avg_downloader_peers(2) - 1.0).abs() < 1e-12);
        assert!((p.avg_download_pairs(2) - 2.0).abs() < 1e-12);
        assert!((p.avg_seed_pairs(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_population_window() {
        let p = PopulationStats::new(1);
        assert_eq!(p.avg_downloader_peers(1), 0.0);
        assert_eq!(p.avg_download_pairs(1), 0.0);
        assert_eq!(p.avg_seed_pairs(1), 0.0);
    }
}
