//! The simulated peer: request set, per-file progress, lifecycle phase.

use btfluid_core::adapt::AdaptController;
use btfluid_workload::requests::FileId;

/// Lifecycle phase of a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Actively downloading (sequential: the file at the cursor;
    /// concurrent: every unfinished file).
    Downloading,
    /// MTSD only: seeding the just-finished file (slot index) before moving
    /// to the next torrent.
    SeedingFile(usize),
    /// All files finished; seeding until departure (CMFSD/MFCD real seed,
    /// MTCD lingering virtual seeds).
    SeedingAll,
    /// Left the system (record finalized).
    Departed,
}

/// One simulated user/peer.
///
/// Field semantics vary slightly per scheme (documented inline); the engine
/// interprets them via [`crate::config::SchemeKind`].
#[derive(Debug, Clone)]
pub struct Peer {
    /// Unique id (monotone arrival counter).
    pub id: u64,
    /// Arrival time.
    pub arrival: f64,
    /// Requested files (non-empty, sorted).
    pub files: Vec<FileId>,
    /// Remaining work per file slot, `1.0 → 0.0`.
    pub remaining: Vec<f64>,
    /// Completion time per slot.
    pub completed_at: Vec<Option<f64>>,
    /// Sequential download order: a permutation of slot indices.
    pub order: Vec<usize>,
    /// Position in [`Peer::order`] (sequential schemes).
    pub cursor: usize,
    /// Current phase.
    pub phase: Phase,
    /// Per-slot seed expiry (MTSD: the one being seeded; MTCD: each virtual
    /// seed's own deadline).
    pub seed_until: Vec<Option<f64>>,
    /// Pre-sampled seed durations per slot (recorded for the fluid-metric
    /// online time).
    pub seed_duration: Vec<f64>,
    /// Whole-user departure time (CMFSD/MFCD real-seed phase end).
    pub depart_at: Option<f64>,
    /// CMFSD: individual bandwidth allocation ratio ρ.
    pub rho: f64,
    /// Whether this peer cheats (pins ρ = 1, never donates).
    pub cheater: bool,
    /// Optional per-peer Adapt controller.
    pub adapt: Option<AdaptController>,
    /// Adapt accounting: bandwidth·time donated through the virtual seed in
    /// the current epoch.
    pub donated: f64,
    /// Adapt accounting: bandwidth·time received from others' virtual
    /// seeds in the current epoch.
    pub received_vs: f64,
    /// Accumulated wall-clock time with at least one active download.
    pub download_time_acc: f64,
    /// Cached service rate per slot, maintained by the engine's rate cache
    /// (zero for inactive slots).
    pub rate: Vec<f64>,
    /// Virtual-seed portion of [`Peer::rate`] per slot.
    pub vs_rate: Vec<f64>,
    /// Last time each slot's progress was folded into
    /// [`Peer::remaining`]/[`Peer::received_vs`] (lazy settlement).
    pub settled_at: Vec<f64>,
    /// Bandwidth currently donated through this peer's virtual seed and
    /// consumed by someone (zero outside CMFSD).
    pub donation_rate: f64,
    /// Last time [`Peer::donated`] was settled.
    pub donation_since: f64,
    /// When the current [`Phase::Downloading`] stretch began (feeds
    /// [`Peer::download_time_acc`] on the next phase transition).
    pub active_since: f64,
    /// Event-queue stamp of the pending completion entry per slot
    /// (0 = no entry scheduled).
    pub comp_stamp: Vec<u64>,
    /// The slot's true completion deadline, meaningful while
    /// [`Peer::comp_stamp`] is non-zero. A rate *decrease* only moves the
    /// deadline later, so the engine records it here instead of re-pushing
    /// a heap entry; the stale (too early) entry is corrected at pop time.
    pub comp_time: Vec<f64>,
    /// Event-queue stamp of the pending seed-expiry/departure entry
    /// (0 = none).
    pub expiry_stamp: u64,
}

impl Peer {
    /// Creates a freshly arrived peer.
    pub fn new(id: u64, arrival: f64, files: Vec<FileId>, order: Vec<usize>, rho: f64) -> Self {
        let n = files.len();
        debug_assert!(n > 0, "peers always request at least one file");
        debug_assert_eq!(order.len(), n);
        Self {
            id,
            arrival,
            files,
            remaining: vec![1.0; n],
            completed_at: vec![None; n],
            order,
            cursor: 0,
            phase: Phase::Downloading,
            seed_until: vec![None; n],
            seed_duration: vec![0.0; n],
            depart_at: None,
            rho,
            cheater: false,
            adapt: None,
            donated: 0.0,
            received_vs: 0.0,
            download_time_acc: 0.0,
            rate: vec![0.0; n],
            vs_rate: vec![0.0; n],
            settled_at: vec![arrival; n],
            donation_rate: 0.0,
            donation_since: arrival,
            active_since: arrival,
            comp_stamp: vec![0; n],
            comp_time: vec![f64::INFINITY; n],
            expiry_stamp: 0,
        }
    }

    /// Folds the interval since the slot's last settlement into
    /// [`Peer::remaining`] and [`Peer::received_vs`] at the cached rates,
    /// then re-anchors the slot at `t`.
    ///
    /// Safe to call on inactive slots (their cached rate is zero).
    ///
    /// An actively downloading slot never settles all the way to zero:
    /// only its completion *event* may finish it. A settle can land on the
    /// deadline to within a ulp (e.g. an arrival tying with the
    /// completion), and clamping to zero there would mark the slot
    /// finished without ever dispatching the completion — no seed phase,
    /// no holder count, no record. Pinning to the smallest positive value
    /// keeps the slot alive for the completion event that is due now.
    pub fn settle_slot(&mut self, slot: usize, t: f64) {
        let dt = t - self.settled_at[slot];
        if dt > 0.0 {
            let left = self.remaining[slot] - self.rate[slot] * dt;
            self.remaining[slot] = if left > 0.0 || !(self.rate[slot] > 0.0) {
                left.max(0.0)
            } else {
                f64::MIN_POSITIVE
            };
            self.received_vs += self.vs_rate[slot] * dt;
        }
        self.settled_at[slot] = t;
    }

    /// Folds the interval since the last donation settlement into
    /// [`Peer::donated`] at the cached donation rate, re-anchoring at `t`.
    pub fn settle_donation(&mut self, t: f64) {
        let dt = t - self.donation_since;
        if dt > 0.0 {
            self.donated += self.donation_rate * dt;
        }
        self.donation_since = t;
    }

    /// The user's class: number of requested files.
    pub fn class(&self) -> usize {
        self.files.len()
    }

    /// Whether slot `i` has finished downloading.
    pub fn finished(&self, slot: usize) -> bool {
        self.remaining[slot] <= 0.0
    }

    /// Number of finished files.
    pub fn done_count(&self) -> usize {
        self.remaining.iter().filter(|&&r| r <= 0.0).count()
    }

    /// Whether every requested file is finished.
    pub fn all_done(&self) -> bool {
        self.done_count() == self.class()
    }

    /// The slot currently being downloaded under a sequential scheme.
    ///
    /// # Panics
    /// Panics when the cursor has run past the order (the peer should then
    /// be in a seeding phase).
    pub fn current_slot(&self) -> usize {
        assert!(
            self.cursor < self.order.len(),
            "cursor {} past the end for peer {}",
            self.cursor,
            self.id
        );
        self.order[self.cursor]
    }

    /// Time of the last file completion, if all are done.
    pub fn last_completion(&self) -> Option<f64> {
        if !self.all_done() {
            return None;
        }
        self.completed_at
            .iter()
            .map(|c| c.expect("all slots completed"))
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.max(t)))
            })
    }

    /// Slots whose download is finished (what a CMFSD virtual seed can
    /// serve).
    pub fn finished_slots(&self) -> Vec<usize> {
        (0..self.class()).filter(|&s| self.finished(s)).collect()
    }
}

/// Structure-of-arrays map from `(peer slab index, slot)` to the peer's
/// position inside an aggregate group's member list.
///
/// Aggregate scheduling keeps one member list per (file, class, band)
/// group and needs O(1) deregistration of an arbitrary `(peer, slot)`
/// download from its group (the lists use `swap_remove`). Storing the
/// back-references on the `Peer` struct would drag two more `Vec`s through
/// every cache line the hot loop touches; this arena keeps them in two
/// flat parallel arrays indexed `peer · K + slot`, sized like the slab and
/// reused across the free list exactly as the slab itself is.
#[derive(Debug, Default, Clone)]
pub struct SlotArena {
    /// Slots per peer (the workload's `K`; a peer's class never exceeds it).
    k: usize,
    /// Group id per flat index; [`SlotArena::NONE`] when unregistered.
    group: Vec<u32>,
    /// Position inside the group's member list, parallel to `group`.
    pos: Vec<u32>,
}

impl SlotArena {
    /// Sentinel for "this (peer, slot) is not in any group".
    pub const NONE: u32 = u32::MAX;

    /// Creates an arena for peers with at most `k` slots each.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            group: Vec::new(),
            pos: Vec::new(),
        }
    }

    fn flat(&self, peer: usize, slot: usize) -> usize {
        debug_assert!(slot < self.k, "slot {slot} out of range (K = {})", self.k);
        peer * self.k + slot
    }

    /// Grows the arena to cover `peers` slab entries (new cells empty).
    pub fn ensure_peers(&mut self, peers: usize) {
        let want = peers * self.k;
        if self.group.len() < want {
            self.group.resize(want, Self::NONE);
            self.pos.resize(want, 0);
        }
    }

    /// Records that `(peer, slot)` sits at `pos` in group `group`.
    pub fn set(&mut self, peer: usize, slot: usize, group: u32, pos: u32) {
        let i = self.flat(peer, slot);
        self.group[i] = group;
        self.pos[i] = pos;
    }

    /// Looks up `(group, pos)` for `(peer, slot)`; `None` if unregistered.
    pub fn get(&self, peer: usize, slot: usize) -> Option<(u32, u32)> {
        let i = self.flat(peer, slot);
        match self.group.get(i) {
            Some(&g) if g != Self::NONE => Some((g, self.pos[i])),
            _ => None,
        }
    }

    /// Clears the `(peer, slot)` cell, returning its previous `(group, pos)`.
    pub fn clear(&mut self, peer: usize, slot: usize) -> Option<(u32, u32)> {
        let i = self.flat(peer, slot);
        match self.group.get(i) {
            Some(&g) if g != Self::NONE => {
                let p = self.pos[i];
                self.group[i] = Self::NONE;
                Some((g, p))
            }
            _ => None,
        }
    }

    /// Drops all registrations, keeping capacity (snapshot restore).
    pub fn reset(&mut self) {
        self.group.fill(Self::NONE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer3() -> Peer {
        Peer::new(7, 10.0, vec![2, 5, 9], vec![1, 0, 2], 0.3)
    }

    #[test]
    fn new_peer_state() {
        let p = peer3();
        assert_eq!(p.class(), 3);
        assert_eq!(p.done_count(), 0);
        assert!(!p.all_done());
        assert_eq!(p.phase, Phase::Downloading);
        assert_eq!(p.current_slot(), 1);
        assert_eq!(p.rho, 0.3);
        assert!(p.last_completion().is_none());
        assert!(p.finished_slots().is_empty());
    }

    #[test]
    fn progress_and_completion_tracking() {
        let mut p = peer3();
        p.remaining[1] = 0.0;
        p.completed_at[1] = Some(42.0);
        assert!(p.finished(1));
        assert_eq!(p.done_count(), 1);
        assert_eq!(p.finished_slots(), vec![1]);
        assert!(!p.all_done());
        p.remaining[0] = 0.0;
        p.completed_at[0] = Some(50.0);
        p.remaining[2] = 0.0;
        p.completed_at[2] = Some(47.0);
        assert!(p.all_done());
        assert_eq!(p.last_completion(), Some(50.0));
    }

    #[test]
    fn cursor_walks_the_order() {
        let mut p = peer3();
        assert_eq!(p.current_slot(), 1);
        p.cursor = 1;
        assert_eq!(p.current_slot(), 0);
        p.cursor = 2;
        assert_eq!(p.current_slot(), 2);
    }

    #[test]
    #[should_panic(expected = "past the end")]
    fn cursor_overflow_panics() {
        let mut p = peer3();
        p.cursor = 3;
        let _ = p.current_slot();
    }

    #[test]
    fn slot_arena_set_get_clear() {
        let mut a = SlotArena::new(4);
        a.ensure_peers(3);
        assert_eq!(a.get(2, 3), None);
        a.set(2, 3, 17, 5);
        assert_eq!(a.get(2, 3), Some((17, 5)));
        // Neighbouring cells stay untouched (flat layout is peer·K + slot).
        assert_eq!(a.get(2, 2), None);
        assert_eq!(a.get(1, 3), None);
        assert_eq!(a.clear(2, 3), Some((17, 5)));
        assert_eq!(a.get(2, 3), None);
        assert_eq!(a.clear(2, 3), None);
    }

    #[test]
    fn slot_arena_growth_and_reset() {
        let mut a = SlotArena::new(2);
        a.ensure_peers(1);
        a.set(0, 1, 3, 0);
        a.ensure_peers(10);
        assert_eq!(a.get(0, 1), Some((3, 0)), "growth preserves cells");
        assert_eq!(a.get(9, 1), None);
        a.reset();
        assert_eq!(a.get(0, 1), None);
    }
}
