//! Typed engine errors.
//!
//! Historically the engine had exactly two failure channels: configuration
//! errors surfaced as [`NumError`] from constructors, and everything that
//! went wrong *during* a run was a panic. [`DesError`] gives runs a third,
//! structured channel: invariant violations detected by the opt-in
//! `checked` mode ([`crate::DesConfig::checked`]) and snapshot/restore
//! failures become values the caller can match on — the CLI maps each class
//! to its own exit code, the harness supervisor to its own quarantine
//! reason.

use crate::snapshot::SnapshotError;
use btfluid_numkit::NumError;
use std::fmt;

/// Which engine invariant a `checked`-mode audit found violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// A cached per-peer rate (download, virtual-seed or donation) is
    /// non-finite or negative, or residual work went negative.
    NonFiniteRate,
    /// The event queue's live-entry counter disagrees with the number of
    /// armed completion/expiry stamps in the peer slab.
    QueueInconsistency,
    /// The incremental rate cache diverged (bitwise) from a from-scratch
    /// rate recomputation.
    RateCacheDrift,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InvariantKind::NonFiniteRate => "non-finite rate",
            InvariantKind::QueueInconsistency => "event-queue inconsistency",
            InvariantKind::RateCacheDrift => "rate-cache drift",
        };
        f.write_str(name)
    }
}

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DesError {
    /// Numeric or configuration failure (validation, distribution setup).
    Num(NumError),
    /// An engine invariant was violated; only raised when
    /// [`crate::DesConfig::checked`] is set.
    Invariant {
        /// Which invariant failed.
        kind: InvariantKind,
        /// Simulated time at which the audit failed.
        t: f64,
        /// Human-readable specifics (peer index, offending value, …).
        detail: String,
    },
    /// A snapshot could not be encoded, decoded, or applied.
    Snapshot(SnapshotError),
}

impl fmt::Display for DesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesError::Num(e) => write!(f, "{e}"),
            DesError::Invariant { kind, t, detail } => {
                write!(f, "engine invariant violated at t = {t}: {kind} ({detail})")
            }
            DesError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DesError {}

impl From<NumError> for DesError {
    fn from(e: NumError) -> Self {
        DesError::Num(e)
    }
}

impl From<SnapshotError> for DesError {
    fn from(e: SnapshotError) -> Self {
        DesError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = DesError::Invariant {
            kind: InvariantKind::RateCacheDrift,
            t: 12.5,
            detail: "peer 3 slot 0".into(),
        };
        let s = e.to_string();
        assert!(s.contains("rate-cache drift"), "{s}");
        assert!(s.contains("12.5"), "{s}");

        let e: DesError = NumError::InvalidInput {
            what: "test",
            detail: "boom".into(),
        }
        .into();
        assert!(e.to_string().contains("boom"));
    }
}
